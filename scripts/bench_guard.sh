#!/usr/bin/env bash
# Guard the committed benchmark baseline: take a fresh snapshot and compare
# it against BENCH_pcu.json, failing if any shared bench regressed beyond
# the tolerance. Machine-to-machine noise makes absolute comparisons on a
# different box meaningless — run this on the same machine that produced
# the committed baseline (or use it for before/after checks on one box).
#
# Usage: scripts/bench_guard.sh [--tolerance PCT] [--smoke] [--baseline F]
#
#   --tolerance PCT  allowed slowdown in percent before failing (default 50;
#                    generous because the simulated world runs on whatever
#                    cores the host has)
#   --smoke          skip the full snapshot; run only a 64-rank small-payload
#                    pcu_weak_scaling pass and check that it completes and
#                    emits sane medians. This is the CI mode: it proves the
#                    runtime sustains a 64-rank world and that the report
#                    plumbing works, without timing-sensitive assertions.
#   --baseline F     compare against F instead of BENCH_pcu.json
set -euo pipefail

cd "$(dirname "$0")/.."

tolerance=50
smoke=0
baseline="BENCH_pcu.json"
while [ $# -gt 0 ]; do
    case "$1" in
        --tolerance) tolerance="$2"; shift 2 ;;
        --smoke) smoke=1; shift ;;
        --baseline) baseline="$2"; shift 2 ;;
        *) echo "unknown flag $1" >&2; exit 2 ;;
    esac
done

export PUMI_RESULTS_DIR="$PWD/results"

if [ "$smoke" = 1 ]; then
    # CI smoke: one 64-rank, small-payload weak-scaling pass. Asserts the
    # world completes and every emitted median is a positive integer; no
    # wall-clock thresholds (shared runners make those flaky).
    cargo run --release -p pumi-bench --bin pcu_weak_scaling --locked -- \
        --max-ranks 64 --bytes-per-rank 512 --reps 2 --rounds 2
    python3 - "$PUMI_RESULTS_DIR/pcu_weak_scaling.json" <<'EOF'
import json, sys

rows = json.load(open(sys.argv[1])).get("medians", [])
want = {"pcu_weak_scaling/ring/32", "pcu_weak_scaling/a2a/32",
        "pcu_weak_scaling/ring/64", "pcu_weak_scaling/a2a/64"}
got = {r["bench"] for r in rows}
missing = want - got
if missing:
    sys.exit(f"smoke: missing medians: {sorted(missing)}")
bad = [r for r in rows if not (isinstance(r["median_ns"], int) and r["median_ns"] > 0)]
if bad:
    sys.exit(f"smoke: non-positive medians: {bad}")
print(f"smoke ok: {len(rows)} medians, 64-rank world sustained")
EOF
    # Checkpoint-service smoke: a tiny mesh through every leg — v1/v2/delta
    # writes, compression win, and 8 clients through the shared chunk cache
    # (the bin asserts v2 < v1 bytes and that the slices tile the mesh).
    cargo run --release -p pumi-bench --bin checkpoint_service --locked -- \
        --nx 40 --reps 2 --clients 8
    python3 - "$PUMI_RESULTS_DIR/io_checkpoint.json" <<'EOF'
import json, sys

rows = json.load(open(sys.argv[1])).get("medians", [])
want = {"io_checkpoint/write_v1@smoke", "io_checkpoint/write_v2@smoke",
        "io_checkpoint/delta@smoke", "io_checkpoint/serve8@smoke"}
got = {r["bench"] for r in rows}
missing = want - got
if missing:
    sys.exit(f"smoke: missing medians: {sorted(missing)}")
bad = [r for r in rows if not (isinstance(r["median_ns"], int) and r["median_ns"] > 0)]
if bad:
    sys.exit(f"smoke: non-positive medians: {bad}")
print(f"smoke ok: checkpoint service legs present and positive")
EOF
    # Adaptive-loop smoke: a small predict → balance → adapt run with both
    # the topology-blind and hierarchy-aware legs on a 2-node machine
    # model (4 ranks so the model is non-flat). The bin itself asserts
    # ParMA never worsens the predicted imbalance; here we assert the
    # calibrated-trajectory and off-node traffic rows land in the report.
    cargo run --release -p pumi-bench --bin adaptive_loop --locked -- \
        --n 16 --parts 8 --ranks 4 --rounds 3 --topo
    python3 - "$PUMI_RESULTS_DIR/adaptive_loop.json" <<'EOF'
import json, sys

rows = json.load(open(sys.argv[1])).get("medians", [])
want = {"adaptive_loop/final_imbalance_bp@smoke",
        "adaptive_loop/pred_err_last_bp@smoke",
        "adaptive_loop/elements_moved@smoke",
        "adaptive_loop/offnode_bytes@smoke",
        "adaptive_loop/offnode_bytes_blind@smoke"}
got = {r["bench"] for r in rows}
missing = want - got
if missing:
    sys.exit(f"smoke: missing medians: {sorted(missing)}")
bad = [r for r in rows if not (isinstance(r["median_ns"], int) and r["median_ns"] > 0)]
if bad:
    sys.exit(f"smoke: non-positive medians: {bad}")
print(f"smoke ok: adaptive loop trajectory + off-node traffic rows present and positive")
EOF
    exit 0
fi

fresh="$(mktemp --suffix=.json)"
trap 'rm -f "$fresh"' EXIT
scripts/bench_snapshot.sh "$fresh"

python3 - "$baseline" "$fresh" "$tolerance" <<'EOF'
import json, sys

base_p, fresh_p, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(base_p))["benches"]
fresh = json.load(open(fresh_p))["benches"]
shared = sorted(base.keys() & fresh.keys())
if not shared:
    sys.exit("no shared benches between baseline and fresh snapshot")

failed = []
for k in shared:
    b, f = base[k]["median_ns"], fresh[k]["median_ns"]
    ratio = f / b if b else float("inf")
    marker = ""
    if ratio > 1 + tol / 100:
        marker = "  <-- REGRESSED"
        failed.append(k)
    print(f"{k}: {b} -> {f} ns ({ratio:.2f}x){marker}")

only_base = sorted(base.keys() - fresh.keys())
if only_base:
    print(f"note: {len(only_base)} baseline benches not in fresh snapshot: {only_base}")

if failed:
    sys.exit(f"{len(failed)}/{len(shared)} benches regressed beyond +{tol:.0f}%: {failed}")
print(f"ok: {len(shared)} benches within +{tol:.0f}% of {base_p}")
EOF
