#!/usr/bin/env bash
# Snapshot the PCU hot-path benchmarks into a machine-readable baseline.
#
# Runs the `pcu_exchange` and `migration` criterion benches with
# CRITERION_JSON pointing at a scratch file, plus the `checkpoint_restart`,
# `checkpoint_service`, `halo_exchange`, `weak_scaling`,
# `pcu_weak_scaling`, and `adaptive_loop` experiment binaries (whose
# reports land under results/), then folds every median into
# BENCH_pcu.json at the repository root:
#
#   { "schema": 1, "unix_time": ..., "benches": { "<group>/<id>": {"median_ns": N, "samples": S}, ... } }
#
# Usage: scripts/bench_snapshot.sh [output.json]
# Compare two snapshots with e.g.
#   python3 - old.json new.json <<'EOF'
#   import json, sys
#   a, b = (json.load(open(p))["benches"] for p in sys.argv[1:3])
#   for k in sorted(a.keys() & b.keys()):
#       print(f"{k}: {a[k]['median_ns'] / b[k]['median_ns']:.2f}x")
#   EOF
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pcu.json}"
scratch="$(mktemp)"
trap 'rm -f "$scratch"' EXIT

export CRITERION_JSON="$scratch"
export PUMI_RESULTS_DIR="$PWD/results"
cargo bench -p pumi-bench --bench pcu_exchange
cargo bench -p pumi-bench --bench migration
cargo run --release -p pumi-bench --bin checkpoint_restart
# --large adds the 10^7-element pass (~10 extra minutes): the scale the
# streaming v2 writer exists for, and the rows EXPERIMENTS.md quotes.
cargo run --release -p pumi-bench --bin checkpoint_service -- --large
cargo run --release -p pumi-bench --bin halo_exchange
cargo run --release -p pumi-bench --bin weak_scaling
cargo run --release -p pumi-bench --bin pcu_weak_scaling
cargo run --release -p pumi-bench --bin adaptive_loop

python3 - "$scratch" "$out" \
    "$PUMI_RESULTS_DIR/io_restart.json" \
    "$PUMI_RESULTS_DIR/io_checkpoint.json" \
    "$PUMI_RESULTS_DIR/halo_exchange.json" \
    "$PUMI_RESULTS_DIR/weak_scaling.json" \
    "$PUMI_RESULTS_DIR/pcu_weak_scaling.json" \
    "$PUMI_RESULTS_DIR/adaptive_loop.json" <<'EOF'
import json, sys, time

lines, out, reports = sys.argv[1], sys.argv[2], sys.argv[3:]
benches = {}
with open(lines) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        benches[row["bench"]] = {
            "median_ns": row["median_ns"],
            "samples": row["samples"],
        }
# The experiment binaries emit the same row shape under "medians".
for report in reports:
    try:
        with open(report) as f:
            for row in json.load(f).get("medians", []):
                benches[row["bench"]] = {
                    "median_ns": row["median_ns"],
                    "samples": row["samples"],
                }
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: skipping medians from {report}: {e}", file=sys.stderr)
if not benches:
    sys.exit("no bench lines collected — did the benches run?")
snapshot = {
    "schema": 1,
    "unix_time": int(time.time()),
    "benches": dict(sorted(benches.items())),
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(benches)} benches)")
EOF
