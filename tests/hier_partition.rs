//! Hierarchy-aware partitioning, cross-crate guarantees:
//!
//! 1. On a flat machine the two-level paths are *exactly* the flat paths —
//!    property-tested over mesh sizes and part counts, down to identical
//!    element labels and identical distributed [`pumi_io::struct_hash`].
//! 2. On a two-node machine under the adversarial chaos scheduler,
//!    topology-aware ParMA with a prohibitive off-node penalty never
//!    increases the off-node boundary bytes round over round.

use parma::{improve, off_node_boundary, ImproveOpts, Priority, TopologyOpts};
use proptest::prelude::*;
use pumi_core::{distribute, PartMap};
use pumi_io::struct_hash;
use pumi_meshgen::tri_rect;
use pumi_partition::{partition_hier, partition_mesh, partition_mesh_hier, HierOpts};
use pumi_pcu::{execute_on_sched, MachineModel, SchedMode};
use pumi_util::PartId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `partition_mesh_hier` on a flat machine is label-identical to
    /// `partition_mesh`, and `partition_hier`'s placement on the flat
    /// world is the contiguous map — so the distributed meshes built from
    /// each hash identically.
    #[test]
    fn flat_machine_hier_equals_flat_path(
        nx in 6usize..12,
        ny in 6usize..12,
        k in 2usize..5,
    ) {
        let nparts = 2 * k;
        let m = tri_rect(nx, ny, 1.0, 1.0);
        let flat_labels = partition_mesh(&m, nparts);
        let hier_labels =
            partition_mesh_hier(&m, nparts, &MachineModel::flat(nparts), HierOpts::default());
        prop_assert_eq!(&flat_labels, &hier_labels, "labels diverge on a flat machine");

        let hashes = pumi_pcu::execute(2, |c| {
            let dm_flat =
                distribute(c, PartMap::contiguous(nparts, c.nranks()), &m, &flat_labels);
            let h = partition_hier(c, &dm_flat, &c.machine(), HierOpts::default());
            let dm_hier = distribute(c, h.part_map(c.nranks()), &m, &hier_labels);
            (struct_hash(c, &dm_flat), struct_hash(c, &dm_hier))
        });
        for (flat_hash, hier_hash) in hashes {
            prop_assert_eq!(flat_hash, hier_hash, "flat-machine hier path changed the mesh");
        }
    }
}

/// Four uneven x-strips on a 2-node × 2-core machine: part 0 (on node 0)
/// is heavy, its on-node neighbor part 1 is light, so diffusion has
/// on-node room to balance into.
fn uneven_strips(c: &pumi_pcu::Comm) -> pumi_core::DistMesh {
    let serial = tri_rect(16, 8, 4.0, 2.0);
    let cuts = [2.2, 2.8, 3.4];
    let d = serial.elem_dim_t();
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        let x = serial.centroid(e)[0];
        labels[e.idx()] = cuts.iter().filter(|&&cut| x >= cut).count() as PartId;
    }
    distribute(c, PartMap::contiguous(4, 4), &serial, &labels)
}

/// Under a prohibitive off-node penalty the selection gate only admits
/// cavities whose off-node pair delta is non-positive, so repeated
/// topology-aware improvement must never grow the off-node boundary —
/// round over round, under adversarial frame delivery.
fn offnode_monotone_under_chaos(seed: u64) {
    let machine = MachineModel::new(2, 2);
    execute_on_sched(machine, SchedMode::Chaos(seed), |c| {
        let mut dm = uneven_strips(c);
        let topo = TopologyOpts::new(machine).off_node_penalty(1e12);
        let pri: Priority = "Face".parse().unwrap();
        let mut prev = off_node_boundary(c, &dm, &machine).off_bytes();
        for round in 1..=3 {
            improve(
                c,
                &mut dm,
                &pri,
                ImproveOpts::new().tol(0.05).max_iters(40).topo(topo),
            );
            let now = off_node_boundary(c, &dm, &machine).off_bytes();
            assert!(
                now <= prev,
                "seed {seed} round {round}: off-node boundary grew {prev} -> {now} bytes"
            );
            prev = now;
        }
    });
}

#[test]
fn offnode_monotone_chaos_seed_1() {
    offnode_monotone_under_chaos(1);
}

#[test]
fn offnode_monotone_chaos_seed_7() {
    offnode_monotone_under_chaos(7);
}
