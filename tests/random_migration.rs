//! Property-style stress test: arbitrary sequences of random migrations
//! must preserve every distributed invariant — the global entity counts,
//! remote-copy symmetry, owner agreement, serial validity, and gid
//! completeness. This is the migration algorithm's contract under §II-C.

use pumi_core::verify::verify_dist;
use pumi_core::{distribute, migrate, MigrationPlan, PartMap};
use pumi_meshgen::tri_rect;
use pumi_pcu::execute;
use pumi_util::{Dim, FxHashMap, PartId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_random_migrations(seed: u64, rounds: usize) {
    let serial = tri_rect(8, 8, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let nparts = 4;
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        let c = serial.centroid(e);
        let px = if c[0] < 0.5 { 0 } else { 1 };
        let py = if c[1] < 0.5 { 0 } else { 1 };
        labels[e.idx()] = (py * 2 + px) as PartId;
    }
    let counts = [
        serial.count(Dim::Vertex) as u64,
        serial.count(Dim::Edge) as u64,
        serial.count(Dim::Face) as u64,
    ];

    execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 2), &serial, &labels);
        // Each rank derives the same per-round seeds; plans are built from
        // each part's own elements, so this is deterministic but arbitrary.
        for round in 0..rounds {
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            for part in &dm.parts {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (round as u64) << 8 ^ (part.id as u64) << 32);
                let mut plan = MigrationPlan::new();
                for e in part.mesh.elems() {
                    if rng.gen_bool(0.15) {
                        plan.send(e, rng.gen_range(0..nparts as PartId));
                    }
                }
                plans.insert(part.id, plan);
            }
            migrate(c, &mut dm, &plans);
            let errs = verify_dist(c, &dm);
            assert!(errs.is_empty(), "round {round}: {errs:?}");
            for p in &dm.parts {
                p.mesh.assert_valid();
            }
            for (di, &want) in counts.iter().enumerate() {
                let dd = Dim::from_usize(di);
                let owned = dm.global_sum(c, |p| {
                    p.mesh.iter(dd).filter(|&e| p.is_owned(e)).count() as u64
                });
                assert_eq!(owned, want, "round {round}: {dd} not conserved");
            }
            let elems = dm.global_sum(c, |p| p.mesh.num_elems() as u64);
            assert_eq!(elems, counts[2], "round {round}: elements lost");
        }
    });
}

#[test]
fn random_migrations_seed_1() {
    run_random_migrations(0xDEAD_BEEF, 4);
}

#[test]
fn random_migrations_seed_2() {
    run_random_migrations(0x1234_5678, 4);
}

#[test]
fn random_migrations_seed_3() {
    run_random_migrations(42, 4);
}

/// Scatter-everything stress: every element is assigned a random part in one
/// plan — the hardest single migration (all boundaries change at once).
#[test]
fn full_scatter_migration() {
    let serial = tri_rect(6, 6, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let nparts = 6;
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        labels[e.idx()] = (e.idx() % 2) as PartId; // start on parts 0/1 only
    }
    let nelems = serial.num_elems() as u64;

    execute(3, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 3), &serial, &labels);
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        for part in &dm.parts {
            let mut rng = StdRng::seed_from_u64(99 + part.id as u64);
            let mut plan = MigrationPlan::new();
            for e in part.mesh.elems() {
                plan.send(e, rng.gen_range(0..nparts as PartId));
            }
            plans.insert(part.id, plan);
        }
        migrate(c, &mut dm, &plans);
        let errs = verify_dist(c, &dm);
        assert!(errs.is_empty(), "{errs:?}");
        let elems = dm.global_sum(c, |p| p.mesh.num_elems() as u64);
        assert_eq!(elems, nelems);
        // All 6 parts now populated (overwhelmingly likely with 72 elements).
        let loads = dm.gather_loads(c, |p| p.mesh.num_elems() as f64);
        assert!(loads.iter().filter(|&&l| l > 0.0).count() >= 5, "{loads:?}");
    });
}
