//! Figures 3, 4 and 6 as executable assertions.
//!
//! Fig 3: a 2D mesh distributed to three parts, P0 and P1 on node i, P2 on
//! node j; the vertex `M0_i` is duplicated on all three parts, `M0_j` on
//! {P0, P1} only. Fig 4: the corresponding partition model — `M0_i`
//! classifies on the partition vertex `P^0_1`, the two-part boundary
//! entities on partition edges, interior entities on partition faces.
//! Fig 6: the P0–P1 boundary is on-node (implicit), the boundaries to P2
//! are off-node (explicit).

use pumi_core::twolevel::{boundary_split, two_level_map};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, PtnModel};
use pumi_meshgen::tri_rect;
use pumi_pcu::{execute_on, MachineModel};
use pumi_util::{Dim, MeshEnt, PartId};

/// Build the three-part layout: a rectangle split into left/right halves on
/// node i (parts 0, 1) and a bottom strip on node j (part 2), so one lattice
/// vertex is shared by all three parts.
fn three_part_labels(serial: &pumi_mesh::Mesh) -> Vec<PartId> {
    let d = serial.elem_dim_t();
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        let c = serial.centroid(e);
        labels[e.idx()] = if c[1] < 0.5 {
            2
        } else if c[0] < 0.5 {
            0
        } else {
            1
        };
    }
    labels
}

#[test]
fn fig3_residence_and_fig4_partition_model() {
    // 2 cores on node 0 (parts 0, 1), 1 core on node 1 (part 2): model the
    // machine as 2 nodes × 2 cores and leave one slot idle.
    let machine = MachineModel::new(2, 2);
    execute_on(machine, |c| {
        let serial = tri_rect(4, 4, 1.0, 1.0);
        let labels = three_part_labels(&serial);
        // parts 0,1 -> ranks 0,1 (node 0); part 2 -> rank 2 (node 1).
        let map = pumi_core::PartMap::from_ranks(vec![0, 1, 2], 4);
        let dm = distribute(c, map, &serial, &labels);
        assert_dist_valid(c, &dm);
        let Some(part) = dm.parts.first() else {
            return; // rank 3 hosts no part
        };

        // Find M0_i: the vertex at (0.5, 0.5) where all three parts meet,
        // and M0_j: a vertex on the P0|P1 boundary above it.
        let find = |x: f64, y: f64| -> Option<MeshEnt> {
            part.mesh.iter(Dim::Vertex).find(|&v| {
                let p = part.mesh.coords(v);
                (p[0] - x).abs() < 1e-12 && (p[1] - y).abs() < 1e-12
            })
        };
        if part.id == 0 || part.id == 1 {
            let m0i = find(0.5, 0.5).expect("triple vertex missing");
            assert_eq!(part.residence(m0i), vec![0, 1, 2], "M0_i residence");
            let m0j = find(0.5, 0.75).expect("two-part vertex missing");
            assert_eq!(part.residence(m0j), vec![0, 1], "M0_j residence");
            // Owners: minimum part rule -> P0 owns both.
            assert_eq!(part.owner(m0i), 0);
            assert_eq!(part.owner(m0j), 0);

            // Fig 4: partition classification.
            let pm = PtnModel::build(part);
            let ci = pm.classify(m0i);
            assert_eq!(ci.dim, 0, "M0_i on a partition vertex");
            assert_eq!(ci.parts, vec![0, 1, 2]);
            let cj = pm.classify(m0j);
            assert_eq!(cj.dim, 1, "M0_j on a partition edge");
            assert_eq!(cj.parts, vec![0, 1]);
            // An interior vertex classifies on this part's partition face.
            let interior = part
                .mesh
                .iter(Dim::Vertex)
                .find(|&v| !part.is_shared(v))
                .expect("no interior vertex");
            let cint = pm.classify(interior);
            assert_eq!(cint.dim, 2);
            assert_eq!(cint.parts, vec![part.id]);
        }
        if part.id == 2 {
            let m0i = find(0.5, 0.5).expect("triple vertex on P2");
            assert_eq!(part.residence(m0i), vec![0, 1, 2]);
            assert!(find(0.5, 0.75).is_none(), "M0_j must not exist on P2");
        }
    });
}

#[test]
fn fig6_on_node_vs_off_node_boundaries() {
    let machine = MachineModel::new(2, 2);
    execute_on(machine, |c| {
        let serial = tri_rect(4, 4, 1.0, 1.0);
        let labels = three_part_labels(&serial);
        let map = pumi_core::PartMap::from_ranks(vec![0, 1, 2], 4);
        let dm = distribute(c, map, &serial, &labels);
        let Some(part) = dm.parts.first() else { return };
        let split = boundary_split(part, &dm.map, machine);
        match part.id {
            0 | 1 => {
                // P0 and P1 share an on-node boundary (each other) and an
                // off-node boundary (P2).
                assert!(
                    split.on_node_total() > 0,
                    "P{}: no on-node boundary",
                    part.id
                );
                assert!(
                    split.off_node_total() > 0,
                    "P{}: no off-node boundary",
                    part.id
                );
                // Entities shared ONLY with the sibling are on-node.
                let sibling = part.id ^ 1;
                for (e, remotes) in part.shared_entities() {
                    if remotes.len() == 1 && remotes[0].0 == sibling {
                        // This is exactly an implicit (dashed, Fig 3)
                        // on-node boundary entity.
                        let _ = e;
                    }
                }
            }
            2 => {
                // Everything P2 shares crosses nodes.
                assert_eq!(split.on_node_total(), 0);
                assert!(split.off_node_total() > 0);
            }
            _ => unreachable!(),
        }
    });
}

#[test]
fn two_level_map_places_parts_node_major() {
    let machine = MachineModel::new(3, 4);
    let map = two_level_map(machine);
    assert_eq!(map.nparts(), 12);
    for p in 0..12u32 {
        assert_eq!(map.rank_of(p), p as usize);
        assert_eq!(machine.node_of(map.rank_of(p)), p as usize / 4);
    }
}
