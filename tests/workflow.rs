//! End-to-end workflow integration test: the full §II/§III pipeline at test
//! scale — generate → partition → distribute → verify → ParMA improve →
//! ghost → number → assemble — asserting the paper's qualitative outcomes
//! at every stage.

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_core::numbering::number_owned;
use pumi_core::overlap::{clear_overlap, Overlap, Reduction, Scope};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, PartMap};
use pumi_field::{dist_field, Field, FieldShape, FieldSync};
use pumi_geom::builders::VesselSpec;
use pumi_meshgen::{jitter, vessel_tet};
use pumi_partition::{partition_mesh, PartitionQuality};
use pumi_pcu::execute;
use pumi_util::tag::TagKind;
use pumi_util::Dim;

#[test]
fn aaa_pipeline_balances_and_conserves() {
    // ~9k tets, 16 parts, 2 ranks (8 parts/process).
    let spec = VesselSpec::aaa();
    let mut serial = vessel_tet(spec, 6, 42);
    jitter(&mut serial, 0.25, 42);
    serial.assert_valid();
    let nparts = 16;
    let labels = partition_mesh(&serial, nparts);
    let q0 = PartitionQuality::compute(&serial, &labels, nparts);
    // The baseline partitioner balances elements but not vertices.
    assert!(
        q0.imbalance_pct(Dim::Region) < 15.0,
        "rgn {:?}",
        q0.imbalance_pct(Dim::Region)
    );

    let serial_counts = [
        serial.count(Dim::Vertex) as u64,
        serial.count(Dim::Edge) as u64,
        serial.count(Dim::Face) as u64,
        serial.count(Dim::Region) as u64,
    ];

    execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 2), &serial, &labels);
        assert_dist_valid(c, &dm);

        // Conservation after distribution.
        for d in Dim::ALL {
            let owned = dm.global_sum(c, |p| {
                p.mesh.iter(d).filter(|&e| p.is_owned(e)).count() as u64
            });
            assert_eq!(owned, serial_counts[d.as_usize()], "owned {d} count");
        }

        // ParMA T1-style improvement.
        let before = EntityLoads::gather(c, &dm);
        let pri: Priority = "Vtx > Rgn".parse().unwrap();
        improve(c, &mut dm, &pri, ImproveOpts::default());
        let after = EntityLoads::gather(c, &dm);
        assert_dist_valid(c, &dm);
        assert!(
            after.imbalance_pct(Dim::Vertex) <= before.imbalance_pct(Dim::Vertex) + 1e-9,
            "vertex imbalance must not grow: {:.1}% -> {:.1}%",
            before.imbalance_pct(Dim::Vertex),
            after.imbalance_pct(Dim::Vertex)
        );
        // Conservation after migration.
        for d in Dim::ALL {
            let owned = dm.global_sum(c, |p| {
                p.mesh.iter(d).filter(|&e| p.is_owned(e)).count() as u64
            });
            assert_eq!(owned, serial_counts[d.as_usize()], "post-ParMA {d}");
        }

        // Ghost a layer, tag-sync through it, then drop it.
        {
            let pid = dm.parts[0].id;
            let part = dm.part_mut(pid);
            let tid = part.mesh.tags_mut().declare("w", TagKind::Double, 1);
            for e in part.mesh.snapshot(Dim::Region) {
                part.mesh.tags_mut().set_dbl(tid, e, pid as f64);
            }
        }
        let mut ov = Overlap::from_dist(&dm).with_bridge(Dim::Vertex);
        let nghost = ov.grow(c, &mut dm, 1);
        assert!(nghost > 0);
        ov.bcast_tags(c, &mut dm, Scope::Ghosts);
        clear_overlap(&mut dm);
        for p in &dm.parts {
            assert_eq!(p.num_ghosts(), 0);
            p.mesh.assert_valid();
        }
        assert_dist_valid(c, &dm);

        // Numbering + a P1 assembly that must conserve the vertex count.
        let n = number_owned(c, &mut dm, Dim::Vertex, "gvn");
        assert_eq!(n, serial_counts[0]);
        let template = Field::new("ones", FieldShape::Linear, 1);
        let mut fields = dist_field(&dm, &template);
        for (slot, part) in dm.parts.iter().enumerate() {
            for v in part.mesh.iter(Dim::Vertex) {
                fields[slot].set_scalar(v, 1.0);
            }
        }
        let ov = Overlap::from_dist(&dm);
        fields.sync(c, &dm, &ov, Reduction::Add);
        // Sum of owned accumulated values = total copies of every vertex.
        let mut local = 0.0;
        for (slot, part) in dm.parts.iter().enumerate() {
            for v in part.mesh.iter(Dim::Vertex) {
                if part.is_owned(v) {
                    local += fields[slot].get_scalar(v).unwrap();
                }
            }
        }
        let total = c.allreduce_sum_f64(local);
        let copies = dm.global_sum(c, |p| p.mesh.count(Dim::Vertex) as u64);
        assert_eq!(total as u64, copies);
    });
}

#[test]
fn multiple_parts_per_process_equivalence() {
    // The same 8-part partition hosted on 2 ranks and on 4 ranks must give
    // identical global balance numbers (§II-C: parts per process is a
    // hosting choice, not a semantic one).
    let spec = VesselSpec::aaa();
    let serial = vessel_tet(spec, 5, 20);
    let nparts = 8;
    let labels = partition_mesh(&serial, nparts);
    let pri: Priority = "Vtx > Rgn".parse().unwrap();

    let run = |nranks: usize| -> Vec<f64> {
        let out = execute(nranks, |c| {
            let mut dm = distribute(c, PartMap::contiguous(nparts, nranks), &serial, &labels);
            improve(c, &mut dm, &pri, ImproveOpts::default());
            let loads = EntityLoads::gather(c, &dm);
            (c.rank() == 0).then(|| loads.of(Dim::Vertex).to_vec())
        });
        out.into_iter().flatten().next().unwrap()
    };
    let a = run(2);
    let b = run(4);
    assert_eq!(a, b, "per-part loads must not depend on rank hosting");
}
