//! Properties of the calibrated load predictor (§III-B).
//!
//! Two guarantees, exercised under the seeded chaos scheduler:
//!
//! 1. **Calibration never hurts.** Running the same mesh / moving-shock
//!    sequence twice — once feeding each round's prediction-vs-reality
//!    evidence back into [`Calibration::observe`], once with the factors
//!    frozen at identity — the calibrated run's prediction error must be
//!    no worse than the uncalibrated run's once evidence exists (from
//!    round 2 on).
//! 2. **Speculative rebalancing is invisible to refinement.** Balancing
//!    on the predicted weights *before* `adapt_dist` and balancing
//!    *after* it are different migration schedules, but refinement is
//!    partition-invariant (content-derived gids), so both orders must
//!    produce structurally identical meshes: equal
//!    [`pumi_io::struct_hash`]. (Coarsening is excluded: part-boundary
//!    collapse vetoes make it partition-dependent by design.)

use parma::{improve, improve_weighted, EntityLoads, ImproveOpts, Priority};
use proptest::prelude::*;
use pumi_adapt::dist::{adapt_dist, gather_branch_loads, stamp_weights, AdaptOpts};
use pumi_adapt::{prediction_error_pct, Calibration, CoarsenOpts, Sample, SizeField, WEIGHT_TAG};
use pumi_core::{distribute, PartMap};
use pumi_meshgen::tri_rect;
use pumi_partition::partition_mesh;
use pumi_pcu::execute_chaos;

// The error-trajectory property needs enough parts for the per-branch
// least-squares to be meaningfully overdetermined (8 parts, 3 unknowns —
// below `Calibration::observe`'s 2-equations-per-unknown floor the fit
// degrades to a global ratio, which cannot beat identity on a shifting
// branch mix). The order-invariance property is scale-free, so it runs
// on a cheaper world.
const N: usize = 32;
const NPARTS: usize = 8;
const NRANKS: usize = 4;
const ROUNDS: usize = 3;

const ORDER_N: usize = 16;
const ORDER_NPARTS: usize = 4;
const ORDER_NRANKS: usize = 2;

fn shock(c: f64) -> SizeField {
    SizeField::shock(move |p| p[0] + 0.4 * p[1] - c, 0.015, 0.12, 0.05)
}

/// Run the predict → balance → adapt loop and return the per-round
/// prediction errors. `calibrate` controls whether the evidence is fed
/// back; everything else is identical.
fn error_trajectory(seed: u64, c0: f64, calibrate: bool) -> Vec<f64> {
    let serial = tri_rect(N, N, 1.0, 1.0);
    let labels = partition_mesh(&serial, NPARTS);
    let elem_d = serial.elem_dim_t();
    let pri: Priority = "Face".parse().unwrap();
    let out = execute_chaos(NRANKS, seed, |c| {
        let mut dm = distribute(c, PartMap::contiguous(NPARTS, NRANKS), &serial, &labels);
        let mut cal = Calibration::new();
        let mut errors = Vec::new();
        for round in 0..ROUNDS {
            let size = shock(c0 + 0.18 * round as f64);
            stamp_weights(&mut dm, &size, &cal);
            improve_weighted(
                c,
                &mut dm,
                &pri,
                ImproveOpts::new().tol(0.05).max_iters(40),
                WEIGHT_TAG,
            );
            let branch_pred = gather_branch_loads(c, &dm);
            adapt_dist(
                c,
                &mut dm,
                &size,
                AdaptOpts::new().coarsen(CoarsenOpts::default()),
            );
            let realized = EntityLoads::gather(c, &dm).of(elem_d).to_vec();
            let samples: Vec<Sample> = branch_pred
                .iter()
                .zip(&realized)
                .map(|(&predicted, &realized)| Sample {
                    predicted,
                    realized,
                })
                .collect();
            errors.push(prediction_error_pct(&samples));
            if calibrate {
                cal.observe(&samples);
            }
        }
        (c.rank() == 0).then_some(errors)
    });
    out.into_iter().flatten().next().unwrap()
}

fn assert_calibration_never_hurts(seed: u64, c0: f64) {
    let cal = error_trajectory(seed, c0, true);
    let raw = error_trajectory(seed, c0, false);
    // Round 1 is identical by construction: no evidence yet.
    assert!(
        (cal[0] - raw[0]).abs() < 1e-9,
        "round 1 must be calibration-free: {cal:?} vs {raw:?}"
    );
    // With evidence, the calibrated run must not end worse, and its
    // average error over the evidenced rounds must be no worse either
    // (small slack: the two runs' partitions legitimately diverge after
    // round 1, so per-round values are not sample-for-sample comparable).
    let mean = |v: &[f64]| v[1..].iter().sum::<f64>() / (v.len() - 1) as f64;
    assert!(
        mean(&cal) <= mean(&raw) + 1e-9,
        "calibrated mean error worse than uncalibrated (seed {seed}, c0 {c0}): {cal:?} vs {raw:?}"
    );
    assert!(
        cal.last().unwrap() <= raw.last().unwrap(),
        "calibrated final error worse than uncalibrated (seed {seed}, c0 {c0}): {cal:?} vs {raw:?}"
    );
}

/// Adapt (refine-only) with balancing before vs after; both orders must
/// yield the same structural mesh.
fn assert_order_invisible(seed: u64, c0: f64) {
    let serial = tri_rect(ORDER_N, ORDER_N, 1.0, 1.0);
    let labels = partition_mesh(&serial, ORDER_NPARTS);
    let pri: Priority = "Face".parse().unwrap();
    let size = shock(c0);
    let part_map = || PartMap::contiguous(ORDER_NPARTS, ORDER_NRANKS);
    let speculative = execute_chaos(ORDER_NRANKS, seed, |c| {
        let mut dm = distribute(c, part_map(), &serial, &labels);
        stamp_weights(&mut dm, &size, &Calibration::new());
        improve_weighted(
            c,
            &mut dm,
            &pri,
            ImproveOpts::new().tol(0.05).max_iters(40),
            WEIGHT_TAG,
        );
        adapt_dist(c, &mut dm, &size, AdaptOpts::new());
        // struct_hash covers tag rows, so both arms restamp the weights
        // from the *adapted* mesh before hashing — the rows are purely
        // content-derived, erasing the pre-adapt stamps only this arm has.
        stamp_weights(&mut dm, &size, &Calibration::new());
        let h = pumi_io::struct_hash(c, &dm);
        (c.rank() == 0).then_some(h)
    });
    let post = execute_chaos(ORDER_NRANKS, seed, |c| {
        let mut dm = distribute(c, part_map(), &serial, &labels);
        adapt_dist(c, &mut dm, &size, AdaptOpts::new());
        improve(c, &mut dm, &pri, ImproveOpts::new().tol(0.05).max_iters(40));
        stamp_weights(&mut dm, &size, &Calibration::new());
        let h = pumi_io::struct_hash(c, &dm);
        (c.rank() == 0).then_some(h)
    });
    let s = speculative.into_iter().flatten().next().unwrap();
    let p = post.into_iter().flatten().next().unwrap();
    assert_eq!(
        s, p,
        "speculative vs post-adapt balancing changed the refined mesh (seed {seed}, c0 {c0})"
    );
}

/// Fixed regression anchors at the two CI chaos seeds.
#[test]
fn calibration_never_hurts_chaos_seed_1() {
    assert_calibration_never_hurts(1, 0.25);
}

#[test]
fn calibration_never_hurts_chaos_seed_7() {
    assert_calibration_never_hurts(7, 0.25);
}

#[test]
fn balance_order_invisible_chaos_seed_1() {
    assert_order_invisible(1, 0.4);
}

#[test]
fn balance_order_invisible_chaos_seed_7() {
    assert_order_invisible(7, 0.4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Both properties hold wherever the shock sequence starts.
    #[test]
    fn calibrated_predict_any_shock_start(c0 in 0.15f64..0.45) {
        assert_calibration_never_hurts(1, c0);
        assert_order_invisible(7, c0 + 0.1);
    }
}
