//! The typed invariant checker passes after every mutating collective in
//! the stack: distribute, migrate, grow_overlap, parma improve, and a
//! checkpoint restore. `pumi-check`'s own tests prove the checker *detects*
//! corruption; this suite proves the operations *preserve* the invariants.

use parma::{improve, ImproveOpts, Priority};
use pumi_repro::check::{check_dist, CheckOpts};
use pumi_repro::core::overlap::{grow_overlap, GhostOpts};
use pumi_repro::core::{distribute, migrate, DistMesh, MigrationPlan, PartMap};
use pumi_repro::io::{read_checkpoint_with, write_checkpoint, ReadOpts};
use pumi_repro::meshgen::tri_rect;
use pumi_repro::pcu::{execute, Comm};
use pumi_repro::util::{Dim, FxHashMap, PartId};

fn strip_mesh(c: &Comm, nx: usize, split: f64) -> DistMesh {
    let serial = tri_rect(nx, 4, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let mut elem_part = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        elem_part[e.idx()] = if serial.centroid(e)[0] < split { 0 } else { 1 };
    }
    distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
}

#[test]
fn invariants_hold_through_migrate_and_ghosting() {
    execute(2, |c| {
        let mut dm = strip_mesh(c, 6, 0.5);
        check_dist(c, &dm, CheckOpts::all()).expect("post-distribute");

        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        if c.rank() == 0 {
            let part = dm.part(0);
            let mut plan = MigrationPlan::new();
            for e in part.mesh.elems() {
                let x = part.mesh.centroid(e);
                if x[0] + x[1] > 0.8 {
                    plan.send(e, 1);
                }
            }
            plans.insert(0, plan);
        }
        migrate(c, &mut dm, &plans);
        check_dist(c, &dm, CheckOpts::all()).expect("post-migrate");

        grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Vertex).layers(1));
        check_dist(c, &dm, CheckOpts::all()).expect("post-ghost");
    });
}

#[test]
fn invariants_hold_through_improve() {
    execute(2, |c| {
        // 70/30 skew so diffusion actually migrates.
        let mut dm = strip_mesh(c, 10, 0.7);
        let pr: Priority = "Face".parse().unwrap();
        // check_dist runs inside every improve iteration (panics on the
        // first violation), and once more on the converged mesh.
        let opts = ImproveOpts::default().check(CheckOpts::all());
        let report = improve(c, &mut dm, &pr, opts);
        assert!(report.elements_moved > 0, "no migration exercised");
        check_dist(c, &dm, CheckOpts::all()).expect("post-improve");
    });
}

#[test]
fn invariants_hold_through_checkpoint_restore() {
    let dir = std::env::temp_dir().join(format!("pumi_invariants_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    execute(2, |c| {
        let dm = strip_mesh(c, 6, 0.5);
        write_checkpoint(c, &dm, &[], &dir).expect("write");
        let opts = ReadOpts {
            verify: true,
            check: true, // restore runs check_dist itself
        };
        let restored = read_checkpoint_with(c, &dir, opts).expect("restore");
        check_dist(c, &restored.dm, CheckOpts::all()).expect("post-restore");
    });
    let _ = std::fs::remove_dir_all(&dir);
}
