//! The distributed stack is topology-agnostic: quad and hex meshes go
//! through distribution, migration, ghosting, and balancing the same way
//! simplices do (§II's "general unstructured mesh representation").

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_core::overlap::{clear_overlap, grow_overlap, GhostOpts};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, migrate, MigrationPlan, PartMap};
use pumi_meshgen::{hex_box, quad_rect};
use pumi_pcu::execute;
use pumi_util::{Dim, FxHashMap, PartId};

#[test]
fn hex_mesh_distributes_migrates_and_ghosts() {
    let serial = hex_box(4, 4, 4, 1.0, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        labels[e.idx()] = if serial.centroid(e)[2] < 0.5 { 0 } else { 1 };
    }
    let nregions = serial.count(Dim::Region) as u64;

    execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
        assert_dist_valid(c, &dm);

        // Migrate a layer of hexes across.
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        if c.rank() == 0 {
            let part = dm.part(0);
            let mut plan = MigrationPlan::new();
            for e in part.mesh.elems() {
                if part.mesh.centroid(e)[2] > 0.3 {
                    plan.send(e, 1);
                }
            }
            plans.insert(0, plan);
        }
        let stats = migrate(c, &mut dm, &plans);
        assert!(stats.elements_moved > 0);
        assert_dist_valid(c, &dm);
        let total = dm.global_sum(c, |p| p.mesh.num_elems() as u64);
        assert_eq!(total, nregions);

        // Ghost a layer of hexes through face bridges.
        let ov = grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Face).layers(1));
        assert!(ov.depth() == 1);
        assert!(dm.global_sum(c, |p| p.num_ghosts() as u64) > 0);
        clear_overlap(&mut dm);
        assert_dist_valid(c, &dm);
    });
}

#[test]
fn quad_mesh_parma_balances() {
    let serial = quad_rect(12, 12, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let mut labels = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        // Skewed 2-part split.
        labels[e.idx()] = if serial.centroid(e)[0] < 0.7 { 0 } else { 1 };
    }
    execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
        let before = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
        assert!(before > 20.0, "setup not skewed: {before}%");
        let pri: Priority = "Face".parse().unwrap();
        improve(c, &mut dm, &pri, ImproveOpts::default());
        let after = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
        assert!(after <= 6.0, "quad balance failed: {before}% -> {after}%");
        assert_dist_valid(c, &dm);
    });
}
