//! Depth-k halo property: a nodal Add-assembly synced through a depth-k
//! star-forest overlap on chaos-scheduled ranks is *bitwise* identical to
//! the same assembly on one part — for every copy, including every ghost.
//!
//! Element weights are small exact integers, so floating-point Add is
//! associative here and any summation order must reproduce the serial
//! answer to the last bit; a wrong share link, a missed leaf, or a
//! double-counted ghost contribution all shift the integer totals. The
//! structural hash (owned, non-ghost entities) pins the mesh itself to the
//! 1-part reference, and the typed checker verifies overlap closure and
//! share symmetry after every growth.

use std::collections::BTreeMap;

use pumi_repro::check::{check_dist, check_overlap, CheckOpts};
use pumi_repro::core::overlap::{Overlap, Reduction};
use pumi_repro::core::{distribute, DistMesh, PartMap};
use pumi_repro::field::{dist_field, Field, FieldShape, FieldSync};
use pumi_repro::io::struct_hash;
use pumi_repro::meshgen::tri_rect;
use pumi_repro::partition::partition_mesh;
use pumi_repro::pcu::{execute, execute_chaos, Comm};
use pumi_repro::util::{Dim, GlobalId, MeshEnt};

fn mesh() -> pumi_repro::mesh::Mesh {
    tri_rect(10, 8, 1.0, 1.0)
}

/// Exactly-representable integer element weight, derived from the
/// partition-invariant element gid.
fn weight(gid: GlobalId) -> f64 {
    (gid % 7 + 1) as f64
}

/// Assemble element weights onto closure vertices: every non-ghost element
/// contributes `weight(elem_gid)` to each of its vertices.
fn assemble(dm: &DistMesh, fields: &mut [Field]) {
    for (slot, part) in dm.parts.iter().enumerate() {
        fields[slot].fill(&part.mesh, &[0.0]);
        for e in part.mesh.elems() {
            if part.is_ghost(e) {
                continue;
            }
            let w = weight(part.gid_of(e));
            for &v in part.mesh.verts_of(e) {
                let v = MeshEnt::vertex(v);
                let m = fields[slot].get_scalar(v).unwrap_or(0.0);
                fields[slot].set_scalar(v, m + w);
            }
        }
    }
}

/// The 1-part reference: structural hash plus the assembled nodal values
/// keyed by vertex gid (as bits — the comparison is bitwise).
fn serial_reference(serial: &pumi_repro::mesh::Mesh) -> (u64, BTreeMap<GlobalId, u64>) {
    let labels = vec![0u32; serial.index_space(serial.elem_dim_t())];
    let out = execute(1, |c| {
        let dm = distribute(c, PartMap::contiguous(1, 1), serial, &labels);
        let template = Field::new("mass", FieldShape::Linear, 1);
        let mut fields = dist_field(&dm, &template);
        assemble(&dm, &mut fields);
        let part = &dm.parts[0];
        let mut vals = BTreeMap::new();
        for v in part.mesh.iter(Dim::Vertex) {
            let x = fields[0].get_scalar(v).expect("assembled vertex");
            vals.insert(part.gid_of(v), x.to_bits());
        }
        (struct_hash(c, &dm), vals)
    });
    out.into_iter().next().unwrap()
}

/// Grow a depth-k overlap on 4 chaos-scheduled ranks, assemble, sync(Add),
/// and compare every copy — boundary and ghost — against the reference.
fn halo_matches_serial(
    c: &Comm,
    serial: &pumi_repro::mesh::Mesh,
    depth: usize,
    want: &(u64, BTreeMap<GlobalId, u64>),
) {
    let labels = partition_mesh(serial, 4);
    let mut dm = distribute(c, PartMap::contiguous(4, 4), serial, &labels);
    let mut ov = Overlap::from_dist(&dm);
    ov.grow(c, &mut dm, depth);
    assert_eq!(ov.depth(), depth);
    check_dist(c, &dm, CheckOpts::all()).expect("post-grow invariants");
    check_overlap(c, &dm, &ov).expect("post-grow share symmetry");
    assert_eq!(
        struct_hash(c, &dm),
        want.0,
        "depth {depth}: structural hash drifted from 1-part reference"
    );

    let template = Field::new("mass", FieldShape::Linear, 1);
    let mut fields = dist_field(&dm, &template);
    assemble(&dm, &mut fields);
    fields.sync(c, &dm, &ov, Reduction::Add);

    for (slot, part) in dm.parts.iter().enumerate() {
        for v in part.mesh.iter(Dim::Vertex) {
            let gid = part.gid_of(v);
            let got = fields[slot].get_scalar(v).expect("synced vertex").to_bits();
            let wanted = *want.1.get(&gid).expect("vertex gid in reference");
            assert_eq!(
                got,
                wanted,
                "depth {depth}: part {} vertex gid {gid} (ghost: {}) is {} want {}",
                part.id,
                part.is_ghost(v),
                f64::from_bits(got),
                f64::from_bits(wanted)
            );
        }
    }
}

#[test]
fn depth_k_halo_assembly_is_bitwise_serial() {
    let serial = mesh();
    let want = serial_reference(&serial);
    for seed in [1u64, 7u64] {
        for depth in [1usize, 2, 3] {
            execute_chaos(4, seed, |c| {
                halo_matches_serial(c, &serial, depth, &want);
            });
        }
    }
}
