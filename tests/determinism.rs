//! Determinism under the chaos scheduler: the same program run under the
//! deterministic scheduler and under `chaos:<seed>` for two different seeds
//! must produce bit-identical meshes (`struct_hash`), bit-identical field
//! values, and identical phase-level traffic and frame-digest rows — frame
//! *arrival order* is the only thing chaos is allowed to change.

use parma::{improve, ImproveOpts, Priority};
use pumi_repro::check::{check_dist, CheckOpts};
use pumi_repro::core::overlap::{grow_overlap, GhostOpts, Overlap, Reduction};
use pumi_repro::core::{distribute, migrate, DistMesh, MigrationPlan, PartMap};
use pumi_repro::field::{dist_field, Field, FieldShape, FieldSync};
use pumi_repro::io::{read_checkpoint_with, struct_hash, write_checkpoint, ReadOpts};
use pumi_repro::meshgen::tri_rect;
use pumi_repro::obs::metrics::{take_digests, take_traffic};
use pumi_repro::partition::partition_mesh;
use pumi_repro::pcu::{
    execute, execute_chaos, execute_opts, Comm, MachineModel, SchedMode, WorldOpts,
};
use pumi_repro::util::{Dim, FxHashMap, GlobalId, PartId};

/// Everything one rank observed: stage hashes, gid-keyed field bits, and
/// the drained (sorted) obs rows.
#[derive(Debug, PartialEq)]
struct RankTrace {
    hashes: Vec<u64>,
    field_bits: Vec<(GlobalId, Vec<u64>)>,
    traffic: Vec<(String, String, u64, u64)>,
    digests: Vec<(String, String, u64, u64)>,
}

fn field_bits(dm: &DistMesh, fields: &[Field], out: &mut Vec<(GlobalId, Vec<u64>)>) {
    for (slot, part) in dm.parts.iter().enumerate() {
        for v in part.mesh.iter(Dim::Vertex) {
            let bits = fields[slot]
                .get(v)
                .map(|vals| vals.iter().map(|x| x.to_bits()).collect())
                .unwrap_or_default();
            out.push((part.gid_of(v), bits));
        }
    }
    out.sort();
}

/// The full scenario: migrate + ghost + field sync/accumulate, a ParMA
/// improve run, and an N→M checkpoint roundtrip. `label` only picks the
/// scratch directory; it must not influence any exchanged bytes.
fn scenario(c: &Comm, label: &str) -> RankTrace {
    let mut hashes = Vec::new();
    let mut bits = Vec::new();

    // Stage 1: migrate across a diagonal, then ghost one layer.
    let serial = tri_rect(8, 6, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let mut elem_part = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
    }
    let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
    let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
    if c.rank() == 0 {
        let part = dm.part(0);
        let mut plan = MigrationPlan::new();
        for e in part.mesh.elems() {
            let x = part.mesh.centroid(e);
            if x[0] + x[1] > 0.9 {
                plan.send(e, 1);
            }
        }
        plans.insert(0, plan);
    }
    migrate(c, &mut dm, &plans);
    grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Vertex).layers(1));
    check_dist(c, &dm, CheckOpts::all()).expect("stage 1 invariants");
    hashes.push(struct_hash(c, &dm));

    // Stage 2: accumulate (FP sums over copies) then owner→copy sync.
    let template = Field::new("u", FieldShape::Linear, 2);
    let mut fields = dist_field(&dm, &template);
    for (slot, part) in dm.parts.iter().enumerate() {
        for v in part.mesh.iter(Dim::Vertex) {
            let g = part.gid_of(v) as f64;
            fields[slot].set(v, &[1.0 + g * 0.25, g * 0.5]);
        }
    }
    let ov = Overlap::from_dist(&dm);
    fields.sync(c, &dm, &ov, Reduction::Add);
    fields.sync(c, &dm, &ov, Reduction::Insert);
    field_bits(&dm, &fields, &mut bits);

    // Stage 3: ParMA diffusion on a skewed strip, invariants checked every
    // iteration.
    let serial = tri_rect(10, 4, 10.0, 4.0);
    let mut elem_part = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        elem_part[e.idx()] = if serial.centroid(e)[0] < 7.0 { 0 } else { 1 };
    }
    let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
    let pr: Priority = "Face".parse().unwrap();
    improve(
        c,
        &mut dm,
        &pr,
        ImproveOpts::default().check(CheckOpts::all()),
    );
    hashes.push(struct_hash(c, &dm));

    // Stage 4: write a 4-part checkpoint from 2 ranks (with a field) and
    // restore it onto 2 ranks: the N→M merge runs through migration.
    let serial = tri_rect(8, 6, 1.0, 1.0);
    let labels = partition_mesh(&serial, 4);
    let dm = distribute(c, PartMap::contiguous(4, 2), &serial, &labels);
    let scalar = Field::new("p", FieldShape::Linear, 1);
    let mut fields = dist_field(&dm, &scalar);
    for (slot, part) in dm.parts.iter().enumerate() {
        for v in part.mesh.iter(Dim::Vertex) {
            fields[slot].set_scalar(v, part.gid_of(v) as f64 * 0.125);
        }
    }
    let dir = std::env::temp_dir().join(format!("pumi_determinism_{}_{label}", std::process::id()));
    write_checkpoint(c, &dm, &[&fields], &dir).expect("write");
    let opts = ReadOpts {
        verify: true,
        check: true,
    };
    let restored = read_checkpoint_with(c, &dir, opts).expect("restore");
    if c.rank() == 0 {
        let _ = std::fs::remove_dir_all(&dir);
    }
    hashes.push(struct_hash(c, &restored.dm));
    field_bits(&restored.dm, &restored.fields[0], &mut bits);

    // Drain this rank's obs rows. Row order off the registry is arbitrary;
    // sort so traces compare structurally.
    let mut traffic: Vec<(String, String, u64, u64)> = take_traffic()
        .into_iter()
        .map(|r| (r.phase, r.link.name().into(), r.totals.msgs, r.totals.bytes))
        .collect();
    traffic.sort();
    let mut digests: Vec<(String, String, u64, u64)> = take_digests()
        .into_iter()
        .map(|r| (r.phase, r.link.name().into(), r.frames, r.digest))
        .collect();
    digests.sort();

    RankTrace {
        hashes,
        field_bits: bits,
        traffic,
        digests,
    }
}

#[test]
fn identical_results_across_chaos_seeds() {
    let plain = execute(2, |c| scenario(c, "plain"));
    let seed1 = execute_chaos(2, 1, |c| scenario(c, "chaos1"));
    let seed7 = execute_chaos(2, 7, |c| scenario(c, "chaos7"));

    for rank in 0..2 {
        assert_eq!(
            plain[rank], seed1[rank],
            "rank {rank}: chaos:1 diverged from deterministic run"
        );
        assert_eq!(
            plain[rank], seed7[rank],
            "rank {rank}: chaos:7 diverged from deterministic run"
        );
    }
    // Sanity: the trace actually observed cross-part communication. With
    // obs compiled out the traffic/digest sinks are no-ops and the rows are
    // (identically) empty.
    if cfg!(feature = "obs") {
        assert!(!plain[0].digests.is_empty(), "no frame digests recorded");
    }
    assert!(plain[0].hashes.iter().all(|&h| h != 0));
}

/// The multiplexed executor (fewer worker permits than ranks — the
/// `PUMI_PCU_WORKERS < nranks` path) must be completely invisible to
/// results: identical stage hashes, field bits, traffic rows, and frame
/// digests as the one-thread-per-rank executor, under the deterministic
/// scheduler and under chaos seeds 1 and 7.
#[test]
fn multiplexed_executor_is_invisible_to_determinism() {
    let machine = MachineModel::flat(2);
    let plain = execute(2, |c| scenario(c, "plain_mux_ref"));
    let mux = execute_opts(machine, WorldOpts::default().workers(1), |c| {
        scenario(c, "mux_det")
    });
    for rank in 0..2 {
        assert_eq!(
            plain[rank], mux[rank],
            "rank {rank}: multiplexed executor diverged from per-thread run"
        );
    }
    for seed in [1u64, 7] {
        let threaded = execute_chaos(2, seed, |c| scenario(c, &format!("mux_ref_{seed}")));
        let mux = execute_opts(
            machine,
            WorldOpts::default()
                .workers(1)
                .sched(SchedMode::Chaos(seed)),
            |c| scenario(c, &format!("mux_chaos_{seed}")),
        );
        for rank in 0..2 {
            assert_eq!(
                threaded[rank], mux[rank],
                "rank {rank}: multiplexed chaos:{seed} diverged from per-thread chaos:{seed}"
            );
        }
    }
}
