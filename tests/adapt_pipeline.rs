//! Adaptation-driven integration tests: the Fig 13 scenario (frozen
//! partition through refinement), predictive balancing, heavy part
//! splitting, and field transfer across an adapted mesh.

use parma::{heavy_part_split, EntityLoads, SplitOpts};
use pumi_adapt::{predicted_loads, refine, RefineOpts, SizeField};
use pumi_core::verify::assert_dist_valid;
use pumi_core::{distribute, PartMap};
use pumi_field::{transfer_linear, Field, FieldShape};
use pumi_meshgen::{tri_rect, wing_tet};
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_util::stats::imbalance;
use pumi_util::tag::TagKind;
use pumi_util::{Dim, PartId};

/// Shock refinement with the partition frozen (tag inheritance) must
/// produce the Fig 13 spike, and the spike must match the a-priori
/// predictive estimate.
#[test]
fn frozen_partition_spikes_and_prediction_agrees() {
    let mut mesh = wing_tet(8, 6, 4);
    let nparts = 8;
    let labels = partition_mesh(&mesh, nparts);
    let tid = mesh.tags_mut().declare("part", TagKind::Int, 1);
    for e in mesh.snapshot(mesh.elem_dim_t()) {
        mesh.tags_mut().set_int(tid, e, labels[e.idx()] as i64);
    }
    let size = SizeField::shock(pumi_meshgen::shock_plane_distance, 0.03, 0.3, 0.03);
    let predicted = predicted_loads(&mesh, &labels, nparts, &size);

    refine(&mut mesh, &size, None, RefineOpts::default());
    mesh.assert_valid();
    let mut actual = vec![0f64; nparts];
    for e in mesh.elems() {
        actual[mesh.tags().get_int(tid, e).unwrap() as usize] += 1.0;
    }
    let actual_imb = imbalance(&actual);
    assert!(actual_imb > 1.3, "no adaptation spike: {actual:?}");
    // The predictive estimate identifies the same peak part.
    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    assert_eq!(
        argmax(&predicted),
        argmax(&actual),
        "prediction should find the shock part: {predicted:?} vs {actual:?}"
    );
}

/// The adapted, spiked partition is repaired by heavy part splitting.
#[test]
fn heavy_split_repairs_adapted_partition() {
    let mut mesh = wing_tet(8, 6, 4);
    let nparts = 8;
    let labels0 = partition_mesh(&mesh, nparts);
    let tid = mesh.tags_mut().declare("part", TagKind::Int, 1);
    for e in mesh.snapshot(mesh.elem_dim_t()) {
        mesh.tags_mut().set_int(tid, e, labels0[e.idx()] as i64);
    }
    let size = SizeField::shock(pumi_meshgen::shock_plane_distance, 0.035, 0.3, 0.03);
    refine(&mut mesh, &size, None, RefineOpts::default());
    let d = mesh.elem_dim_t();
    let mut labels = vec![0 as PartId; mesh.index_space(d)];
    for e in mesh.iter(d) {
        labels[e.idx()] = mesh.tags().get_int(tid, e).unwrap() as PartId;
    }

    execute(2, |c| {
        let mut dm = distribute(c, PartMap::contiguous(nparts, 2), &mesh, &labels);
        let before = EntityLoads::gather(c, &dm).imbalance_pct(d);
        let report = heavy_part_split(c, &mut dm, SplitOpts::default());
        assert_dist_valid(c, &dm);
        let after = EntityLoads::gather(c, &dm).imbalance_pct(d);
        assert!(before > 30.0, "setup spike too small: {before:.1}%");
        assert!(
            after < before / 2.0,
            "split ineffective: {before:.1}% -> {after:.1}% ({report:?})"
        );
    });
}

/// Refinement + transfer: a linear field survives adaptation exactly; a
/// curved field's transfer error shrinks as the target mesh refines.
#[test]
fn transfer_across_adaptation() {
    let coarse = tri_rect(6, 6, 1.0, 1.0);
    let mut f_lin = Field::new("u", FieldShape::Linear, 1);
    f_lin.set_from(&coarse, |p| vec![3.0 * p[0] - p[1] + 0.5]);

    let mut fine = tri_rect(6, 6, 1.0, 1.0);
    refine(
        &mut fine,
        &SizeField::uniform(0.07),
        None,
        RefineOpts::default(),
    );
    let g = transfer_linear(&coarse, &f_lin, &fine);
    for v in fine.iter(Dim::Vertex) {
        let p = fine.coords(v);
        let want = 3.0 * p[0] - p[1] + 0.5;
        assert!((g.get_scalar(v).unwrap() - want).abs() < 1e-9);
    }

    // Curved field: error on the refined target is bounded by the *source*
    // resolution, and re-transferring back and forth stays bounded.
    let mut f_cur = Field::new("w", FieldShape::Linear, 1);
    f_cur.set_from(&coarse, |p| vec![(6.0 * p[0]).sin() * (4.0 * p[1]).cos()]);
    let h = transfer_linear(&coarse, &f_cur, &fine);
    let mut max_err = 0f64;
    for v in fine.iter(Dim::Vertex) {
        let p = fine.coords(v);
        let want = (6.0 * p[0]).sin() * (4.0 * p[1]).cos();
        max_err = max_err.max((h.get_scalar(v).unwrap() - want).abs());
    }
    assert!(max_err < 0.2, "interpolation error too large: {max_err}");
}

/// Boundary snapping during refinement keeps the vessel wall round — and
/// classification-aware coarsening never deletes the rims.
#[test]
fn adapt_respects_geometry() {
    use pumi_geom::builders::{vessel, VesselSpec};
    let spec = VesselSpec::aaa();
    let model = vessel(spec);
    let mut mesh = pumi_meshgen::vessel_tet(spec, 4, 10);
    refine(
        &mut mesh,
        &SizeField::uniform(0.45),
        Some(&model),
        RefineOpts::default(),
    );
    mesh.assert_valid();
    let wall = pumi_geom::GeomEnt::new(Dim::Face, 1);
    for v in mesh.iter_classified(Dim::Vertex, wall) {
        let p = mesh.coords(v);
        let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
        assert!(
            (r - spec.radius_at(p[2])).abs() < 1e-6,
            "wall vertex off the surface"
        );
    }
    pumi_adapt::coarsen(
        &mut mesh,
        &SizeField::uniform(1.2),
        pumi_adapt::CoarsenOpts::default(),
    );
    mesh.assert_valid();
    // The rims are 1D model entities; their mesh vertices may only coarsen
    // along the rim, never off it.
    for rim in [1u32, 2] {
        let g = pumi_geom::GeomEnt::new(Dim::Edge, rim);
        assert!(
            mesh.iter_classified(Dim::Vertex, g).count() >= 3,
            "rim {rim} lost its vertices"
        );
    }
}
