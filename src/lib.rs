//! Umbrella crate for the PUMI/ParMA reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use pumi_repro::prelude::*`. See `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for the paper-reproduction map.

pub use parma;
pub use pumi_adapt as adapt;
pub use pumi_check as check;
pub use pumi_core as core;
pub use pumi_field as field;
pub use pumi_geom as geom;
pub use pumi_io as io;
pub use pumi_mesh as mesh;
pub use pumi_meshgen as meshgen;
pub use pumi_obs as obs;
pub use pumi_partition as partition;
pub use pumi_pcu as pcu;
pub use pumi_serve as serve;
pub use pumi_util as util;

/// Commonly used items across the whole stack.
pub mod prelude {
    pub use pumi_util::{Dim, MeshEnt, PartId};
}
