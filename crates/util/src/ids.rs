//! Entity handles and identifier types.
//!
//! A mesh entity is "uniquely identified by its handle and denoted by
//! `M^d_i` where `d` is dimension (0 ≤ d ≤ 3) and `i` is an id" (§II).
//! [`MeshEnt`] packs both into a single `u32`: the top 2 bits hold the
//! dimension, the low 30 bits the per-dimension index. Handles are local to a
//! part; cross-part identity uses 64-bit [`GlobalId`]s.

use std::fmt;

/// Topological dimension of a mesh or model entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Dim {
    /// 0-dimensional entity (vertex).
    Vertex = 0,
    /// 1-dimensional entity (edge).
    Edge = 1,
    /// 2-dimensional entity (face).
    Face = 2,
    /// 3-dimensional entity (region).
    Region = 3,
}

impl Dim {
    /// All four dimensions in increasing order.
    pub const ALL: [Dim; 4] = [Dim::Vertex, Dim::Edge, Dim::Face, Dim::Region];

    /// Convert a `usize` in `0..=3` to a `Dim`.
    ///
    /// # Panics
    /// Panics if `d > 3`.
    #[inline]
    pub fn from_usize(d: usize) -> Dim {
        match d {
            0 => Dim::Vertex,
            1 => Dim::Edge,
            2 => Dim::Face,
            3 => Dim::Region,
            _ => panic!("invalid dimension {d}"),
        }
    }

    /// Convert a decoded byte to a `Dim`, rejecting unknown codes.
    ///
    /// Deserialization layers use this instead of [`Dim::from_usize`] so a
    /// corrupt frame surfaces as a typed error instead of a panic.
    #[inline]
    pub fn try_from_u8(d: u8) -> Option<Dim> {
        match d {
            0 => Some(Dim::Vertex),
            1 => Some(Dim::Edge),
            2 => Some(Dim::Face),
            3 => Some(Dim::Region),
            _ => None,
        }
    }

    /// The dimension as a `usize` index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self as usize
    }

    /// The next dimension up, if any.
    #[inline]
    pub fn up(self) -> Option<Dim> {
        match self {
            Dim::Vertex => Some(Dim::Edge),
            Dim::Edge => Some(Dim::Face),
            Dim::Face => Some(Dim::Region),
            Dim::Region => None,
        }
    }

    /// The next dimension down, if any.
    #[inline]
    pub fn down(self) -> Option<Dim> {
        match self {
            Dim::Vertex => None,
            Dim::Edge => Some(Dim::Vertex),
            Dim::Face => Some(Dim::Edge),
            Dim::Region => Some(Dim::Face),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::Vertex => "vtx",
            Dim::Edge => "edge",
            Dim::Face => "face",
            Dim::Region => "rgn",
        };
        f.write_str(s)
    }
}

/// A part identifier. Parts are numbered `0..N` across the whole partition
/// (§II-A: "a part ... uniquely identified by its handle or id, denoted by
/// `P_i`, 0 ≤ i < N").
pub type PartId = u32;

/// A globally unique entity identifier, stable across migration.
///
/// Layout: `part-of-birth (24 bits) << 40 | per-part counter (40 bits)`.
/// Global ids are assigned once when an entity is first created and travel
/// with the entity; they are the key used to match part-boundary copies.
pub type GlobalId = u64;

/// Compose a [`GlobalId`] from the creating part and a local counter.
#[inline]
pub fn make_global_id(part: PartId, counter: u64) -> GlobalId {
    debug_assert!(counter < (1 << 40), "global id counter overflow");
    ((part as u64) << 40) | counter
}

/// The part that originally created a [`GlobalId`].
#[inline]
pub fn global_id_birth_part(gid: GlobalId) -> PartId {
    (gid >> 40) as PartId
}

const DIM_SHIFT: u32 = 30;
const IDX_MASK: u32 = (1 << DIM_SHIFT) - 1;

/// Sentinel "no entity" handle (dimension bits set to vertex, max index).
pub const INVALID_ENT: MeshEnt = MeshEnt(u32::MAX);

/// A packed handle to a mesh entity: 2 bits of dimension, 30 bits of index.
///
/// `MeshEnt` is `Copy`, 4 bytes, and hashable in one multiply with the
/// in-repo Fx hasher, which keeps adjacency structures compact and queries
/// cache-friendly (the paper's O(1)-adjacency completeness requirement makes
/// handle arithmetic the hot path of every algorithm).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeshEnt(pub u32);

impl MeshEnt {
    /// Create a handle from a dimension and per-dimension index.
    #[inline]
    pub fn new(dim: Dim, index: u32) -> MeshEnt {
        debug_assert!(index < IDX_MASK, "entity index overflow: {index}");
        MeshEnt(((dim as u32) << DIM_SHIFT) | index)
    }

    /// Create a vertex handle.
    #[inline]
    pub fn vertex(index: u32) -> MeshEnt {
        MeshEnt::new(Dim::Vertex, index)
    }

    /// Create an edge handle.
    #[inline]
    pub fn edge(index: u32) -> MeshEnt {
        MeshEnt::new(Dim::Edge, index)
    }

    /// Create a face handle.
    #[inline]
    pub fn face(index: u32) -> MeshEnt {
        MeshEnt::new(Dim::Face, index)
    }

    /// Create a region handle.
    #[inline]
    pub fn region(index: u32) -> MeshEnt {
        MeshEnt::new(Dim::Region, index)
    }

    /// The entity's topological dimension.
    #[inline]
    pub fn dim(self) -> Dim {
        Dim::from_usize((self.0 >> DIM_SHIFT) as usize)
    }

    /// The entity's per-dimension index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0 & IDX_MASK
    }

    /// The index as `usize`, for direct storage access.
    #[inline]
    pub fn idx(self) -> usize {
        self.index() as usize
    }

    /// Whether this is the invalid sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != INVALID_ENT
    }
}

impl fmt::Debug for MeshEnt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_valid() {
            return f.write_str("M<invalid>");
        }
        write!(f, "M{}_{}", self.dim().as_usize(), self.index())
    }
}

impl fmt::Display for MeshEnt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (d, i) in [
            (Dim::Vertex, 0u32),
            (Dim::Edge, 1),
            (Dim::Face, 1234567),
            (Dim::Region, IDX_MASK - 1),
        ] {
            let e = MeshEnt::new(d, i);
            assert_eq!(e.dim(), d);
            assert_eq!(e.index(), i);
            assert!(e.is_valid());
        }
    }

    #[test]
    fn invalid_sentinel_is_invalid() {
        assert!(!INVALID_ENT.is_valid());
        // A real region with a large (but legal) index is not the sentinel.
        assert!(MeshEnt::region(IDX_MASK - 1).is_valid());
    }

    #[test]
    fn dim_up_down() {
        assert_eq!(Dim::Vertex.up(), Some(Dim::Edge));
        assert_eq!(Dim::Region.up(), None);
        assert_eq!(Dim::Region.down(), Some(Dim::Face));
        assert_eq!(Dim::Vertex.down(), None);
        for d in Dim::ALL {
            assert_eq!(Dim::from_usize(d.as_usize()), d);
            assert_eq!(Dim::try_from_u8(d.as_usize() as u8), Some(d));
        }
        assert_eq!(Dim::try_from_u8(4), None);
        assert_eq!(Dim::try_from_u8(0xFF), None);
    }

    #[test]
    fn global_id_parts() {
        let gid = make_global_id(37, 991);
        assert_eq!(global_id_birth_part(gid), 37);
        assert_eq!(gid & ((1 << 40) - 1), 991);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", MeshEnt::face(4)), "M2_4");
        assert_eq!(format!("{}", Dim::Region), "rgn");
        assert_eq!(format!("{:?}", INVALID_ENT), "M<invalid>");
    }

    #[test]
    fn ordering_groups_by_dimension() {
        // Handles sort by dimension first, then index — iteration orders in
        // sets rely on this.
        assert!(MeshEnt::vertex(999) < MeshEnt::edge(0));
        assert!(MeshEnt::edge(5) < MeshEnt::edge(6));
        assert!(MeshEnt::face(0) < MeshEnt::region(0));
    }
}
