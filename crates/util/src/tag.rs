//! The **Tag** component: "attaching arbitrary user data to arbitrary data or
//! set with common tagging requirements" (§II, refs 11–13 — the
//! ITAPS/MOAB tagging conventions).
//!
//! Tags are declared once on a [`TagManager`] (name, kind, length) yielding a
//! [`TagId`]; values are then attached per entity. Tag data migrates with
//! entities and is carried by ghost copies, so values must serialize — the
//! supported kinds mirror MOAB's: integers, doubles, and opaque bytes, scalar
//! or fixed-length array.

use crate::fxhash::FxHashMap;
use crate::ids::MeshEnt;

/// The value kind a tag stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagKind {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Double,
    /// Raw bytes (opaque user data).
    Bytes,
}

/// A single attached tag value.
#[derive(Debug, Clone, PartialEq)]
pub enum TagData {
    /// Integer array value (length = tag's declared `len`).
    Ints(Vec<i64>),
    /// Double array value (length = tag's declared `len`).
    Dbls(Vec<f64>),
    /// Opaque byte value (any length).
    Bytes(Vec<u8>),
}

impl TagData {
    /// The kind of this value.
    pub fn kind(&self) -> TagKind {
        match self {
            TagData::Ints(_) => TagKind::Int,
            TagData::Dbls(_) => TagKind::Double,
            TagData::Bytes(_) => TagKind::Bytes,
        }
    }

    /// Serialize to bytes for migration/ghost messages.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TagData::Ints(v) => {
                out.push(0);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            TagData::Dbls(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            TagData::Bytes(v) => {
                out.push(2);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
        }
    }

    /// Deserialize from bytes, advancing `pos`. Returns `None` on malformed
    /// input (only possible if a message was corrupted or mis-framed).
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<TagData> {
        let kind = *buf.get(*pos)?;
        *pos += 1;
        let n = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
        *pos += 4;
        match kind {
            0 => {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(i64::from_le_bytes(
                        buf.get(*pos..*pos + 8)?.try_into().ok()?,
                    ));
                    *pos += 8;
                }
                Some(TagData::Ints(v))
            }
            1 => {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(f64::from_le_bytes(
                        buf.get(*pos..*pos + 8)?.try_into().ok()?,
                    ));
                    *pos += 8;
                }
                Some(TagData::Dbls(v))
            }
            2 => {
                let v = buf.get(*pos..*pos + n)?.to_vec();
                *pos += n;
                Some(TagData::Bytes(v))
            }
            _ => None,
        }
    }
}

/// Handle to a declared tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TagId(pub u32);

#[derive(Debug, Clone)]
struct TagDecl {
    name: String,
    kind: TagKind,
    len: usize,
}

/// Declares tags and stores per-entity values.
///
/// One manager exists per mesh part. Storage is a sparse map per tag:
/// most tags touch a subset of entities (e.g. a size field only on vertices).
#[derive(Debug, Default)]
pub struct TagManager {
    decls: Vec<TagDecl>,
    by_name: FxHashMap<String, TagId>,
    /// values[tag.0][entity] -> data
    values: Vec<FxHashMap<MeshEnt, TagData>>,
}

impl TagManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a tag. `len` is the array length for `Int`/`Double` kinds
    /// (ignored for `Bytes`). Re-declaring an existing name with the same
    /// kind/len returns the existing id.
    ///
    /// # Panics
    /// Panics if the name exists with a different kind or length.
    pub fn declare(&mut self, name: &str, kind: TagKind, len: usize) -> TagId {
        if let Some(&id) = self.by_name.get(name) {
            let d = &self.decls[id.0 as usize];
            assert!(
                d.kind == kind && d.len == len,
                "tag '{name}' re-declared with different signature"
            );
            return id;
        }
        let id = TagId(self.decls.len() as u32);
        self.decls.push(TagDecl {
            name: name.to_string(),
            kind,
            len,
        });
        self.by_name.insert(name.to_string(), id);
        self.values.push(FxHashMap::default());
        id
    }

    /// Look up a tag by name.
    pub fn find(&self, name: &str) -> Option<TagId> {
        self.by_name.get(name).copied()
    }

    /// The tag's name.
    pub fn name(&self, tag: TagId) -> &str {
        &self.decls[tag.0 as usize].name
    }

    /// The tag's kind.
    pub fn kind(&self, tag: TagId) -> TagKind {
        self.decls[tag.0 as usize].kind
    }

    /// The tag's declared array length.
    pub fn len_of(&self, tag: TagId) -> usize {
        self.decls[tag.0 as usize].len
    }

    /// Number of declared tags.
    pub fn num_tags(&self) -> usize {
        self.decls.len()
    }

    /// All declared tag ids.
    pub fn tags(&self) -> impl Iterator<Item = TagId> + '_ {
        (0..self.decls.len() as u32).map(TagId)
    }

    /// Attach a value to an entity.
    ///
    /// # Panics
    /// Panics (debug) if the value kind or length mismatches the declaration.
    pub fn set(&mut self, tag: TagId, ent: MeshEnt, data: TagData) {
        debug_assert_eq!(data.kind(), self.decls[tag.0 as usize].kind);
        match &data {
            TagData::Ints(v) => debug_assert_eq!(v.len(), self.decls[tag.0 as usize].len),
            TagData::Dbls(v) => debug_assert_eq!(v.len(), self.decls[tag.0 as usize].len),
            TagData::Bytes(_) => {}
        }
        self.values[tag.0 as usize].insert(ent, data);
    }

    /// Convenience: attach a scalar double.
    pub fn set_dbl(&mut self, tag: TagId, ent: MeshEnt, x: f64) {
        self.set(tag, ent, TagData::Dbls(vec![x]));
    }

    /// Convenience: attach a scalar integer.
    pub fn set_int(&mut self, tag: TagId, ent: MeshEnt, x: i64) {
        self.set(tag, ent, TagData::Ints(vec![x]));
    }

    /// Read a value.
    pub fn get(&self, tag: TagId, ent: MeshEnt) -> Option<&TagData> {
        self.values[tag.0 as usize].get(&ent)
    }

    /// Read a scalar double value.
    pub fn get_dbl(&self, tag: TagId, ent: MeshEnt) -> Option<f64> {
        match self.get(tag, ent) {
            Some(TagData::Dbls(v)) => v.first().copied(),
            _ => None,
        }
    }

    /// Read a scalar integer value.
    pub fn get_int(&self, tag: TagId, ent: MeshEnt) -> Option<i64> {
        match self.get(tag, ent) {
            Some(TagData::Ints(v)) => v.first().copied(),
            _ => None,
        }
    }

    /// Whether the entity carries this tag.
    pub fn has(&self, tag: TagId, ent: MeshEnt) -> bool {
        self.values[tag.0 as usize].contains_key(&ent)
    }

    /// Remove a tag value from an entity; returns the removed value.
    pub fn remove(&mut self, tag: TagId, ent: MeshEnt) -> Option<TagData> {
        self.values[tag.0 as usize].remove(&ent)
    }

    /// Remove every tag value attached to `ent` (entity deletion).
    pub fn remove_all(&mut self, ent: MeshEnt) {
        for m in &mut self.values {
            m.remove(&ent);
        }
    }

    /// Collect all (tag, value) pairs on an entity — used when packing an
    /// entity for migration or ghosting.
    pub fn collect(&self, ent: MeshEnt) -> Vec<(TagId, TagData)> {
        let mut out = Vec::new();
        for (i, m) in self.values.iter().enumerate() {
            if let Some(d) = m.get(&ent) {
                out.push((TagId(i as u32), d.clone()));
            }
        }
        out
    }

    /// Re-key all values from `old` to `new` (entity renumbering during
    /// migration rebuilds).
    pub fn rekey(&mut self, old: MeshEnt, new: MeshEnt) {
        for m in &mut self.values {
            if let Some(d) = m.remove(&old) {
                m.insert(new, d);
            }
        }
    }

    /// Number of entities carrying `tag`.
    pub fn count(&self, tag: TagId) -> usize {
        self.values[tag.0 as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_set_get() {
        let mut tm = TagManager::new();
        let t = tm.declare("size", TagKind::Double, 1);
        tm.set_dbl(t, MeshEnt::vertex(3), 0.25);
        assert_eq!(tm.get_dbl(t, MeshEnt::vertex(3)), Some(0.25));
        assert_eq!(tm.get_dbl(t, MeshEnt::vertex(4)), None);
        assert_eq!(tm.find("size"), Some(t));
        assert_eq!(tm.name(t), "size");
        assert_eq!(tm.kind(t), TagKind::Double);
    }

    #[test]
    fn redeclare_same_signature_is_idempotent() {
        let mut tm = TagManager::new();
        let a = tm.declare("w", TagKind::Int, 2);
        let b = tm.declare("w", TagKind::Int, 2);
        assert_eq!(a, b);
        assert_eq!(tm.num_tags(), 1);
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn redeclare_different_signature_panics() {
        let mut tm = TagManager::new();
        tm.declare("w", TagKind::Int, 2);
        tm.declare("w", TagKind::Double, 2);
    }

    #[test]
    fn remove_and_remove_all() {
        let mut tm = TagManager::new();
        let a = tm.declare("a", TagKind::Int, 1);
        let b = tm.declare("b", TagKind::Double, 1);
        let e = MeshEnt::face(7);
        tm.set_int(a, e, 5);
        tm.set_dbl(b, e, 2.5);
        assert!(tm.has(a, e) && tm.has(b, e));
        tm.remove(a, e);
        assert!(!tm.has(a, e) && tm.has(b, e));
        tm.remove_all(e);
        assert!(!tm.has(b, e));
    }

    #[test]
    fn collect_and_rekey() {
        let mut tm = TagManager::new();
        let a = tm.declare("a", TagKind::Int, 1);
        let e = MeshEnt::edge(1);
        let f = MeshEnt::edge(2);
        tm.set_int(a, e, 9);
        let c = tm.collect(e);
        assert_eq!(c.len(), 1);
        tm.rekey(e, f);
        assert_eq!(tm.get_int(a, f), Some(9));
        assert!(!tm.has(a, e));
    }

    #[test]
    fn tagdata_encode_decode_roundtrip() {
        let cases = vec![
            TagData::Ints(vec![1, -2, i64::MAX]),
            TagData::Dbls(vec![0.5, -1e300]),
            TagData::Bytes(vec![1, 2, 3, 255]),
            TagData::Ints(vec![]),
        ];
        for d in cases {
            let mut buf = Vec::new();
            d.encode(&mut buf);
            let mut pos = 0;
            let back = TagData::decode(&buf, &mut pos).unwrap();
            assert_eq!(back, d);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = Vec::new();
        TagData::Ints(vec![1, 2, 3]).encode(&mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(TagData::decode(&buf, &mut pos).is_none());
    }
}
