//! Exact 0-1 knapsack (§III-B).
//!
//! ParMA heavy part splitting "begins by independently solving the 0-1
//! knapsack problem on each part to determine the largest set of neighboring
//! parts which can be merged while keeping the total number of elements less
//! than the average". Each part has only a handful of neighbors (typically
//! < 40) and capacities are element counts, so the classic dynamic program
//! over scaled capacities is more than fast enough.

/// Solve 0-1 knapsack: choose a subset of items maximizing total `value`
/// subject to total `weight <= capacity`. Returns (best value, chosen item
/// indices, total weight).
///
/// Weights and capacity are `u64` element counts; to keep the DP table small
/// they are bucketed into at most `max_buckets` units (default used by
/// [`solve`] is 4096), which makes the result conservative: a bucketed
/// solution never exceeds the true capacity because weights round *up*.
pub fn solve_bucketed(
    weights: &[u64],
    values: &[u64],
    capacity: u64,
    max_buckets: usize,
) -> (u64, Vec<usize>, u64) {
    assert_eq!(weights.len(), values.len());
    let n = weights.len();
    if n == 0 || capacity == 0 {
        return (0, Vec::new(), 0);
    }
    // Bucket size: ceil so that rounded-up weights stay conservative.
    let unit = (capacity / max_buckets as u64).max(1);
    let cap_b = (capacity / unit) as usize;
    let w_b: Vec<usize> = weights.iter().map(|&w| w.div_ceil(unit) as usize).collect();

    // dp[c] = best value with capacity c; keep[i][c] = item i taken at c.
    let mut dp = vec![0u64; cap_b + 1];
    let mut keep = vec![false; n * (cap_b + 1)];
    for i in 0..n {
        if w_b[i] > cap_b {
            continue;
        }
        for c in (w_b[i]..=cap_b).rev() {
            let cand = dp[c - w_b[i]] + values[i];
            if cand > dp[c] {
                dp[c] = cand;
                keep[i * (cap_b + 1) + c] = true;
            }
        }
    }
    // Backtrack.
    let mut chosen = Vec::new();
    let mut c = cap_b;
    for i in (0..n).rev() {
        if keep[i * (cap_b + 1) + c] {
            chosen.push(i);
            c -= w_b[i];
        }
    }
    chosen.reverse();
    let total_w: u64 = chosen.iter().map(|&i| weights[i]).sum();
    (dp[cap_b], chosen, total_w)
}

/// [`solve_bucketed`] with a 4096-bucket default resolution.
pub fn solve(weights: &[u64], values: &[u64], capacity: u64) -> (u64, Vec<usize>, u64) {
    solve_bucketed(weights, values, capacity, 4096)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_zero_capacity() {
        assert_eq!(solve(&[], &[], 10).0, 0);
        assert_eq!(solve(&[1, 2], &[1, 2], 0).0, 0);
    }

    #[test]
    fn classic_small_instance() {
        // Items: (w,v) = (2,3),(3,4),(4,5),(5,6); cap 5 -> best = (2,3)+(3,4)=7
        let (v, chosen, w) = solve(&[2, 3, 4, 5], &[3, 4, 5, 6], 5);
        assert_eq!(v, 7);
        assert_eq!(chosen, vec![0, 1]);
        assert_eq!(w, 5);
    }

    #[test]
    fn item_heavier_than_capacity_skipped() {
        let (v, chosen, _) = solve(&[100], &[999], 50);
        assert_eq!(v, 0);
        assert!(chosen.is_empty());
    }

    #[test]
    fn parma_merge_shape() {
        // A light part (load 300) considers merging neighbors so the total
        // stays under the average (1000): capacity = 700. Neighbor loads are
        // weights and values (maximize merged elements).
        let loads = [250u64, 300, 500, 120];
        let (v, chosen, w) = solve(&loads, &loads, 700);
        // Best subset under 700: 250+300+120 = 670.
        assert_eq!(v, 670);
        assert_eq!(w, 670);
        let mut c = chosen;
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 3]);
    }

    #[test]
    fn bucketing_never_exceeds_capacity() {
        let weights: Vec<u64> = (1..50).map(|i| i * 997).collect();
        let values = weights.clone();
        let cap = 20_000;
        let (_, chosen, w) = solve_bucketed(&weights, &values, cap, 64);
        assert!(w <= cap, "bucketed weight {w} exceeds capacity {cap}");
        assert!(!chosen.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn solution_is_feasible_and_matches_value(
            items in proptest::collection::vec((1u64..100, 1u64..100), 1..12),
            cap in 1u64..300,
        ) {
            let weights: Vec<u64> = items.iter().map(|x| x.0).collect();
            let values: Vec<u64> = items.iter().map(|x| x.1).collect();
            let (v, chosen, w) = solve(&weights, &values, cap);
            let cw: u64 = chosen.iter().map(|&i| weights[i]).sum();
            let cv: u64 = chosen.iter().map(|&i| values[i]).sum();
            proptest::prop_assert_eq!(cw, w);
            proptest::prop_assert_eq!(cv, v);
            proptest::prop_assert!(w <= cap);
            // With <=12 items, check optimality by brute force.
            let n = weights.len();
            let mut best = 0u64;
            for mask in 0u32..(1 << n) {
                let (mut tw, mut tv) = (0u64, 0u64);
                for i in 0..n {
                    if mask & (1 << i) != 0 { tw += weights[i]; tv += values[i]; }
                }
                if tw <= cap { best = best.max(tv); }
            }
            proptest::prop_assert_eq!(v, best);
        }
    }
}
