//! The **Set** component: "grouping arbitrary data with common set
//! requirements" (§II).
//!
//! [`EntSet`] is an ordered entity set in the ITAPS sense: it remembers
//! insertion order (so iteration is deterministic), supports O(1) membership,
//! and provides the usual set algebra. Entity sets are how applications name
//! groups of entities — boundary-condition patches, refinement queues,
//! migration plans.

use crate::fxhash::FxHashMap;
use crate::ids::MeshEnt;

/// An ordered set of mesh entities with O(1) membership tests.
#[derive(Debug, Default, Clone)]
pub struct EntSet {
    order: Vec<MeshEnt>,
    index: FxHashMap<MeshEnt, u32>,
}

impl EntSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EntSet {
            order: Vec::with_capacity(cap),
            index: crate::fxhash::map_with_capacity(cap),
        }
    }

    /// Insert an entity; returns `true` if it was newly added.
    pub fn insert(&mut self, e: MeshEnt) -> bool {
        if self.index.contains_key(&e) {
            return false;
        }
        self.index.insert(e, self.order.len() as u32);
        self.order.push(e);
        true
    }

    /// Remove an entity; returns `true` if it was present. Keeps O(1) by
    /// swap-removing in the order vector (relative order of the last element
    /// changes).
    pub fn remove(&mut self, e: MeshEnt) -> bool {
        let Some(pos) = self.index.remove(&e) else {
            return false;
        };
        let pos = pos as usize;
        self.order.swap_remove(pos);
        if pos < self.order.len() {
            let moved = self.order[pos];
            self.index.insert(moved, pos as u32);
        }
        true
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, e: MeshEnt) -> bool {
        self.index.contains_key(&e)
    }

    /// Number of entities.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterate in insertion order (modulo removals).
    pub fn iter(&self) -> impl Iterator<Item = MeshEnt> + '_ {
        self.order.iter().copied()
    }

    /// Drain all entities out of the set.
    pub fn drain(&mut self) -> Vec<MeshEnt> {
        self.index.clear();
        std::mem::take(&mut self.order)
    }

    /// Set union: all entities in `self` or `other`.
    pub fn union(&self, other: &EntSet) -> EntSet {
        let mut out = self.clone();
        for e in other.iter() {
            out.insert(e);
        }
        out
    }

    /// Set intersection: entities in both.
    pub fn intersection(&self, other: &EntSet) -> EntSet {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = EntSet::with_capacity(small.len());
        for e in small.iter() {
            if big.contains(e) {
                out.insert(e);
            }
        }
        out
    }

    /// Set difference: entities in `self` not in `other`.
    pub fn difference(&self, other: &EntSet) -> EntSet {
        let mut out = EntSet::new();
        for e in self.iter() {
            if !other.contains(e) {
                out.insert(e);
            }
        }
        out
    }
}

impl FromIterator<MeshEnt> for EntSet {
    fn from_iter<I: IntoIterator<Item = MeshEnt>>(iter: I) -> Self {
        let mut s = EntSet::new();
        for e in iter {
            s.insert(e);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Dim;

    fn ents(ids: &[u32]) -> Vec<MeshEnt> {
        ids.iter().map(|&i| MeshEnt::new(Dim::Face, i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = EntSet::new();
        let e = MeshEnt::face(1);
        assert!(s.insert(e));
        assert!(!s.insert(e));
        assert!(s.contains(e));
        assert_eq!(s.len(), 1);
        assert!(s.remove(e));
        assert!(!s.remove(e));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut s = EntSet::new();
        for e in ents(&[5, 1, 9, 3]) {
            s.insert(e);
        }
        let got: Vec<_> = s.iter().map(|e| e.index()).collect();
        assert_eq!(got, vec![5, 1, 9, 3]);
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut s: EntSet = ents(&[0, 1, 2, 3, 4]).into_iter().collect();
        s.remove(MeshEnt::face(1));
        // All remaining entities still found via contains.
        for &i in &[0u32, 2, 3, 4] {
            assert!(s.contains(MeshEnt::face(i)), "missing {i}");
        }
        assert_eq!(s.len(), 4);
        // And removing the (swapped) last also works.
        assert!(s.remove(MeshEnt::face(4)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a: EntSet = ents(&[1, 2, 3]).into_iter().collect();
        let b: EntSet = ents(&[2, 3, 4]).into_iter().collect();
        let mut u: Vec<u32> = a.union(&b).iter().map(|e| e.index()).collect();
        u.sort_unstable();
        assert_eq!(u, vec![1, 2, 3, 4]);
        let mut i: Vec<u32> = a.intersection(&b).iter().map(|e| e.index()).collect();
        i.sort_unstable();
        assert_eq!(i, vec![2, 3]);
        let d: Vec<u32> = a.difference(&b).iter().map(|e| e.index()).collect();
        assert_eq!(d, vec![1]);
    }

    #[test]
    fn drain_empties() {
        let mut s: EntSet = ents(&[1, 2]).into_iter().collect();
        let v = s.drain();
        assert_eq!(v.len(), 2);
        assert!(s.is_empty());
        assert!(!s.contains(MeshEnt::face(1)));
    }

    proptest::proptest! {
        #[test]
        fn membership_matches_model(ops in proptest::collection::vec((0u32..32, proptest::bool::ANY), 0..200)) {
            use std::collections::BTreeSet;
            let mut s = EntSet::new();
            let mut model = BTreeSet::new();
            for (i, add) in ops {
                let e = MeshEnt::edge(i);
                if add {
                    proptest::prop_assert_eq!(s.insert(e), model.insert(e));
                } else {
                    proptest::prop_assert_eq!(s.remove(e), model.remove(&e));
                }
                proptest::prop_assert_eq!(s.len(), model.len());
            }
            let mut got: Vec<_> = s.iter().collect();
            got.sort();
            let want: Vec<_> = model.into_iter().collect();
            proptest::prop_assert_eq!(got, want);
        }
    }
}
