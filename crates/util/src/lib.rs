//! Common utilities shared by every PUMI/ParMA crate.
//!
//! This crate provides the three "common utility" components the paper calls
//! out in §II — **Iterator**, **Set**, and **Tag** — plus the low-level
//! building blocks they rest on:
//!
//! * [`ids`] — packed entity handles (`MeshEnt`) and dimension types,
//! * [`fxhash`] — a fast, deterministic hash map/set used throughout
//!   (implemented in-repo; the default SipHash is too slow for integer keys),
//! * [`inline`] — a small-size-optimized vector for upward adjacency lists,
//! * [`tag`] — attach arbitrary user data to arbitrary entities,
//! * [`set`] — group arbitrary entities with common set requirements,
//! * [`stats`] — timers, counters, and imbalance statistics (the paper's
//!   "performance measurement: run-time and memory usage counter"),
//! * [`knap`] — an exact 0-1 knapsack solver used by ParMA heavy part
//!   splitting (§III-B).

pub mod fxhash;
pub mod ids;
pub mod inline;
pub mod knap;
pub mod set;
pub mod stats;
pub mod tag;

pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{Dim, GlobalId, MeshEnt, PartId, INVALID_ENT};
pub use inline::InlineVec;
pub use set::EntSet;
pub use stats::{imbalance, Counter, Timer};
pub use tag::{TagData, TagId, TagKind, TagManager};
