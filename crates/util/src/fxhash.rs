//! A fast, deterministic hash map for integer-like keys.
//!
//! This is the FxHash algorithm used by rustc (a multiply-xor mix), written
//! here so the workspace has no extra hashing dependency. It is *not* HashDoS
//! resistant; keys in this codebase are entity handles and part ids produced
//! by our own algorithms, so speed and determinism win. Determinism matters:
//! distributed tests assert exact results, so iteration-independent code paths
//! plus a fixed seed keep runs reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (a.k.a. the Firefox hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Construct an empty [`FxHashMap`] with space for `cap` entries.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Construct an empty [`FxHashSet`] with space for `cap` entries.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MeshEnt;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<MeshEnt, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(MeshEnt::vertex(i), i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&MeshEnt::vertex(123)], 246);
        assert!(!m.contains_key(&MeshEnt::edge(123)));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut s = FxHasher::default();
            s.write_u64(x);
            s.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        // Hashing [1,2,3] must differ from [1,2,3,0] despite zero-padding
        // internally? It does not need to (length is not mixed), but the same
        // input must always agree with itself and short inputs must hash.
        let h = |b: &[u8]| {
            let mut s = FxHasher::default();
            s.write(b);
            s.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]));
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]));
        assert_ne!(h(&[1, 2, 3, 4, 5, 6, 7, 8, 9]), h(&[1, 2, 3]));
    }

    #[test]
    fn capacity_constructors() {
        let m: FxHashMap<u32, u32> = map_with_capacity(100);
        assert!(m.capacity() >= 100);
        let s: FxHashSet<u32> = set_with_capacity(100);
        assert!(s.capacity() >= 100);
    }
}
