//! Performance measurement utilities (§II-D: "run-time and memory usage
//! counter") and the imbalance statistics ParMA is built around (§III).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simple wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start timing now.
    pub fn start() -> Timer {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// A thread-safe named counter — used by the PCU layer to meter message and
/// byte traffic per link class (on-node vs off-node). Lock-free: every rank
/// of a simulated world bumps these on every send, so a shared mutex here
/// would serialize the whole transport.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `x`.
    pub fn add(&self, x: u64) {
        self.inner.fetch_add(x, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.inner.swap(0, Ordering::Relaxed)
    }
}

/// Imbalance of a per-part load vector: `max(load) / mean(load)`.
///
/// This is the quantity the paper's Tables II report as "Imb.%" minus one —
/// e.g. an imbalance of 1.05 prints as "5%". Returns 1.0 for empty or
/// all-zero input (a perfectly balanced nothing).
pub fn imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let mean = sum / loads.len() as f64;
    let max = loads.iter().copied().fold(f64::MIN, f64::max);
    max / mean
}

/// Imbalance expressed as the paper's percentage: `(max/mean - 1) * 100`.
pub fn imbalance_pct(loads: &[f64]) -> f64 {
    (imbalance(loads) - 1.0) * 100.0
}

/// Mean of a load vector (0.0 if empty).
pub fn mean(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        0.0
    } else {
        loads.iter().sum::<f64>() / loads.len() as f64
    }
}

/// Summary statistics of a per-part load vector, printed by the benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Smallest part load.
    pub min: f64,
    /// Largest part load.
    pub max: f64,
    /// Mean part load.
    pub mean: f64,
    /// `max/mean` imbalance ratio.
    pub imbalance: f64,
}

impl LoadStats {
    /// Compute stats for a load vector.
    pub fn of(loads: &[f64]) -> LoadStats {
        let mean = mean(loads);
        let min = loads.iter().copied().fold(f64::MAX, f64::min);
        let max = loads.iter().copied().fold(f64::MIN, f64::max);
        LoadStats {
            min: if loads.is_empty() { 0.0 } else { min },
            max: if loads.is_empty() { 0.0 } else { max },
            mean,
            imbalance: imbalance(loads),
        }
    }

    /// Imbalance as a percentage above perfect balance.
    pub fn imbalance_pct(&self) -> f64 {
        (self.imbalance - 1.0) * 100.0
    }
}

/// Build a fixed-width histogram of `values` with `bins` bins spanning
/// `[lo, hi)`; values outside clamp into the end bins. Returns per-bin
/// (center, count). This regenerates Fig 13's element-imbalance histogram.
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0 && hi > lo);
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        let mut b = ((v - lo) / width).floor() as isize;
        b = b.clamp(0, bins as isize - 1);
        counts[b as usize] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_uniform_is_one() {
        assert!((imbalance(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn imbalance_detects_spike() {
        // One part with double load among 4 parts of 1: mean=1.25, max=2.
        let i = imbalance(&[1.0, 1.0, 1.0, 2.0]);
        assert!((i - 1.6).abs() < 1e-12);
        assert!((imbalance_pct(&[1.0, 1.0, 1.0, 2.0]) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn load_stats_fields() {
        let s = LoadStats::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.imbalance - 1.5).abs() < 1e-12);
        assert!((s.imbalance_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let h = histogram(&[0.1, 0.1, 0.9, 1.5, -3.0], 0.0, 1.0, 2);
        // bin 0: 0.1, 0.1, -3.0 (clamped); bin 1: 0.9, 1.5 (clamped)
        assert_eq!(h[0].1, 3);
        assert_eq!(h[1].1, 2);
        assert!((h[0].0 - 0.25).abs() < 1e-12);
        assert!((h[1].0 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(3);
        c2.add(4);
        assert_eq!(c.get(), 7);
        assert_eq!(c.take(), 7);
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn timer_monotonic() {
        let t = Timer::start();
        assert!(t.seconds() >= 0.0);
    }
}
