//! A small-size-optimized vector of `u32`.
//!
//! Upward adjacency lists (vertex→edges, edge→faces, face→regions) dominate
//! mesh memory. In a tetrahedral mesh an interior face bounds exactly 2
//! regions, an edge ~5 faces, a vertex ~14 edges; most lists are tiny.
//! [`InlineVec`] stores up to [`INLINE_CAP`] elements in place and spills to a
//! heap `Vec<u32>` beyond that, so the common case costs no allocation.

/// Number of elements stored inline before spilling to the heap.
pub const INLINE_CAP: usize = 6;

/// A vector of `u32` that stores small lists inline.
#[derive(Clone, Debug)]
pub enum InlineVec {
    /// Inline storage: fixed array plus a length.
    Inline { buf: [u32; INLINE_CAP], len: u8 },
    /// Heap storage for lists longer than [`INLINE_CAP`].
    Heap(Vec<u32>),
}

impl Default for InlineVec {
    #[inline]
    fn default() -> Self {
        InlineVec::Inline {
            buf: [0; INLINE_CAP],
            len: 0,
        }
    }
}

impl InlineVec {
    /// An empty vector.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            InlineVec::Inline { len, .. } => *len as usize,
            InlineVec::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View the contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        match self {
            InlineVec::Inline { buf, len } => &buf[..*len as usize],
            InlineVec::Heap(v) => v.as_slice(),
        }
    }

    /// Append a value, spilling to the heap if the inline buffer is full.
    pub fn push(&mut self, x: u32) {
        match self {
            InlineVec::Inline { buf, len } => {
                if (*len as usize) < INLINE_CAP {
                    buf[*len as usize] = x;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_CAP * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(x);
                    *self = InlineVec::Heap(v);
                }
            }
            InlineVec::Heap(v) => v.push(x),
        }
    }

    /// Remove the first occurrence of `x`; returns whether it was present.
    /// Order is not preserved (swap-remove), matching adjacency-list needs.
    pub fn remove_value(&mut self, x: u32) -> bool {
        match self {
            InlineVec::Inline { buf, len } => {
                let n = *len as usize;
                if let Some(p) = buf[..n].iter().position(|&y| y == x) {
                    buf[p] = buf[n - 1];
                    *len -= 1;
                    true
                } else {
                    false
                }
            }
            InlineVec::Heap(v) => {
                if let Some(p) = v.iter().position(|&y| y == x) {
                    v.swap_remove(p);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether `x` is present.
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        self.as_slice().contains(&x)
    }

    /// Remove all elements, keeping heap capacity if spilled.
    pub fn clear(&mut self) {
        match self {
            InlineVec::Inline { len, .. } => *len = 0,
            InlineVec::Heap(v) => v.clear(),
        }
    }

    /// Iterate over the elements.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.as_slice().iter()
    }
}

impl FromIterator<u32> for InlineVec {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<'a> IntoIterator for &'a InlineVec {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for InlineVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for InlineVec {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_within_inline_capacity() {
        let mut v = InlineVec::new();
        for i in 0..INLINE_CAP as u32 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Inline { .. }));
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn spill_to_heap_preserves_contents() {
        let mut v = InlineVec::new();
        for i in 0..20u32 {
            v.push(i);
        }
        assert!(matches!(v, InlineVec::Heap(_)));
        assert_eq!(v.len(), 20);
        assert_eq!(v.as_slice(), (0..20).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn remove_value_inline_and_heap() {
        let mut v: InlineVec = (0..4).collect();
        assert!(v.remove_value(1));
        assert!(!v.remove_value(1));
        assert_eq!(v.len(), 3);
        assert!(v.contains(0) && v.contains(2) && v.contains(3));

        let mut h: InlineVec = (0..20).collect();
        assert!(h.remove_value(10));
        assert!(!h.contains(10));
        assert_eq!(h.len(), 19);
    }

    #[test]
    fn clear_resets_length() {
        let mut v: InlineVec = (0..20).collect();
        v.clear();
        assert!(v.is_empty());
        let mut w: InlineVec = (0..3).collect();
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn equality_ignores_representation() {
        let a: InlineVec = (0..INLINE_CAP as u32).collect();
        let mut b: InlineVec = (0..INLINE_CAP as u32 + 1).collect();
        assert!(b.remove_value(INLINE_CAP as u32));
        // b is heap-backed, a inline; same contents compare equal.
        assert_eq!(a, b);
    }

    proptest::proptest! {
        #[test]
        fn behaves_like_vec(ops in proptest::collection::vec((0u32..64, proptest::bool::ANY), 0..200)) {
            let mut iv = InlineVec::new();
            let mut model: Vec<u32> = Vec::new();
            for (x, is_push) in ops {
                if is_push {
                    iv.push(x);
                    model.push(x);
                } else {
                    let a = iv.remove_value(x);
                    let b = if let Some(p) = model.iter().position(|&y| y == x) {
                        model.swap_remove(p);
                        true
                    } else { false };
                    proptest::prop_assert_eq!(a, b);
                }
                proptest::prop_assert_eq!(iv.len(), model.len());
                let mut s1 = iv.as_slice().to_vec();
                let mut s2 = model.clone();
                s1.sort_unstable();
                s2.sort_unstable();
                proptest::prop_assert_eq!(s1, s2);
            }
        }
    }
}
