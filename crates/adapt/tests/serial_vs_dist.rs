//! Partition invariance of distributed adaptation.
//!
//! `adapt_dist`'s content-derived global ids promise that adapting a mesh
//! is *independent of how it is partitioned*: the 1-part result and the
//! 4-rank result are entity-for-entity identical — same gids, same
//! coordinates, same classification — so `pumi_io::struct_hash` must
//! match exactly. The serial `refine()` driver is the third witness:
//! split and element counts, total area, and the element-quality
//! histogram must agree with both distributed runs. The 4-rank arm runs
//! under the seeded chaos scheduler, so message reordering cannot change
//! the result either.

use proptest::prelude::*;
use pumi_adapt::dist::{adapt_dist, AdaptOpts};
use pumi_adapt::{mean_ratio, refine, RefineOpts, SizeField};
use pumi_check::CheckOpts;
use pumi_core::{distribute, DistMesh, PartMap};
use pumi_meshgen::tri_rect;
use pumi_pcu::{execute, execute_chaos, Comm};
use pumi_util::PartId;

const N: usize = 8;
const QBINS: usize = 20;

fn shock_size(c0: f64) -> SizeField {
    SizeField::shock(move |p| p[0] + 0.4 * p[1] - c0, 0.06, 0.3, 0.05)
}

/// Mean-ratio histogram of all local elements, allreduced to a global one.
fn quality_histogram(comm: &Comm, dm: &DistMesh) -> Vec<u64> {
    let mut bins = vec![0u64; QBINS];
    for p in &dm.parts {
        for e in p.mesh.elems() {
            if p.is_ghost(e) {
                continue;
            }
            let q = mean_ratio(&p.mesh, e).clamp(0.0, 1.0);
            let b = ((q * QBINS as f64) as usize).min(QBINS - 1);
            bins[b] += 1;
        }
    }
    comm.allreduce_sum_u64_vec(&bins)
}

struct ArmResult {
    hash: u64,
    splits: u64,
    elements: u64,
    hist: Vec<u64>,
}

/// Adapt the standard mesh on `nparts` parts over `nranks` ranks and
/// reduce it to comparable facts.
fn run_arm(nranks: usize, nparts: usize, chaos_seed: Option<u64>, c0: f64) -> ArmResult {
    let body = move |c: &Comm| {
        let serial = tri_rect(N, N, 1.0, 1.0);
        let d = serial.elem_dim_t();
        let mut labels = vec![0 as PartId; serial.index_space(d)];
        if nparts > 1 {
            for e in serial.iter(d) {
                let x = serial.centroid(e);
                let px = u32::from(x[0] >= 0.5);
                let py = u32::from(x[1] >= 0.5);
                labels[e.idx()] = (py * 2 + px) as PartId;
            }
        }
        let mut dm = distribute(c, PartMap::contiguous(nparts, nranks), &serial, &labels);
        let stats = adapt_dist(
            c,
            &mut dm,
            &shock_size(c0),
            AdaptOpts::new().check(CheckOpts::all()),
        );
        let hash = pumi_io::struct_hash(c, &dm);
        let hist = quality_histogram(c, &dm);
        (c.rank() == 0).then_some(ArmResult {
            hash,
            splits: stats.splits,
            elements: stats.elements_after,
            hist,
        })
    };
    let out = match chaos_seed {
        Some(seed) => execute_chaos(nranks, seed, body),
        None => execute(nranks, body),
    };
    out.into_iter().flatten().next().unwrap()
}

/// Plain serial `refine()` reduced to the same facts (no gids — the
/// serial hash witness is the 1-part `adapt_dist` arm).
fn run_serial(c0: f64) -> (u64, u64, Vec<u64>) {
    let mut m = tri_rect(N, N, 1.0, 1.0);
    let stats = refine(&mut m, &shock_size(c0), None, RefineOpts::default());
    let mut bins = vec![0u64; QBINS];
    for e in m.elems() {
        let q = mean_ratio(&m, e).clamp(0.0, 1.0);
        bins[((q * QBINS as f64) as usize).min(QBINS - 1)] += 1;
    }
    (stats.splits as u64, stats.elements_after as u64, bins)
}

fn check_invariance(c0: f64, seed: u64) {
    let one = run_arm(1, 1, None, c0);
    let four = run_arm(4, 4, Some(seed), c0);
    let (s_splits, s_elements, s_hist) = run_serial(c0);

    assert_eq!(
        one.hash, four.hash,
        "struct_hash differs between 1-part and 4-rank adaptation (seed {seed}, c0 {c0})"
    );
    for (arm, r) in [("1-part", &one), ("4-rank", &four)] {
        assert_eq!(r.splits, s_splits, "{arm} split count != serial refine()");
        assert_eq!(r.elements, s_elements, "{arm} element count != serial");
        assert_eq!(r.hist, s_hist, "{arm} quality histogram != serial");
    }
}

/// The fixed seeds the invariant must hold under (regression anchors).
#[test]
fn serial_vs_dist_chaos_seed_1() {
    check_invariance(0.5, 1);
}

#[test]
fn serial_vs_dist_chaos_seed_7() {
    check_invariance(0.5, 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The invariance holds wherever the shock sits — including fronts
    /// crossing one, two, or all four part boundaries.
    #[test]
    fn serial_vs_dist_any_shock_position(c0 in 0.2f64..1.1) {
        check_invariance(c0, 1);
        check_invariance(c0, 7);
    }
}
