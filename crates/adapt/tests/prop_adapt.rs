//! Property tests for adaptation: arbitrary split/coarsen sequences keep
//! the mesh valid, uninverted, and geometrically conservative.

use proptest::prelude::*;
use pumi_adapt::{coarsen, measure, refine, split_edge, CoarsenOpts, RefineOpts, SizeField};
use pumi_meshgen::{tet_box, tri_rect};
use pumi_util::Dim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random sequences of edge splits preserve validity, orientation, and
    /// total area.
    #[test]
    fn random_splits_conserve_area(picks in proptest::collection::vec(0usize..1000, 1..25)) {
        let mut m = tri_rect(3, 3, 1.0, 1.0);
        let area0: f64 = m.elems().map(|e| measure(&m, e).abs()).sum();
        for p in picks {
            let edges: Vec<_> = m.iter(Dim::Edge).collect();
            let e = edges[p % edges.len()];
            split_edge(&mut m, e, None);
        }
        m.assert_valid();
        let area: f64 = m.elems().map(|e| measure(&m, e).abs()).sum();
        prop_assert!((area - area0).abs() < 1e-9, "area drift: {area} vs {area0}");
        prop_assert!(m.elems().all(|e| measure(&m, e) != 0.0));
    }

    /// Random splits in 3D conserve volume and validity.
    #[test]
    fn random_splits_conserve_volume(picks in proptest::collection::vec(0usize..1000, 1..12)) {
        let mut m = tet_box(2, 2, 2, 1.0, 1.0, 1.0);
        let vol0: f64 = m.elems().map(|e| measure(&m, e).abs()).sum();
        for p in picks {
            let edges: Vec<_> = m.iter(Dim::Edge).collect();
            let e = edges[p % edges.len()];
            split_edge(&mut m, e, None);
        }
        m.assert_valid();
        let vol: f64 = m.elems().map(|e| measure(&m, e).abs()).sum();
        prop_assert!((vol - vol0).abs() < 1e-9);
    }

    /// Refine-then-coarsen with arbitrary sizes never invalidates the mesh
    /// and never loses the domain.
    #[test]
    fn refine_coarsen_cycles(h_fine in 0.08f64..0.3, h_coarse in 0.5f64..1.5) {
        let mut m = tri_rect(3, 3, 1.0, 1.0);
        refine(&mut m, &SizeField::uniform(h_fine), None, RefineOpts::default());
        m.assert_valid();
        coarsen(&mut m, &SizeField::uniform(h_coarse), CoarsenOpts::default());
        m.assert_valid();
        let area: f64 = m.elems().map(|e| measure(&m, e).abs()).sum();
        prop_assert!((area - 1.0).abs() < 1e-9, "domain area lost: {area}");
        // Corners survive any amount of coarsening.
        prop_assert_eq!(m.count_classified(Dim::Vertex, Dim::Vertex), 4);
    }

    /// The size field is (approximately) satisfied after refinement: no
    /// edge longer than split_ratio * h.
    #[test]
    fn refinement_meets_size(h in 0.1f64..0.4) {
        let mut m = tri_rect(2, 2, 1.0, 1.0);
        let size = SizeField::uniform(h);
        refine(&mut m, &size, None, RefineOpts::default());
        for e in m.iter(Dim::Edge) {
            let vs = m.verts_of(e);
            let a = m.coords(pumi_util::MeshEnt::vertex(vs[0]));
            let b = m.coords(pumi_util::MeshEnt::vertex(vs[1]));
            let len = ((a[0]-b[0]).powi(2) + (a[1]-b[1]).powi(2)).sqrt();
            prop_assert!(len <= 1.5 * h + 1e-12, "edge {len} > 1.5*{h}");
        }
    }
}
