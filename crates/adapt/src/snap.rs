//! Boundary snapping.
//!
//! New vertices created on classified boundary entities must lie on the
//! geometry, not on the chord of the old mesh — "accounting for curved
//! domains in mesh adaptation", Li et al.). The geometric classification of the
//! split edge tells which model entity to project onto.

use pumi_geom::{GeomEnt, Model};
use pumi_mesh::NO_GEOM;
use pumi_util::Dim;

/// Project `p` onto the model entity `class` if it is a boundary entity
/// (dim < `elem_dim`); interior and unclassified points pass through.
pub fn snap_to_model(model: &Model, class: GeomEnt, elem_dim: usize, p: [f64; 3]) -> [f64; 3] {
    if class == NO_GEOM || class.dim().as_usize() >= elem_dim {
        return p;
    }
    if !model.contains(class) {
        return p;
    }
    model.closest_point(class, p)
}

/// Whether a vertex classified on `gone_class` may be collapsed along an
/// edge classified on `edge_class` without leaving its geometry.
///
/// Interior vertices may always collapse. A boundary vertex may only slide
/// *along its own model entity*: the collapse edge itself must classify on
/// the same entity. This also rejects chords — interior edges connecting
/// two boundary vertices — whose collapse would cut area off the domain.
pub fn collapse_allowed(gone_class: GeomEnt, edge_class: GeomEnt, elem_dim: usize) -> bool {
    if gone_class == NO_GEOM || gone_class.dim().as_usize() == elem_dim {
        return true;
    }
    // Model vertices never move (dimension 0 has nowhere to slide).
    if gone_class.dim() == Dim::Vertex {
        return false;
    }
    edge_class == gone_class
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_geom::builders::{vessel, VesselSpec};

    #[test]
    fn interior_points_pass_through() {
        let spec = VesselSpec::aaa();
        let m = vessel(spec);
        let interior = GeomEnt::new(Dim::Region, 1);
        let p = [0.3, 0.2, 5.0];
        assert_eq!(snap_to_model(&m, interior, 3, p), p);
        assert_eq!(snap_to_model(&m, NO_GEOM, 3, p), p);
    }

    #[test]
    fn wall_points_snap_to_radius() {
        let spec = VesselSpec::aaa();
        let m = vessel(spec);
        let wall = GeomEnt::new(Dim::Face, 1);
        // Midpoint of a chord lies inside the circle; snapping pushes it out
        // to R(z).
        let p = [0.9, 0.0, 5.0];
        let q = snap_to_model(&m, wall, 3, p);
        let r = (q[0] * q[0] + q[1] * q[1]).sqrt();
        assert!((r - spec.radius_at(q[2])).abs() < 1e-9);
    }

    #[test]
    fn collapse_rules() {
        let interior = GeomEnt::new(Dim::Region, 1);
        let wall = GeomEnt::new(Dim::Face, 1);
        let rim = GeomEnt::new(Dim::Edge, 1);
        assert!(collapse_allowed(interior, wall, 3));
        assert!(collapse_allowed(wall, wall, 3));
        assert!(!collapse_allowed(wall, interior, 3));
        assert!(!collapse_allowed(rim, wall, 3));
        assert!(collapse_allowed(NO_GEOM, wall, 3));
    }
}
