//! Size-driven edge-split refinement.
//!
//! The refinement primitive is the conforming edge split: splitting an edge
//! bisects *every* element adjacent to it, so the mesh stays conforming
//! after each operation — no closure templates needed. Oversized edges are
//! processed longest-first from a lazy priority queue until every edge
//! satisfies the size field (the standard bisection-refinement driver).
//!
//! Children inherit their parent's classification and tag data (so
//! partition labels stored in tags survive adaptation — exactly what the
//! Fig 13 experiment needs: adapt first, observe the inherited partition's
//! imbalance).

use crate::quality::measure;
use crate::sizefield::SizeField;
use crate::snap::snap_to_model;
use pumi_geom::Model;
use pumi_mesh::Mesh;
use pumi_util::tag::TagData;
use pumi_util::{Dim, MeshEnt, TagId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Options for [`refine`].
#[derive(Debug, Clone, Copy)]
pub struct RefineOpts {
    /// Split an edge when `length > split_ratio * h(midpoint)`.
    pub split_ratio: f64,
    /// Hard cap on the number of splits (safety valve; default is huge).
    pub max_splits: usize,
}

impl Default for RefineOpts {
    fn default() -> Self {
        RefineOpts {
            split_ratio: 1.5,
            max_splits: usize::MAX,
        }
    }
}

/// Statistics from a [`refine`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Edge splits performed.
    pub splits: usize,
    /// Elements in the mesh afterwards.
    pub elements_after: usize,
}

pub(crate) struct HeapItem {
    pub(crate) len: f64,
    pub(crate) key: [u64; 6],
    pub(crate) edge: MeshEnt,
    pub(crate) verts: [u32; 2],
}

impl HeapItem {
    /// Build a heap item for `edge`. The tie-break key is derived from the
    /// endpoint *coordinates* (bit patterns, lexicographically sorted), not
    /// from entity handles — so two parts holding copies of the same
    /// geometric edge, or a serial mesh and a distributed one, order equal-
    /// length edges identically. That canonical order is what makes
    /// distributed refinement reproduce the serial bisection mesh bit for
    /// bit (see `dist.rs`).
    pub(crate) fn new(mesh: &Mesh, edge: MeshEnt, len: f64) -> Self {
        let verts = mesh.verts_of(edge);
        let a = mesh.coords(MeshEnt::vertex(verts[0]));
        let b = mesh.coords(MeshEnt::vertex(verts[1]));
        let ka = [a[0].to_bits(), a[1].to_bits(), a[2].to_bits()];
        let kb = [b[0].to_bits(), b[1].to_bits(), b[2].to_bits()];
        let (lo, hi) = if ka <= kb { (ka, kb) } else { (kb, ka) };
        HeapItem {
            len,
            key: [lo[0], lo[1], lo[2], hi[0], hi[1], hi[2]],
            edge,
            verts: [verts[0], verts[1]],
        }
    }
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.key == other.key
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Longest first; ties broken by the content key (smaller key pops
        // first out of the max-heap).
        self.len
            .partial_cmp(&other.len)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.key.cmp(&self.key))
    }
}

pub(crate) fn edge_length(mesh: &Mesh, verts: &[u32]) -> f64 {
    let a = mesh.coords(MeshEnt::vertex(verts[0]));
    let b = mesh.coords(MeshEnt::vertex(verts[1]));
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

pub(crate) fn midpoint(mesh: &Mesh, verts: &[u32]) -> [f64; 3] {
    let a = mesh.coords(MeshEnt::vertex(verts[0]));
    let b = mesh.coords(MeshEnt::vertex(verts[1]));
    [
        0.5 * (a[0] + b[0]),
        0.5 * (a[1] + b[1]),
        0.5 * (a[2] + b[2]),
    ]
}

/// Split one edge, bisecting every adjacent element. Returns the new vertex.
/// `model` enables boundary snapping of the new vertex.
pub fn split_edge(mesh: &mut Mesh, edge: MeshEnt, model: Option<&Model>) -> MeshEnt {
    debug_assert_eq!(edge.dim(), Dim::Edge);
    let elem_dim = mesh.elem_dim();
    let d_elem = mesh.elem_dim_t();
    let [a, b] = [mesh.verts_of(edge)[0], mesh.verts_of(edge)[1]];
    let class = mesh.class_of(edge);

    // Record the cavity.
    struct OldElem {
        verts: Vec<u32>,
        topo: pumi_mesh::Topology,
        class: pumi_geom::GeomEnt,
        tags: Vec<(TagId, TagData)>,
    }
    let cavity: Vec<OldElem> = mesh
        .adjacent(edge, d_elem)
        .into_iter()
        .map(|e| OldElem {
            verts: mesh.verts_of(e).to_vec(),
            topo: mesh.topo(e),
            class: mesh.class_of(e),
            tags: mesh.tags().collect(e),
        })
        .collect();
    debug_assert!(!cavity.is_empty(), "split of orphan edge");
    // Faces containing the edge (3D): their children and median edges must
    // inherit their classification (a split boundary face stays boundary).
    let split_faces: Vec<(Vec<u32>, pumi_geom::GeomEnt)> = if elem_dim == 3 {
        mesh.up_ents(edge)
            .into_iter()
            .map(|f| (mesh.verts_of(f).to_vec(), mesh.class_of(f)))
            .collect()
    } else {
        Vec::new()
    };

    // Delete top-down: elements, then (3D) the faces containing the edge,
    // then the edge itself.
    for e in mesh.adjacent(edge, d_elem) {
        mesh.delete(e);
    }
    if elem_dim == 3 {
        for f in mesh.up_ents(edge) {
            mesh.delete(f);
        }
    }
    mesh.delete(edge);

    // New vertex at the (snapped) midpoint, classified like the edge was.
    let mut p = {
        let pa = mesh.coords(MeshEnt::vertex(a));
        let pb = mesh.coords(MeshEnt::vertex(b));
        [
            0.5 * (pa[0] + pb[0]),
            0.5 * (pa[1] + pb[1]),
            0.5 * (pa[2] + pb[2]),
        ]
    };
    if let Some(model) = model {
        p = snap_to_model(model, class, elem_dim, p);
    }
    let m = mesh.add_vertex(p, class);

    // Two children per cavity element: a→m and b→m.
    for old in &cavity {
        for (replace, keep) in [(a, b), (b, a)] {
            let _ = keep;
            let verts: Vec<u32> = old
                .verts
                .iter()
                .map(|&v| if v == replace { m.index() } else { v })
                .collect();
            let child = mesh.add_entity(old.topo, &verts, old.class);
            for (tid, data) in &old.tags {
                mesh.tags_mut().set(*tid, child, data.clone());
            }
        }
    }
    // Restore classification of the bisected lower entities: implicit
    // find-or-create gave them the element's class, but entities lying
    // inside an old entity inherit *that* entity's class.
    // The two half edges lie inside the split edge:
    for half in [[a, m.index()], [m.index(), b]] {
        if let Some(e) = mesh.find_entity(Dim::Edge, &half) {
            mesh.set_class(e, class);
        }
    }
    // Child faces and median edges lie inside the split faces (3D):
    for (fverts, fclass) in &split_faces {
        for (replace, _) in [(a, b), (b, a)] {
            let child_verts: Vec<u32> = fverts
                .iter()
                .map(|&v| if v == replace { m.index() } else { v })
                .collect();
            if let Some(f) = mesh.find_entity(Dim::Face, &child_verts) {
                mesh.set_class(f, *fclass);
            }
        }
        for &x in fverts.iter().filter(|&&v| v != a && v != b) {
            if let Some(e) = mesh.find_entity(Dim::Edge, &[m.index(), x]) {
                mesh.set_class(e, *fclass);
            }
        }
    }
    m
}

/// Length of `verts` if the edge is oversized w.r.t. `size` (the split
/// predicate). Purely geometric, so every copy of a shared edge evaluates
/// it identically — the basis for communication-free consistent marking in
/// distributed refinement.
pub(crate) fn oversized_len(
    mesh: &Mesh,
    verts: &[u32],
    size: &SizeField,
    split_ratio: f64,
) -> Option<f64> {
    let len = edge_length(mesh, verts);
    let h = size.at(midpoint(mesh, verts));
    (len > split_ratio * h).then_some(len)
}

/// Refine until every edge satisfies the size field (or the split cap is
/// hit). Returns statistics.
///
/// # Examples
///
/// ```
/// use pumi_adapt::{refine, RefineOpts, SizeField};
///
/// let mut mesh = pumi_meshgen::tri_rect(2, 2, 1.0, 1.0);
/// let stats = refine(&mut mesh, &SizeField::uniform(0.2), None, RefineOpts::default());
/// assert!(stats.splits > 0);
/// assert_eq!(stats.elements_after, mesh.num_elems());
/// ```
pub fn refine(
    mesh: &mut Mesh,
    size: &SizeField,
    model: Option<&Model>,
    opts: RefineOpts,
) -> RefineStats {
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    for e in mesh.snapshot(Dim::Edge) {
        if let Some(len) = oversized_len(mesh, mesh.verts_of(e), size, opts.split_ratio) {
            heap.push(HeapItem::new(mesh, e, len));
        }
    }
    let mut splits = 0usize;
    while let Some(item) = heap.pop() {
        if splits >= opts.max_splits {
            break;
        }
        // Lazy validation: the slot may have been reused.
        if !mesh.is_live(item.edge) {
            continue;
        }
        let verts = mesh.verts_of(item.edge);
        if [verts[0], verts[1]] != item.verts && [verts[1], verts[0]] != item.verts {
            continue;
        }
        if oversized_len(mesh, verts, size, opts.split_ratio).is_none() {
            continue;
        }
        let m = split_edge(mesh, item.edge, model);
        splits += 1;
        // New candidates: every edge at the new vertex.
        for e in mesh.adjacent(m, Dim::Edge) {
            if let Some(len) = oversized_len(mesh, mesh.verts_of(e), size, opts.split_ratio) {
                heap.push(HeapItem::new(mesh, e, len));
            }
        }
    }
    RefineStats {
        splits,
        elements_after: mesh.num_elems(),
    }
}

/// Check that every element of `mesh` has positive measure (no inversions) —
/// refinement must preserve this.
pub fn all_positive(mesh: &Mesh) -> bool {
    mesh.elems().all(|e| measure(mesh, e).abs() > 1e-14)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_geom::builders::{vessel, VesselSpec};
    use pumi_meshgen::{tet_box, tri_rect, vessel_tet};
    use pumi_util::tag::TagKind;

    #[test]
    fn split_one_edge_of_a_triangle_pair() {
        let mut m = tri_rect(1, 1, 1.0, 1.0);
        assert_eq!(m.num_elems(), 2);
        // The diagonal is interior: splitting it bisects both triangles.
        let diag = m.iter(Dim::Edge).find(|&e| !m.is_boundary_side(e)).unwrap();
        let v = split_edge(&mut m, diag, None);
        assert_eq!(m.num_elems(), 4);
        assert_eq!(m.count(Dim::Vertex), 5);
        m.assert_valid();
        assert!(all_positive(&m));
        let p = m.coords(v);
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_boundary_edge() {
        let mut m = tri_rect(1, 1, 1.0, 1.0);
        let bnd = m.iter(Dim::Edge).find(|&e| m.is_boundary_side(e)).unwrap();
        split_edge(&mut m, bnd, None);
        assert_eq!(m.num_elems(), 3);
        m.assert_valid();
        assert!(all_positive(&m));
    }

    #[test]
    fn uniform_refinement_reaches_size() {
        let mut m = tri_rect(2, 2, 1.0, 1.0);
        let size = SizeField::uniform(0.2);
        let stats = refine(&mut m, &size, None, RefineOpts::default());
        assert!(stats.splits > 0);
        m.assert_valid();
        assert!(all_positive(&m));
        // No remaining oversized edge.
        for e in m.iter(Dim::Edge) {
            let verts = m.verts_of(e);
            let len = edge_length(&m, verts);
            let h = size.at(midpoint(&m, verts));
            assert!(len <= 1.5 * h + 1e-12, "edge len {len} > 1.5*{h}");
        }
    }

    #[test]
    fn refinement_3d_valid() {
        let mut m = tet_box(2, 2, 2, 1.0, 1.0, 1.0);
        let before = m.num_elems();
        let size = SizeField::uniform(0.3);
        let stats = refine(&mut m, &size, None, RefineOpts::default());
        assert!(stats.elements_after > before);
        m.assert_valid();
        assert!(all_positive(&m));
    }

    #[test]
    fn shock_refinement_is_localized() {
        let mut m = tri_rect(4, 4, 1.0, 1.0);
        let size = SizeField::shock(|p| p[1] - 0.5, 0.03, 0.5, 0.05);
        refine(&mut m, &size, None, RefineOpts::default());
        m.assert_valid();
        // Elements concentrate near the shock line: the band of height 0.2
        // around it (1/5 of the domain) holds the majority of elements.
        let mut near = 0usize;
        let mut far = 0usize;
        for e in m.elems() {
            let c = m.centroid(e);
            if (c[1] - 0.5).abs() < 0.1 {
                near += 1;
            } else if (c[1] - 0.5).abs() > 0.3 {
                far += 1;
            }
        }
        assert!(
            near > 2 * far,
            "refinement not localized: near={near} far={far}"
        );
    }

    #[test]
    fn split_children_keep_boundary_classification() {
        // Splitting a boundary edge must leave both halves classified on
        // the model edge (regression: implicit creation once gave them the
        // element's interior class, which later let coarsening collapse
        // chords and cut area off the domain).
        let mut m = tri_rect(2, 2, 1.0, 1.0);
        let bnd = m.iter(Dim::Edge).find(|&e| m.is_boundary_side(e)).unwrap();
        let bnd_class = m.class_of(bnd);
        assert_eq!(bnd_class.dim(), Dim::Edge);
        let mid = split_edge(&mut m, bnd, None);
        for e in m.adjacent(mid, Dim::Edge) {
            let other_boundary = m.is_boundary_side(e);
            if other_boundary {
                assert_eq!(m.class_of(e), bnd_class, "half edge lost its class");
            } else {
                assert_eq!(
                    m.class_of(e).dim(),
                    Dim::Face,
                    "median edge must be interior"
                );
            }
        }
        // In 3D: child faces of a split boundary face stay on the wall.
        let mut m3 = pumi_meshgen::tet_box(2, 2, 2, 1.0, 1.0, 1.0);
        let bf = m3
            .iter(Dim::Face)
            .find(|&f| m3.is_boundary_side(f))
            .unwrap();
        let fclass = m3.class_of(bf);
        let edge_on_bf = m3.down_ents(bf)[0];
        let eclass = m3.class_of(edge_on_bf);
        let mid = split_edge(&mut m3, edge_on_bf, None);
        assert_eq!(m3.class_of(mid), eclass);
        let mut checked = 0;
        for f in m3.adjacent(mid, Dim::Face) {
            if m3.is_boundary_side(f) {
                assert_eq!(m3.class_of(f).dim(), Dim::Face, "boundary child face");
                checked += 1;
            }
        }
        assert!(checked > 0);
        let _ = fclass;
        m3.assert_valid();
    }

    #[test]
    fn tags_inherited_by_children() {
        let mut m = tri_rect(1, 1, 1.0, 1.0);
        let tid = m.tags_mut().declare("part", TagKind::Int, 1);
        for (i, e) in m.snapshot(Dim::Face).into_iter().enumerate() {
            m.tags_mut().set_int(tid, e, i as i64);
        }
        let size = SizeField::uniform(0.3);
        refine(&mut m, &size, None, RefineOpts::default());
        for e in m.elems() {
            assert!(
                m.tags().get_int(tid, e).is_some(),
                "child lost its part tag"
            );
        }
    }

    #[test]
    fn boundary_snapping_keeps_wall_vertices_on_geometry() {
        let spec = VesselSpec::aaa();
        let model = vessel(spec);
        let mut m = vessel_tet(spec, 3, 5);
        let size = SizeField::uniform(0.6);
        refine(&mut m, &size, Some(&model), RefineOpts::default());
        m.assert_valid();
        let wall = pumi_geom::GeomEnt::new(Dim::Face, 1);
        let mut checked = 0;
        for v in m.iter_classified(Dim::Vertex, wall) {
            let p = m.coords(v);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!(
                (r - spec.radius_at(p[2])).abs() < 1e-6,
                "wall vertex off geometry after refinement"
            );
            checked += 1;
        }
        assert!(checked > 0);
    }
}
