//! Size-driven edge-collapse coarsening.
//!
//! The inverse of refinement: edges much shorter than the size field
//! collapse, welding one endpoint onto the other and re-connecting the
//! surrounding elements. A collapse is executed only if it is provably
//! safe: the vanishing vertex may leave its geometry class
//! ([`crate::snap::collapse_allowed`]), and every re-connected element must
//! keep a positive measure and distinct vertices.

use crate::quality::{mean_ratio_coords, tet_volume, tri_area};
use crate::sizefield::SizeField;
use crate::snap::collapse_allowed;
use pumi_mesh::Mesh;
use pumi_util::tag::TagData;
use pumi_util::{Dim, FxHashSet, MeshEnt, TagId};

/// Options for [`coarsen`].
#[derive(Debug, Clone, Copy)]
pub struct CoarsenOpts {
    /// Collapse an edge when `length < collapse_ratio * h(midpoint)`.
    pub collapse_ratio: f64,
    /// Passes over the mesh (collapses enable further collapses).
    pub passes: usize,
    /// Minimum mean-ratio quality a re-connected element may have.
    pub min_quality: f64,
}

impl Default for CoarsenOpts {
    fn default() -> Self {
        CoarsenOpts {
            collapse_ratio: 0.5,
            passes: 3,
            min_quality: 0.05,
        }
    }
}

/// Statistics from a [`coarsen`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoarsenStats {
    /// Edges collapsed.
    pub collapses: usize,
    /// Collapse attempts rejected by validity checks.
    pub rejected: usize,
    /// Elements afterwards.
    pub elements_after: usize,
}

fn signed_measure(coords: &[[f64; 3]]) -> f64 {
    match coords.len() {
        3 => tri_area(coords),
        4 => tet_volume(coords),
        _ => 0.0,
    }
}

/// Try to collapse `edge`, welding vertex `gone` onto vertex `kept`.
/// Returns false (mesh untouched) if any safety check fails.
pub fn try_collapse(
    mesh: &mut Mesh,
    edge: MeshEnt,
    kept: u32,
    gone: u32,
    min_quality: f64,
) -> bool {
    let (mut deleted, mut created) = (Vec::new(), Vec::new());
    try_collapse_collect(
        mesh,
        edge,
        kept,
        gone,
        min_quality,
        &mut deleted,
        &mut created,
    )
}

/// [`try_collapse`] variant that records every deleted and created handle.
///
/// The distributed driver needs this to keep `Part` bookkeeping coherent:
/// handles in `deleted` must have their gid/remote records forgotten
/// *before* new gids are assigned (created entities may reuse the freed
/// slots), and handles in `created` (plus their closure) are the ones that
/// need fresh gids. Handles in `deleted` may already be re-occupied by the
/// time this returns — they identify *slots* whose old bookkeeping is
/// stale, not live entities.
pub(crate) fn try_collapse_collect(
    mesh: &mut Mesh,
    edge: MeshEnt,
    kept: u32,
    gone: u32,
    min_quality: f64,
    deleted: &mut Vec<MeshEnt>,
    created: &mut Vec<MeshEnt>,
) -> bool {
    let elem_dim = mesh.elem_dim();
    let d_elem = mesh.elem_dim_t();
    let vg = MeshEnt::vertex(gone);
    // Geometry rule: the vanishing vertex may only slide along its own
    // model entity — the collapse edge must classify on it.
    if !collapse_allowed(mesh.class_of(vg), mesh.class_of(edge), elem_dim) {
        return false;
    }
    // Cavity: every element touching `gone`.
    let cavity = mesh.adjacent(vg, d_elem);
    let dying: FxHashSet<MeshEnt> = mesh.adjacent(edge, d_elem).into_iter().collect();
    // Validate survivors: replace gone→kept, check measure sign and
    // distinctness.
    struct NewElem {
        verts: Vec<u32>,
        topo: pumi_mesh::Topology,
        class: pumi_geom::GeomEnt,
        tags: Vec<(TagId, TagData)>,
    }
    let mut rebuilt: Vec<NewElem> = Vec::new();
    for &e in &cavity {
        if dying.contains(&e) {
            continue;
        }
        let old_verts = mesh.verts_of(e).to_vec();
        let verts: Vec<u32> = old_verts
            .iter()
            .map(|&v| if v == gone { kept } else { v })
            .collect();
        let mut sorted = verts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != verts.len() {
            return false; // degenerate (kept already present)
        }
        let old_coords: Vec<[f64; 3]> = old_verts
            .iter()
            .map(|&v| mesh.coords(MeshEnt::vertex(v)))
            .collect();
        let new_coords: Vec<[f64; 3]> = verts
            .iter()
            .map(|&v| mesh.coords(MeshEnt::vertex(v)))
            .collect();
        let old_m = signed_measure(&old_coords);
        let new_m = signed_measure(&new_coords);
        if new_m * old_m <= 0.0 || new_m.abs() < 1e-14 {
            return false; // would invert or degenerate
        }
        if mean_ratio_coords(&new_coords).abs() < min_quality {
            return false; // would create a sliver
        }
        rebuilt.push(NewElem {
            verts,
            topo: mesh.topo(e),
            class: mesh.class_of(e),
            tags: mesh.tags().collect(e),
        });
    }
    if rebuilt.is_empty() {
        // The collapse would erase the whole patch (tiny mesh) — reject.
        return false;
    }
    // Vertices the rebuilt elements still need; they may be transiently
    // orphaned between deletion and re-creation and must not be cleaned up.
    let mut protected: FxHashSet<u32> = FxHashSet::default();
    for ne in &rebuilt {
        protected.extend(ne.verts.iter().copied());
    }
    // Record the cavity closure before deleting, then delete elements and
    // sweep orphans top-down, keeping protected vertices.
    let mut closure: FxHashSet<MeshEnt> = FxHashSet::default();
    for &e in &cavity {
        closure.extend(mesh.closure(e));
    }
    for &e in &cavity {
        mesh.delete(e);
        deleted.push(e);
    }
    for d in (0..elem_dim).rev() {
        let mut doomed: Vec<MeshEnt> = closure
            .iter()
            .filter(|s| s.dim().as_usize() == d)
            .copied()
            .collect();
        doomed.sort_unstable();
        for s in doomed {
            if !mesh.is_live(s) || mesh.up_count(s) > 0 {
                continue;
            }
            if d == 0 && protected.contains(&s.index()) {
                continue;
            }
            mesh.delete(s);
            deleted.push(s);
        }
    }
    debug_assert!(!mesh.is_live(vg), "gone vertex survived cavity deletion");
    for ne in rebuilt {
        let child = mesh.add_entity(ne.topo, &ne.verts, ne.class);
        for (tid, data) in ne.tags {
            mesh.tags_mut().set(tid, child, data);
        }
        created.push(child);
    }
    true
}

/// Collapse every edge shorter than the size field allows, in `passes`
/// sweeps. Prefers welding the vertex with the higher-dimension (more
/// interior) classification, which keeps boundary geometry intact.
///
/// # Examples
///
/// ```
/// use pumi_adapt::{coarsen, CoarsenOpts, SizeField};
///
/// let mut mesh = pumi_meshgen::tri_rect(4, 4, 1.0, 1.0);
/// let before = mesh.num_elems();
/// let stats = coarsen(&mut mesh, &SizeField::uniform(0.8), CoarsenOpts::default());
/// assert!(stats.collapses > 0);
/// assert!(mesh.num_elems() < before);
/// ```
pub fn coarsen(mesh: &mut Mesh, size: &SizeField, opts: CoarsenOpts) -> CoarsenStats {
    let mut stats = CoarsenStats::default();
    for _ in 0..opts.passes {
        let mut collapsed_this_pass = 0usize;
        for e in mesh.snapshot(Dim::Edge) {
            if !mesh.is_live(e) {
                continue;
            }
            let verts = mesh.verts_of(e).to_vec();
            let a = mesh.coords(MeshEnt::vertex(verts[0]));
            let b = mesh.coords(MeshEnt::vertex(verts[1]));
            let len =
                ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
            let mid = [
                0.5 * (a[0] + b[0]),
                0.5 * (a[1] + b[1]),
                0.5 * (a[2] + b[2]),
            ];
            if len >= opts.collapse_ratio * size.at(mid) {
                continue;
            }
            // Prefer to remove the more-interior vertex.
            let (c0, c1) = (
                mesh.class_of(MeshEnt::vertex(verts[0])),
                mesh.class_of(MeshEnt::vertex(verts[1])),
            );
            let order = if c0.dim() >= c1.dim() {
                [(verts[1], verts[0]), (verts[0], verts[1])]
            } else {
                [(verts[0], verts[1]), (verts[1], verts[0])]
            };
            let mut done = false;
            for (kept, gone) in order {
                if try_collapse(mesh, e, kept, gone, opts.min_quality) {
                    done = true;
                    break;
                }
            }
            if done {
                stats.collapses += 1;
                collapsed_this_pass += 1;
            } else {
                stats.rejected += 1;
            }
        }
        if collapsed_this_pass == 0 {
            break;
        }
    }
    stats.elements_after = mesh.num_elems();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::{all_positive, refine, RefineOpts};
    use pumi_meshgen::{tet_box, tri_rect};

    #[test]
    fn coarsen_reverses_refinement_pressure() {
        let mut m = tri_rect(2, 2, 1.0, 1.0);
        // Refine to h=0.15, then coarsen back toward h=0.6.
        refine(
            &mut m,
            &SizeField::uniform(0.15),
            None,
            RefineOpts::default(),
        );
        let fine = m.num_elems();
        let stats = coarsen(&mut m, &SizeField::uniform(0.8), CoarsenOpts::default());
        assert!(stats.collapses > 0, "nothing collapsed");
        assert!(m.num_elems() < fine, "element count not reduced");
        m.assert_valid();
        assert!(all_positive(&m));
    }

    #[test]
    fn boundary_vertices_survive_coarsening() {
        let mut m = tri_rect(4, 4, 1.0, 1.0);
        coarsen(&mut m, &SizeField::uniform(3.0), CoarsenOpts::default());
        m.assert_valid();
        // The four corners are classified on model vertices and must remain.
        let corners = m.count_classified(Dim::Vertex, Dim::Vertex);
        assert_eq!(corners, 4);
        assert!(all_positive(&m));
    }

    #[test]
    fn coarsen_3d_stays_valid() {
        let mut m = tet_box(3, 3, 3, 1.0, 1.0, 1.0);
        let before = m.num_elems();
        let stats = coarsen(&mut m, &SizeField::uniform(2.0), CoarsenOpts::default());
        m.assert_valid();
        assert!(all_positive(&m));
        assert!(stats.elements_after <= before);
    }

    #[test]
    fn no_collapse_when_sizes_match() {
        let mut m = tri_rect(4, 4, 1.0, 1.0);
        let before = m.num_elems();
        let stats = coarsen(&mut m, &SizeField::uniform(0.25), CoarsenOpts::default());
        assert_eq!(stats.collapses, 0);
        assert_eq!(m.num_elems(), before);
    }
}
