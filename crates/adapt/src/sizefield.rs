//! Size fields: the target edge length the adapted mesh should have at each
//! point of the domain.
//!
//! Analysis-driven adaptation computes these from error indicators (the
//! paper's M6 example uses "a size field computed from the hessian of the
//! mach number"); here they are analytic, including the oblique-shock field
//! that regenerates Fig 13's imbalance phenomenon.

use std::sync::Arc;

/// A target-edge-length field over the domain.
///
/// # Examples
///
/// ```
/// use pumi_adapt::SizeField;
///
/// // Fine (0.05) within 0.1 of the plane x = 0.5, coarse (0.4) away from it.
/// let s = SizeField::shock(|p| p[0] - 0.5, 0.05, 0.4, 0.1);
/// assert_eq!(s.at([0.5, 0.0, 0.0]), 0.05);
/// assert!(s.at([0.0, 0.0, 0.0]) > 0.2);
/// ```
#[derive(Clone)]
pub struct SizeField {
    f: Arc<dyn Fn([f64; 3]) -> f64 + Send + Sync>,
}

impl std::fmt::Debug for SizeField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SizeField{..}")
    }
}

impl SizeField {
    /// A uniform target size.
    pub fn uniform(h: f64) -> SizeField {
        assert!(h > 0.0);
        SizeField {
            f: Arc::new(move |_| h),
        }
    }

    /// An arbitrary analytic size field.
    pub fn analytic(f: impl Fn([f64; 3]) -> f64 + Send + Sync + 'static) -> SizeField {
        SizeField { f: Arc::new(f) }
    }

    /// A shock-layer field: size `h_min` within `width` of the zero set of
    /// `dist`, ramping linearly to `h_max` outside — the resolution pattern
    /// of a captured shock front (Fig 13's workload).
    pub fn shock(
        dist: impl Fn([f64; 3]) -> f64 + Send + Sync + 'static,
        h_min: f64,
        h_max: f64,
        width: f64,
    ) -> SizeField {
        assert!(h_min > 0.0 && h_max >= h_min && width > 0.0);
        SizeField {
            f: Arc::new(move |p| {
                let d = dist(p).abs();
                if d <= width {
                    h_min
                } else {
                    let t = ((d - width) / (2.0 * width)).min(1.0);
                    h_min + t * (h_max - h_min)
                }
            }),
        }
    }

    /// The target size at `p`.
    #[inline]
    pub fn at(&self, p: [f64; 3]) -> f64 {
        (self.f)(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_constant() {
        let s = SizeField::uniform(0.25);
        assert_eq!(s.at([0.; 3]), 0.25);
        assert_eq!(s.at([9., -3., 2.]), 0.25);
    }

    #[test]
    fn shock_profile() {
        let s = SizeField::shock(|p| p[2] - 1.0, 0.1, 1.0, 0.2);
        // On the shock plane: h_min.
        assert_eq!(s.at([0., 0., 1.0]), 0.1);
        assert_eq!(s.at([5., 5., 1.15]), 0.1);
        // Far away: h_max.
        assert!((s.at([0., 0., 5.0]) - 1.0).abs() < 1e-12);
        // In between: monotone ramp.
        let near = s.at([0., 0., 1.3]);
        let far = s.at([0., 0., 1.5]);
        assert!(near < far && near > 0.1 && far < 1.0);
    }

    #[test]
    fn analytic_wraps_closure() {
        let s = SizeField::analytic(|p| 0.1 + p[0]);
        assert!((s.at([0.4, 0., 0.]) - 0.5).abs() < 1e-12);
    }
}
