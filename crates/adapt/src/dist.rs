//! Distributed mesh adaptation (§I, §III-B): conforming refinement and
//! coarsening on a [`DistMesh`], keeping part boundaries consistent.
//!
//! # Boundary-split protocol
//!
//! The split predicate (`length > split_ratio * h(midpoint)`) is purely
//! geometric, and every copy of a shared edge has bit-identical endpoint
//! coordinates — so every residence part *independently* marks the same
//! shared edges for splitting, with no marking communication at all. Each
//! part then runs the split loop locally in a canonical order (longest
//! first, ties broken by endpoint coordinate bits — see
//! [`mod@crate::refine`]'s heap), which makes the interleaving of interacting
//! splits identical on every part *and* identical to the serial driver.
//!
//! New entities get **content-derived global ids**: a hash of the sorted
//! gids of their vertices (the mid-vertex hashes its parent edge's
//! endpoints), with the top bit set to keep them disjoint from bootstrap
//! ids (serial indices `< 2^40`) and migration-era ids
//! ([`Part::new_gid`]'s birth-part counters). Every copy of a split shared
//! edge therefore derives the *same* gid for the mid-vertex and half-edges
//! without being told — the owner's decision is reproduced rather than
//! transmitted. One phased [`PartExchange`] round then relinks remote-copy
//! local indices by gid, exactly like `distribute`'s bootstrap: each part
//! announces `(dim, gid, local index)` of its new boundary entities to the
//! inherited residence set, and a failed gid lookup on the receiver is a
//! protocol violation (diverged splits) that panics with the offending
//! entity.
//!
//! # Coarsening at the boundary
//!
//! Edge collapses whose cavity (the elements around the vanishing vertex)
//! touches the part boundary are **vetoed** — the collapse would delete or
//! create shared entities, which cannot be done unilaterally. Interior
//! collapses proceed with no communication; the veto count is reported in
//! [`AdaptStats`]. Refinement runs first, so boundary regions still honor
//! the size field's refinement demand.
//!
//! Ghost copies are not adapted: [`adapt_dist`] strips ghost layers on
//! entry and rebuilds them on request (`AdaptOpts::reghost`).

use crate::coarsen::{try_collapse_collect, CoarsenOpts};
use crate::predict::{classify, element_weight, Branch, Calibration, BRANCH_TAG, WEIGHT_TAG};
use crate::refine::{oversized_len, split_edge, HeapItem};
use crate::sizefield::SizeField;
use pumi_check::CheckOpts;
use pumi_core::overlap::{clear_overlap, grow_overlap, GhostOpts, Overlap, Reduction};
use pumi_core::{DistMesh, Part, PartExchange, NO_GID};
use pumi_field::field::Field;
use pumi_field::sync::{sync_fields, DistField};
use pumi_geom::Model;
use pumi_pcu::Comm;
use pumi_util::tag::TagKind;
use pumi_util::{Dim, FxHashMap, GlobalId, MeshEnt, PartId};
use std::collections::BinaryHeap;

/// Options for [`adapt_dist`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptOpts<'a> {
    /// Split an edge when `length > split_ratio * h(midpoint)`; `0.0`
    /// selects the serial default ([`crate::RefineOpts`]).
    pub split_ratio: f64,
    /// Run edge-collapse coarsening after refinement (boundary-touching
    /// collapses are vetoed). `None` refines only.
    pub coarsen: Option<CoarsenOpts>,
    /// Geometric model for snapping new boundary vertices.
    pub model: Option<&'a Model>,
    /// Run `pumi_check::check_dist` after each phase (collective; panics on
    /// the first violated invariant, naming the entity).
    pub check: Option<CheckOpts>,
    /// Re-grow a ghost overlap after adapting.
    pub reghost: Option<GhostOpts>,
}

impl<'a> AdaptOpts<'a> {
    /// Refinement-only adaptation with the serial defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the refinement split ratio.
    pub fn split_ratio(mut self, r: f64) -> Self {
        self.split_ratio = r;
        self
    }

    /// Enable coarsening with the given options.
    pub fn coarsen(mut self, co: CoarsenOpts) -> Self {
        self.coarsen = Some(co);
        self
    }

    /// Snap new boundary vertices to `model`.
    pub fn model(mut self, model: &'a Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Verify distributed invariants after every phase.
    pub fn check(mut self, opts: CheckOpts) -> Self {
        self.check = Some(opts);
        self
    }

    /// Re-grow a ghost overlap after adapting.
    pub fn reghost(mut self, opts: GhostOpts) -> Self {
        self.reghost = Some(opts);
        self
    }

    fn effective_split_ratio(&self) -> f64 {
        if self.split_ratio > 0.0 {
            self.split_ratio
        } else {
            crate::RefineOpts::default().split_ratio
        }
    }
}

/// Statistics from one [`adapt_dist`] round (world-global).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptStats {
    /// Edge splits, each counted once by the split edge's owner — equals
    /// the serial driver's count for the same mesh and size field.
    pub splits: u64,
    /// Splits of part-boundary (shared) edges, counted by the owner.
    pub boundary_splits: u64,
    /// Edge collapses performed.
    pub collapses: u64,
    /// Collapse opportunities vetoed because the cavity touched a part
    /// boundary.
    pub vetoed_collapses: u64,
    /// Elements in the distributed mesh afterwards.
    pub elements_after: u64,
}

/// Stamp every element of every local part with its *calibrated* predicted
/// post-adaptation weight for `size` (the [`WEIGHT_TAG`] Real tag ParMA's
/// weighted improve balances) and its prediction [`Branch`] (the
/// [`BRANCH_TAG`] Int tag). Both tags ride migration, so after ParMA has
/// diffused the speculative partition, [`gather_branch_loads`] can still
/// attribute each part's predicted load to the branch that produced it.
/// Local; call before the balance step of each round.
pub fn stamp_weights(dm: &mut DistMesh, size: &SizeField, cal: &Calibration) {
    for part in dm.parts.iter_mut() {
        let d_elem = part.mesh.elem_dim_t();
        let rows: Vec<(MeshEnt, f64, Branch)> = part
            .mesh
            .iter(d_elem)
            .map(|e| {
                let b = classify(&part.mesh, e, size);
                (e, element_weight(&part.mesh, e, size) * cal.factor(b), b)
            })
            .collect();
        let tags = part.mesh.tags_mut();
        let wtid = tags.declare(WEIGHT_TAG, TagKind::Double, 1);
        let btid = tags.declare(BRANCH_TAG, TagKind::Int, 1);
        for (e, w, b) in rows {
            tags.set_dbl(wtid, e, w);
            tags.set_int(btid, e, b as i64);
        }
    }
}

/// Per-part predicted load split by [`Branch`]: for every part, the sum of
/// its elements' [`WEIGHT_TAG`] weights grouped by their [`BRANCH_TAG`]
/// (missing tags count as weight 1 in the keep branch, matching
/// `EntityLoads::gather_weighted`'s convention). World-global result,
/// indexed by part id. Collective; run between the balance step and
/// [`adapt_dist`] so the sums describe the partition adaptation will act
/// on.
pub fn gather_branch_loads(comm: &Comm, dm: &DistMesh) -> Vec<[f64; 3]> {
    let nparts = dm.map.nparts();
    let mut flat = vec![0f64; 3 * nparts];
    for p in &dm.parts {
        let tags = p.mesh.tags();
        let wtid = tags.find(WEIGHT_TAG);
        let btid = tags.find(BRANCH_TAG);
        for e in p.mesh.elems() {
            let w = wtid.and_then(|t| tags.get_dbl(t, e)).unwrap_or(1.0);
            let b = btid
                .and_then(|t| tags.get_int(t, e))
                .map_or(Branch::Keep, |i| Branch::from_index(i.max(0) as usize));
            flat[b as usize * nparts + p.id as usize] += w;
        }
    }
    let flat = comm.allreduce_sum_f64_vec(&flat);
    (0..nparts)
        .map(|p| [flat[p], flat[nparts + p], flat[2 * nparts + p]])
        .collect()
}

/// A deterministic, partition-invariant global id for an entity derived
/// from the sorted gids of its vertices (FNV-1a, top bit set). Every part
/// holding a copy of the same new entity computes the same id, so boundary
/// splits need no gid communication; serial and distributed adaptation of
/// the same mesh produce identical ids (and thus identical `struct_hash`).
fn content_gid(dim: Dim, mut vgids: Vec<GlobalId>) -> GlobalId {
    vgids.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    eat(dim.as_usize() as u8);
    for g in vgids {
        for b in g.to_le_bytes() {
            eat(b);
        }
    }
    // Top bit marks content-derived ids (bootstrap serial indices stay
    // below 2^40 and birth-part counter ids keep it clear for any sane
    // part count); the cleared low bit dodges the NO_GID sentinel.
    (h | 1 << 63) & !1
}

/// Pending residence of entities created during the local refinement pass:
/// the parts (other than this one) that hold — or are about to hold — a
/// copy, inherited from the split parent. Filled per part, drained by the
/// relink exchange.
type Pending = FxHashMap<MeshEnt, Vec<PartId>>;

fn residence_of(part: &Part, pending: &Pending, e: MeshEnt) -> Vec<PartId> {
    pending
        .get(&e)
        .cloned()
        .unwrap_or_else(|| part.copy_parts(e))
}

/// The local refinement pass of one part. Returns
/// `(owned splits, owned boundary splits)`.
fn refine_part(
    part: &mut Part,
    size: &SizeField,
    model: Option<&Model>,
    split_ratio: f64,
    pending: &mut Pending,
    mut field: Option<&mut Field>,
) -> (u64, u64) {
    let elem_dim = part.mesh.elem_dim();
    let d_elem = part.mesh.elem_dim_t();
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    for e in part.mesh.snapshot(Dim::Edge) {
        if let Some(len) = oversized_len(&part.mesh, part.mesh.verts_of(e), size, split_ratio) {
            heap.push(HeapItem::new(&part.mesh, e, len));
        }
    }
    let mut splits = 0u64;
    let mut boundary_splits = 0u64;
    while let Some(item) = heap.pop() {
        // Lazy validation as in the serial driver: slots may be reused.
        if !part.mesh.is_live(item.edge) {
            continue;
        }
        let edge = item.edge;
        let [a, b] = {
            let verts = part.mesh.verts_of(edge);
            if [verts[0], verts[1]] != item.verts && [verts[1], verts[0]] != item.verts {
                continue;
            }
            [verts[0], verts[1]]
        };
        if oversized_len(&part.mesh, &[a, b], size, split_ratio).is_none() {
            continue;
        }
        let (ga, gb) = (
            part.gid_of(MeshEnt::vertex(a)),
            part.gid_of(MeshEnt::vertex(b)),
        );
        // Residence the new entities inherit. An entity created earlier in
        // this same pass is in `pending` rather than the remote lists.
        let edge_res = residence_of(part, pending, edge);
        // 3D: faces around the edge that live on a part boundary — their
        // children and median edge inherit the face's residence.
        let mut face_res: Vec<(u32, Vec<PartId>)> = Vec::new();
        if elem_dim == 3 {
            for f in part.mesh.up_ents(edge) {
                let res = residence_of(part, pending, f);
                if res.is_empty() {
                    continue;
                }
                let x = part
                    .mesh
                    .verts_of(f)
                    .iter()
                    .copied()
                    .find(|&v| v != a && v != b)
                    .expect("degenerate face");
                face_res.push((x, res));
            }
        }
        // Forget doomed bookkeeping (gids, remotes, pending rows) *before*
        // the cavity operation can reuse the freed slots.
        let mut doomed: Vec<MeshEnt> = part.mesh.adjacent(edge, d_elem);
        if elem_dim == 3 {
            doomed.extend(part.mesh.up_ents(edge));
        }
        doomed.push(edge);
        for d in doomed {
            pending.remove(&d);
            part.forget(d);
            if let Some(f) = field.as_deref_mut() {
                f.remove(d);
            }
        }

        let m = split_edge(&mut part.mesh, edge, model);
        splits += u64::from(edge_res.is_empty() || part.id < edge_res[0]);

        // Content-derived gids: the mid-vertex from the parent endpoints,
        // everything else (all new entities contain the mid-vertex) from
        // its own vertices.
        part.set_gid(m, content_gid(Dim::Vertex, vec![ga, gb]));
        for d in 1..=elem_dim {
            let dim = Dim::from_usize(d);
            for e in part.mesh.adjacent(m, dim) {
                if part.gid_of(e) == NO_GID {
                    let vg: Vec<GlobalId> = part
                        .mesh
                        .verts_of(e)
                        .iter()
                        .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                        .collect();
                    part.set_gid(e, content_gid(dim, vg));
                }
            }
        }
        // Linear interpolation of vertex field values onto the mid-vertex.
        // Both copies of a shared split average the same operands, so the
        // result is bit-identical across parts.
        if let Some(f) = field.as_deref_mut() {
            let avg: Option<Vec<f64>> = match (
                f.get(MeshEnt::vertex(a)).map(<[f64]>::to_vec),
                f.get(MeshEnt::vertex(b)),
            ) {
                (Some(va), Some(vb)) => {
                    Some(va.iter().zip(vb).map(|(x, y)| 0.5 * (x + y)).collect())
                }
                _ => None,
            };
            if let Some(avg) = avg {
                f.set(m, &avg);
            }
        }
        // Residence inheritance: new boundary entities go to `pending` for
        // the relink round (their remote indices are not yet known).
        if !edge_res.is_empty() {
            if part.id < edge_res[0] {
                boundary_splits += 1;
            }
            pending.insert(m, edge_res.clone());
            for half in [[a, m.index()], [m.index(), b]] {
                let he = part
                    .mesh
                    .find_entity(Dim::Edge, &half)
                    .expect("half edge missing after split");
                pending.insert(he, edge_res.clone());
            }
        }
        for (x, res) in face_res {
            for tri in [[a, m.index(), x], [m.index(), b, x]] {
                let f = part
                    .mesh
                    .find_entity(Dim::Face, &tri)
                    .expect("child face missing after split");
                pending.insert(f, res.clone());
            }
            let med = part
                .mesh
                .find_entity(Dim::Edge, &[m.index(), x])
                .expect("median edge missing after split");
            pending.insert(med, res);
        }
        // New candidates: every edge at the new vertex.
        for e in part.mesh.adjacent(m, Dim::Edge) {
            if let Some(len) = oversized_len(&part.mesh, part.mesh.verts_of(e), size, split_ratio) {
                heap.push(HeapItem::new(&part.mesh, e, len));
            }
        }
    }
    (splits, boundary_splits)
}

/// Re-establish remote-copy links for the entities created by refinement:
/// each part announces `(dim, gid, local index)` of its pending boundary
/// entities to their inherited residence parts; receivers resolve by gid.
/// Mirrors `distribute`'s bootstrap relink. Collective.
fn relink(comm: &Comm, dm: &mut DistMesh, pendings: &[Pending]) {
    let _span = pumi_obs::span!("adapt.relink");
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        let mut items: Vec<(MeshEnt, &Vec<PartId>)> =
            pendings[slot].iter().map(|(&e, r)| (e, r)).collect();
        items.sort_by_key(|&(e, _)| e);
        for (e, res) in items {
            let gid = part.gid_of(e);
            debug_assert_ne!(gid, NO_GID, "pending entity without gid");
            for &q in res {
                let w = ex.to(part.id, q);
                w.put_u8(e.dim().as_usize() as u8);
                w.put_u64(gid);
                w.put_u32(e.index());
            }
        }
    }
    let mut incoming: FxHashMap<PartId, FxHashMap<MeshEnt, Vec<(PartId, u32)>>> =
        FxHashMap::default();
    for (from, to, mut r) in ex.finish() {
        let slot = incoming.entry(to).or_default();
        while !r.is_done() {
            let byte = r.get_u8();
            let d = Dim::try_from_u8(byte)
                .unwrap_or_else(|| panic!("corrupt relink frame {from}->{to}: dim {byte}"));
            let gid = r.get_u64();
            let ridx = r.get_u32();
            // The receiver derived the same gid independently; failure to
            // resolve it means the parts disagreed about a boundary split.
            let local = dm.part(to).find_gid(d, gid).unwrap_or_else(|| {
                panic!(
                    "adapt_dist: part {to} has no copy of split entity {d:?} gid {gid:#x} \
                     announced by part {from} — boundary splits diverged"
                )
            });
            slot.entry(local).or_default().push((from, ridx));
        }
    }
    for (to, ents) in incoming {
        let part = dm.part_mut(to);
        for (e, copies) in ents {
            part.set_remotes(e, copies);
        }
    }
}

/// The local coarsening pass of one part. Returns `(collapses, vetoes)`.
fn coarsen_part(
    part: &mut Part,
    size: &SizeField,
    co: CoarsenOpts,
    mut field: Option<&mut Field>,
) -> (u64, u64) {
    let d_elem = part.mesh.elem_dim_t();
    let mut collapses = 0u64;
    let mut vetoed = 0u64;
    for _ in 0..co.passes {
        let mut collapsed_this_pass = 0usize;
        for e in part.mesh.snapshot(Dim::Edge) {
            if !part.mesh.is_live(e) {
                continue;
            }
            let verts = part.mesh.verts_of(e).to_vec();
            let pa = part.mesh.coords(MeshEnt::vertex(verts[0]));
            let pb = part.mesh.coords(MeshEnt::vertex(verts[1]));
            let len = ((pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2) + (pa[2] - pb[2]).powi(2))
                .sqrt();
            let mid = [
                0.5 * (pa[0] + pb[0]),
                0.5 * (pa[1] + pb[1]),
                0.5 * (pa[2] + pb[2]),
            ];
            if len >= co.collapse_ratio * size.at(mid) {
                continue;
            }
            // Prefer to remove the more-interior vertex, as in the serial
            // driver.
            let (c0, c1) = (
                part.mesh.class_of(MeshEnt::vertex(verts[0])),
                part.mesh.class_of(MeshEnt::vertex(verts[1])),
            );
            let order = if c0.dim() >= c1.dim() {
                [(verts[1], verts[0]), (verts[0], verts[1])]
            } else {
                [(verts[0], verts[1]), (verts[1], verts[0])]
            };
            let mut done = false;
            let mut saw_veto = false;
            for (kept, gone) in order {
                // Distributed safety: every deleted or created entity lies
                // in the closure of the cavity around `gone`, so a fully
                // interior cavity can be modified without communication —
                // and anything else is vetoed.
                let cavity = part.mesh.adjacent(MeshEnt::vertex(gone), d_elem);
                if cavity.iter().any(|&el| part.closure_touches_boundary(el)) {
                    saw_veto = true;
                    continue;
                }
                let (mut deleted, mut created) = (Vec::new(), Vec::new());
                if try_collapse_collect(
                    &mut part.mesh,
                    e,
                    kept,
                    gone,
                    co.min_quality,
                    &mut deleted,
                    &mut created,
                ) {
                    // Stale bookkeeping first — created entities may have
                    // reused the freed slots.
                    for d in deleted {
                        part.forget(d);
                        if let Some(f) = field.as_deref_mut() {
                            f.remove(d);
                        }
                    }
                    for c in created {
                        for sub in part.mesh.closure(c) {
                            if part.gid_of(sub) == NO_GID {
                                let vg: Vec<GlobalId> = part
                                    .mesh
                                    .verts_of(sub)
                                    .iter()
                                    .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                                    .collect();
                                part.set_gid(sub, content_gid(sub.dim(), vg));
                            }
                        }
                    }
                    done = true;
                    break;
                }
            }
            if done {
                collapses += 1;
                collapsed_this_pass += 1;
            } else if saw_veto {
                vetoed += 1;
            }
        }
        if collapsed_this_pass == 0 {
            break;
        }
    }
    (collapses, vetoed)
}

/// Adapt a distributed mesh to `size`: conforming edge-split refinement
/// (part boundaries split collectively via the content-gid protocol — see
/// the module docs), then optional interior edge-collapse coarsening, then
/// optional ghost-layer rebuild. Collective; every rank must pass the same
/// options.
///
/// Partition invariance: for the same initial mesh and size field, the
/// refined distributed mesh is entity-for-entity identical to the serial
/// [`crate::refine()`] result (same gids, coordinates, classification), so
/// `pumi_io::struct_hash` matches across any part count.
///
/// # Examples
///
/// ```
/// use pumi_adapt::dist::{adapt_dist, AdaptOpts};
/// use pumi_adapt::SizeField;
/// use pumi_core::{distribute, PartMap};
/// use pumi_util::PartId;
///
/// pumi_pcu::execute(2, |c| {
///     let serial = pumi_meshgen::tri_rect(4, 4, 1.0, 1.0);
///     let d = serial.elem_dim_t();
///     let mut labels = vec![0 as PartId; serial.index_space(d)];
///     for e in serial.iter(d) {
///         labels[e.idx()] = (serial.centroid(e)[0] * 2.0).floor().min(1.0) as PartId;
///     }
///     let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
///     let size = SizeField::uniform(0.15);
///     let opts = AdaptOpts::new().check(pumi_check::CheckOpts::all());
///     let stats = adapt_dist(c, &mut dm, &size, opts);
///     assert!(stats.splits > 0);
/// });
/// ```
pub fn adapt_dist(comm: &Comm, dm: &mut DistMesh, size: &SizeField, opts: AdaptOpts) -> AdaptStats {
    adapt_inner(comm, dm, size, None, opts)
}

/// [`adapt_dist`] carrying a vertex field through the adaptation:
/// mid-vertices of split edges get the linear interpolation of their
/// parent endpoints (bit-identical on every copy of a shared edge), and
/// values on deleted vertices are dropped. Ends with an owner-to-copies
/// sync over the relinked boundary. Collective.
pub fn adapt_dist_with_field(
    comm: &Comm,
    dm: &mut DistMesh,
    size: &SizeField,
    field: &mut DistField,
    opts: AdaptOpts,
) -> AdaptStats {
    assert_eq!(field.len(), dm.parts.len(), "field not aligned with parts");
    let stats = adapt_inner(comm, dm, size, Some(field), opts);
    let ov = Overlap::from_dist(dm);
    sync_fields(comm, dm, &ov, field, Reduction::Insert);
    stats
}

fn adapt_inner(
    comm: &Comm,
    dm: &mut DistMesh,
    size: &SizeField,
    mut field: Option<&mut DistField>,
    opts: AdaptOpts,
) -> AdaptStats {
    let _span = pumi_obs::span!("adapt.dist");
    // Ghost copies are not adapted (they are read-only mirrors); strip
    // them and rebuild on request below.
    clear_overlap(dm);
    let split_ratio = opts.effective_split_ratio();
    let mut stats = AdaptStats::default();

    // Refinement: communication-free consistent marking, local canonical
    // split loops, one relink round.
    {
        let _s = pumi_obs::span!("adapt.refine");
        let mut pendings: Vec<Pending> = Vec::with_capacity(dm.parts.len());
        let mut splits = 0u64;
        let mut boundary = 0u64;
        for (slot, part) in dm.parts.iter_mut().enumerate() {
            let mut pending = Pending::default();
            let f = field.as_deref_mut().map(|fs| &mut fs[slot]);
            let (s, b) = refine_part(part, size, opts.model, split_ratio, &mut pending, f);
            splits += s;
            boundary += b;
            pendings.push(pending);
        }
        relink(comm, dm, &pendings);
        stats.splits = comm.allreduce_sum_u64(splits);
        stats.boundary_splits = comm.allreduce_sum_u64(boundary);
    }
    if let Some(co) = opts.check {
        pumi_check::check_dist(comm, dm, co)
            .unwrap_or_else(|e| panic!("adapt_dist: invariants violated after refinement: {e}"));
    }

    // Coarsening: interior-only, no communication; boundary cavities are
    // vetoed and reported.
    if let Some(co) = opts.coarsen {
        let _s = pumi_obs::span!("adapt.coarsen");
        let mut collapses = 0u64;
        let mut vetoed = 0u64;
        for (slot, part) in dm.parts.iter_mut().enumerate() {
            let f = field.as_deref_mut().map(|fs| &mut fs[slot]);
            let (c, v) = coarsen_part(part, size, co, f);
            collapses += c;
            vetoed += v;
        }
        stats.collapses = comm.allreduce_sum_u64(collapses);
        stats.vetoed_collapses = comm.allreduce_sum_u64(vetoed);
        if let Some(c) = opts.check {
            pumi_check::check_dist(comm, dm, c).unwrap_or_else(|e| {
                panic!("adapt_dist: invariants violated after coarsening: {e}")
            });
        }
    }

    if let Some(gopts) = opts.reghost {
        grow_overlap(comm, dm, gopts);
        if let Some(c) = opts.check {
            pumi_check::check_dist(comm, dm, c).unwrap_or_else(|e| {
                panic!("adapt_dist: invariants violated after reghosting: {e}")
            });
        }
    }

    stats.elements_after = dm.global_sum(comm, |p| {
        p.mesh.elems().filter(|&e| !p.is_ghost(e)).count() as u64
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::all_positive;
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::{tet_box, tri_rect};
    use pumi_pcu::execute;

    fn quadrant_labels(serial: &pumi_mesh::Mesh) -> Vec<PartId> {
        let d = serial.elem_dim_t();
        let mut labels = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            let c = serial.centroid(e);
            let px = u32::from(c[0] >= 0.5);
            let py = u32::from(c[1] >= 0.5);
            labels[e.idx()] = py * 2 + px;
        }
        labels
    }

    #[test]
    fn distributed_refinement_matches_serial_counts() {
        execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let size = SizeField::uniform(0.15);
            // Serial reference (mesh generation is deterministic).
            let mut reference = tri_rect(4, 4, 1.0, 1.0);
            let rstats = crate::refine(&mut reference, &size, None, crate::RefineOpts::default());
            let labels = quadrant_labels(&serial);
            let mut dm = distribute(c, PartMap::contiguous(4, 2), &serial, &labels);
            let stats = adapt_dist(
                c,
                &mut dm,
                &size,
                AdaptOpts::new().check(pumi_check::CheckOpts::all()),
            );
            assert_eq!(stats.splits as usize, rstats.splits, "split count differs");
            assert!(stats.boundary_splits > 0, "no boundary edge was split");
            assert_eq!(
                stats.elements_after as usize, rstats.elements_after,
                "element count differs from serial refinement"
            );
            for p in &dm.parts {
                p.mesh.assert_valid();
                assert!(all_positive(&p.mesh));
                assert!(pumi_core::dist::check_gids(p).is_empty());
            }
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    #[test]
    fn distributed_refinement_3d_with_shared_faces() {
        execute(2, |c| {
            let serial = tet_box(2, 2, 2, 1.0, 1.0, 1.0);
            let size = SizeField::uniform(0.45);
            let mut reference = tet_box(2, 2, 2, 1.0, 1.0, 1.0);
            let rstats = crate::refine(&mut reference, &size, None, crate::RefineOpts::default());
            let labels = quadrant_labels(&serial);
            let mut dm = distribute(c, PartMap::contiguous(4, 2), &serial, &labels);
            let stats = adapt_dist(
                c,
                &mut dm,
                &size,
                AdaptOpts::new().check(pumi_check::CheckOpts::all()),
            );
            assert_eq!(stats.splits as usize, rstats.splits);
            assert_eq!(stats.elements_after as usize, rstats.elements_after);
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    #[test]
    fn coarsening_is_interior_only_and_checked() {
        execute(2, |c| {
            let serial = tri_rect(8, 8, 1.0, 1.0);
            let labels = quadrant_labels(&serial);
            let mut dm = distribute(c, PartMap::contiguous(4, 2), &serial, &labels);
            let before = dm.global_sum(c, |p| p.mesh.num_elems() as u64);
            // Coarsen hard: target much larger than the lattice spacing.
            let size = SizeField::uniform(0.6);
            let opts = AdaptOpts::new()
                .coarsen(CoarsenOpts::default())
                .check(pumi_check::CheckOpts::all());
            let stats = adapt_dist(c, &mut dm, &size, opts);
            assert!(stats.collapses > 0, "nothing collapsed");
            assert!(stats.vetoed_collapses > 0, "boundary veto never fired");
            assert!(stats.elements_after < before);
            for p in &dm.parts {
                p.mesh.assert_valid();
                assert!(all_positive(&p.mesh));
            }
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    #[test]
    fn adapt_with_field_interpolates_and_stays_synced() {
        execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let labels = quadrant_labels(&serial);
            let mut dm = distribute(c, PartMap::contiguous(4, 2), &serial, &labels);
            let template = Field::new("temp", pumi_field::field::FieldShape::Linear, 1);
            let mut field = pumi_field::sync::dist_field(&dm, &template);
            for (f, p) in field.iter_mut().zip(&dm.parts) {
                let mesh = &p.mesh;
                f.set_from(mesh, |x| vec![x[0] + 2.0 * x[1]]);
            }
            let size = SizeField::uniform(0.15);
            let opts = AdaptOpts::new().check(pumi_check::CheckOpts::all());
            let stats = adapt_dist_with_field(c, &mut dm, &size, &mut field, opts);
            assert!(stats.splits > 0);
            // The field stayed linear: interpolation reproduces x + 2y at
            // every (new) vertex, and copies agree bit-for-bit.
            for (f, p) in field.iter().zip(&dm.parts) {
                for v in p.mesh.iter(Dim::Vertex) {
                    let x = p.mesh.coords(v);
                    let got = f.get_scalar(v).expect("vertex lost its field value");
                    assert!(
                        (got - (x[0] + 2.0 * x[1])).abs() < 1e-12,
                        "interpolated value off: {got}"
                    );
                }
            }
            pumi_check::check_field_sync(c, &dm, &field).expect("copies out of sync");
        });
    }

    #[test]
    fn reghost_after_adapt() {
        execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let labels = quadrant_labels(&serial);
            let mut dm = distribute(c, PartMap::contiguous(4, 2), &serial, &labels);
            grow_overlap(c, &mut dm, GhostOpts::new());
            let size = SizeField::uniform(0.2);
            let opts = AdaptOpts::new()
                .check(pumi_check::CheckOpts::all())
                .reghost(GhostOpts::new());
            adapt_dist(c, &mut dm, &size, opts);
            let ghosts = dm.global_sum(c, |p| p.num_ghosts() as u64);
            assert!(ghosts > 0, "ghost layer not rebuilt");
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }
}
