//! Mesh adaptation — the workload that motivates PUMI's dynamic mesh
//! updates and ParMA's predictive balancing (§I, Figs 7/8/13).
//!
//! * [`sizefield`] — target-size fields, including the oblique-shock layer
//!   of the ONERA M6 experiment,
//! * [`refine()`] — conforming edge-split refinement with boundary snapping
//!   and tag inheritance,
//! * [`coarsen()`] — safety-checked edge-collapse coarsening,
//! * [`quality`] — mean-ratio element quality,
//! * [`snap`] — geometry projection for new/welded boundary vertices,
//! * [`predict`] — predictive post-adaptation load estimation (§III-B).

pub mod coarsen;
pub mod predict;
pub mod quality;
pub mod refine;
pub mod sizefield;
pub mod snap;

pub use coarsen::{coarsen, CoarsenOpts, CoarsenStats};
pub use predict::{element_weight, predicted_loads, predicted_total};
pub use quality::{mean_ratio, measure, quality_stats};
pub use refine::{refine, split_edge, RefineOpts, RefineStats};
pub use sizefield::SizeField;
