//! Mesh adaptation — the workload that motivates PUMI's dynamic mesh
//! updates and ParMA's predictive balancing (§I, Figs 7/8/13).
//!
//! * [`sizefield`] — target-size fields, including the oblique-shock layer
//!   of the ONERA M6 experiment,
//! * [`refine()`] — conforming edge-split refinement with boundary snapping
//!   and tag inheritance,
//! * [`coarsen()`] — safety-checked edge-collapse coarsening,
//! * [`quality`] — mean-ratio element quality,
//! * [`snap`] — geometry projection for new/welded boundary vertices,
//! * [`predict`] — predictive post-adaptation load estimation with
//!   per-branch empirical calibration (§III-B),
//! * [`dist`] — distributed adaptation on a [`pumi_core::DistMesh`] with
//!   boundary-consistent splits ([`adapt_dist`]).

#![warn(missing_docs)]

pub mod coarsen;
pub mod dist;
pub mod predict;
pub mod quality;
pub mod refine;
pub mod sizefield;
pub mod snap;

pub use coarsen::{coarsen, CoarsenOpts, CoarsenStats};
pub use dist::{
    adapt_dist, adapt_dist_with_field, gather_branch_loads, stamp_weights, AdaptOpts, AdaptStats,
};
pub use predict::{
    classify, element_weight, predicted_loads, predicted_total, prediction_error_pct, Branch,
    Calibration, Sample, BRANCH_TAG, WEIGHT_TAG,
};
pub use quality::{mean_ratio, measure, quality_stats};
pub use refine::{refine, split_edge, RefineOpts, RefineStats};
pub use sizefield::SizeField;
