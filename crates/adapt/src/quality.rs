//! Element quality metrics.
//!
//! Mean-ratio shape quality for simplices: 1 for the equilateral element,
//! → 0 as the element degenerates, negative if inverted. Adaptation
//! monitors this (mesh modification must not produce invalid elements), and
//! the examples report it the way the paper's adaptive workflows do.

use pumi_mesh::Mesh;
use pumi_util::MeshEnt;

fn coords_of(mesh: &Mesh, e: MeshEnt) -> Vec<[f64; 3]> {
    mesh.verts_of(e)
        .iter()
        .map(|&v| mesh.coords(MeshEnt::vertex(v)))
        .collect()
}

/// Signed area of a triangle (z ignored — 2D meshes live in the z=0 plane).
pub fn tri_area(p: &[[f64; 3]]) -> f64 {
    0.5 * ((p[1][0] - p[0][0]) * (p[2][1] - p[0][1]) - (p[2][0] - p[0][0]) * (p[1][1] - p[0][1]))
}

/// Signed volume of a tetrahedron.
pub fn tet_volume(p: &[[f64; 3]]) -> f64 {
    let u = [p[1][0] - p[0][0], p[1][1] - p[0][1], p[1][2] - p[0][2]];
    let v = [p[2][0] - p[0][0], p[2][1] - p[0][1], p[2][2] - p[0][2]];
    let w = [p[3][0] - p[0][0], p[3][1] - p[0][1], p[3][2] - p[0][2]];
    (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
        + u[2] * (v[0] * w[1] - v[1] * w[0]))
        / 6.0
}

fn edge_len2_sum(p: &[[f64; 3]]) -> f64 {
    let mut s = 0.0;
    for i in 0..p.len() {
        for j in i + 1..p.len() {
            s += (p[i][0] - p[j][0]).powi(2)
                + (p[i][1] - p[j][1]).powi(2)
                + (p[i][2] - p[j][2]).powi(2);
        }
    }
    s
}

/// Signed measure (area/volume) of a simplex element.
pub fn measure(mesh: &Mesh, e: MeshEnt) -> f64 {
    let p = coords_of(mesh, e);
    match p.len() {
        3 => tri_area(&p),
        4 => tet_volume(&p),
        _ => panic!("measure: only simplices supported"),
    }
}

/// Mean-ratio quality in [−1, 1]: 1 = equilateral, ≤0 = degenerate or
/// inverted.
pub fn mean_ratio(mesh: &Mesh, e: MeshEnt) -> f64 {
    mean_ratio_coords(&coords_of(mesh, e))
}

/// [`mean_ratio`] on raw simplex coordinates (3 = triangle, 4 = tet) —
/// used to evaluate hypothetical elements before creating them.
pub fn mean_ratio_coords(p: &[[f64; 3]]) -> f64 {
    match p.len() {
        3 => {
            // 4*sqrt(3)*A / (sum of squared edge lengths)
            let a = tri_area(p);
            let s = edge_len2_sum(p);
            if s <= 0.0 {
                0.0
            } else {
                4.0 * 3f64.sqrt() * a / s
            }
        }
        4 => {
            // Normalized mean ratio: 12 * (3V)^(2/3) / sum l^2, signed.
            let v = tet_volume(p);
            let s = edge_len2_sum(p);
            if s <= 0.0 {
                return 0.0;
            }
            let sign = v.signum();
            sign * 12.0 * (3.0 * v.abs()).powf(2.0 / 3.0) / s
        }
        _ => panic!("mean_ratio: only simplices supported"),
    }
}

/// (min, mean) quality over all elements.
pub fn quality_stats(mesh: &Mesh) -> (f64, f64) {
    let mut min = f64::MAX;
    let mut sum = 0.0;
    let mut n = 0usize;
    for e in mesh.elems() {
        let q = mean_ratio(mesh, e);
        min = min.min(q);
        sum += q;
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (min, sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_mesh::{Topology, NO_GEOM};
    use pumi_meshgen::tet_box;

    #[test]
    fn equilateral_triangle_quality_is_one() {
        let mut m = Mesh::new(2);
        let a = m.add_vertex([0., 0., 0.], NO_GEOM).index();
        let b = m.add_vertex([1., 0., 0.], NO_GEOM).index();
        let c = m.add_vertex([0.5, 3f64.sqrt() / 2.0, 0.], NO_GEOM).index();
        let t = m.add_element(Topology::Triangle, &[a, b, c], NO_GEOM);
        assert!((mean_ratio(&m, t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_triangle_quality_is_zero() {
        let mut m = Mesh::new(2);
        let a = m.add_vertex([0., 0., 0.], NO_GEOM).index();
        let b = m.add_vertex([1., 0., 0.], NO_GEOM).index();
        let c = m.add_vertex([2., 0., 0.], NO_GEOM).index();
        let t = m.add_element(Topology::Triangle, &[a, b, c], NO_GEOM);
        assert!(mean_ratio(&m, t).abs() < 1e-12);
    }

    #[test]
    fn regular_tet_quality_is_one() {
        let mut m = Mesh::new(3);
        // Regular tetrahedron with unit edges.
        let a = m.add_vertex([0., 0., 0.], NO_GEOM).index();
        let b = m.add_vertex([1., 0., 0.], NO_GEOM).index();
        let c = m.add_vertex([0.5, 3f64.sqrt() / 2.0, 0.], NO_GEOM).index();
        let d = m
            .add_vertex([0.5, 3f64.sqrt() / 6.0, (2f64 / 3.0).sqrt()], NO_GEOM)
            .index();
        let t = m.add_element(Topology::Tet, &[a, b, c, d], NO_GEOM);
        assert!((mean_ratio(&m, t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kuhn_tets_have_reasonable_quality() {
        let m = tet_box(2, 2, 2, 1.0, 1.0, 1.0);
        let (min, mean) = quality_stats(&m);
        assert!(min > 0.3, "min quality {min}");
        assert!(mean > min);
        // Total volume check through the measure helper.
        let vol: f64 = m.elems().map(|e| measure(&m, e)).map(f64::abs).sum();
        assert!((vol - 1.0).abs() < 1e-9);
    }
}
