//! Predictive load estimation (§III-B).
//!
//! "Large imbalance spikes are also observed when predictively load
//! balancing for mesh adaptation based on the estimated target mesh
//! resolution at each mesh vertex." Before adapting, each element's
//! post-adaptation element count is estimated as `(current edge length /
//! target size)^dim`; balancing these *weights* instead of the current
//! element counts prevents the Fig 13 blow-up.

use crate::coarsen::CoarsenOpts;
use crate::sizefield::SizeField;
use pumi_mesh::Mesh;
use pumi_util::{Dim, MeshEnt, PartId};

/// The well-known per-element Real tag predictive balancing stores
/// calibrated [`element_weight`]s in — the tag `parma::improve_weighted`
/// reads. Rides migration, so moved elements keep their predicted load.
pub const WEIGHT_TAG: &str = "parma:weight";

/// The companion Int tag recording each element's predicted [`Branch`]
/// (as `Branch as i64`), so realized loads can be attributed back to the
/// branch that predicted them after ParMA has shuffled elements around.
pub const BRANCH_TAG: &str = "adapt:branch";

/// Floor on the size-field value at an evaluation point. A degenerate
/// size field (`h → 0`, or an analytic field gone negative) would make
/// `ratio.powi(dim)` blow up to `inf`, and one poisoned element then
/// corrupts its whole part's predicted load.
pub const H_FLOOR: f64 = 1e-9;

/// Cap on one element's predicted weight. Even with `h` floored, a
/// near-degenerate size value predicts astronomically many children —
/// more than any bounded number of adapt rounds can realize — so the
/// weight is saturated here and the calibration loop absorbs the rest.
pub const MAX_ELEMENT_WEIGHT: f64 = 1e6;

/// Which way the size field pushes an element: the three prediction
/// branches of [`element_weight`], each with its own empirical correction
/// factor in [`Calibration`] (the overshoot is branch-dependent: refine
/// predictions assume every oversized edge splits to exactly `h`, collapse
/// predictions ignore boundary vetoes, keep predictions are nearly exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Branch {
    /// `L/h ≥ 1`: refinement territory.
    Refine = 0,
    /// In the keep band: the element stays as it is.
    Keep = 1,
    /// Below the collapse band: coarsening territory.
    Collapse = 2,
}

impl Branch {
    /// All branches, indexable by `Branch as usize`.
    pub const ALL: [Branch; 3] = [Branch::Refine, Branch::Keep, Branch::Collapse];

    /// Branch from its `as usize` discriminant; out-of-range maps to
    /// `Keep` (the identity-weight branch), so a damaged branch tag can
    /// never misattribute load outside the three-way split.
    pub fn from_index(i: usize) -> Branch {
        match i {
            0 => Branch::Refine,
            2 => Branch::Collapse,
            _ => Branch::Keep,
        }
    }
}

/// Mean edge length of `e` over the floored size-field value at its
/// centroid — the `L/h` the branch split and the weight both key off.
fn size_ratio(mesh: &Mesh, e: MeshEnt, size: &SizeField) -> f64 {
    let c = mesh.centroid(e);
    let h = size.at(c).max(H_FLOOR);
    let edges = mesh.adjacent(e, Dim::Edge);
    let mut mean_len = 0.0;
    for &edge in &edges {
        let vs = mesh.verts_of(edge);
        let a = mesh.coords(MeshEnt::vertex(vs[0]));
        let b = mesh.coords(MeshEnt::vertex(vs[1]));
        mean_len += ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
    }
    mean_len /= edges.len() as f64;
    mean_len / h
}

/// The prediction branch `e` falls in under `size`.
pub fn classify(mesh: &Mesh, e: MeshEnt, size: &SizeField) -> Branch {
    let ratio = size_ratio(mesh, e, size);
    if ratio >= 1.0 {
        Branch::Refine
    } else if ratio < CoarsenOpts::default().collapse_ratio {
        Branch::Collapse
    } else {
        Branch::Keep
    }
}

/// Estimated number of elements `e` becomes after adapting to `size`, with
/// `L` the mean edge length of the element and `h` the size-field value at
/// its centroid (floored at [`H_FLOOR`]):
///
/// - `L/h ≥ 1` — refinement territory: the element splits into roughly
///   `(L/h)^dim` children.
/// - `L/h` below the collapse band (the default
///   [`CoarsenOpts::collapse_ratio`]) — coarsening territory: the element
///   merges with neighbors, surviving only as the fraction `(L/h)^dim` of
///   an element.
/// - In between — the keep band: the element stays as it is, weight 1.
///
/// The result saturates at [`MAX_ELEMENT_WEIGHT`], so a degenerate size
/// value at one evaluation point cannot poison a part's whole predicted
/// load. Earlier revisions clamped the weight at 1.0, silently ignoring
/// the coarsening branch: parts full of collapse-marked elements were
/// predicted at full load even though adaptation was about to shrink them.
pub fn element_weight(mesh: &Mesh, e: MeshEnt, size: &SizeField) -> f64 {
    let ratio = size_ratio(mesh, e, size);
    let collapse_band = CoarsenOpts::default().collapse_ratio;
    if ratio >= 1.0 || ratio < collapse_band {
        ratio.powi(mesh.elem_dim() as i32).min(MAX_ELEMENT_WEIGHT)
    } else {
        1.0
    }
}

/// Total predicted element count.
///
/// # Examples
///
/// ```
/// use pumi_adapt::{predicted_total, SizeField};
///
/// let m = pumi_meshgen::tri_rect(2, 2, 1.0, 1.0);
/// // Halving the target size roughly quadruples the predicted 2D count.
/// let w1 = predicted_total(&m, &SizeField::uniform(0.5));
/// let w2 = predicted_total(&m, &SizeField::uniform(0.25));
/// assert!(w2 > 3.0 * w1);
/// ```
pub fn predicted_total(mesh: &Mesh, size: &SizeField) -> f64 {
    mesh.elems().map(|e| element_weight(mesh, e, size)).sum()
}

/// Predicted per-part element counts for a serial mesh with element labels —
/// what the adapted partition's loads will look like if no balancing is done
/// first (the Fig 13 scenario, computed a priori).
pub fn predicted_loads(
    mesh: &Mesh,
    labels: &[PartId],
    nparts: usize,
    size: &SizeField,
) -> Vec<f64> {
    let mut loads = vec![0f64; nparts];
    for e in mesh.elems() {
        loads[labels[e.idx()] as usize] += element_weight(mesh, e, size);
    }
    loads
}

/// One part's calibration evidence for a round: the per-branch *calibrated*
/// predicted load it carried into adaptation, and the element count
/// adaptation actually left it with.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sample {
    /// Calibrated predicted load, split by [`Branch`] (indexed
    /// `Branch as usize`), summed over the part's elements just before
    /// adaptation ran.
    pub predicted: [f64; 3],
    /// Realized element count of the part after adaptation.
    pub realized: f64,
}

/// The paper-shape prediction error of a round: the total per-part
/// misprediction as a percentage of the realized mesh,
/// `Σ_p |pred_p − real_p| / Σ_p real_p · 100`. Zero when the predictor is
/// exact on every part; `0.0` for empty or all-zero input.
pub fn prediction_error_pct(samples: &[Sample]) -> f64 {
    let real: f64 = samples.iter().map(|s| s.realized).sum();
    if real <= 0.0 {
        return 0.0;
    }
    let err: f64 = samples
        .iter()
        .map(|s| (s.predicted.iter().sum::<f64>() - s.realized).abs())
        .sum();
    100.0 * err / real
}

/// Empirical correction state for the §III-B load predictor.
///
/// The raw [`element_weight`] model systematically overshoots: it assumes
/// every oversized edge splits all the way to `h` in one round, that
/// collapse demand is never vetoed at part boundaries, and that conformity
/// closure is free. The overshoot is *branch-dependent*, so `Calibration`
/// keeps one multiplicative factor per [`Branch`], fitted each round from
/// what adaptation actually did: [`observe`](Calibration::observe) solves
/// the per-part least-squares system
///
/// ```text
///   realized_p ≈ Σ_b c_b · predicted_{p,b}
/// ```
///
/// for the per-branch multipliers `c_b` (parts are the equations, branches
/// the unknowns) and folds them into the running factors. The next round's
/// weights — [`weight`](Calibration::weight) — are raw weights scaled by
/// the branch factor, so ParMA diffuses against a load that tracks what
/// refinement will really produce instead of a fiction.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    factors: [f64; 3],
    rounds: u32,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::new()
    }
}

/// Per-observation clamp on a fitted multiplier: one noisy round may not
/// swing a branch factor by more than this either way.
const FIT_CLAMP: f64 = 10.0;
/// Absolute bounds on a running branch factor.
const FACTOR_MIN: f64 = 1e-2;
const FACTOR_MAX: f64 = 1e2;

impl Calibration {
    /// Identity calibration: every branch factor 1 (raw model weights).
    pub fn new() -> Calibration {
        Calibration {
            factors: [1.0; 3],
            rounds: 0,
        }
    }

    /// The current correction factor of one branch.
    pub fn factor(&self, b: Branch) -> f64 {
        self.factors[b as usize]
    }

    /// All three factors, indexed `Branch as usize`.
    pub fn factors(&self) -> [f64; 3] {
        self.factors
    }

    /// Rounds of evidence folded in so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Calibrated predicted weight of one element: raw
    /// [`element_weight`] times the factor of its [`Branch`].
    pub fn weight(&self, mesh: &Mesh, e: MeshEnt, size: &SizeField) -> f64 {
        element_weight(mesh, e, size) * self.factor(classify(mesh, e, size))
    }

    /// Fold one round of evidence into the branch factors.
    ///
    /// Fits the per-branch multipliers by least squares over the parts
    /// (normal equations, 3×3 Gaussian elimination with partial pivoting).
    /// Branches with no predicted mass this round are left untouched and
    /// contribute their prediction unchanged to the residual. A singular
    /// or absurd fit (non-finite, or outside `1/FIT_CLAMP ‥ FIT_CLAMP`)
    /// falls back to the global ratio `Σ realized / Σ predicted` for every
    /// active branch. No-op on empty or degenerate input.
    pub fn observe(&mut self, samples: &[Sample]) {
        let total_pred: f64 = samples
            .iter()
            .map(|s| s.predicted.iter().sum::<f64>())
            .sum();
        let total_real: f64 = samples.iter().map(|s| s.realized).sum();
        if samples.is_empty() || total_pred <= 0.0 || total_real <= 0.0 {
            return;
        }
        // Branches carrying real predicted mass this round.
        let mass: [f64; 3] =
            Branch::ALL.map(|b| samples.iter().map(|s| s.predicted[b as usize]).sum::<f64>());
        let active: Vec<usize> = (0..3).filter(|&b| mass[b] > 1e-12 * total_pred).collect();
        if active.is_empty() {
            return;
        }
        // Normal equations over the active branches; inactive branches keep
        // factor 1 relative to their (calibrated) prediction. The per-branch
        // fit needs the system meaningfully overdetermined — with fewer
        // than 2 equations (parts) per unknown it mostly fits part-level
        // noise (part composition correlates with branch), so small worlds
        // go straight to the global ratio.
        let k = active.len();
        let mut c = None;
        if samples.len() >= 2 * k {
            let mut a = vec![vec![0f64; k]; k];
            let mut y = vec![0f64; k];
            for s in samples {
                let resid = s.realized
                    - (0..3)
                        .filter(|b| !active.contains(b))
                        .map(|b| s.predicted[b])
                        .sum::<f64>();
                for (i, &bi) in active.iter().enumerate() {
                    y[i] += s.predicted[bi] * resid;
                    for (j, &bj) in active.iter().enumerate() {
                        a[i][j] += s.predicted[bi] * s.predicted[bj];
                    }
                }
            }
            c = solve(&mut a, &mut y);
        }
        let sane = |v: f64| v.is_finite() && (1.0 / FIT_CLAMP..=FIT_CLAMP).contains(&v);
        if !c.as_deref().is_some_and(|c| c.iter().copied().all(sane)) {
            // Degenerate geometry (collinear branch columns, a part count
            // too small to separate the branches): one global ratio still
            // shrinks the total error.
            let ratio = (total_real / total_pred).clamp(1.0 / FIT_CLAMP, FIT_CLAMP);
            c = Some(vec![ratio; k]);
        }
        for (i, &b) in active.iter().enumerate() {
            self.factors[b] =
                (self.factors[b] * c.as_ref().unwrap()[i]).clamp(FACTOR_MIN, FACTOR_MAX);
        }
        self.rounds += 1;
    }
}

/// Solve the `k×k` system `a·x = y` in place by Gaussian elimination with
/// partial pivoting; `None` if (near-)singular.
fn solve(a: &mut [Vec<f64>], y: &mut [f64]) -> Option<Vec<f64>> {
    let k = y.len();
    for col in 0..k {
        let piv = (col..k).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        y.swap(col, piv);
        let pivot_row = a[col].clone();
        for row in col + 1..k {
            let f = a[row][col] / pivot_row[col];
            for (cc, &pv) in pivot_row.iter().enumerate().skip(col) {
                a[row][cc] -= f * pv;
            }
            y[row] -= f * y[col];
        }
    }
    let mut x = vec![0f64; k];
    for col in (0..k).rev() {
        let mut v = y[col];
        for cc in col + 1..k {
            v -= a[col][cc] * x[cc];
        }
        x[col] = v / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_meshgen::tri_rect;
    use pumi_util::stats::imbalance;

    #[test]
    fn uniform_size_match_gives_unit_weights() {
        // Lattice spacing 0.25; target 0.25 → weights ~1 per element.
        let m = tri_rect(4, 4, 1.0, 1.0);
        let size = SizeField::uniform(0.3);
        for e in m.elems() {
            let w = element_weight(&m, e, &size);
            assert!((1.0..2.5).contains(&w), "weight {w}");
        }
    }

    #[test]
    fn coarsening_demand_counts_fractional_elements() {
        // Lattice spacing 0.125 with target h = 1.0: every element is deep
        // in collapse territory (ratio ≈ 0.14 « 0.5), so the prediction
        // must be far below the current count — the old `.max(1.0)` clamp
        // reported full load here.
        let m = tri_rect(8, 8, 1.0, 1.0);
        let size = SizeField::uniform(1.0);
        for e in m.elems() {
            let w = element_weight(&m, e, &size);
            assert!(w < 0.1, "collapse-marked element predicted at {w}");
        }
        let total = predicted_total(&m, &size);
        assert!(
            total < 0.1 * m.num_elems() as f64,
            "coarsening prediction {total} not below current {}",
            m.num_elems()
        );
        // Keep band: ratio between the collapse band and 1 stays at unit
        // weight (no half-elements from the gap where nothing collapses).
        let keep = SizeField::uniform(0.2); // ratio ≈ 0.7
        for e in m.elems() {
            assert_eq!(element_weight(&m, e, &keep), 1.0);
        }
    }

    #[test]
    fn refinement_demand_scales_quadratically_in_2d() {
        let m = tri_rect(2, 2, 1.0, 1.0);
        let w1 = predicted_total(&m, &SizeField::uniform(0.5));
        let w2 = predicted_total(&m, &SizeField::uniform(0.25));
        // Halving the size quadruples the 2D demand.
        assert!(w2 / w1 > 3.0 && w2 / w1 < 5.0, "ratio {}", w2 / w1);
    }

    /// Regression (degenerate size field): `h = 0` at an evaluation point
    /// used to drive `ratio.powi(dim)` to `inf`, and one poisoned element
    /// then corrupted the whole part's predicted load. The floor + cap keep
    /// every weight finite and bounded.
    #[test]
    fn degenerate_size_value_cannot_poison_a_part() {
        let m = tri_rect(4, 4, 1.0, 1.0);
        // Zero exactly at x < 0.3, sane elsewhere: a few poisoned
        // evaluation points inside an otherwise healthy field.
        let size = SizeField::analytic(|p| if p[0] < 0.3 { 0.0 } else { 0.25 });
        for e in m.elems() {
            let w = element_weight(&m, e, &size);
            assert!(w.is_finite(), "poisoned element weight {w}");
            assert!(w <= MAX_ELEMENT_WEIGHT, "weight {w} above the cap");
        }
        let labels = vec![0 as PartId; m.index_space(m.elem_dim_t())];
        let loads = predicted_loads(&m, &labels, 1, &size);
        assert!(loads[0].is_finite(), "part load poisoned: {loads:?}");
        // Branch classification survives too (a zero-h element is deep in
        // refine territory, not NaN territory).
        let e = m.elems().next().unwrap();
        assert_eq!(classify(&m, e, &size), Branch::Refine);
    }

    #[test]
    fn prediction_error_is_relative_l1() {
        let exact = [
            Sample {
                predicted: [3.0, 1.0, 0.0],
                realized: 4.0,
            },
            Sample {
                predicted: [0.0, 6.0, 0.0],
                realized: 6.0,
            },
        ];
        assert_eq!(prediction_error_pct(&exact), 0.0);
        let off = [
            Sample {
                predicted: [8.0, 0.0, 0.0],
                realized: 4.0,
            },
            Sample {
                predicted: [0.0, 6.0, 0.0],
                realized: 6.0,
            },
        ];
        assert!((prediction_error_pct(&off) - 40.0).abs() < 1e-9);
        assert_eq!(prediction_error_pct(&[]), 0.0);
    }

    /// `observe` recovers known branch-wise distortions: synthesize parts
    /// whose realized load is an exact branch-dependent scaling of the
    /// prediction and check the fitted factors land on the truth.
    #[test]
    fn calibration_fits_branch_factors() {
        let truth = [0.4, 1.0, 2.5]; // refine overshoots, collapse undershoots
        let samples: Vec<Sample> = (0..8)
            .map(|p| {
                let pred = [10.0 + p as f64, 5.0 + (p % 3) as f64, 1.0 + (p % 2) as f64];
                Sample {
                    predicted: pred,
                    realized: pred.iter().zip(truth).map(|(x, t)| x * t).sum(),
                }
            })
            .collect();
        let mut cal = Calibration::new();
        cal.observe(&samples);
        assert_eq!(cal.rounds(), 1);
        for (b, t) in Branch::ALL.into_iter().zip(truth) {
            assert!(
                (cal.factor(b) - t).abs() < 1e-6,
                "branch {b:?}: fitted {} want {t}",
                cal.factor(b)
            );
        }
        // Applying the fit makes the calibrated prediction exact: error 0.
        let recal: Vec<Sample> = samples
            .iter()
            .map(|s| Sample {
                predicted: [
                    s.predicted[0] * cal.factor(Branch::Refine),
                    s.predicted[1] * cal.factor(Branch::Keep),
                    s.predicted[2] * cal.factor(Branch::Collapse),
                ],
                realized: s.realized,
            })
            .collect();
        assert!(prediction_error_pct(&recal) < 1e-6);
    }

    /// Degenerate evidence falls back to the global ratio instead of an
    /// absurd fit, and empty/zero input is a no-op.
    #[test]
    fn calibration_degenerate_inputs() {
        let mut cal = Calibration::new();
        cal.observe(&[]);
        assert_eq!(cal.factors(), [1.0; 3]);
        assert_eq!(cal.rounds(), 0);
        // Every part identical → singular normal matrix → global ratio 0.5.
        let s = Sample {
            predicted: [4.0, 4.0, 4.0],
            realized: 6.0,
        };
        cal.observe(&[s; 4]);
        for b in Branch::ALL {
            assert!((cal.factor(b) - 0.5).abs() < 1e-9, "{:?}", cal.factors());
        }
        // Factors stay within the absolute bounds under repeated extreme
        // evidence.
        let crush = Sample {
            predicted: [1000.0, 0.0, 0.0],
            realized: 0.001,
        };
        for _ in 0..10 {
            cal.observe(&[crush; 4]);
        }
        assert!(cal.factor(Branch::Refine) >= 1e-2);
    }

    #[test]
    fn shock_field_predicts_imbalance() {
        let m = tri_rect(8, 8, 1.0, 1.0);
        // Stripe partition in y; shock along y=0.1 hits only part 0.
        let mut labels = vec![0 as PartId; m.index_space(m.elem_dim_t())];
        for e in m.iter(m.elem_dim_t()) {
            labels[e.idx()] = (m.centroid(e)[1] * 4.0).floor().min(3.0) as PartId;
        }
        let size = SizeField::shock(|p| p[1] - 0.1, 0.02, 0.5, 0.03);
        let loads = predicted_loads(&m, &labels, 4, &size);
        assert!(
            imbalance(&loads) > 1.5,
            "shock should predict a spike: {loads:?}"
        );
        // The spike is in part 0 where the shock lives.
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(loads[0], max);
    }
}
