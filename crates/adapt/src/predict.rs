//! Predictive load estimation (§III-B).
//!
//! "Large imbalance spikes are also observed when predictively load
//! balancing for mesh adaptation based on the estimated target mesh
//! resolution at each mesh vertex." Before adapting, each element's
//! post-adaptation element count is estimated as `(current edge length /
//! target size)^dim`; balancing these *weights* instead of the current
//! element counts prevents the Fig 13 blow-up.

use crate::coarsen::CoarsenOpts;
use crate::sizefield::SizeField;
use pumi_mesh::Mesh;
use pumi_util::{Dim, MeshEnt, PartId};

/// Estimated number of elements `e` becomes after adapting to `size`, with
/// `L` the mean edge length of the element and `h` the size-field value at
/// its centroid:
///
/// - `L/h ≥ 1` — refinement territory: the element splits into roughly
///   `(L/h)^dim` children.
/// - `L/h` below the collapse band (the default
///   [`CoarsenOpts::collapse_ratio`]) — coarsening territory: the element
///   merges with neighbors, surviving only as the fraction `(L/h)^dim` of
///   an element.
/// - In between — the keep band: the element stays as it is, weight 1.
///
/// Earlier revisions clamped the weight at 1.0, silently ignoring the
/// coarsening branch: parts full of collapse-marked elements were predicted
/// at full load even though adaptation was about to shrink them.
pub fn element_weight(mesh: &Mesh, e: MeshEnt, size: &SizeField) -> f64 {
    let c = mesh.centroid(e);
    let h = size.at(c);
    let edges = mesh.adjacent(e, Dim::Edge);
    let mut mean_len = 0.0;
    for &edge in &edges {
        let vs = mesh.verts_of(edge);
        let a = mesh.coords(MeshEnt::vertex(vs[0]));
        let b = mesh.coords(MeshEnt::vertex(vs[1]));
        mean_len += ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
    }
    mean_len /= edges.len() as f64;
    let ratio = mean_len / h;
    let collapse_band = CoarsenOpts::default().collapse_ratio;
    if ratio >= 1.0 || ratio < collapse_band {
        ratio.powi(mesh.elem_dim() as i32)
    } else {
        1.0
    }
}

/// Total predicted element count.
///
/// # Examples
///
/// ```
/// use pumi_adapt::{predicted_total, SizeField};
///
/// let m = pumi_meshgen::tri_rect(2, 2, 1.0, 1.0);
/// // Halving the target size roughly quadruples the predicted 2D count.
/// let w1 = predicted_total(&m, &SizeField::uniform(0.5));
/// let w2 = predicted_total(&m, &SizeField::uniform(0.25));
/// assert!(w2 > 3.0 * w1);
/// ```
pub fn predicted_total(mesh: &Mesh, size: &SizeField) -> f64 {
    mesh.elems().map(|e| element_weight(mesh, e, size)).sum()
}

/// Predicted per-part element counts for a serial mesh with element labels —
/// what the adapted partition's loads will look like if no balancing is done
/// first (the Fig 13 scenario, computed a priori).
pub fn predicted_loads(
    mesh: &Mesh,
    labels: &[PartId],
    nparts: usize,
    size: &SizeField,
) -> Vec<f64> {
    let mut loads = vec![0f64; nparts];
    for e in mesh.elems() {
        loads[labels[e.idx()] as usize] += element_weight(mesh, e, size);
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_meshgen::tri_rect;
    use pumi_util::stats::imbalance;

    #[test]
    fn uniform_size_match_gives_unit_weights() {
        // Lattice spacing 0.25; target 0.25 → weights ~1 per element.
        let m = tri_rect(4, 4, 1.0, 1.0);
        let size = SizeField::uniform(0.3);
        for e in m.elems() {
            let w = element_weight(&m, e, &size);
            assert!((1.0..2.5).contains(&w), "weight {w}");
        }
    }

    #[test]
    fn coarsening_demand_counts_fractional_elements() {
        // Lattice spacing 0.125 with target h = 1.0: every element is deep
        // in collapse territory (ratio ≈ 0.14 « 0.5), so the prediction
        // must be far below the current count — the old `.max(1.0)` clamp
        // reported full load here.
        let m = tri_rect(8, 8, 1.0, 1.0);
        let size = SizeField::uniform(1.0);
        for e in m.elems() {
            let w = element_weight(&m, e, &size);
            assert!(w < 0.1, "collapse-marked element predicted at {w}");
        }
        let total = predicted_total(&m, &size);
        assert!(
            total < 0.1 * m.num_elems() as f64,
            "coarsening prediction {total} not below current {}",
            m.num_elems()
        );
        // Keep band: ratio between the collapse band and 1 stays at unit
        // weight (no half-elements from the gap where nothing collapses).
        let keep = SizeField::uniform(0.2); // ratio ≈ 0.7
        for e in m.elems() {
            assert_eq!(element_weight(&m, e, &keep), 1.0);
        }
    }

    #[test]
    fn refinement_demand_scales_quadratically_in_2d() {
        let m = tri_rect(2, 2, 1.0, 1.0);
        let w1 = predicted_total(&m, &SizeField::uniform(0.5));
        let w2 = predicted_total(&m, &SizeField::uniform(0.25));
        // Halving the size quadruples the 2D demand.
        assert!(w2 / w1 > 3.0 && w2 / w1 < 5.0, "ratio {}", w2 / w1);
    }

    #[test]
    fn shock_field_predicts_imbalance() {
        let m = tri_rect(8, 8, 1.0, 1.0);
        // Stripe partition in y; shock along y=0.1 hits only part 0.
        let mut labels = vec![0 as PartId; m.index_space(m.elem_dim_t())];
        for e in m.iter(m.elem_dim_t()) {
            labels[e.idx()] = (m.centroid(e)[1] * 4.0).floor().min(3.0) as PartId;
        }
        let size = SizeField::shock(|p| p[1] - 0.1, 0.02, 0.5, 0.03);
        let loads = predicted_loads(&m, &labels, 4, &size);
        assert!(
            imbalance(&loads) > 1.5,
            "shock should predict a spike: {loads:?}"
        );
        // The spike is in part 0 where the shock lives.
        let max = loads.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(loads[0], max);
    }
}
