//! A mesh part (§II-A).
//!
//! "When a mesh is distributed to N parts, each part is assigned to a
//! process or processing core. A part is a subset of topological mesh
//! entities of the entire mesh, uniquely identified by its handle or id."
//!
//! A [`Part`] wraps a serial [`Mesh`] with the parallel bookkeeping of
//! §II-B: global ids (stable across migration), remote copies for part
//! boundary entities, and ghost provenance. "Each part is treated as a
//! serial mesh with the addition of mesh part boundaries."

use pumi_geom::GeomEnt;
use pumi_mesh::{Mesh, Topology};
use pumi_util::ids::make_global_id;
use pumi_util::{Dim, FxHashMap, FxHashSet, GlobalId, MeshEnt, PartId};

/// Sentinel for "no global id assigned".
pub const NO_GID: GlobalId = u64::MAX;

/// Per-dimension record of entities touched since tracking began — the
/// write-side input of delta checkpoints. Keys are global ids (stable
/// across slot reuse and migration), not local handles.
///
/// Structural mutations are captured automatically by the [`Part`] hooks
/// (gid recording, deletion, ghost-record changes). *Value* mutations that
/// bypass the part — tag writes and field writes on an unchanged entity —
/// must be reported with [`Part::mark_dirty`]; `pumi-adapt` does this for
/// the entities whose fields it re-interpolates.
#[derive(Debug, Default, Clone)]
pub struct DirtyLog {
    /// Gids of entities created or mutated since the log was started,
    /// per dimension.
    pub dirty: [FxHashSet<GlobalId>; 4],
    /// Gids of entities deleted since the log was started, per dimension.
    pub deleted: [FxHashSet<GlobalId>; 4],
}

impl DirtyLog {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.dirty.iter().all(|s| s.is_empty()) && self.deleted.iter().all(|s| s.is_empty())
    }

    fn touch(&mut self, d: usize, gid: GlobalId) {
        self.deleted[d].remove(&gid);
        self.dirty[d].insert(gid);
    }

    fn erase(&mut self, d: usize, gid: GlobalId) {
        self.dirty[d].remove(&gid);
        self.deleted[d].insert(gid);
    }
}

/// One part of a distributed mesh.
pub struct Part {
    /// The part id `P_i`, unique across the whole partition.
    pub id: PartId,
    /// The part's serial mesh.
    pub mesh: Mesh,
    /// Global id per entity, dense per dimension (parallel to the mesh's
    /// index space).
    gids: [Vec<GlobalId>; 4],
    /// Reverse index: global id → local index, per dimension.
    gid_index: [FxHashMap<GlobalId, u32>; 4],
    /// Remote copies of part-boundary entities: (remote part, remote local
    /// index). Sorted by part id. Ghost copies are *not* listed here.
    remotes: FxHashMap<MeshEnt, Vec<(PartId, u32)>>,
    /// Entities that are read-only ghost copies on this part, mapped to
    /// their (owner part, owner local index).
    ghosts: FxHashMap<MeshEnt, (PartId, u32)>,
    /// Owner-side record of which parts hold ghost copies of an entity.
    ghosted_to: FxHashMap<MeshEnt, Vec<(PartId, u32)>>,
    /// Counter feeding [`Part::new_gid`].
    gid_counter: u64,
    /// Mutation log for delta checkpoints; `None` when tracking is off.
    dirty: Option<DirtyLog>,
}

impl Part {
    /// An empty part with the given id and element dimension.
    pub fn new(id: PartId, elem_dim: usize) -> Part {
        Part {
            id,
            mesh: Mesh::new(elem_dim),
            gids: Default::default(),
            gid_index: Default::default(),
            remotes: FxHashMap::default(),
            ghosts: FxHashMap::default(),
            ghosted_to: FxHashMap::default(),
            gid_counter: 0,
            dirty: None,
        }
    }

    /// A fresh global id unique across all parts: birth part `id + 1` keeps
    /// new ids disjoint from bootstrap ids (which are plain serial indices
    /// below 2^40).
    pub fn new_gid(&mut self) -> GlobalId {
        let g = make_global_id(self.id + 1, self.gid_counter);
        self.gid_counter += 1;
        g
    }

    fn record_gid(&mut self, e: MeshEnt, gid: GlobalId) {
        let d = e.dim().as_usize();
        if self.gids[d].len() <= e.idx() {
            self.gids[d].resize(e.idx() + 1, NO_GID);
        }
        debug_assert!(
            self.gids[d][e.idx()] == NO_GID
                || !self.mesh.is_live(e)
                || self.gids[d][e.idx()] == gid,
            "gid reassignment for {e:?}"
        );
        self.gids[d][e.idx()] = gid;
        self.gid_index[d].insert(gid, e.index());
        if let Some(log) = &mut self.dirty {
            log.touch(d, gid);
        }
    }

    /// Create a vertex with an explicit global id.
    pub fn add_vertex(&mut self, x: [f64; 3], class: GeomEnt, gid: GlobalId) -> MeshEnt {
        let v = self.mesh.add_vertex(x, class);
        self.record_gid(v, gid);
        v
    }

    /// Find-or-create an entity over local vertex indices with an explicit
    /// global id for the top entity; implicitly created intermediate
    /// entities get fresh gids from this part's counter.
    pub fn add_entity(
        &mut self,
        topo: Topology,
        verts: &[u32],
        class: GeomEnt,
        gid: GlobalId,
    ) -> MeshEnt {
        let existed =
            topo.dim() != Dim::Region && self.mesh.find_entity(topo.dim(), verts).is_some();
        let e = self.mesh.add_entity(topo, verts, class);
        if existed {
            debug_assert_eq!(self.gid_of(e), gid, "gid mismatch on find: {e:?}");
            return e;
        }
        self.record_gid(e, gid);
        // Freshly created intermediates need gids too.
        self.assign_missing_gids_in_closure(e);
        e
    }

    fn assign_missing_gids_in_closure(&mut self, e: MeshEnt) {
        if e.dim() == Dim::Vertex {
            return;
        }
        for sub in self.mesh.down_ents(e) {
            if self.gid_of(sub) == NO_GID {
                let g = self.new_gid();
                self.record_gid(sub, g);
                self.assign_missing_gids_in_closure(sub);
            }
        }
    }

    /// Record (or re-record) the global id of an existing mesh entity.
    ///
    /// Mesh-modification drivers (adaptation) create entities directly on
    /// [`Part::mesh`] and assign deterministic, content-derived gids
    /// afterwards; this is their hook into the part's gid bookkeeping.
    ///
    /// # Panics
    /// Debug builds panic when re-recording a *different* gid for a live
    /// entity — stale bookkeeping must be dropped with [`Part::forget`]
    /// first.
    pub fn set_gid(&mut self, e: MeshEnt, gid: GlobalId) {
        self.record_gid(e, gid);
    }

    /// Drop all parallel bookkeeping of `e` — gid, gid index entry, remote
    /// copies, ghost records — without touching the mesh entity itself.
    ///
    /// Adaptation deletes entities through mesh-level cavity operators
    /// ([`Mesh::delete`] inside the split/collapse kernels); the driver
    /// forgets the doomed handles first so a reused slot can never inherit
    /// stale gid or remote-copy state. Compare [`Part::delete_entity`],
    /// which also deletes the mesh entity.
    pub fn forget(&mut self, e: MeshEnt) {
        let d = e.dim().as_usize();
        let gid = self.gid_of(e);
        if gid != NO_GID {
            self.gid_index[d].remove(&gid);
            self.gids[d][e.idx()] = NO_GID;
            if let Some(log) = &mut self.dirty {
                log.erase(d, gid);
            }
        }
        self.remotes.remove(&e);
        self.ghosts.remove(&e);
        self.ghosted_to.remove(&e);
    }

    /// The global id of a live entity.
    #[inline]
    pub fn gid_of(&self, e: MeshEnt) -> GlobalId {
        let d = e.dim().as_usize();
        self.gids[d].get(e.idx()).copied().unwrap_or(NO_GID)
    }

    /// Find a live local entity by dimension and global id.
    pub fn find_gid(&self, d: Dim, gid: GlobalId) -> Option<MeshEnt> {
        self.gid_index[d.as_usize()]
            .get(&gid)
            .map(|&i| MeshEnt::new(d, i))
            .filter(|&e| self.mesh.is_live(e))
    }

    // ------------------------------------------------------------------
    // Remote copies & residence (§II-B)
    // ------------------------------------------------------------------

    /// Replace the remote-copy list of `e` (sorted by part id).
    pub fn set_remotes(&mut self, e: MeshEnt, mut copies: Vec<(PartId, u32)>) {
        copies.sort_unstable();
        copies.dedup();
        debug_assert!(copies.iter().all(|&(p, _)| p != self.id));
        if copies.is_empty() {
            self.remotes.remove(&e);
        } else {
            self.remotes.insert(e, copies);
        }
    }

    /// The remote copies of `e`: (part, remote local index), sorted by part.
    pub fn remotes_of(&self, e: MeshEnt) -> &[(PartId, u32)] {
        self.remotes.get(&e).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether `e` lies on a part boundary (has remote copies).
    #[inline]
    pub fn is_shared(&self, e: MeshEnt) -> bool {
        self.remotes.contains_key(&e)
    }

    /// The residence parts of `e`: this part plus all remote parts, sorted.
    /// (§II-B: "the residence part is a set of part id(s) where a mesh
    /// entity exists based on adjacency information".)
    pub fn residence(&self, e: MeshEnt) -> Vec<PartId> {
        let mut r: Vec<PartId> = std::iter::once(self.id)
            .chain(self.remotes_of(e).iter().map(|&(p, _)| p))
            .collect();
        r.sort_unstable();
        r
    }

    /// The owning part of `e`: the minimum residence part ("one part is
    /// designated as owning part and ... imbues the right to modify").
    /// Ghost copies are owned by their source part.
    pub fn owner(&self, e: MeshEnt) -> PartId {
        if let Some(&(p, _)) = self.ghosts.get(&e) {
            return p;
        }
        self.remotes_of(e)
            .first()
            .map(|&(p, _)| p.min(self.id))
            .unwrap_or(self.id)
    }

    /// Whether this part owns `e`.
    #[inline]
    pub fn is_owned(&self, e: MeshEnt) -> bool {
        self.owner(e) == self.id
    }

    /// The parts (other than this one) holding copies of `e` — the remote
    /// half of the residence set, sorted. Empty for interior entities.
    pub fn copy_parts(&self, e: MeshEnt) -> Vec<PartId> {
        self.remotes_of(e).iter().map(|&(p, _)| p).collect()
    }

    /// Whether this part owns the part-boundary entity `e` *and* `e` is
    /// actually shared — the "owner decides" predicate of collective
    /// boundary operations (a part only initiates a boundary-entity update
    /// when this is true; interior entities need no coordination).
    #[inline]
    pub fn is_owned_shared(&self, e: MeshEnt) -> bool {
        self.is_shared(e) && self.is_owned(e)
    }

    /// Whether the closure of `e` (the entity and all its downward
    /// adjacencies) touches the part boundary or a ghost copy. Collapse
    /// safety in distributed adaptation keys on this: a cavity whose
    /// closure is entirely interior can be modified without any
    /// communication.
    pub fn closure_touches_boundary(&self, e: MeshEnt) -> bool {
        if self.is_shared(e) || self.is_ghost(e) {
            return true;
        }
        self.mesh
            .closure(e)
            .into_iter()
            .any(|s| self.is_shared(s) || self.is_ghost(s))
    }

    /// Iterate all shared (part-boundary) entities with their remote lists,
    /// sorted by handle for determinism.
    pub fn shared_entities(&self) -> Vec<(MeshEnt, &[(PartId, u32)])> {
        let mut v: Vec<_> = self
            .remotes
            .iter()
            .map(|(&e, r)| (e, r.as_slice()))
            .collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// Drop every remote-copy record (migration rebuilds them from scratch).
    pub fn clear_remotes(&mut self) {
        self.remotes.clear();
    }

    // ------------------------------------------------------------------
    // Ghosts (§II-C)
    // ------------------------------------------------------------------

    /// Mark `e` as a ghost copy of `(owner part, owner local index)`.
    pub fn set_ghost(&mut self, e: MeshEnt, src: (PartId, u32)) {
        self.ghosts.insert(e, src);
        self.mark_dirty(e);
    }

    /// Whether `e` is a read-only ghost copy on this part.
    #[inline]
    pub fn is_ghost(&self, e: MeshEnt) -> bool {
        self.ghosts.contains_key(&e)
    }

    /// The ghost's source (owner part, owner local index).
    pub fn ghost_source(&self, e: MeshEnt) -> Option<(PartId, u32)> {
        self.ghosts.get(&e).copied()
    }

    /// Owner side: record that `to` holds a ghost copy of `e`. The holder
    /// list stays sorted so its order is independent of ack arrival order.
    /// Idempotent — recording the same holder twice keeps one entry.
    pub fn record_ghost_holder(&mut self, e: MeshEnt, to: (PartId, u32)) {
        let v = self.ghosted_to.entry(e).or_default();
        if let Err(at) = v.binary_search(&to) {
            v.insert(at, to);
        }
    }

    /// Owner side: the parts holding ghost copies of `e`.
    pub fn ghosted_to(&self, e: MeshEnt) -> &[(PartId, u32)] {
        self.ghosted_to.get(&e).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Owner-side view of ghost holders: entity → (holder part, holder-local
    /// index) list, sorted by entity handle.
    pub fn ghost_entities_owner_side(&self) -> Vec<(MeshEnt, Vec<(PartId, u32)>)> {
        let mut v: Vec<(MeshEnt, Vec<(PartId, u32)>)> = Dim::ALL
            .iter()
            .flat_map(|&d| {
                self.mesh
                    .iter(d)
                    .filter(|&e| !self.ghosted_to(e).is_empty())
                    .map(|e| (e, self.ghosted_to(e).to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// Iterate ghost entities (sorted by handle).
    pub fn ghost_entities(&self) -> Vec<MeshEnt> {
        let mut v: Vec<MeshEnt> = self.ghosts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of ghost copies on this part.
    pub fn num_ghosts(&self) -> usize {
        self.ghosts.len()
    }

    /// Remove all ghost bookkeeping (entities must be deleted separately by
    /// the ghosting module, which knows the deletion order).
    pub fn clear_ghost_records(&mut self) {
        self.ghosts.clear();
        self.ghosted_to.clear();
    }

    /// Remove one ghost record.
    pub fn remove_ghost_record(&mut self, e: MeshEnt) {
        if self.ghosts.remove(&e).is_some() {
            self.mark_dirty(e);
        }
    }

    /// Delete a local entity and its bookkeeping (gid index, remotes).
    /// The entity must satisfy the mesh's top-down deletion rule.
    pub fn delete_entity(&mut self, e: MeshEnt) {
        let d = e.dim().as_usize();
        let gid = self.gid_of(e);
        if gid != NO_GID {
            self.gid_index[d].remove(&gid);
            self.gids[d][e.idx()] = NO_GID;
            if let Some(log) = &mut self.dirty {
                log.erase(d, gid);
            }
        }
        self.remotes.remove(&e);
        self.ghosts.remove(&e);
        self.ghosted_to.remove(&e);
        self.mesh.delete(e);
    }

    // ------------------------------------------------------------------
    // Dirty tracking (delta checkpoints)
    // ------------------------------------------------------------------

    /// Begin (or restart) recording mutations into a fresh [`DirtyLog`].
    /// Structural changes are captured automatically; call
    /// [`Part::mark_dirty`] after mutating tag or field *values* on an
    /// otherwise-unchanged entity.
    pub fn start_dirty_tracking(&mut self) {
        self.dirty = Some(DirtyLog::default());
    }

    /// Stop recording and discard the log.
    pub fn stop_dirty_tracking(&mut self) {
        self.dirty = None;
    }

    /// Whether mutation recording is on.
    pub fn is_tracking_dirty(&self) -> bool {
        self.dirty.is_some()
    }

    /// The current log, if tracking.
    pub fn dirty_log(&self) -> Option<&DirtyLog> {
        self.dirty.as_ref()
    }

    /// Take the accumulated log and continue tracking into a fresh one —
    /// the delta writer's snapshot point. Returns `None` if tracking is off.
    pub fn rotate_dirty_log(&mut self) -> Option<DirtyLog> {
        self.dirty.replace(DirtyLog::default())
    }

    /// Record that `e`'s attached values (tags, fields) changed. No-op for
    /// entities without a gid or when tracking is off.
    pub fn mark_dirty(&mut self, e: MeshEnt) {
        if self.dirty.is_none() {
            return;
        }
        let gid = self.gid_of(e);
        if gid == NO_GID {
            return;
        }
        if let Some(log) = &mut self.dirty {
            log.touch(e.dim().as_usize(), gid);
        }
    }

    /// The fresh-gid counter feeding [`Part::new_gid`]. Checkpointing
    /// persists it so a restored part never re-issues a gid that is already
    /// present in the file.
    pub fn gid_counter(&self) -> u64 {
        self.gid_counter
    }

    /// Raise the fresh-gid counter to at least `floor`. Checkpoint restore
    /// floors every part at the global maximum so parts that change id on
    /// load (N→M merge targets, split children) cannot collide with gids
    /// issued before the checkpoint under the same birth part.
    pub fn bump_gid_counter(&mut self, floor: u64) {
        self.gid_counter = self.gid_counter.max(floor);
    }

    /// Apply a part-id renumbering to every remote-copy list. Used when
    /// checkpoint restore renames parts (N-part file merged onto M ranks);
    /// the caller updates [`Part::id`] itself. `f` must be injective over
    /// the referenced part ids and `f(p)` must never equal the new local id.
    pub fn remap_remote_parts(&mut self, f: impl Fn(PartId) -> PartId) {
        let old = std::mem::take(&mut self.remotes);
        for (e, copies) in old {
            let mapped: Vec<(PartId, u32)> = copies.into_iter().map(|(p, i)| (f(p), i)).collect();
            self.set_remotes(e, mapped);
        }
    }

    /// Per-dimension entity counts `[vtx, edge, face, rgn]` — the loads
    /// ParMA balances (counts include part-boundary copies, matching the
    /// paper's Table II accounting).
    pub fn entity_counts(&self) -> [usize; 4] {
        [
            self.mesh.count(Dim::Vertex),
            self.mesh.count(Dim::Edge),
            self.mesh.count(Dim::Face),
            self.mesh.count(Dim::Region),
        ]
    }
}

impl std::fmt::Debug for Part {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Part{{id:{}, {:?}, shared:{}, ghosts:{}}}",
            self.id,
            self.mesh,
            self.remotes.len(),
            self.ghosts.len()
        )
    }
}

/// The set of part ids a set of entities resides on — helper for residence
/// computations.
pub fn union_parts(sets: impl IntoIterator<Item = PartId>) -> Vec<PartId> {
    let mut s: FxHashSet<PartId> = FxHashSet::default();
    s.extend(sets);
    let mut v: Vec<PartId> = s.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_mesh::NO_GEOM;

    #[test]
    fn gid_roundtrip() {
        let mut p = Part::new(3, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 77);
        assert_eq!(p.gid_of(v), 77);
        assert_eq!(p.find_gid(Dim::Vertex, 77), Some(v));
        assert_eq!(p.find_gid(Dim::Vertex, 78), None);
    }

    #[test]
    fn new_gids_disjoint_from_bootstrap() {
        let mut p = Part::new(0, 2);
        let g = p.new_gid();
        assert!(g >= (1u64 << 40), "part 0's fresh gids must exceed 2^40");
        assert_ne!(p.new_gid(), g);
    }

    #[test]
    fn implicit_intermediates_get_gids() {
        let mut p = Part::new(0, 2);
        let a = p.add_vertex([0.; 3], NO_GEOM, 1).index();
        let b = p.add_vertex([1., 0., 0.], NO_GEOM, 2).index();
        let c = p.add_vertex([0., 1., 0.], NO_GEOM, 3).index();
        let t = p.add_entity(Topology::Triangle, &[a, b, c], NO_GEOM, 100);
        assert_eq!(p.gid_of(t), 100);
        for e in p.mesh.down_ents(t) {
            assert_ne!(p.gid_of(e), NO_GID, "edge without gid");
            assert_eq!(p.find_gid(Dim::Edge, p.gid_of(e)), Some(e));
        }
    }

    #[test]
    fn residence_and_owner() {
        let mut p = Part::new(2, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 5);
        assert_eq!(p.residence(v), vec![2]);
        assert_eq!(p.owner(v), 2);
        assert!(p.is_owned(v));
        p.set_remotes(v, vec![(4, 9), (1, 3)]);
        assert_eq!(p.residence(v), vec![1, 2, 4]);
        assert_eq!(p.owner(v), 1);
        assert!(!p.is_owned(v));
        assert_eq!(p.remotes_of(v), &[(1, 3), (4, 9)]);
        assert!(p.is_shared(v));
        p.set_remotes(v, vec![]);
        assert!(!p.is_shared(v));
    }

    #[test]
    fn ghost_records() {
        let mut p = Part::new(1, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 5);
        assert!(!p.is_ghost(v));
        p.set_ghost(v, (0, 42));
        assert!(p.is_ghost(v));
        assert_eq!(p.ghost_source(v), Some((0, 42)));
        assert_eq!(p.owner(v), 0);
        p.record_ghost_holder(v, (3, 7));
        p.record_ghost_holder(v, (3, 7));
        assert_eq!(p.ghosted_to(v), &[(3, 7)]);
        assert_eq!(p.num_ghosts(), 1);
    }

    #[test]
    fn delete_cleans_bookkeeping() {
        let mut p = Part::new(0, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 5);
        p.set_remotes(v, vec![(1, 0)]);
        p.delete_entity(v);
        assert_eq!(p.find_gid(Dim::Vertex, 5), None);
        assert_eq!(p.mesh.count(Dim::Vertex), 0);
    }

    #[test]
    fn forget_then_set_gid_reuses_slot_cleanly() {
        let mut p = Part::new(0, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 5);
        p.set_remotes(v, vec![(1, 0)]);
        p.forget(v);
        // Bookkeeping is gone, the mesh entity is untouched.
        assert_eq!(p.gid_of(v), NO_GID);
        assert_eq!(p.find_gid(Dim::Vertex, 5), None);
        assert!(!p.is_shared(v));
        assert!(p.mesh.is_live(v));
        // The slot can now carry a fresh gid without tripping the
        // reassignment guard.
        p.set_gid(v, 99);
        assert_eq!(p.gid_of(v), 99);
        assert_eq!(p.find_gid(Dim::Vertex, 99), Some(v));
    }

    #[test]
    fn ownership_and_boundary_queries() {
        let mut p = Part::new(1, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 5);
        assert!(!p.is_owned_shared(v)); // interior: not shared
        assert!(!p.closure_touches_boundary(v));
        p.set_remotes(v, vec![(3, 0)]);
        assert!(p.is_owned_shared(v)); // shared, owner = min(1, 3) = 1
        assert_eq!(p.copy_parts(v), vec![3]);
        p.set_remotes(v, vec![(0, 0)]);
        assert!(!p.is_owned_shared(v)); // part 0 owns it now
        assert!(p.closure_touches_boundary(v));
    }

    #[test]
    fn gid_counter_floor_keeps_fresh_gids_disjoint() {
        let mut p = Part::new(0, 2);
        let a = p.new_gid();
        let b = p.new_gid();
        assert_eq!(p.gid_counter(), 2);
        // A restored part floored at the old counter continues the sequence.
        let mut q = Part::new(0, 2);
        q.bump_gid_counter(p.gid_counter());
        let c = q.new_gid();
        assert!(c != a && c != b);
        // Flooring never lowers the counter.
        q.bump_gid_counter(0);
        assert_eq!(q.gid_counter(), 3);
    }

    #[test]
    fn remap_remote_parts_rewrites_and_resorts() {
        let mut p = Part::new(0, 2);
        let v = p.add_vertex([0.; 3], NO_GEOM, 5);
        p.set_remotes(v, vec![(4, 9), (8, 3)]);
        // 4 -> 2, 8 -> 1: order by part id must be re-established.
        p.remap_remote_parts(|q| match q {
            4 => 2,
            8 => 1,
            other => other,
        });
        assert_eq!(p.remotes_of(v), &[(1, 3), (2, 9)]);
    }

    #[test]
    fn union_parts_sorted_dedup() {
        assert_eq!(union_parts([3, 1, 3, 2, 1]), vec![1, 2, 3]);
        assert!(union_parts([]).is_empty());
    }
}
