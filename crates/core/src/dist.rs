//! The distributed mesh: parts mapped onto ranks, part-level messaging, and
//! the bootstrap distribution.
//!
//! §II-C: "Multiple part per process: a capability to dynamically change the
//! number of parts per process." A [`PartMap`] assigns each part `P_i` to a
//! rank; a rank may hold many parts (the Table II runs use 32 parts per
//! process). [`PartExchange`] is the part-addressed phased exchange every
//! distributed mesh algorithm is written in: messages between co-resident
//! parts never touch the network, mirroring the paper's on-node short-cut.

use crate::part::{Part, NO_GID};
use pumi_mesh::Mesh;
use pumi_pcu::phased::{Exchange, ExchangeOpts};
use pumi_pcu::{ChaosRng, Comm, MsgReader, MsgWriter, SchedMode};
use pumi_util::{Dim, FxHashMap, MeshEnt, PartId};

/// Assignment of parts to ranks.
#[derive(Debug, Clone)]
pub struct PartMap {
    /// Rank hosting each part, indexed by part id.
    rank_of: Vec<usize>,
    /// Parts hosted by each rank, in ascending part order.
    by_rank: Vec<Vec<PartId>>,
}

impl PartMap {
    /// Block-contiguous map: part `p` lives on rank `p / ceil(nparts/nranks)`
    /// — parts 0..k on rank 0, the next k on rank 1, ...
    pub fn contiguous(nparts: usize, nranks: usize) -> PartMap {
        assert!(nparts >= 1 && nranks >= 1);
        let per = nparts.div_ceil(nranks);
        let rank_of: Vec<usize> = (0..nparts).map(|p| (p / per).min(nranks - 1)).collect();
        Self::from_ranks(rank_of, nranks)
    }

    /// Balanced block map: rank `r` hosts parts
    /// `[r*nparts/nranks, (r+1)*nparts/nranks)`. Unlike
    /// [`PartMap::contiguous`] (which sizes blocks by `ceil` and can starve
    /// the last ranks), every rank receives at least one part whenever
    /// `nparts >= nranks` — checkpoint restore relies on this to give each
    /// rank a merge target.
    pub fn balanced_blocks(nparts: usize, nranks: usize) -> PartMap {
        assert!(nparts >= 1 && nranks >= 1);
        let mut rank_of = vec![0usize; nparts];
        for r in 0..nranks {
            for p in rank_of
                .iter_mut()
                .take((r + 1) * nparts / nranks)
                .skip(r * nparts / nranks)
            {
                *p = r;
            }
        }
        Self::from_ranks(rank_of, nranks)
    }

    /// Build from an explicit part → rank vector.
    pub fn from_ranks(rank_of: Vec<usize>, nranks: usize) -> PartMap {
        let mut by_rank = vec![Vec::new(); nranks];
        for (p, &r) in rank_of.iter().enumerate() {
            assert!(r < nranks, "part {p} mapped to invalid rank {r}");
            by_rank[r].push(p as PartId);
        }
        PartMap { rank_of, by_rank }
    }

    /// Total number of parts.
    pub fn nparts(&self) -> usize {
        self.rank_of.len()
    }

    /// The rank hosting part `p`.
    #[inline]
    pub fn rank_of(&self, p: PartId) -> usize {
        self.rank_of[p as usize]
    }

    /// Parts hosted by `rank`, ascending.
    pub fn parts_on(&self, rank: usize) -> &[PartId] {
        &self.by_rank[rank]
    }

    /// The local slot of part `p` on its rank.
    pub fn slot_of(&self, p: PartId) -> usize {
        self.by_rank[self.rank_of(p)]
            .iter()
            .position(|&q| q == p)
            .expect("part not in its rank's list")
    }
}

/// The parts of a distributed mesh living on this rank.
pub struct DistMesh {
    /// The global part → rank assignment.
    pub map: PartMap,
    /// Local parts, ordered as `map.parts_on(rank)`.
    pub parts: Vec<Part>,
}

impl DistMesh {
    /// The local part with id `p`.
    ///
    /// # Panics
    /// Panics if `p` is not hosted on this rank.
    pub fn part(&self, p: PartId) -> &Part {
        let i = self
            .parts
            .iter()
            .position(|q| q.id == p)
            .unwrap_or_else(|| panic!("part {p} is not local"));
        &self.parts[i]
    }

    /// Mutable access to local part `p`.
    pub fn part_mut(&mut self, p: PartId) -> &mut Part {
        let i = self
            .parts
            .iter()
            .position(|q| q.id == p)
            .unwrap_or_else(|| panic!("part {p} is not local"));
        &mut self.parts[i]
    }

    /// Ids of the local parts.
    pub fn local_ids(&self) -> Vec<PartId> {
        self.parts.iter().map(|p| p.id).collect()
    }

    /// Begin (or restart) dirty tracking on every local part — the
    /// write-side switch for delta checkpoints. Purely local; call it on
    /// every rank after a full snapshot.
    pub fn start_dirty_tracking(&mut self) {
        for p in &mut self.parts {
            p.start_dirty_tracking();
        }
    }

    /// Stop dirty tracking on every local part and discard the logs.
    pub fn stop_dirty_tracking(&mut self) {
        for p in &mut self.parts {
            p.stop_dirty_tracking();
        }
    }

    /// Sum a per-part count over all parts of the world.
    pub fn global_sum(&self, comm: &Comm, f: impl Fn(&Part) -> u64) -> u64 {
        let local: u64 = self.parts.iter().map(&f).sum();
        comm.allreduce_sum_u64(local)
    }

    /// Gather a per-part load vector (indexed by part id) across the world.
    /// Every rank receives the full vector.
    pub fn gather_loads(&self, comm: &Comm, f: impl Fn(&Part) -> f64) -> Vec<f64> {
        let mut v = vec![0f64; self.map.nparts()];
        for p in &self.parts {
            v[p.id as usize] = f(p);
        }
        comm.allreduce_sum_f64_vec(&v)
    }
}

/// Part-addressed phased exchange: pack per (from part → to part), finish,
/// iterate. Framing rides on [`pumi_pcu::phased::Exchange`].
pub struct PartExchange<'c, 'm> {
    comm: &'c Comm,
    map: &'m PartMap,
    bufs: FxHashMap<(PartId, PartId), MsgWriter>,
    opts: ExchangeOpts,
}

impl<'c, 'm> PartExchange<'c, 'm> {
    /// Begin an exchange. All ranks must participate.
    pub fn new(comm: &'c Comm, map: &'m PartMap) -> Self {
        PartExchange::with_opts(comm, map, ExchangeOpts::default())
    }

    /// Begin an exchange with explicit routing/scheduling options.
    pub fn with_opts(comm: &'c Comm, map: &'m PartMap, opts: ExchangeOpts) -> Self {
        PartExchange {
            comm,
            map,
            bufs: FxHashMap::default(),
            opts,
        }
    }

    /// The writer packing data from part `from` to part `to`.
    pub fn to(&mut self, from: PartId, to: PartId) -> &mut MsgWriter {
        debug_assert!((to as usize) < self.map.nparts(), "bad destination part");
        self.bufs
            .entry((from, to))
            .or_insert_with(MsgWriter::pooled)
    }

    /// Send everything; returns `(from_part, to_part, reader)` triples.
    /// Under the deterministic scheduler they come sorted by (to, from);
    /// under chaos they come in a seeded permutation, so algorithms written
    /// against this API must not depend on processing order.
    pub fn finish(self) -> Vec<(PartId, PartId, MsgReader)> {
        // The part-level permutation needs its own generator: the inner
        // rank-level shuffle is undone by the canonical (to, from) sort
        // below, which would otherwise hide order-dependence bugs in
        // part-addressed algorithms.
        let chaos = match self.opts.sched.unwrap_or_else(|| self.comm.sched()) {
            SchedMode::Chaos(seed) => Some(ChaosRng::for_phase(
                seed ^ 0x9A87_F00D,
                self.comm.exchanges_completed(),
                self.comm.rank(),
            )),
            SchedMode::Deterministic => None,
        };
        let mut ex = Exchange::with_opts(self.comm, self.opts);
        // Deterministic packing order.
        let mut items: Vec<((PartId, PartId), MsgWriter)> = self.bufs.into_iter().collect();
        items.sort_by_key(|&(k, _)| k);
        for ((from, to), w) in items {
            if w.is_empty() {
                w.recycle();
                continue;
            }
            let rank = self.map.rank_of(to);
            let out = ex.to(rank);
            out.put_u32(from);
            out.put_u32(to);
            // Re-frame without consuming: the staging buffer's allocation
            // goes back to the pool for the next part's writer.
            out.put_bytes(w.as_slice());
            w.recycle();
        }
        let mut result = Vec::new();
        for (sender, mut r) in ex.finish() {
            while !r.is_done() {
                let frame = || -> Result<(PartId, PartId, bytes::Bytes), pumi_pcu::MsgError> {
                    let from = r.try_get_u32()?;
                    let to = r.try_get_u32()?;
                    // Zero copy: the part body is a sub-slice of the rank
                    // message, not a fresh Vec.
                    let body = r.try_get_bytes_shared()?;
                    Ok((from, to, body))
                }();
                let (from, to, body) =
                    frame.unwrap_or_else(|e| panic!("corrupt part frame from rank {sender}: {e}"));
                result.push((from, to, MsgReader::new(body)));
            }
        }
        result.sort_by_key(|&(f, t, _)| (t, f));
        if let Some(mut rng) = chaos {
            rng.shuffle(&mut result);
        }
        result
    }
}

/// Distribute a serial mesh onto parts.
///
/// Every rank deterministically regenerates the same `serial` mesh (the
/// simulated equivalent of parallel file loading) and keeps the closure of
/// the elements `elem_part` assigns to its parts. Global ids are the serial
/// indices, so part-boundary copies match across parts; remote-copy links
/// are then established with one real exchange.
pub fn distribute(comm: &Comm, map: PartMap, serial: &Mesh, elem_part: &[PartId]) -> DistMesh {
    let _span = pumi_obs::span!("dist");
    let elem_dim = serial.elem_dim();
    let d_elem = Dim::from_usize(elem_dim);
    assert_eq!(elem_part.len(), serial.index_space(d_elem));
    let rank = comm.rank();

    // 1. Build local parts: closure of owned elements, gid = serial index.
    let mut parts: Vec<Part> = Vec::new();
    for &pid in map.parts_on(rank) {
        let mut part = Part::new(pid, elem_dim);
        // serial-local vertex index -> part-local vertex index
        let mut vmap: FxHashMap<u32, u32> = FxHashMap::default();
        for e in serial.iter(d_elem) {
            if elem_part[e.idx()] != pid {
                continue;
            }
            // Create closure bottom-up with serial gids.
            for sub in serial.closure(e) {
                match sub.dim() {
                    Dim::Vertex => {
                        vmap.entry(sub.index()).or_insert_with(|| {
                            let v = part.add_vertex(
                                serial.coords(sub),
                                serial.class_of(sub),
                                sub.index() as u64,
                            );
                            v.index()
                        });
                    }
                    _ => {
                        let verts: Vec<u32> =
                            serial.verts_of(sub).iter().map(|v| vmap[v]).collect();
                        part.add_entity(
                            serial.topo(sub),
                            &verts,
                            serial.class_of(sub),
                            sub.index() as u64,
                        );
                    }
                }
            }
        }
        parts.push(part);
    }
    let mut dm = DistMesh { map, parts };

    // 2. Residence from the serial mesh: an entity resides on the parts of
    //    its adjacent elements (§II-B).
    let mut residence: FxHashMap<MeshEnt, Vec<PartId>> = FxHashMap::default();
    for d in 0..elem_dim {
        let dim = Dim::from_usize(d);
        for a in serial.iter(dim) {
            let mut parts: Vec<PartId> = serial
                .adjacent(a, d_elem)
                .iter()
                .map(|e| elem_part[e.idx()])
                .collect();
            parts.sort_unstable();
            parts.dedup();
            if parts.len() > 1 {
                residence.insert(a, parts);
            }
        }
    }

    // 3. Exchange (gid, local index) among residence parts to set remotes.
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &dm.parts {
        for (&sent, res) in &residence {
            if !res.contains(&part.id) {
                continue;
            }
            let local = part.find_gid(sent.dim(), sent.index() as u64);
            let Some(local) = local else { continue };
            for &q in res {
                if q != part.id {
                    let w = ex.to(part.id, q);
                    w.put_u8(sent.dim().as_usize() as u8);
                    w.put_u64(sent.index() as u64);
                    w.put_u32(local.index());
                }
            }
        }
    }
    let mut incoming: FxHashMap<PartId, FxHashMap<MeshEnt, Vec<(PartId, u32)>>> =
        FxHashMap::default();
    for (from, to, mut r) in ex.finish() {
        let slot = incoming.entry(to).or_default();
        while !r.is_done() {
            let d = Dim::from_usize(r.get_u8() as usize);
            let gid = r.get_u64();
            let ridx = r.get_u32();
            let part = dm.part(to);
            if let Some(local) = part.find_gid(d, gid) {
                slot.entry(local).or_default().push((from, ridx));
            }
        }
    }
    for (to, ents) in incoming {
        let part = dm.part_mut(to);
        for (e, copies) in ents {
            part.set_remotes(e, copies);
        }
    }
    dm
}

/// Convenience: check that every part's gid bookkeeping matches its mesh.
pub fn check_gids(part: &Part) -> Vec<String> {
    let mut errs = Vec::new();
    for d in pumi_util::Dim::ALL {
        for e in part.mesh.iter(d) {
            if part.gid_of(e) == NO_GID {
                errs.push(format!("part {}: {e:?} has no gid", part.id));
            } else if part.find_gid(d, part.gid_of(e)) != Some(e) {
                errs.push(format!("part {}: gid index broken for {e:?}", part.id));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;

    #[test]
    fn partmap_contiguous() {
        let m = PartMap::contiguous(8, 3);
        assert_eq!(m.nparts(), 8);
        assert_eq!(m.parts_on(0), &[0, 1, 2]);
        assert_eq!(m.parts_on(1), &[3, 4, 5]);
        assert_eq!(m.parts_on(2), &[6, 7]);
        assert_eq!(m.rank_of(4), 1);
        assert_eq!(m.slot_of(4), 1);
    }

    #[test]
    fn partmap_balanced_blocks_feeds_every_rank() {
        // 5 parts on 4 ranks: contiguous starves rank 3, blocks do not.
        let m = PartMap::balanced_blocks(5, 4);
        assert_eq!(m.parts_on(0), &[0]);
        assert_eq!(m.parts_on(1), &[1]);
        assert_eq!(m.parts_on(2), &[2]);
        assert_eq!(m.parts_on(3), &[3, 4]);
        for nparts in 1..20 {
            for nranks in 1..=nparts {
                let m = PartMap::balanced_blocks(nparts, nranks);
                for r in 0..nranks {
                    assert!(!m.parts_on(r).is_empty(), "{nparts} on {nranks}: rank {r}");
                }
            }
        }
    }

    #[test]
    fn part_exchange_routes_by_part() {
        execute(2, |c| {
            let map = PartMap::contiguous(4, 2); // rank0: parts 0,1; rank1: 2,3
                                                 // Pinned deterministic: the sortedness assertion below is about
                                                 // the deterministic scheduler's contract.
            let mut ex = PartExchange::with_opts(
                c,
                &map,
                ExchangeOpts::default().with_sched(SchedMode::Deterministic),
            );
            // Each local part sends its id+100 to every other part.
            for &from in map.parts_on(c.rank()) {
                for to in 0..4u32 {
                    if to != from {
                        ex.to(from, to).put_u32(from + 100);
                    }
                }
            }
            let got = ex.finish();
            // Each of my 2 parts receives from the 3 others: 6 messages.
            assert_eq!(got.len(), 6);
            let mut prev = (0, 0);
            for (from, to, mut r) in got {
                assert!(map.rank_of(to) == c.rank());
                assert_eq!(r.get_u32(), from + 100);
                assert!((to, from) >= prev, "not sorted");
                prev = (to, from);
            }
        });
    }

    /// Under chaos scheduling the part exchange delivers the same
    /// (from, to, payload) set as the deterministic scheduler, in a seeded
    /// permutation that actually differs from sorted order for some seed.
    #[test]
    fn part_exchange_chaos_same_set_any_order() {
        use pumi_pcu::execute_chaos;
        let mut permuted = false;
        for seed in 1..=4u64 {
            let rows = execute_chaos(2, seed, |c| {
                let map = PartMap::contiguous(4, 2);
                let mut ex = PartExchange::new(c, &map);
                for &from in map.parts_on(c.rank()) {
                    for to in 0..4u32 {
                        if to != from {
                            ex.to(from, to).put_u32(from + 100);
                        }
                    }
                }
                ex.finish()
                    .into_iter()
                    .map(|(from, to, mut r)| (from, to, r.get_u32()))
                    .collect::<Vec<_>>()
            });
            for got in &rows {
                assert_eq!(got.len(), 6);
                let mut sorted = got.clone();
                sorted.sort_by_key(|&(f, t, _)| (t, f));
                permuted |= *got != sorted;
                for &(from, _, v) in &sorted {
                    assert_eq!(v, from + 100);
                }
            }
        }
        assert!(permuted, "chaos never permuted part-frame order");
    }

    /// Distribute a 4x4 triangle mesh to 4 parts on 2 ranks and check the
    /// boundary bookkeeping end to end.
    #[test]
    fn distribute_rect_four_parts() {
        let results = execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            // Quadrant partition by element centroid.
            let elem_part: Vec<PartId> = {
                let d = serial.elem_dim_t();
                let mut v = vec![0; serial.index_space(d)];
                for e in serial.iter(d) {
                    let c = serial.centroid(e);
                    let px = if c[0] < 0.5 { 0 } else { 1 };
                    let py = if c[1] < 0.5 { 0 } else { 1 };
                    v[e.idx()] = (py * 2 + px) as PartId;
                }
                v
            };
            let map = PartMap::contiguous(4, 2);
            let dm = distribute(c, map, &serial, &elem_part);

            // Every rank hosts 2 parts with 8 elements each.
            assert_eq!(dm.parts.len(), 2);
            for p in &dm.parts {
                assert_eq!(p.mesh.num_elems(), 8);
                p.mesh.assert_valid();
                assert!(check_gids(p).is_empty());
            }
            // Total owned entities match the serial mesh.
            let serial_counts = [
                serial.count(Dim::Vertex) as u64,
                serial.count(Dim::Edge) as u64,
                serial.count(Dim::Face) as u64,
            ];
            let mut owned = [0u64; 3];
            for p in &dm.parts {
                for (d, o) in owned.iter_mut().enumerate() {
                    *o += p
                        .mesh
                        .iter(Dim::from_usize(d))
                        .filter(|&e| p.is_owned(e))
                        .count() as u64;
                }
            }
            let global: Vec<u64> = owned.iter().map(|&x| c.allreduce_sum_u64(x)).collect();
            assert_eq!(global, serial_counts);

            // The center vertex (0.5, 0.5) is shared by all 4 parts.
            let mut center_res = None;
            for p in &dm.parts {
                for v in p.mesh.iter(Dim::Vertex) {
                    let x = p.mesh.coords(v);
                    if (x[0] - 0.5).abs() < 1e-12 && (x[1] - 0.5).abs() < 1e-12 {
                        center_res = Some(p.residence(v));
                    }
                }
            }
            let center_res = center_res.expect("center vertex missing");
            assert_eq!(center_res, vec![0, 1, 2, 3]);
            true
        });
        assert!(results.into_iter().all(|x| x));
    }
}
