//! Parallel-consistent global numbering.
//!
//! PDE solvers need contiguous global numbers for degrees of freedom (e.g.
//! owned vertices). [`number_owned`] assigns `0..N_global` to owned entities
//! of a dimension — part by part in part-id order, entities in handle order
//! — then propagates each number to every remote copy, so all copies of an
//! entity agree. The numbers land in an integer tag.

use crate::dist::{DistMesh, PartExchange};
use pumi_pcu::Comm;
use pumi_util::tag::TagKind;
use pumi_util::{Dim, MeshEnt, PartId};

/// Number the owned entities of dimension `d` contiguously across the world
/// and store the number in an `i64` tag named `tag_name` on every copy
/// (owned and shared). Returns the global count. Collective.
pub fn number_owned(comm: &Comm, dm: &mut DistMesh, d: Dim, tag_name: &str) -> u64 {
    // Per-part owned counts, ordered by part id world-wide.
    let nparts = dm.map.nparts();
    let mut counts = vec![0u64; nparts];
    for part in &dm.parts {
        counts[part.id as usize] = part.mesh.iter(d).filter(|&e| part.is_owned(e)).count() as u64;
    }
    let counts = comm.allreduce_sum_u64_vec(&counts);
    let total: u64 = counts.iter().sum();
    // Exclusive prefix per part id.
    let mut starts = vec![0u64; nparts];
    for p in 1..nparts {
        starts[p] = starts[p - 1] + counts[p - 1];
    }

    // Assign numbers to owned entities and push them to remote copies.
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &mut dm.parts {
        let tid = part.mesh.tags_mut().declare(tag_name, TagKind::Int, 1);
        let mut next = starts[part.id as usize];
        let owned: Vec<MeshEnt> = part.mesh.iter(d).filter(|&e| part.is_owned(e)).collect();
        for e in owned {
            part.mesh.tags_mut().set_int(tid, e, next as i64);
            for &(q, ridx) in part.remotes_of(e) {
                let w = ex.to(part.id, q);
                w.put_u32(ridx);
                w.put_i64(next as i64);
            }
            next += 1;
        }
        debug_assert_eq!(next, starts[part.id as usize] + counts[part.id as usize]);
    }
    for (_, to, mut r) in ex.finish() {
        let slot = dm.map.slot_of(to);
        let part = &mut dm.parts[slot];
        let tid = part.mesh.tags_mut().declare(tag_name, TagKind::Int, 1);
        while !r.is_done() {
            let idx = r.get_u32();
            let num = r.get_i64();
            part.mesh.tags_mut().set_int(tid, MeshEnt::new(d, idx), num);
        }
    }
    total
}

/// Read a previously assigned number (see [`number_owned`]).
pub fn get_number(dm: &DistMesh, pid: PartId, e: MeshEnt, tag_name: &str) -> Option<i64> {
    let part = dm.part(pid);
    let tid = part.mesh.tags().find(tag_name)?;
    part.mesh.tags().get_int(tid, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::FxHashSet;

    #[test]
    fn numbering_is_contiguous_and_consistent() {
        execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let total = number_owned(c, &mut dm, Dim::Vertex, "gvn");
            assert_eq!(total, serial.count(Dim::Vertex) as u64);

            // Every local vertex has a number in range; owned numbers are
            // disjoint across parts (checked by gathering all owned numbers).
            let pid = c.rank() as PartId;
            let part = dm.part(pid);
            let tid = part.mesh.tags().find("gvn").unwrap();
            let mut owned_numbers = Vec::new();
            for v in part.mesh.iter(Dim::Vertex) {
                let n = part.mesh.tags().get_int(tid, v).expect("unnumbered vertex");
                assert!((0..total as i64).contains(&n));
                if part.is_owned(v) {
                    owned_numbers.push(n as u64);
                }
            }
            let all: Vec<u64> = c
                .allgather_u64(owned_numbers.len() as u64)
                .into_iter()
                .collect();
            assert_eq!(all.iter().sum::<u64>(), total);
            // Shared copies agree: check one shared vertex's number matches
            // on both sides by exchanging (gid, number) pairs through the
            // tag values — symmetric by construction, spot-check locally:
            let shared: Vec<_> = part
                .mesh
                .iter(Dim::Vertex)
                .filter(|&v| part.is_shared(v))
                .collect();
            assert!(!shared.is_empty());
            // Numbers of owned entities on this part form a contiguous run.
            let mut set: FxHashSet<u64> = owned_numbers.iter().copied().collect();
            let min = owned_numbers.iter().copied().min().unwrap();
            for k in 0..owned_numbers.len() as u64 {
                assert!(set.remove(&(min + k)), "non-contiguous numbering");
            }
        });
    }
}
