//! PUMI core: the distributed mesh (§II).
//!
//! The paper's primary contribution — "a parallel infrastructure with a
//! general unstructured mesh representation and various operations needed
//! for interacting with meshes on massively parallel computers" — lives
//! here, on top of the serial mesh (`pumi-mesh`), the geometric model
//! (`pumi-geom`) and the message-passing substrate (`pumi-pcu`):
//!
//! * [`part`] — parts, global ids, remote copies, residence sets, ownership
//!   (§II-A/B),
//! * [`dist`] — part↔rank maps (multiple parts per process), part-addressed
//!   exchange, bootstrap distribution,
//! * [`ptnmodel`] — the partition model: partition entities `P^d_i`,
//!   partition classification, neighbour queries (§II-C, Figs 3/4),
//! * [`migrate()`] — mesh migration (§II-C): move element closures between
//!   parts, rebuilding residence, remote copies and ownership,
//! * [`overlap`] — the star-forest of entity shares: arbitrary-depth
//!   ghost growth, root→leaf `bcast`, leaf→root `reduce` (§II-C),
//! * [`numbering`] — parallel-consistent global numbering of owned entities,
//! * [`twolevel`] — two-level architecture-aware partitioning support:
//!   on-node vs off-node part boundaries (§II-D, Figs 5/6),
//! * [`verify`] — distributed invariants (symmetric remotes, owner
//!   consistency, global entity conservation).

pub mod dist;
pub mod migrate;
pub mod numbering;
pub mod overlap;
pub mod part;
pub mod ptnmodel;
pub mod twolevel;
pub mod verify;

pub use dist::{distribute, DistMesh, PartExchange, PartMap};
pub use migrate::{migrate, MigrationPlan};
pub use overlap::{
    clear_overlap, grow_overlap, migrate_preserving, GhostOpts, Overlap, Reduction, Scope, Share,
};
pub use part::{DirtyLog, Part, NO_GID};
pub use ptnmodel::PtnModel;
