//! Two-level, architecture-aware mesh partitioning support (§II-D, Figs 5/6).
//!
//! "The partitioned mesh representation of PUMI is under improvement towards
//! a hybrid mesh partitioning algorithm which involves first partitioning a
//! mesh into nodes and subsequently to the cores on the nodes."
//!
//! Here a [`PartMap`] built by [`two_level_map`] places `cores_per_node`
//! consecutive parts on each node (one part per core, the paper's
//! process-per-node + thread-per-core mapping), and
//! [`boundary_traffic_split`] classifies each part-boundary entity as
//! on-node (dashed boundaries of Fig 3 — implicit in shared memory) or
//! off-node (solid boundaries — explicit, duplicated in distributed
//! memory).

use crate::dist::{DistMesh, PartMap};
use crate::part::Part;
use pumi_pcu::MachineModel;
use pumi_util::Dim;

/// Build the part → rank map for a machine: part `i` on rank `i` (one part
/// per core), ranks laid out node-major per the machine model.
pub fn two_level_map(machine: MachineModel) -> PartMap {
    PartMap::contiguous(machine.nranks(), machine.nranks())
}

/// Per-dimension counts of part-boundary entity copies split by link class.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BoundarySplit {
    /// Shared-entity copies whose remote parts are all on this node.
    pub on_node: [usize; 4],
    /// Shared-entity copies with at least one off-node remote part.
    pub off_node: [usize; 4],
}

impl BoundarySplit {
    /// Total on-node copies across dimensions.
    pub fn on_node_total(&self) -> usize {
        self.on_node.iter().sum()
    }

    /// Total off-node copies across dimensions.
    pub fn off_node_total(&self) -> usize {
        self.off_node.iter().sum()
    }
}

/// Classify the part-boundary entities of `part` against `machine`: an
/// entity counts as *on-node* if every remote residence part lives on the
/// same node as this part (Fig 6's implicit shared-memory boundary), and
/// *off-node* otherwise.
pub fn boundary_split(part: &Part, map: &PartMap, machine: MachineModel) -> BoundarySplit {
    let my_node = machine.node_of(map.rank_of(part.id));
    let mut out = BoundarySplit::default();
    for (e, remotes) in part.shared_entities() {
        let all_on_node = remotes
            .iter()
            .all(|&(q, _)| machine.node_of(map.rank_of(q)) == my_node);
        let d = e.dim().as_usize();
        if all_on_node {
            out.on_node[d] += 1;
        } else {
            out.off_node[d] += 1;
        }
    }
    out
}

/// Aggregate [`boundary_split`] over the local parts of a distributed mesh.
pub fn boundary_traffic_split(dm: &DistMesh, machine: MachineModel) -> BoundarySplit {
    let mut total = BoundarySplit::default();
    for part in &dm.parts {
        let s = boundary_split(part, &dm.map, machine);
        for d in 0..4 {
            total.on_node[d] += s.on_node[d];
            total.off_node[d] += s.off_node[d];
        }
    }
    total
}

/// The fraction of a part's boundary vertices that are on-node — a quality
/// measure for architecture-aware partitions (higher is better for hybrid
/// execution).
pub fn on_node_fraction(part: &Part, map: &PartMap, machine: MachineModel) -> f64 {
    let s = boundary_split(part, map, machine);
    let on = s.on_node[Dim::Vertex.as_usize()] as f64;
    let off = s.off_node[Dim::Vertex.as_usize()] as f64;
    if on + off == 0.0 {
        1.0
    } else {
        on / (on + off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::distribute;
    use pumi_meshgen::tri_rect;
    use pumi_pcu::{execute_on, MachineModel};
    use pumi_util::{MeshEnt, PartId};

    /// 4 parts on a 2-node × 2-core machine, partitioned as quadrants:
    /// parts 0,1 on node 0 and 2,3 on node 1. The boundary between 0 and 1
    /// is on-node; boundaries crossing to 2,3 are off-node (Fig 6).
    #[test]
    fn fig6_on_vs_off_node_boundaries() {
        let machine = MachineModel::new(2, 2);
        execute_on(machine, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                let cx = serial.centroid(e);
                let px = if cx[0] < 0.5 { 0 } else { 1 };
                let py = if cx[1] < 0.5 { 0 } else { 1 };
                // x splits within a node, y splits across nodes.
                elem_part[e.idx()] = (py * 2 + px) as PartId;
            }
            let map = two_level_map(machine);
            let dm = distribute(c, map, &serial, &elem_part);
            let part = &dm.parts[0];
            let split = boundary_split(part, &dm.map, machine);

            // Every part has both kinds of boundary in this layout.
            assert!(split.on_node_total() > 0, "no on-node boundary found");
            assert!(split.off_node_total() > 0, "no off-node boundary found");

            // Check one specific entity: a vertex shared only with the
            // sibling part on the same node must be on-node.
            let my = part.id;
            let sibling = my ^ 1;
            let mut found = false;
            for (e, remotes) in part.shared_entities() {
                if e.dim() == pumi_util::Dim::Vertex
                    && remotes.len() == 1
                    && remotes[0].0 == sibling
                {
                    found = true;
                }
            }
            assert!(found, "no vertex shared solely with the on-node sibling");
            // The center vertex is shared with all parts → off-node.
            let center = part
                .mesh
                .iter(pumi_util::Dim::Vertex)
                .find(|&v| {
                    let x = part.mesh.coords(v);
                    (x[0] - 0.5).abs() < 1e-12 && (x[1] - 0.5).abs() < 1e-12
                })
                .map(|v: MeshEnt| part.residence(v));
            assert_eq!(center.unwrap(), vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn on_node_fraction_bounds() {
        let machine = MachineModel::new(1, 2);
        execute_on(machine, |c| {
            let serial = tri_rect(2, 2, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
            }
            let dm = distribute(c, two_level_map(machine), &serial, &elem_part);
            // Single node: everything is on-node.
            let f = on_node_fraction(&dm.parts[0], &dm.map, machine);
            assert_eq!(f, 1.0);
        });
    }
}
