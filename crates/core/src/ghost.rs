//! Ghosting (§II-C) — deprecated shims.
//!
//! "Ghosting: a procedure to localize off-part mesh entities to avoid
//! off-node communications for computations. A ghost is a read-only,
//! duplicated, off-part internal entity copy including tag data."
//!
//! The bespoke entry points that used to live here are now thin wrappers
//! over the star-forest overlap subsystem ([`crate::overlap`]), kept for
//! one release so existing callers migrate mechanically:
//!
//! | old | new |
//! |---|---|
//! | `ghost_layers(c, dm, bridge, n)` | [`grow_overlap`]`(c, dm, GhostOpts::new().bridge(bridge).layers(n))` |
//! | `delete_ghosts(dm)` | [`clear_overlap`]`(dm)` |
//! | `sync_ghost_tags(c, dm)` | [`Overlap::bcast_tags`]`(c, dm, Scope::Ghosts)` |
//!
//! [`grow_overlap`]: crate::overlap::grow_overlap
//! [`clear_overlap`]: crate::overlap::clear_overlap
//! [`Overlap::bcast_tags`]: crate::overlap::Overlap::bcast_tags

use crate::dist::DistMesh;
use crate::overlap::{self, Scope};
use crate::part::Part;
use pumi_pcu::Comm;
use pumi_util::{Dim, MeshEnt, PartId};

/// Create `nlayers` of ghost elements around every part boundary, bridged
/// through `bridge`. Collective. Returns the total number of ghost element
/// copies created world-wide.
#[deprecated(
    since = "0.2.0",
    note = "use `overlap::grow_overlap` with `GhostOpts`, which also returns the share map"
)]
pub fn ghost_layers(comm: &Comm, dm: &mut DistMesh, bridge: Dim, nlayers: usize) -> u64 {
    let mut ov = overlap::Overlap::from_dist(dm).with_bridge(bridge);
    ov.grow(comm, dm, nlayers)
}

/// Delete every ghost copy on every part.
#[deprecated(since = "0.2.0", note = "use `overlap::clear_overlap`")]
pub fn delete_ghosts(dm: &mut DistMesh) {
    overlap::clear_overlap(dm);
}

/// Push tag data of ghosted entities from owners to their ghost copies
/// (read-only contract: ghosts never push back). Collective.
#[deprecated(
    since = "0.2.0",
    note = "use `overlap::Overlap::bcast_tags` with `Scope::Ghosts`"
)]
pub fn sync_ghost_tags(comm: &Comm, dm: &mut DistMesh) {
    let ov = overlap::Overlap::from_dist(dm);
    ov.bcast_tags(comm, dm, Scope::Ghosts);
}

impl Part {
    /// Owner-side view of ghost holders: entity → (holder part, holder-local
    /// index) list.
    pub fn ghost_entities_owner_side(&self) -> Vec<(MeshEnt, Vec<(PartId, u32)>)> {
        let mut v: Vec<(MeshEnt, Vec<(PartId, u32)>)> = Dim::ALL
            .iter()
            .flat_map(|&d| {
                self.mesh
                    .iter(d)
                    .filter(|&e| !self.ghosted_to(e).is_empty())
                    .map(|e| (e, self.ghosted_to(e).to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::dist::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::tag::TagKind;

    fn strip_two_parts(c: &Comm) -> DistMesh {
        let serial = tri_rect(4, 2, 4.0, 1.0);
        let d = serial.elem_dim_t();
        let mut elem_part = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            elem_part[e.idx()] = if serial.centroid(e)[0] < 2.0 { 0 } else { 1 };
        }
        distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
    }

    #[test]
    fn one_layer_vertex_bridge() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let before = dm.part(c.rank() as PartId).mesh.num_elems();
            let total = ghost_layers(c, &mut dm, Dim::Vertex, 1);
            assert!(total > 0);
            let part = dm.part(c.rank() as PartId);
            // Ghost elements appeared, marked ghost.
            assert!(part.mesh.num_elems() > before);
            let ghost_elems = part.mesh.elems().filter(|&e| part.is_ghost(e)).count();
            assert_eq!(part.mesh.num_elems() - before, ghost_elems);
            part.mesh.assert_valid();
            // Owners know their holders.
            let ghosted: usize = part.ghost_entities_owner_side().len();
            assert!(ghosted > 0, "owner-side ghost records missing");
        });
    }

    #[test]
    fn ghost_then_delete_restores_counts() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            let counts_before = dm.part(pid).entity_counts();
            ghost_layers(c, &mut dm, Dim::Vertex, 1);
            assert!(dm.part(pid).num_ghosts() > 0);
            delete_ghosts(&mut dm);
            let part = dm.part(pid);
            assert_eq!(part.num_ghosts(), 0);
            assert_eq!(part.entity_counts(), counts_before);
            part.mesh.assert_valid();
        });
    }

    #[test]
    fn two_layers_reach_further() {
        execute(2, |c| {
            let mut dm1 = strip_two_parts(c);
            let t1 = ghost_layers(c, &mut dm1, Dim::Vertex, 1);
            let mut dm2 = strip_two_parts(c);
            let t2 = ghost_layers(c, &mut dm2, Dim::Vertex, 2);
            assert!(t2 > t1, "layer 2 added nothing: {t1} vs {t2}");
        });
    }

    #[test]
    fn ghost_tag_sync_pushes_owner_values() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            // Owners tag their elements with their part id.
            {
                let part = dm.part_mut(pid);
                let tid = part.mesh.tags_mut().declare("load", TagKind::Int, 1);
                for e in part.mesh.snapshot(Dim::Face) {
                    part.mesh.tags_mut().set_int(tid, e, pid as i64);
                }
            }
            ghost_layers(c, &mut dm, Dim::Vertex, 1);
            // Ghost copies carried the tag at copy time.
            {
                let part = dm.part(pid);
                let tid = part.mesh.tags().find("load").unwrap();
                for e in part.mesh.elems() {
                    if part.is_ghost(e) {
                        let v = part.mesh.tags().get_int(tid, e).expect("ghost tag");
                        assert_eq!(v, 1 - pid as i64);
                    }
                }
            }
            // Owner updates, syncs; ghosts see the new value.
            {
                let part = dm.part_mut(pid);
                let tid = part.mesh.tags().find("load").unwrap();
                for e in part.mesh.snapshot(Dim::Face) {
                    if !part.is_ghost(e) {
                        part.mesh.tags_mut().set_int(tid, e, 100 + pid as i64);
                    }
                }
            }
            sync_ghost_tags(c, &mut dm);
            let part = dm.part(pid);
            let tid = part.mesh.tags().find("load").unwrap();
            for e in part.mesh.elems() {
                if part.is_ghost(e) {
                    assert_eq!(
                        part.mesh.tags().get_int(tid, e),
                        Some(100 + (1 - pid as i64))
                    );
                }
            }
        });
    }
}
