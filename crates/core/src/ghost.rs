//! Ghosting (§II-C).
//!
//! "Ghosting: a procedure to localize off-part mesh entities to avoid
//! off-node communications for computations. A ghost is a read-only,
//! duplicated, off-part internal entity copy including tag data."
//!
//! [`ghost_layers`] copies `nlayers` of elements adjacent (through a bridge
//! dimension) to each part boundary onto the neighbouring parts. Ghost
//! copies do not join residence sets or ownership; owners remember who holds
//! ghosts of their entities so [`sync_ghost_tags`] can push updated tag data
//! (the read-only contract: data flows owner → ghost only).

use crate::dist::{DistMesh, PartExchange};
use crate::migrate::{pack_tags, unpack_tags};
use crate::part::Part;
use pumi_geom::GeomEnt;
use pumi_mesh::Topology;
use pumi_pcu::{Comm, MsgError, MsgReader};
use pumi_util::{Dim, FxHashMap, FxHashSet, MeshEnt, PartId};

/// Ghost-creation acknowledgement: (dim, owner idx, holder idx).
type Ack = (u8, u32, u32);

/// Unpack one buffer of ghost-entity frames into `part`, creating missing
/// entities as ghost copies and collecting acks for the owner.
fn unpack_ghost_entities(
    r: &mut MsgReader,
    part: &mut Part,
    from: PartId,
    elem_dim: usize,
    total: &mut u64,
    ack: &mut Vec<Ack>,
) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let tb = r.try_get_u8()?;
        let topo = Topology::try_from_u8(tb).ok_or(MsgError::bad_enum("topology", tb))?;
        let gid = r.try_get_u64()?;
        let class = GeomEnt(r.try_get_u32()?);
        let src_idx = r.try_get_u32()?;
        let (e, fresh) = if d == Dim::Vertex {
            let x = [r.try_get_f64()?, r.try_get_f64()?, r.try_get_f64()?];
            match part.find_gid(d, gid) {
                Some(e) => (e, false),
                None => (part.add_vertex(x, class, gid), true),
            }
        } else {
            let vgids = r.try_get_u64_slice()?;
            match part.find_gid(d, gid) {
                Some(e) => (e, false),
                None => {
                    let mut verts = Vec::with_capacity(vgids.len());
                    for &g in &vgids {
                        let v = part.find_gid(Dim::Vertex, g).ok_or(MsgError::missing(
                            "ghost closure vertex",
                            0,
                            g,
                        ))?;
                        verts.push(v.index());
                    }
                    (part.add_entity(topo, &verts, class, gid), true)
                }
            }
        };
        if fresh {
            part.set_ghost(e, (from, src_idx));
            ack.push((d.as_usize() as u8, src_idx, e.index()));
            if d == Dim::from_usize(elem_dim) {
                *total += 1;
            }
        }
        unpack_tags(part, e, r)?;
    }
    Ok(())
}

/// Unpack ghost acknowledgements: owners record which parts hold copies.
fn unpack_ghost_acks(r: &mut MsgReader, part: &mut Part, from: PartId) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let my_idx = r.try_get_u32()?;
        let their_idx = r.try_get_u32()?;
        part.add_ghosted_to(MeshEnt::new(d, my_idx), (from, their_idx));
    }
    Ok(())
}

/// Unpack `(dim, idx, tags...)` frames pushed by [`sync_ghost_tags`].
fn unpack_tag_frames(r: &mut MsgReader, part: &mut Part) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let idx = r.try_get_u32()?;
        unpack_tags(part, MeshEnt::new(d, idx), r)?;
    }
    Ok(())
}

/// Create `nlayers` of ghost elements around every part boundary, bridged
/// through `bridge` (e.g. `Dim::Vertex` ghosts everything sharing a boundary
/// vertex — the widest stencil; `Dim::Face` in 3D gives face-neighbour
/// stencils). Collective. Returns the total number of ghost element copies
/// created world-wide.
pub fn ghost_layers(comm: &Comm, dm: &mut DistMesh, bridge: Dim, nlayers: usize) -> u64 {
    let _span = pumi_obs::span!("ghost");
    pumi_obs::metrics::counter_add("ghost.calls", 1);
    let elem_dim = dm.parts.first().map(|p| p.mesh.elem_dim()).unwrap_or(2);
    let d_elem = Dim::from_usize(elem_dim);
    assert!(
        bridge.as_usize() < elem_dim,
        "bridge must be below elements"
    );
    let nlocal = dm.parts.len();

    // sent[slot][q] = elements already copied to part q (as handles).
    let mut sent: Vec<FxHashMap<PartId, FxHashSet<MeshEnt>>> = vec![FxHashMap::default(); nlocal];
    // Sender-side frontier: the elements shipped to q in the previous layer.
    // Deeper layers grow outward from these on the owning part (as in PUMI,
    // each layer comes from the part that owns the boundary neighbourhood).
    let mut frontier: Vec<FxHashMap<PartId, Vec<MeshEnt>>> = vec![FxHashMap::default(); nlocal];
    let mut total = 0u64;

    for layer in 0..nlayers {
        // 1. Determine which elements to send where.
        let mut to_send: Vec<FxHashMap<PartId, Vec<MeshEnt>>> = vec![FxHashMap::default(); nlocal];
        for (slot, part) in dm.parts.iter().enumerate() {
            if layer == 0 {
                // Seed: elements touching a boundary entity of the bridge
                // dimension, destined to the parts sharing that entity.
                for (e, remotes) in part.shared_entities() {
                    if e.dim() != bridge {
                        continue;
                    }
                    let elems = part.mesh.adjacent(e, d_elem);
                    for &(q, _) in remotes {
                        for &el in &elems {
                            if part.is_ghost(el) {
                                continue;
                            }
                            if sent[slot].entry(q).or_default().insert(el) {
                                to_send[slot].entry(q).or_default().push(el);
                            }
                        }
                    }
                }
            } else {
                // Grow: our elements bridge-adjacent to what we already
                // shipped to q.
                for (&q, seeds) in &frontier[slot] {
                    for &g in seeds {
                        for el in part.mesh.neighbors_via(g, bridge) {
                            if part.is_ghost(el) {
                                continue;
                            }
                            if sent[slot].entry(q).or_default().insert(el) {
                                to_send[slot].entry(q).or_default().push(el);
                            }
                        }
                    }
                }
            }
        }
        // The next layer grows from what each part ships now.
        for slot in 0..nlocal {
            frontier[slot] = to_send[slot].iter().map(|(&q, v)| (q, v.clone())).collect();
        }

        // 2. Pack closures (bottom-up) and send.
        let mut ex = PartExchange::new(comm, &dm.map);
        for (slot, part) in dm.parts.iter().enumerate() {
            let mut dests: Vec<(&PartId, &Vec<MeshEnt>)> = to_send[slot].iter().collect();
            dests.sort_by_key(|&(q, _)| *q);
            for (&q, elems) in dests {
                let mut packed: FxHashSet<MeshEnt> = FxHashSet::default();
                let mut by_dim: [Vec<MeshEnt>; 4] = Default::default();
                let mut elems = elems.clone();
                elems.sort_unstable();
                for &el in &elems {
                    for sub in part.mesh.closure(el) {
                        if packed.insert(sub) {
                            by_dim[sub.dim().as_usize()].push(sub);
                        }
                    }
                }
                let w = ex.to(part.id, q);
                for (d, by) in by_dim.iter().enumerate().take(elem_dim + 1) {
                    for &e in by {
                        w.put_u8(d as u8);
                        w.put_u8(part.mesh.topo(e).to_u8());
                        w.put_u64(part.gid_of(e));
                        w.put_u32(part.mesh.class_of(e).0);
                        w.put_u32(e.index()); // owner-side index
                        if d == 0 {
                            let x = part.mesh.coords(e);
                            w.put_f64(x[0]);
                            w.put_f64(x[1]);
                            w.put_f64(x[2]);
                        } else {
                            let vgids: Vec<u64> = part
                                .mesh
                                .verts_of(e)
                                .iter()
                                .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                                .collect();
                            w.put_u64_slice(&vgids);
                        }
                        pack_tags(part, e, w);
                    }
                }
            }
        }

        // 3. Receive: create missing entities as ghosts; reply with local
        //    indices so owners can track ghost holders.
        let mut replies: Vec<(PartId, PartId, Vec<Ack>)> = Vec::new();
        // Canonical unpack order: ghost creation order (and thus local
        // indices, and which sender a doubly-ghosted entity records as its
        // source) must not depend on the chaos scheduler's arrival order.
        let mut frames = ex.finish();
        frames.sort_by_key(|&(from, to, _)| (to, from));
        for (from, to, mut r) in frames {
            let slot = dm.map.slot_of(to);
            let mut ack: Vec<Ack> = Vec::new();
            unpack_ghost_entities(
                &mut r,
                &mut dm.parts[slot],
                from,
                elem_dim,
                &mut total,
                &mut ack,
            )
            .unwrap_or_else(|e| panic!("corrupt ghost frame {from}->{to}: {e}"));
            if !ack.is_empty() {
                replies.push((to, from, ack));
            }
        }

        // 4. Acknowledge: owners record ghost holders.
        let mut ex = PartExchange::new(comm, &dm.map);
        for (me, owner, ack) in replies {
            let w = ex.to(me, owner);
            for (d, src_idx, my_idx) in ack {
                w.put_u8(d);
                w.put_u32(src_idx);
                w.put_u32(my_idx);
            }
        }
        let mut frames = ex.finish();
        frames.sort_by_key(|&(from, to, _)| (to, from));
        for (from, to, mut r) in frames {
            let slot = dm.map.slot_of(to);
            unpack_ghost_acks(&mut r, &mut dm.parts[slot], from)
                .unwrap_or_else(|e| panic!("corrupt ghost ack frame {from}->{to}: {e}"));
        }
    }
    comm.allreduce_sum_u64(total)
}

/// Delete every ghost copy on every part. Collective only in the trivial
/// sense (no communication needed — owner-side `ghosted_to` records are
/// cleared locally too).
pub fn delete_ghosts(dm: &mut DistMesh) {
    let _span = pumi_obs::span!("ghost.delete");
    for part in &mut dm.parts {
        let ghosts = part.ghost_entities();
        // Top-down: elements, then faces, edges, vertices with no remaining
        // upward adjacency.
        for d in (0..=3usize).rev() {
            for &g in &ghosts {
                if g.dim().as_usize() != d || !part.mesh.is_live(g) {
                    continue;
                }
                if d < 3 && part.mesh.up_count(g) > 0 {
                    // Still bounds a live (possibly non-ghost) entity: keep.
                    // This happens when a ghost's closure entity is shared
                    // with a real boundary entity — those were never fresh,
                    // so they are not in `ghosts`; a live up here means a
                    // non-ghost element references it, which contradicts
                    // ghost creation. Defensive skip.
                    continue;
                }
                part.delete_entity(g);
            }
        }
        part.clear_ghost_records();
    }
}

/// Push tag data of ghosted entities from owners to their ghost copies
/// (read-only contract: ghosts never push back). Syncs every tag present on
/// each ghosted entity. Collective.
pub fn sync_ghost_tags(comm: &Comm, dm: &mut DistMesh) {
    let _span = pumi_obs::span!("ghost.sync_tags");
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &dm.parts {
        let mut items: Vec<(MeshEnt, Vec<(PartId, u32)>)> =
            part.ghost_entities_owner_side().into_iter().collect();
        items.sort_by_key(|(e, _)| *e);
        for (e, holders) in items {
            for (q, their_idx) in holders {
                let w = ex.to(part.id, q);
                w.put_u8(e.dim().as_usize() as u8);
                w.put_u32(their_idx);
                pack_tags(part, e, w);
            }
        }
    }
    // Sorted so first-declaration tag-id assignment stays canonical.
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let slot = dm.map.slot_of(to);
        unpack_tag_frames(&mut r, &mut dm.parts[slot])
            .unwrap_or_else(|e| panic!("corrupt ghost tag frame {from}->{to}: {e}"));
    }
}

impl Part {
    /// Owner-side view of ghost holders: entity → (holder part, holder-local
    /// index) list.
    pub fn ghost_entities_owner_side(&self) -> Vec<(MeshEnt, Vec<(PartId, u32)>)> {
        let mut v: Vec<(MeshEnt, Vec<(PartId, u32)>)> = Dim::ALL
            .iter()
            .flat_map(|&d| {
                self.mesh
                    .iter(d)
                    .filter(|&e| !self.ghosted_to(e).is_empty())
                    .map(|e| (e, self.ghosted_to(e).to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::tag::TagKind;

    fn strip_two_parts(c: &Comm) -> DistMesh {
        let serial = tri_rect(4, 2, 4.0, 1.0);
        let d = serial.elem_dim_t();
        let mut elem_part = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            elem_part[e.idx()] = if serial.centroid(e)[0] < 2.0 { 0 } else { 1 };
        }
        distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
    }

    #[test]
    fn one_layer_vertex_bridge() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let before = dm.part(c.rank() as PartId).mesh.num_elems();
            let total = ghost_layers(c, &mut dm, Dim::Vertex, 1);
            assert!(total > 0);
            let part = dm.part(c.rank() as PartId);
            // Ghost elements appeared, marked ghost.
            assert!(part.mesh.num_elems() > before);
            let ghost_elems = part.mesh.elems().filter(|&e| part.is_ghost(e)).count();
            assert_eq!(part.mesh.num_elems() - before, ghost_elems);
            part.mesh.assert_valid();
            // Owners know their holders.
            let ghosted: usize = part.ghost_entities_owner_side().len();
            assert!(ghosted > 0, "owner-side ghost records missing");
        });
    }

    #[test]
    fn ghost_then_delete_restores_counts() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            let counts_before = dm.part(pid).entity_counts();
            ghost_layers(c, &mut dm, Dim::Vertex, 1);
            assert!(dm.part(pid).num_ghosts() > 0);
            delete_ghosts(&mut dm);
            let part = dm.part(pid);
            assert_eq!(part.num_ghosts(), 0);
            assert_eq!(part.entity_counts(), counts_before);
            part.mesh.assert_valid();
        });
    }

    #[test]
    fn two_layers_reach_further() {
        execute(2, |c| {
            let mut dm1 = strip_two_parts(c);
            let t1 = ghost_layers(c, &mut dm1, Dim::Vertex, 1);
            let mut dm2 = strip_two_parts(c);
            let t2 = ghost_layers(c, &mut dm2, Dim::Vertex, 2);
            assert!(t2 > t1, "layer 2 added nothing: {t1} vs {t2}");
        });
    }

    #[test]
    fn ghost_tag_sync_pushes_owner_values() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            // Owners tag their elements with their part id.
            {
                let part = dm.part_mut(pid);
                let tid = part.mesh.tags_mut().declare("load", TagKind::Int, 1);
                for e in part.mesh.snapshot(Dim::Face) {
                    part.mesh.tags_mut().set_int(tid, e, pid as i64);
                }
            }
            ghost_layers(c, &mut dm, Dim::Vertex, 1);
            // Ghost copies carried the tag at copy time.
            {
                let part = dm.part(pid);
                let tid = part.mesh.tags().find("load").unwrap();
                for e in part.mesh.elems() {
                    if part.is_ghost(e) {
                        let v = part.mesh.tags().get_int(tid, e).expect("ghost tag");
                        assert_eq!(v, 1 - pid as i64);
                    }
                }
            }
            // Owner updates, syncs; ghosts see the new value.
            {
                let part = dm.part_mut(pid);
                let tid = part.mesh.tags().find("load").unwrap();
                for e in part.mesh.snapshot(Dim::Face) {
                    if !part.is_ghost(e) {
                        part.mesh.tags_mut().set_int(tid, e, 100 + pid as i64);
                    }
                }
            }
            sync_ghost_tags(c, &mut dm);
            let part = dm.part(pid);
            let tid = part.mesh.tags().find("load").unwrap();
            for e in part.mesh.elems() {
                if part.is_ghost(e) {
                    assert_eq!(
                        part.mesh.tags().get_int(tid, e),
                        Some(100 + (1 - pid as i64))
                    );
                }
            }
        });
    }
}
