//! Overlap distribution: the star-forest of entity shares (§II-C, and
//! Knepley/Lange/Gorman's "overlap" generalization).
//!
//! A distributed mesh duplicates entities: part-boundary copies (remotes)
//! and read-only ghost copies. Both are the same thing seen through one
//! abstraction — a **star forest** of point shares. Each shared entity has
//! one *root* (the copy on its owning part) and any number of *leaves*
//! (every other copy, boundary or ghost). [`Overlap`] materializes that
//! forest so that data movement becomes two composable primitives:
//!
//! * [`Overlap::bcast`] — root → leaves (owner pushes authoritative data),
//! * [`Overlap::reduce`] — leaves → root, combined with a [`Reduction`].
//!
//! Overlap *growth* ([`grow_overlap`], [`Overlap::grow`]) copies layers of
//! elements adjacent (through a bridge dimension) to each part boundary
//! onto the neighbouring parts, closure-complete and iterable to arbitrary
//! depth — the paper's one-layer ghosting is exactly the `depth = 1`
//! special case. Redistribution ([`migrate_preserving`]) re-derives an
//! equivalent overlap after migration, so consumers can treat "migrate a
//! ghosted mesh" as one operation.
//!
//! Ghost copies keep the read-only contract: data flows root → ghost leaf
//! only, unless a caller explicitly reduces with [`Scope::All`] over values
//! it put on leaves itself (the FE-assembly pattern).

use crate::dist::{DistMesh, PartExchange, PartMap};
use crate::migrate::{migrate, pack_tags, unpack_tags, MigrationPlan, MigrationStats};
use crate::part::Part;
use pumi_geom::GeomEnt;
use pumi_mesh::Topology;
use pumi_pcu::{Comm, MsgError, MsgReader, MsgWriter};
use pumi_util::{Dim, FxHashMap, FxHashSet, MeshEnt, PartId};

// ---------------------------------------------------------------------
// Options and modes
// ---------------------------------------------------------------------

/// How [`Overlap::reduce`]-style synchronization combines multiple copies
/// of the same value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Root overwrites leaves (owner → copy push, no combination).
    Insert,
    /// Sum all copies — the FE assembly reduction.
    Add,
    /// Keep the componentwise minimum over all copies.
    Min,
    /// Keep the componentwise maximum over all copies.
    Max,
}

/// Which share links an [`Overlap::bcast`] / [`Overlap::reduce`] traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every leaf: part-boundary copies and ghost copies.
    All,
    /// Ghost leaves only (e.g. tag pushes under the read-only contract).
    Ghosts,
}

/// Options for [`grow_overlap`], builder-style like `ImproveOpts`:
///
/// ```
/// use pumi_core::overlap::GhostOpts;
/// use pumi_util::Dim;
/// let opts = GhostOpts::new().bridge(Dim::Vertex).layers(2);
/// assert_eq!(opts.layers, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostOpts {
    /// Bridge dimension: an element joins the next layer when it shares a
    /// `bridge`-dimensional entity with the previous one. `Dim::Vertex`
    /// gives the widest stencil; `Dim::Face` in 3D gives face-neighbour
    /// stencils.
    pub bridge: Dim,
    /// Number of element layers to copy around every part boundary.
    pub layers: usize,
}

impl Default for GhostOpts {
    fn default() -> Self {
        GhostOpts {
            bridge: Dim::Vertex,
            layers: 1,
        }
    }
}

impl GhostOpts {
    /// Default options: one layer bridged through vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the bridge dimension.
    pub fn bridge(mut self, d: Dim) -> Self {
        self.bridge = d;
        self
    }

    /// Set the number of layers.
    pub fn layers(mut self, n: usize) -> Self {
        self.layers = n;
        self
    }
}

// ---------------------------------------------------------------------
// The star forest
// ---------------------------------------------------------------------

/// One end of a share link: the copy of an entity living on `part` at
/// local index `index`. In a root's leaf list this names a leaf copy; in a
/// leaf's record it names the root copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Share {
    /// Part holding the copy.
    pub part: PartId,
    /// Entity index local to `part` (same dimension as the entity).
    pub index: u32,
    /// Whether the *leaf* side of this link is a ghost copy (false for
    /// part-boundary remotes).
    pub ghost: bool,
}

/// The star-forest share map of a [`DistMesh`]: for every local part slot,
/// which entities are roots (with their leaf lists) and which are leaves
/// (with their root reference).
///
/// Built locally from part bookkeeping by [`Overlap::from_dist`] — remotes
/// and ghost records already encode the forest; no communication needed.
/// [`Overlap::grow`] deepens the ghost region and refreshes the maps.
#[derive(Debug, Clone)]
pub struct Overlap {
    bridge: Dim,
    depth: usize,
    /// Local part ids, aligned with `DistMesh::parts`.
    part_ids: Vec<PartId>,
    /// Per slot: root entity → its leaf copies, boundary and ghost.
    roots: Vec<FxHashMap<MeshEnt, Vec<Share>>>,
    /// Per slot: leaf entity → its root copy.
    leaves: Vec<FxHashMap<MeshEnt, Share>>,
    /// Per slot: elements already shipped to each neighbour part, so
    /// repeated [`Overlap::grow`] calls never re-send (grow(1) twice ≡
    /// grow(2)).
    sent: Vec<FxHashMap<PartId, FxHashSet<MeshEnt>>>,
    /// Per slot: the elements shipped to each neighbour in the most recent
    /// layer — the seeds the next layer grows outward from.
    frontier: Vec<FxHashMap<PartId, Vec<MeshEnt>>>,
}

impl Overlap {
    /// Build the share map of `dm` from its part bookkeeping (remote-copy
    /// lists and ghost records). Purely local. The bridge dimension
    /// defaults to `Dim::Vertex`; override with [`Overlap::with_bridge`]
    /// before growing.
    pub fn from_dist(dm: &DistMesh) -> Overlap {
        let nlocal = dm.parts.len();
        let mut ov = Overlap {
            bridge: Dim::Vertex,
            depth: 0,
            part_ids: dm.parts.iter().map(|p| p.id).collect(),
            roots: vec![FxHashMap::default(); nlocal],
            leaves: vec![FxHashMap::default(); nlocal],
            sent: vec![FxHashMap::default(); nlocal],
            frontier: vec![FxHashMap::default(); nlocal],
        };
        ov.rebuild_shares(dm);
        ov
    }

    /// Set the bridge dimension used by subsequent [`Overlap::grow`] calls.
    pub fn with_bridge(mut self, bridge: Dim) -> Self {
        self.bridge = bridge;
        self
    }

    /// The bridge dimension growth uses.
    pub fn bridge(&self) -> Dim {
        self.bridge
    }

    /// Number of layers grown through this handle (0 for a freshly built
    /// share map, even if `dm` already carried ghosts from elsewhere).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of local part slots (aligned with `DistMesh::parts`).
    pub fn num_slots(&self) -> usize {
        self.part_ids.len()
    }

    /// The part id of local slot `slot`.
    pub fn part_id(&self, slot: usize) -> PartId {
        self.part_ids[slot]
    }

    /// Number of root entities on slot `slot`.
    pub fn num_roots(&self, slot: usize) -> usize {
        self.roots[slot].len()
    }

    /// Number of leaf entities on slot `slot`.
    pub fn num_leaves(&self, slot: usize) -> usize {
        self.leaves[slot].len()
    }

    /// The leaf copies of root `e` on slot `slot` (empty if not a root).
    pub fn root_shares(&self, slot: usize, e: MeshEnt) -> &[Share] {
        self.roots[slot]
            .get(&e)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The root copy of leaf `e` on slot `slot`, if `e` is a leaf there.
    pub fn leaf_root(&self, slot: usize, e: MeshEnt) -> Option<Share> {
        self.leaves[slot].get(&e).copied()
    }

    /// All roots of slot `slot` with their leaf lists, sorted by handle.
    pub fn roots_sorted(&self, slot: usize) -> Vec<(MeshEnt, &[Share])> {
        let mut v: Vec<(MeshEnt, &[Share])> = self.roots[slot]
            .iter()
            .map(|(&e, s)| (e, s.as_slice()))
            .collect();
        v.sort_by_key(|&(e, _)| e);
        v
    }

    /// All leaves of slot `slot` with their root references, sorted by
    /// handle.
    pub fn leaves_sorted(&self, slot: usize) -> Vec<(MeshEnt, Share)> {
        let mut v: Vec<(MeshEnt, Share)> =
            self.leaves[slot].iter().map(|(&e, &s)| (e, s)).collect();
        v.sort_by_key(|&(e, _)| e);
        v
    }

    /// Re-derive roots/leaves from `dm`'s part bookkeeping. Called after
    /// every [`Overlap::grow`]; call it yourself if you mutate share
    /// records through the raw [`Part`] API.
    pub fn rebuild_shares(&mut self, dm: &DistMesh) {
        for (slot, part) in dm.parts.iter().enumerate() {
            let roots = &mut self.roots[slot];
            let leaves = &mut self.leaves[slot];
            roots.clear();
            leaves.clear();
            // Part-boundary copies: the minimum residence part is root.
            for (e, remotes) in part.shared_entities() {
                if part.is_owned(e) {
                    roots.insert(
                        e,
                        remotes
                            .iter()
                            .map(|&(p, i)| Share {
                                part: p,
                                index: i,
                                ghost: false,
                            })
                            .collect(),
                    );
                } else {
                    let owner = part.owner(e);
                    if let Some(&(p, i)) = remotes.iter().find(|&&(p, _)| p == owner) {
                        leaves.insert(
                            e,
                            Share {
                                part: p,
                                index: i,
                                ghost: false,
                            },
                        );
                    }
                }
            }
            // Ghost copies: the source (always the owner — growth re-roots
            // holder records) is root, the ghost is a leaf.
            for (e, holders) in part.ghost_entities_owner_side() {
                let list = roots.entry(e).or_default();
                for (p, i) in holders {
                    list.push(Share {
                        part: p,
                        index: i,
                        ghost: true,
                    });
                }
            }
            for e in part.ghost_entities() {
                let (p, i) = part.ghost_source(e).expect("ghost has a source");
                leaves.insert(
                    e,
                    Share {
                        part: p,
                        index: i,
                        ghost: true,
                    },
                );
            }
            // Canonical leaf order, independent of ack arrival order.
            for list in roots.values_mut() {
                list.sort_unstable();
            }
        }
    }

    // -----------------------------------------------------------------
    // Growth
    // -----------------------------------------------------------------

    /// Grow the ghost region by `layers` element layers bridged through
    /// [`Overlap::bridge`], then refresh the share maps. Iterable:
    /// `grow(1)` twice reaches exactly the entities `grow(2)` does.
    /// Collective. Returns the world-total number of ghost element copies
    /// created by this call.
    pub fn grow(&mut self, comm: &Comm, dm: &mut DistMesh, layers: usize) -> u64 {
        let _span = pumi_obs::span!("overlap.grow");
        pumi_obs::metrics::counter_add("overlap.grow.calls", 1);
        let elem_dim = dm.parts.first().map(|p| p.mesh.elem_dim()).unwrap_or(2);
        let d_elem = Dim::from_usize(elem_dim);
        assert!(
            self.bridge.as_usize() < elem_dim,
            "bridge must be below elements"
        );
        let nlocal = dm.parts.len();
        let mut total = 0u64;

        for _ in 0..layers {
            // 1. Determine which elements to send where. The first layer
            //    seeds from boundary bridge entities; later layers grow
            //    outward from what each part already shipped.
            let mut to_send: Vec<FxHashMap<PartId, Vec<MeshEnt>>> =
                vec![FxHashMap::default(); nlocal];
            for (slot, part) in dm.parts.iter().enumerate() {
                if self.depth == 0 && self.frontier[slot].is_empty() {
                    for (e, remotes) in part.shared_entities() {
                        if e.dim() != self.bridge {
                            continue;
                        }
                        let elems = part.mesh.adjacent(e, d_elem);
                        for &(q, _) in remotes {
                            for &el in &elems {
                                if part.is_ghost(el) {
                                    continue;
                                }
                                if self.sent[slot].entry(q).or_default().insert(el) {
                                    to_send[slot].entry(q).or_default().push(el);
                                }
                            }
                        }
                    }
                } else {
                    for (&q, seeds) in &self.frontier[slot] {
                        for &g in seeds {
                            for el in part.mesh.neighbors_via(g, self.bridge) {
                                if part.is_ghost(el) {
                                    continue;
                                }
                                if self.sent[slot].entry(q).or_default().insert(el) {
                                    to_send[slot].entry(q).or_default().push(el);
                                }
                            }
                        }
                    }
                }
            }
            for (frontier, sends) in self.frontier.iter_mut().zip(&to_send) {
                *frontier = sends.iter().map(|(&q, v)| (q, v.clone())).collect();
            }

            // 2. Pack closures (bottom-up) and send.
            let mut ex = PartExchange::new(comm, &dm.map);
            for (slot, part) in dm.parts.iter().enumerate() {
                let mut dests: Vec<(&PartId, &Vec<MeshEnt>)> = to_send[slot].iter().collect();
                dests.sort_by_key(|&(q, _)| *q);
                for (&q, elems) in dests {
                    let mut packed: FxHashSet<MeshEnt> = FxHashSet::default();
                    let mut by_dim: [Vec<MeshEnt>; 4] = Default::default();
                    let mut elems = elems.clone();
                    elems.sort_unstable();
                    for &el in &elems {
                        for sub in part.mesh.closure(el) {
                            if packed.insert(sub) {
                                by_dim[sub.dim().as_usize()].push(sub);
                            }
                        }
                    }
                    let w = ex.to(part.id, q);
                    for (d, by) in by_dim.iter().enumerate().take(elem_dim + 1) {
                        for &e in by {
                            w.put_u8(d as u8);
                            w.put_u8(part.mesh.topo(e).to_u8());
                            w.put_u64(part.gid_of(e));
                            w.put_u32(part.mesh.class_of(e).0);
                            w.put_u32(e.index()); // sender-side index
                            if d == 0 {
                                let x = part.mesh.coords(e);
                                w.put_f64(x[0]);
                                w.put_f64(x[1]);
                                w.put_f64(x[2]);
                            } else {
                                let vgids: Vec<u64> = part
                                    .mesh
                                    .verts_of(e)
                                    .iter()
                                    .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                                    .collect();
                                w.put_u64_slice(&vgids);
                            }
                            pack_tags(part, e, w);
                        }
                    }
                }
            }

            // 3. Receive: create missing entities as ghosts; reply with
            //    local indices so the sender can route holder records.
            let mut replies: Vec<(PartId, PartId, Vec<Ack>)> = Vec::new();
            // Canonical unpack order: ghost creation order (local indices,
            // and which sender a doubly-shipped entity first arrives from)
            // must not depend on the chaos scheduler's arrival order.
            let mut frames = ex.finish();
            frames.sort_by_key(|&(from, to, _)| (to, from));
            for (from, to, mut r) in frames {
                let slot = dm.map.slot_of(to);
                let mut ack: Vec<Ack> = Vec::new();
                unpack_ghost_entities(
                    &mut r,
                    &mut dm.parts[slot],
                    from,
                    elem_dim,
                    &mut total,
                    &mut ack,
                )
                .unwrap_or_else(|e| panic!("corrupt overlap frame {from}->{to}: {e}"));
                if !ack.is_empty() {
                    replies.push((to, from, ack));
                }
            }

            // 4. Acknowledge to the sender. If the sender owns the entity
            //    it records the holder directly; otherwise it re-roots:
            //    forwards the holder record to the owner and tells the
            //    holder the canonical root, so ghost links always point at
            //    owners no matter which part shipped the copy.
            let mut ex = PartExchange::new(comm, &dm.map);
            for (me, sender, ack) in replies {
                let w = ex.to(me, sender);
                for (d, src_idx, my_idx) in ack {
                    w.put_u8(d);
                    w.put_u32(src_idx);
                    w.put_u32(my_idx);
                }
            }
            let mut frames = ex.finish();
            frames.sort_by_key(|&(from, to, _)| (to, from));
            // Re-root records: (sender part, dest part, payload).
            let mut reroot = PartExchange::new(comm, &dm.map);
            for (from, to, mut r) in frames {
                let slot = dm.map.slot_of(to);
                loop {
                    let part = &mut dm.parts[slot];
                    match read_ack(&mut r) {
                        Ok(None) => break,
                        Ok(Some((d, my_idx, holder_idx))) => {
                            let e = MeshEnt::new(d, my_idx);
                            match root_ref(part, e) {
                                None => part.record_ghost_holder(e, (from, holder_idx)),
                                Some((owner, oidx)) => {
                                    // Tell the owner about its new holder…
                                    let w = reroot.to(to, owner);
                                    w.put_u8(0);
                                    w.put_u8(d.as_usize() as u8);
                                    w.put_u32(oidx);
                                    w.put_u32(from);
                                    w.put_u32(holder_idx);
                                    // …and the holder about its real root.
                                    let w = reroot.to(to, from);
                                    w.put_u8(1);
                                    w.put_u8(d.as_usize() as u8);
                                    w.put_u32(holder_idx);
                                    w.put_u32(owner);
                                    w.put_u32(oidx);
                                }
                            }
                        }
                        Err(e) => panic!("corrupt overlap ack frame {from}->{to}: {e}"),
                    }
                }
            }
            let mut frames = reroot.finish();
            frames.sort_by_key(|&(from, to, _)| (to, from));
            for (from, to, mut r) in frames {
                let slot = dm.map.slot_of(to);
                unpack_reroot(&mut r, &mut dm.parts[slot])
                    .unwrap_or_else(|e| panic!("corrupt overlap re-root frame {from}->{to}: {e}"));
            }

            self.depth += 1;
        }
        self.rebuild_shares(dm);
        comm.allreduce_sum_u64(total)
    }

    // -----------------------------------------------------------------
    // Data movement
    // -----------------------------------------------------------------

    /// Push data root → leaves. For every root entity `e` on local slot
    /// `s` with `has(data, s, e)` true, `pack` writes one self-contained
    /// payload per leaf in `scope`; on the receiving side `apply` reads
    /// exactly that payload for the leaf copy. Collective; applies frames
    /// in canonical `(to, from)` order so results are deterministic under
    /// any scheduler.
    #[allow(clippy::too_many_arguments)]
    pub fn bcast<D: ?Sized>(
        &self,
        comm: &Comm,
        map: &PartMap,
        scope: Scope,
        data: &mut D,
        has: impl Fn(&D, usize, MeshEnt) -> bool,
        pack: impl Fn(&D, usize, MeshEnt, &mut MsgWriter),
        mut apply: impl FnMut(&mut D, usize, MeshEnt, &mut MsgReader) -> Result<(), MsgError>,
    ) {
        let _span = pumi_obs::span!("overlap.bcast");
        let mut ex = PartExchange::new(comm, map);
        for slot in 0..self.num_slots() {
            let me = self.part_ids[slot];
            for (e, shares) in self.roots_sorted(slot) {
                if !has(data, slot, e) {
                    continue;
                }
                for s in shares {
                    if scope == Scope::Ghosts && !s.ghost {
                        continue;
                    }
                    let w = ex.to(me, s.part);
                    w.put_u8(e.dim().as_usize() as u8);
                    w.put_u32(s.index);
                    pack(data, slot, e, w);
                }
            }
        }
        let mut frames = ex.finish();
        frames.sort_by_key(|&(from, to, _)| (to, from));
        for (from, to, mut r) in frames {
            let slot = map.slot_of(to);
            while !r.is_done() {
                decode_header(&mut r)
                    .and_then(|e| apply(data, slot, e, &mut r))
                    .unwrap_or_else(|e| panic!("corrupt overlap bcast frame {from}->{to}: {e}"));
            }
        }
    }

    /// Pull data leaves → root. The mirror of [`Overlap::bcast`]: every
    /// leaf in `scope` with `has` true packs one payload addressed to its
    /// root copy; `apply` combines it there. Frames are applied in
    /// canonical `(to, from)` order and leaves are packed in sorted entity
    /// order, so a non-associative combine still yields scheduler-
    /// independent results. Collective.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce<D: ?Sized>(
        &self,
        comm: &Comm,
        map: &PartMap,
        scope: Scope,
        data: &mut D,
        has: impl Fn(&D, usize, MeshEnt) -> bool,
        pack: impl Fn(&D, usize, MeshEnt, &mut MsgWriter),
        mut apply: impl FnMut(&mut D, usize, MeshEnt, &mut MsgReader) -> Result<(), MsgError>,
    ) {
        let _span = pumi_obs::span!("overlap.reduce");
        let mut ex = PartExchange::new(comm, map);
        for slot in 0..self.num_slots() {
            let me = self.part_ids[slot];
            for (e, root) in self.leaves_sorted(slot) {
                if scope == Scope::Ghosts && !root.ghost {
                    continue;
                }
                if !has(data, slot, e) {
                    continue;
                }
                let w = ex.to(me, root.part);
                w.put_u8(e.dim().as_usize() as u8);
                w.put_u32(root.index);
                pack(data, slot, e, w);
            }
        }
        let mut frames = ex.finish();
        frames.sort_by_key(|&(from, to, _)| (to, from));
        for (from, to, mut r) in frames {
            let slot = map.slot_of(to);
            while !r.is_done() {
                decode_header(&mut r)
                    .and_then(|e| apply(data, slot, e, &mut r))
                    .unwrap_or_else(|e| panic!("corrupt overlap reduce frame {from}->{to}: {e}"));
            }
        }
    }

    /// Push tag data of root entities to their leaf copies in `scope`
    /// (with [`Scope::Ghosts`] this is the classic read-only ghost-tag
    /// sync). Syncs every tag present on each root. Collective.
    pub fn bcast_tags(&self, comm: &Comm, dm: &mut DistMesh, scope: Scope) {
        let _span = pumi_obs::span!("overlap.bcast_tags");
        let DistMesh { map, parts } = dm;
        self.bcast(
            comm,
            map,
            scope,
            parts.as_mut_slice(),
            |_, _, _| true,
            |parts: &[Part], slot, e, w| pack_tags(&parts[slot], e, w),
            |parts: &mut [Part], slot, e, r| unpack_tags(&mut parts[slot], e, r),
        );
    }

    /// Delete every ghost copy and reset this handle's growth state, so
    /// the next [`Overlap::grow`] starts from the part boundary again.
    pub fn clear(&mut self, dm: &mut DistMesh) {
        clear_overlap(dm);
        for slot in 0..self.num_slots() {
            self.sent[slot].clear();
            self.frontier[slot].clear();
        }
        self.depth = 0;
        self.rebuild_shares(dm);
    }
}

// ---------------------------------------------------------------------
// Free functions
// ---------------------------------------------------------------------

/// Grow a ghost overlap around every part boundary and return its share
/// map. The one-call form of [`Overlap::from_dist`] + [`Overlap::grow`]:
///
/// ```no_run
/// # use pumi_core::overlap::{grow_overlap, GhostOpts};
/// # use pumi_util::Dim;
/// # fn demo(c: &pumi_pcu::Comm, dm: &mut pumi_core::DistMesh) {
/// let ov = grow_overlap(c, dm, GhostOpts::new().bridge(Dim::Vertex).layers(2));
/// assert_eq!(ov.depth(), 2);
/// # }
/// ```
///
/// Collective.
pub fn grow_overlap(comm: &Comm, dm: &mut DistMesh, opts: GhostOpts) -> Overlap {
    let mut ov = Overlap::from_dist(dm).with_bridge(opts.bridge);
    ov.grow(comm, dm, opts.layers);
    ov
}

/// Delete every ghost copy on every local part. Locally destructive only —
/// no communication needed; owner-side holder records are cleared too.
pub fn clear_overlap(dm: &mut DistMesh) {
    let _span = pumi_obs::span!("overlap.clear");
    for part in &mut dm.parts {
        let ghosts = part.ghost_entities();
        // Top-down: elements, then faces, edges, vertices with no
        // remaining upward adjacency.
        for d in (0..=3usize).rev() {
            for &g in &ghosts {
                if g.dim().as_usize() != d || !part.mesh.is_live(g) {
                    continue;
                }
                if d < 3 && part.mesh.up_count(g) > 0 {
                    // Still bounds a live entity: keep (defensive — ghost
                    // closures are created bottom-up from fresh entities,
                    // so a live up here would mean a non-ghost references
                    // it).
                    continue;
                }
                part.delete_entity(g);
            }
        }
        part.clear_ghost_records();
    }
}

/// Migrate with overlap preservation: drop the ghost region (as [`migrate`]
/// requires), move elements, then re-grow the overlap to the same bridge
/// and depth on the new distribution. Consumes the stale handle and
/// returns the re-derived one. Collective.
pub fn migrate_preserving(
    comm: &Comm,
    dm: &mut DistMesh,
    plans: &FxHashMap<PartId, MigrationPlan>,
    ov: Overlap,
) -> (Overlap, MigrationStats) {
    let _span = pumi_obs::span!("overlap.migrate_preserving");
    let (bridge, depth) = (ov.bridge(), ov.depth());
    drop(ov);
    clear_overlap(dm);
    let stats = migrate(comm, dm, plans);
    let mut ov = Overlap::from_dist(dm).with_bridge(bridge);
    ov.grow(comm, dm, depth);
    (ov, stats)
}

// ---------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------

/// Ghost-creation acknowledgement: (dim, sender idx, holder idx).
type Ack = (u8, u32, u32);

/// Decode one `(dim, index)` record header of a bcast/reduce frame.
fn decode_header(r: &mut MsgReader) -> Result<MeshEnt, MsgError> {
    let db = r.try_get_u8()?;
    let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
    let idx = r.try_get_u32()?;
    Ok(MeshEnt::new(d, idx))
}

/// Read one ack record, or `None` at end of frame.
fn read_ack(r: &mut MsgReader) -> Result<Option<(Dim, u32, u32)>, MsgError> {
    if r.is_done() {
        return Ok(None);
    }
    let db = r.try_get_u8()?;
    let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
    let my_idx = r.try_get_u32()?;
    let their_idx = r.try_get_u32()?;
    Ok(Some((d, my_idx, their_idx)))
}

/// Where the root copy of `e` lives, from `part`'s perspective: `None` if
/// `part` owns `e` itself, else the owning part and `e`'s index there.
fn root_ref(part: &Part, e: MeshEnt) -> Option<(PartId, u32)> {
    if let Some(src) = part.ghost_source(e) {
        return Some(src);
    }
    let owner = part.owner(e);
    if owner == part.id {
        return None;
    }
    part.remotes_of(e)
        .iter()
        .find(|&&(q, _)| q == owner)
        .copied()
}

/// Unpack one buffer of ghost-entity frames into `part`, creating missing
/// entities as ghost copies and collecting acks for the sender.
fn unpack_ghost_entities(
    r: &mut MsgReader,
    part: &mut Part,
    from: PartId,
    elem_dim: usize,
    total: &mut u64,
    ack: &mut Vec<Ack>,
) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let tb = r.try_get_u8()?;
        let topo = Topology::try_from_u8(tb).ok_or(MsgError::bad_enum("topology", tb))?;
        let gid = r.try_get_u64()?;
        let class = GeomEnt(r.try_get_u32()?);
        let src_idx = r.try_get_u32()?;
        let (e, fresh) = if d == Dim::Vertex {
            let x = [r.try_get_f64()?, r.try_get_f64()?, r.try_get_f64()?];
            match part.find_gid(d, gid) {
                Some(e) => (e, false),
                None => (part.add_vertex(x, class, gid), true),
            }
        } else {
            let vgids = r.try_get_u64_slice()?;
            match part.find_gid(d, gid) {
                Some(e) => (e, false),
                None => {
                    let mut verts = Vec::with_capacity(vgids.len());
                    for &g in &vgids {
                        let v = part.find_gid(Dim::Vertex, g).ok_or(MsgError::missing(
                            "ghost closure vertex",
                            0,
                            g,
                        ))?;
                        verts.push(v.index());
                    }
                    (part.add_entity(topo, &verts, class, gid), true)
                }
            }
        };
        if fresh {
            part.set_ghost(e, (from, src_idx));
            ack.push((d.as_usize() as u8, src_idx, e.index()));
            if d == Dim::from_usize(elem_dim) {
                *total += 1;
            }
        }
        unpack_tags(part, e, r)?;
    }
    Ok(())
}

/// Unpack re-root records: kind 0 installs a holder record at the owner,
/// kind 1 repoints a holder's ghost link at the owner.
fn unpack_reroot(r: &mut MsgReader, part: &mut Part) -> Result<(), MsgError> {
    while !r.is_done() {
        let kind = r.try_get_u8()?;
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let my_idx = r.try_get_u32()?;
        let other_part = r.try_get_u32()?;
        let other_idx = r.try_get_u32()?;
        let e = MeshEnt::new(d, my_idx);
        match kind {
            0 => part.record_ghost_holder(e, (other_part, other_idx)),
            1 => {
                if part.is_ghost(e) {
                    part.set_ghost(e, (other_part, other_idx));
                }
            }
            k => return Err(MsgError::bad_enum("re-root kind", k)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::tag::TagKind;

    fn strip_two_parts(c: &Comm) -> DistMesh {
        let serial = tri_rect(4, 2, 4.0, 1.0);
        let d = serial.elem_dim_t();
        let mut elem_part = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            elem_part[e.idx()] = if serial.centroid(e)[0] < 2.0 { 0 } else { 1 };
        }
        distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
    }

    /// 4 parts on 1 rank, quadrant split — every part is locally visible,
    /// so cross-part invariants can be asserted directly.
    fn quadrants_one_rank(c: &Comm) -> DistMesh {
        let serial = tri_rect(6, 6, 2.0, 2.0);
        let d = serial.elem_dim_t();
        let mut elem_part = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            let x = serial.centroid(e);
            elem_part[e.idx()] = (x[0] >= 1.0) as PartId + 2 * ((x[1] >= 1.0) as PartId);
        }
        distribute(c, PartMap::contiguous(4, 1), &serial, &elem_part)
    }

    #[test]
    fn from_dist_builds_symmetric_shares() {
        execute(1, |c| {
            let dm = quadrants_one_rank(c);
            let ov = Overlap::from_dist(&dm);
            // Every leaf's root lists that leaf back, with matching index.
            for slot in 0..ov.num_slots() {
                let me = ov.part_id(slot);
                for (e, root) in ov.leaves_sorted(slot) {
                    let rslot = dm.map.slot_of(root.part);
                    let back = ov.root_shares(rslot, MeshEnt::new(e.dim(), root.index));
                    assert!(
                        back.iter().any(|s| s.part == me && s.index == e.index()),
                        "no back link for leaf {e:?} on part {me}"
                    );
                }
                // Roots and leaves are disjoint on a part.
                for (e, _) in ov.roots_sorted(slot) {
                    assert!(ov.leaf_root(slot, e).is_none());
                }
            }
        });
    }

    #[test]
    fn grow_depth1_marks_ghosts() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let before = dm.part(c.rank() as PartId).mesh.num_elems();
            let ov = grow_overlap(c, &mut dm, GhostOpts::new());
            assert_eq!(ov.depth(), 1);
            let part = dm.part(c.rank() as PartId);
            assert!(part.mesh.num_elems() > before);
            let ghost_elems = part.mesh.elems().filter(|&e| part.is_ghost(e)).count();
            assert_eq!(part.mesh.num_elems() - before, ghost_elems);
            part.mesh.assert_valid();
            // The share map saw the ghosts: some ghost leaves exist.
            let slot = dm.map.slot_of(c.rank() as PartId);
            assert!(ov.leaves_sorted(slot).iter().any(|&(_, s)| s.ghost));
        });
    }

    #[test]
    fn owner_side_ghost_view_after_grow() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            grow_overlap(c, &mut dm, GhostOpts::new().bridge(Dim::Vertex));
            let part = dm.part(c.rank() as PartId);
            let view = part.ghost_entities_owner_side();
            assert!(!view.is_empty(), "owner-side ghost records missing");
            assert!(view.windows(2).all(|w| w[0].0 < w[1].0), "view not sorted");
            for (e, holders) in view {
                assert_eq!(part.ghosted_to(e), holders.as_slice());
                assert!(!part.is_ghost(e), "ghost listed as an owner");
            }
        });
    }

    #[test]
    fn grow_is_iterable() {
        execute(2, |c| {
            let mut dm1 = strip_two_parts(c);
            let mut ov1 = Overlap::from_dist(&dm1);
            let a = ov1.grow(c, &mut dm1, 1);
            let b = ov1.grow(c, &mut dm1, 1);
            let mut dm2 = strip_two_parts(c);
            let mut ov2 = Overlap::from_dist(&dm2);
            let t = ov2.grow(c, &mut dm2, 2);
            assert_eq!(a + b, t, "grow(1)+grow(1) != grow(2)");
            assert_eq!(ov1.depth(), ov2.depth());
            let pid = c.rank() as PartId;
            assert_eq!(dm1.part(pid).entity_counts(), dm2.part(pid).entity_counts());
            assert!(b > 0, "second layer added nothing");
        });
    }

    #[test]
    fn clear_restores_counts_and_regrows() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            let counts_before = dm.part(pid).entity_counts();
            let mut ov = grow_overlap(c, &mut dm, GhostOpts::new());
            assert!(dm.part(pid).num_ghosts() > 0);
            ov.clear(&mut dm);
            assert_eq!(ov.depth(), 0);
            assert_eq!(dm.part(pid).num_ghosts(), 0);
            assert_eq!(dm.part(pid).entity_counts(), counts_before);
            dm.part(pid).mesh.assert_valid();
            // Growth starts over from the boundary after a clear.
            let total = ov.grow(c, &mut dm, 1);
            assert!(total > 0);
            assert!(dm.part(pid).num_ghosts() > 0);
        });
    }

    #[test]
    fn ghost_sources_are_owners() {
        execute(1, |c| {
            let mut dm = quadrants_one_rank(c);
            grow_overlap(c, &mut dm, GhostOpts::new().layers(2));
            // With 4 parts meeting at the domain centre, parts ship
            // closures containing entities they do not own; re-rooting
            // must still leave every ghost pointing at its owner.
            let mut checked = 0;
            for part in &dm.parts {
                for g in part.ghost_entities() {
                    let (src, sidx) = part.ghost_source(g).unwrap();
                    let root_part = dm.part(src);
                    let root = MeshEnt::new(g.dim(), sidx);
                    assert!(!root_part.is_ghost(root), "ghost rooted at a ghost");
                    assert!(
                        root_part.is_owned(root),
                        "ghost {g:?} on part {} rooted at non-owner {src}",
                        part.id
                    );
                    assert_eq!(root_part.gid_of(root), part.gid_of(g));
                    assert!(
                        root_part.ghosted_to(root).contains(&(part.id, g.index())),
                        "owner {src} missing holder record for part {}",
                        part.id
                    );
                    checked += 1;
                }
            }
            assert!(checked > 0);
        });
    }

    #[test]
    fn bcast_and_reduce_roundtrip() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let ov = grow_overlap(c, &mut dm, GhostOpts::new());
            // One value per vertex: gid at roots, 0 elsewhere.
            let mut vals: Vec<FxHashMap<MeshEnt, u64>> = dm
                .parts
                .iter()
                .map(|p| {
                    p.mesh
                        .iter(Dim::Vertex)
                        .map(|v| {
                            (
                                v,
                                if p.is_owned(v) && !p.is_ghost(v) {
                                    p.gid_of(v)
                                } else {
                                    0
                                },
                            )
                        })
                        .collect()
                })
                .collect();
            ov.bcast(
                c,
                &dm.map,
                Scope::All,
                &mut vals,
                |_, _, e| e.dim() == Dim::Vertex,
                |vals, slot, e, w| w.put_u64(vals[slot][&e]),
                |vals, slot, e, r| {
                    let v = r.try_get_u64()?;
                    vals[slot].insert(e, v);
                    Ok(())
                },
            );
            // Every copy (boundary or ghost) now carries the root's gid.
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    assert_eq!(vals[slot][&v], part.gid_of(v), "vertex {v:?}");
                }
            }
            // Reduce(Add of ones) counts the copies of each root.
            let mut ones: Vec<FxHashMap<MeshEnt, u64>> = dm
                .parts
                .iter()
                .map(|p| p.mesh.iter(Dim::Vertex).map(|v| (v, 1u64)).collect())
                .collect();
            ov.reduce(
                c,
                &dm.map,
                Scope::All,
                &mut ones,
                |_, _, e| e.dim() == Dim::Vertex,
                |ones, slot, e, w| w.put_u64(ones[slot][&e]),
                |ones, slot, e, r| {
                    let v = r.try_get_u64()?;
                    *ones[slot].get_mut(&e).unwrap() += v;
                    Ok(())
                },
            );
            let slot = dm.map.slot_of(c.rank() as PartId);
            let part = &dm.parts[slot];
            for (e, shares) in ov.roots_sorted(slot) {
                if e.dim() != Dim::Vertex {
                    continue;
                }
                assert_eq!(
                    ones[slot][&e],
                    1 + shares.len() as u64,
                    "root {e:?} on part {}",
                    part.id
                );
            }
        });
    }

    #[test]
    fn bcast_tags_pushes_owner_values_to_ghosts() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            {
                let part = dm.part_mut(pid);
                let tid = part.mesh.tags_mut().declare("load", TagKind::Int, 1);
                for e in part.mesh.snapshot(Dim::Face) {
                    part.mesh.tags_mut().set_int(tid, e, pid as i64);
                }
            }
            let ov = grow_overlap(c, &mut dm, GhostOpts::new());
            {
                let part = dm.part_mut(pid);
                let tid = part.mesh.tags().find("load").unwrap();
                for e in part.mesh.snapshot(Dim::Face) {
                    if !part.is_ghost(e) {
                        part.mesh.tags_mut().set_int(tid, e, 100 + pid as i64);
                    }
                }
            }
            ov.bcast_tags(c, &mut dm, Scope::Ghosts);
            let part = dm.part(pid);
            let tid = part.mesh.tags().find("load").unwrap();
            for e in part.mesh.elems() {
                if part.is_ghost(e) {
                    assert_eq!(
                        part.mesh.tags().get_int(tid, e),
                        Some(100 + (1 - pid as i64))
                    );
                }
            }
        });
    }

    #[test]
    fn migrate_preserving_rederives_overlap() {
        execute(2, |c| {
            let mut dm = strip_two_parts(c);
            let pid = c.rank() as PartId;
            let ov = grow_overlap(c, &mut dm, GhostOpts::new().layers(2));
            let depth_before = ov.depth();
            // Shift one boundary element across the part line.
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            if pid == 0 {
                let part = dm.part(pid);
                let mut plan = MigrationPlan::new();
                if let Some(el) = part
                    .mesh
                    .elems()
                    .find(|&e| !part.is_ghost(e) && part.closure_touches_boundary(e))
                {
                    plan.send(el, 1);
                }
                plans.insert(pid, plan);
            }
            let (ov, stats) = migrate_preserving(c, &mut dm, &plans, ov);
            assert_eq!(stats.elements_moved, 1);
            assert_eq!(ov.depth(), depth_before);
            let part = dm.part(pid);
            assert!(part.num_ghosts() > 0, "overlap not re-derived");
            part.mesh.assert_valid();
        });
    }
}
