//! The partition model (§II-C, Figs 3/4).
//!
//! "Partition (model) entity: a topological entity in the partition model,
//! `P^d_i`, which represents a group of mesh entities of dimension d or
//! less, which have the same residence part. One part is designated as the
//! owning part. Partition classification: the unique association of mesh
//! entities to partition model entities."
//!
//! A partition model entity is identified by its residence set; its
//! dimension follows the paper's figures: with element dimension `D`, a
//! residence set of `k` parts yields dimension `max(D - k + 1, 0)` — in the
//! 2D example, interior entities (k=1) classify on partition faces `P^2`,
//! two-part boundaries on partition edges `P^1`, and the triple point on the
//! partition vertex `P^0_1`.

use crate::part::Part;
use pumi_util::{Dim, FxHashMap, MeshEnt, PartId};

/// A partition model entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtnEnt {
    /// Dimension `d` of `P^d_i`.
    pub dim: usize,
    /// The residence set shared by all mesh entities classified on this
    /// partition entity (sorted).
    pub parts: Vec<PartId>,
    /// The owning part (minimum id rule).
    pub owner: PartId,
}

/// The partition model of one part: the partition entities whose residence
/// sets include this part, plus the classification of every local
/// part-boundary mesh entity.
#[derive(Debug, Default)]
pub struct PtnModel {
    /// Partition entities, deduplicated, sorted by (dim, parts).
    pub ents: Vec<PtnEnt>,
    /// Mesh entity → index into `ents`. Interior entities map to the
    /// all-local partition entity (the one whose residence set is just this
    /// part) and are omitted from the map to keep it sparse.
    class: FxHashMap<MeshEnt, u32>,
    /// Index of the interior partition entity in `ents`.
    interior: u32,
}

impl PtnModel {
    /// Build the partition model of `part` from its remote-copy lists.
    pub fn build(part: &Part) -> PtnModel {
        let elem_dim = part.mesh.elem_dim();
        let mut key_index: FxHashMap<Vec<PartId>, u32> = FxHashMap::default();
        let mut ents: Vec<PtnEnt> = Vec::new();
        let mut class: FxHashMap<MeshEnt, u32> = FxHashMap::default();

        let mut intern = |parts: Vec<PartId>, ents: &mut Vec<PtnEnt>| -> u32 {
            if let Some(&i) = key_index.get(&parts) {
                return i;
            }
            let dim = elem_dim.saturating_sub(parts.len() - 1);
            let owner = parts[0];
            let i = ents.len() as u32;
            ents.push(PtnEnt {
                dim,
                parts: parts.clone(),
                owner,
            });
            key_index.insert(parts, i);
            i
        };

        let interior = intern(vec![part.id], &mut ents);
        for (e, _) in part.shared_entities() {
            let res = part.residence(e);
            let i = intern(res, &mut ents);
            class.insert(e, i);
        }
        // Deterministic entity order: sort and remap.
        let mut order: Vec<u32> = (0..ents.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let ea = &ents[a as usize];
            let eb = &ents[b as usize];
            (ea.dim, &ea.parts).cmp(&(eb.dim, &eb.parts))
        });
        let mut remap = vec![0u32; ents.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut sorted = ents.clone();
        for (old, e) in ents.into_iter().enumerate() {
            sorted[remap[old] as usize] = e;
        }
        for v in class.values_mut() {
            *v = remap[*v as usize];
        }
        PtnModel {
            ents: sorted,
            class,
            interior: remap[interior as usize],
        }
    }

    /// The partition classification of a mesh entity.
    pub fn classify(&self, e: MeshEnt) -> &PtnEnt {
        let i = self.class.get(&e).copied().unwrap_or(self.interior);
        &self.ents[i as usize]
    }

    /// All partition entities of dimension `d`.
    pub fn ents_of_dim(&self, d: usize) -> impl Iterator<Item = &PtnEnt> {
        self.ents.iter().filter(move |p| p.dim == d)
    }

    /// The neighbouring parts of this part over `bridge`-dimensional mesh
    /// entities: "a part `P_i` neighbors part `P_j` over entity type d if
    /// they share d dimensional mesh entities on part boundary" (§II-D).
    pub fn neighbors(part: &Part, bridge: Dim) -> Vec<PartId> {
        let mut out: Vec<PartId> = Vec::new();
        for (e, remotes) in part.shared_entities() {
            if e.dim() != bridge {
                continue;
            }
            for &(p, _) in remotes {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_mesh::{Topology, NO_GEOM};

    /// Reconstruct Fig 3's three-part 2D mesh shape on part P0 and check the
    /// partition model of Fig 4 (unit-test version; the full three-part
    /// distributed reconstruction lives in the integration tests).
    #[test]
    fn fig4_partition_classification() {
        let mut part = Part::new(0, 2);
        // A small patch: M0_i is shared with parts 1 and 2, M0_j with part 1.
        let vi = part.add_vertex([0., 0., 0.], NO_GEOM, 1);
        let vj = part.add_vertex([1., 0., 0.], NO_GEOM, 2);
        let vk = part.add_vertex([0., 1., 0.], NO_GEOM, 3);
        part.add_entity(
            Topology::Triangle,
            &[vi.index(), vj.index(), vk.index()],
            NO_GEOM,
            10,
        );
        part.set_remotes(vi, vec![(1, 0), (2, 0)]);
        part.set_remotes(vj, vec![(1, 1)]);
        let edge_ij = part
            .mesh
            .find_entity(Dim::Edge, &[vi.index(), vj.index()])
            .unwrap();
        part.set_remotes(edge_ij, vec![(1, 5)]);

        let pm = PtnModel::build(&part);
        // M0_i: residence {0,1,2} -> partition vertex P^0, owner 0.
        let ci = pm.classify(vi);
        assert_eq!(ci.dim, 0);
        assert_eq!(ci.parts, vec![0, 1, 2]);
        assert_eq!(ci.owner, 0);
        // M0_j: residence {0,1} -> partition edge P^1.
        let cj = pm.classify(vj);
        assert_eq!(cj.dim, 1);
        assert_eq!(cj.parts, vec![0, 1]);
        // The shared mesh edge classifies on the same partition edge.
        assert_eq!(pm.classify(edge_ij), cj);
        // Interior vertex classifies on the partition face P^2 {0}.
        let ck = pm.classify(vk);
        assert_eq!(ck.dim, 2);
        assert_eq!(ck.parts, vec![0]);
        // Partition entity inventory: {0}, {0,1}, {0,1,2}.
        assert_eq!(pm.ents.len(), 3);
    }

    #[test]
    fn neighbors_by_bridge_dim() {
        let mut part = Part::new(0, 2);
        let a = part.add_vertex([0.; 3], NO_GEOM, 1);
        let b = part.add_vertex([1., 0., 0.], NO_GEOM, 2);
        let c = part.add_vertex([0., 1., 0.], NO_GEOM, 3);
        part.add_entity(
            Topology::Triangle,
            &[a.index(), b.index(), c.index()],
            NO_GEOM,
            10,
        );
        part.set_remotes(a, vec![(3, 0), (7, 0)]);
        let e = part
            .mesh
            .find_entity(Dim::Edge, &[a.index(), b.index()])
            .unwrap();
        part.set_remotes(e, vec![(3, 1)]);
        part.set_remotes(b, vec![(3, 2)]);
        assert_eq!(PtnModel::neighbors(&part, Dim::Vertex), vec![3, 7]);
        assert_eq!(PtnModel::neighbors(&part, Dim::Edge), vec![3]);
        assert!(PtnModel::neighbors(&part, Dim::Face).is_empty());
    }

    #[test]
    fn interior_only_part_has_single_ptn_ent() {
        let mut part = Part::new(5, 2);
        let a = part.add_vertex([0.; 3], NO_GEOM, 1);
        let b = part.add_vertex([1., 0., 0.], NO_GEOM, 2);
        let c = part.add_vertex([0., 1., 0.], NO_GEOM, 3);
        part.add_entity(
            Topology::Triangle,
            &[a.index(), b.index(), c.index()],
            NO_GEOM,
            10,
        );
        let pm = PtnModel::build(&part);
        assert_eq!(pm.ents.len(), 1);
        assert_eq!(pm.classify(a).parts, vec![5]);
        assert_eq!(pm.classify(a).dim, 2);
    }
}
