//! Mesh migration (§II-C).
//!
//! "Mesh migration: a procedure that moves mesh entities from part to part
//! to support (i) mesh distribution to parts, (ii) mesh load balancing, or
//! (iii) obtaining mesh entities needed for mesh modification operations."
//!
//! The algorithm is FMDB's (paper refs 9 and 10), expressed in three phased exchanges:
//!
//! 1. **Residence** — each part computes, for every entity touched by the
//!    plan, the destination set of its adjacent elements; copies of shared
//!    entities exchange these contributions so every copy agrees on the new
//!    residence set.
//! 2. **Entities** — each moved element's closure is packed bottom-up
//!    (vertices first) with global ids, classification, coordinates, the
//!    new residence set, and tag data. Shared entities are sent only by
//!    their *owner* (which knows the full new residence set from phase 1),
//!    so no destination receives duplicate copies — but a frame is then no
//!    longer self-contained: an edge from one peer may reference a vertex
//!    carried only by another peer's frame. Receivers therefore decode
//!    **all** incoming frames first, then create entities dimension-by-
//!    dimension (two-pass unpack), matching by global id.
//! 3. **Stitch** — every part holding a shared entity announces its local
//!    index to the other residence parts; remote-copy lists are rebuilt and
//!    ownership (minimum-part rule) follows.
//!
//! Finally, elements with non-local destinations and entities whose new
//! residence excludes this part are deleted top-down.

use crate::dist::{DistMesh, PartExchange};
use crate::part::{Part, NO_GID};
use pumi_geom::GeomEnt;
use pumi_mesh::Topology;
use pumi_pcu::{Comm, MsgError, MsgReader, MsgWriter};
use pumi_util::tag::{TagData, TagKind};
use pumi_util::{Dim, FxHashMap, FxHashSet, GlobalId, MeshEnt, PartId};

/// A migration plan for one part: element → destination part. Elements not
/// listed stay. Destinations equal to the owning part are allowed (no-ops).
#[derive(Debug, Default, Clone)]
pub struct MigrationPlan {
    /// Element handle → destination part id.
    pub dest: FxHashMap<MeshEnt, PartId>,
}

impl MigrationPlan {
    /// An empty plan (nothing moves).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `elem` to move to `to`.
    pub fn send(&mut self, elem: MeshEnt, to: PartId) {
        self.dest.insert(elem, to);
    }

    /// Number of scheduled moves.
    pub fn len(&self) -> usize {
        self.dest.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.dest.is_empty()
    }
}

/// Statistics returned by [`migrate`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MigrationStats {
    /// Elements moved off their part, summed over the world.
    pub elements_moved: u64,
    /// Entity records sent (closure copies), summed over the world.
    pub entities_sent: u64,
}

pub(crate) fn pack_tags(part: &Part, e: MeshEnt, w: &mut MsgWriter) {
    let tags = part.mesh.tags().collect(e);
    w.put_u32(tags.len() as u32);
    let mut buf = Vec::new();
    for (tid, data) in tags {
        let tm = part.mesh.tags();
        w.put_bytes(tm.name(tid).as_bytes());
        w.put_u8(match tm.kind(tid) {
            TagKind::Int => 0,
            TagKind::Double => 1,
            TagKind::Bytes => 2,
        });
        w.put_u32(tm.len_of(tid) as u32);
        buf.clear();
        data.encode(&mut buf);
        w.put_bytes(&buf);
    }
}

/// One decoded tag attachment, not yet applied to any entity.
#[derive(Debug)]
pub(crate) struct TagRecord {
    /// Tag name bytes (validated UTF-8 at decode time).
    name: bytes::Bytes,
    kind: TagKind,
    len: usize,
    data: TagData,
}

/// Decode the tag block that follows an entity record. Every malformed
/// input — non-UTF-8 name, unknown kind byte, undecodable value — surfaces
/// as a typed [`MsgError`] instead of a panic.
pub(crate) fn decode_tags(r: &mut MsgReader) -> Result<Vec<TagRecord>, MsgError> {
    let n = r.try_get_u32()?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        // Zero-copy sub-slices of the incoming message: tag names and
        // payloads are borrowed, not copied into fresh Vecs.
        let name = r.try_get_bytes_shared()?;
        if std::str::from_utf8(&name).is_err() {
            return Err(MsgError::corrupt("tag name (not UTF-8)"));
        }
        let kind = match r.try_get_u8()? {
            0 => TagKind::Int,
            1 => TagKind::Double,
            2 => TagKind::Bytes,
            b => return Err(MsgError::bad_enum("tag kind", b)),
        };
        let len = r.try_get_u32()? as usize;
        let buf = r.try_get_bytes_shared()?;
        let mut pos = 0;
        let data = TagData::decode(&buf, &mut pos).ok_or(MsgError::corrupt("tag value"))?;
        out.push(TagRecord {
            name,
            kind,
            len,
            data,
        });
    }
    Ok(out)
}

pub(crate) fn apply_tags(part: &mut Part, e: MeshEnt, tags: Vec<TagRecord>) {
    for t in tags {
        let name = std::str::from_utf8(&t.name).expect("validated at decode");
        let tid = part.mesh.tags_mut().declare(name, t.kind, t.len);
        part.mesh.tags_mut().set(tid, e, t.data);
    }
}

pub(crate) fn unpack_tags(part: &mut Part, e: MeshEnt, r: &mut MsgReader) -> Result<(), MsgError> {
    let tags = decode_tags(r)?;
    apply_tags(part, e, tags);
    Ok(())
}

/// Unpack one phase-1 residence frame, unioning peer contributions into
/// `res`. Frames are self-delimiting; any underrun names writer/reader
/// disagreement.
fn unpack_residence(
    r: &mut MsgReader,
    part: &Part,
    res: &mut FxHashMap<MeshEnt, Vec<PartId>>,
) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let gid = r.try_get_u64()?;
        let parts = r.try_get_u32_slice()?;
        if let Some(e) = part.find_gid(d, gid) {
            let entry = res.entry(e).or_default();
            entry.extend(parts);
            entry.sort_unstable();
            entry.dedup();
        }
    }
    Ok(())
}

/// One decoded phase-2 entity record, not yet applied to any part.
#[derive(Debug)]
struct EntRecord {
    dim: Dim,
    topo: Topology,
    gid: GlobalId,
    class: GeomEnt,
    res: Vec<PartId>,
    /// Vertex records only; zeroed for higher dimensions.
    coords: [f64; 3],
    /// Higher-dimension records only: global ids of the defining vertices.
    vgids: Vec<GlobalId>,
    tags: Vec<TagRecord>,
}

/// Decode one phase-2 entity frame without touching any part. Corrupt
/// dimension/topology bytes surface as [`MsgError::BadEnum`].
fn decode_entity_frame(r: &mut MsgReader) -> Result<Vec<EntRecord>, MsgError> {
    let mut out = Vec::new();
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let dim = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let tb = r.try_get_u8()?;
        let topo = Topology::try_from_u8(tb).ok_or(MsgError::bad_enum("topology", tb))?;
        let gid = r.try_get_u64()?;
        let class = GeomEnt(r.try_get_u32()?);
        let res: Vec<PartId> = r.try_get_u32_slice()?;
        let (coords, vgids) = if dim == Dim::Vertex {
            let x = [r.try_get_f64()?, r.try_get_f64()?, r.try_get_f64()?];
            (x, Vec::new())
        } else {
            ([0.0; 3], r.try_get_u64_slice()?)
        };
        let tags = decode_tags(r)?;
        out.push(EntRecord {
            dim,
            topo,
            gid,
            class,
            res,
            coords,
            vgids,
            tags,
        });
    }
    Ok(out)
}

/// Second pass of the phase-2 unpack: create the entities this part lacks
/// and record their residence. `records` holds the concatenation of *all*
/// frames addressed to this part; a stable sort by dimension guarantees
/// every closure vertex exists before any higher-dimension record that
/// references it, no matter which peer's frame carried the vertex. Within
/// a dimension the (frame, position) order is preserved, so creation order
/// — and thus local indices — stays canonical under the chaos scheduler.
fn apply_entity_records(
    part: &mut Part,
    mut records: Vec<EntRecord>,
    res_out: &mut FxHashMap<MeshEnt, Vec<PartId>>,
) -> Result<(), MsgError> {
    records.sort_by_key(|rec| rec.dim.as_usize());
    for rec in records {
        let e = match part.find_gid(rec.dim, rec.gid) {
            Some(e) => e,
            None if rec.dim == Dim::Vertex => part.add_vertex(rec.coords, rec.class, rec.gid),
            None => {
                let mut verts = Vec::with_capacity(rec.vgids.len());
                for &g in &rec.vgids {
                    let v = part.find_gid(Dim::Vertex, g).ok_or(MsgError::missing(
                        "closure vertex",
                        0,
                        g,
                    ))?;
                    verts.push(v.index());
                }
                part.add_entity(rec.topo, &verts, rec.class, rec.gid)
            }
        };
        apply_tags(part, e, rec.tags);
        res_out.insert(e, rec.res);
    }
    Ok(())
}

/// Unpack one phase-3 stitch frame into `(peer part, remote index)` lists.
fn unpack_stitch(
    r: &mut MsgReader,
    part: &Part,
    from: PartId,
    out: &mut FxHashMap<MeshEnt, Vec<(PartId, u32)>>,
) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let gid = r.try_get_u64()?;
        let ridx = r.try_get_u32()?;
        let e = part
            .find_gid(d, gid)
            .ok_or(MsgError::missing("stitch target", db, gid))?;
        out.entry(e).or_default().push((from, ridx));
    }
    Ok(())
}

/// Execute a migration across the whole world. Every rank passes the plans
/// of its local parts (missing entries mean "no moves"). Collective: all
/// ranks must call, even with empty plans.
///
/// Ghost copies must be deleted before migrating (as in PUMI); this is
/// asserted.
pub fn migrate(
    comm: &Comm,
    dm: &mut DistMesh,
    plans: &FxHashMap<PartId, MigrationPlan>,
) -> MigrationStats {
    let _span = pumi_obs::span!("migrate");
    pumi_obs::metrics::counter_add("migrate.calls", 1);
    let elem_dim = dm.parts.first().map(|p| p.mesh.elem_dim()).unwrap_or(2);
    let d_elem = Dim::from_usize(elem_dim);
    for p in &dm.parts {
        assert_eq!(p.num_ghosts(), 0, "delete ghosts before migrating");
    }
    let empty = MigrationPlan::new();
    let nlocal = dm.parts.len();

    // ------------------------------------------------------------------
    // Phase 1: residence.
    // ------------------------------------------------------------------
    let phase1 = pumi_obs::span!("migrate.residence");
    // touched entities + local residence contributions, per local part slot.
    let mut contrib: Vec<FxHashMap<MeshEnt, Vec<PartId>>> = vec![FxHashMap::default(); nlocal];
    for (slot, part) in dm.parts.iter().enumerate() {
        let plan = plans.get(&part.id).unwrap_or(&empty);
        let dest_of = |e: MeshEnt| -> PartId { plan.dest.get(&e).copied().unwrap_or(part.id) };
        // Entities in closures of moved elements.
        let mut touched: FxHashSet<MeshEnt> = FxHashSet::default();
        for (&elem, &to) in &plan.dest {
            if to == part.id {
                continue;
            }
            for sub in part.mesh.closure(elem) {
                if sub.dim() != d_elem {
                    touched.insert(sub);
                }
            }
        }
        // Plus every currently shared entity.
        for (e, _) in part.shared_entities() {
            touched.insert(e);
        }
        for &e in &touched {
            let mut parts: Vec<PartId> = part
                .mesh
                .adjacent(e, d_elem)
                .iter()
                .map(|&r| dest_of(r))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            contrib[slot].insert(e, parts);
        }
    }
    // Exchange contributions among current residence parts.
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        for (&e, parts) in &contrib[slot] {
            for &(q, _) in part.remotes_of(e) {
                let w = ex.to(part.id, q);
                w.put_u8(e.dim().as_usize() as u8);
                w.put_u64(part.gid_of(e));
                w.put_u32_slice(parts);
            }
        }
    }
    // new_res starts as the local contribution, then unions in peers'.
    let mut new_res: Vec<FxHashMap<MeshEnt, Vec<PartId>>> = contrib;
    for (from, to, mut r) in ex.finish() {
        let slot = dm.map.slot_of(to);
        let part = &dm.parts[slot];
        unpack_residence(&mut r, part, &mut new_res[slot])
            .unwrap_or_else(|e| panic!("corrupt residence frame {from}->{to}: {e}"));
    }
    drop(phase1);

    // ------------------------------------------------------------------
    // Phase 2: entities.
    // ------------------------------------------------------------------
    let phase2 = pumi_obs::span!("migrate.entities");
    let mut entities_sent = 0u64;
    let mut elements_moved = 0u64;
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        let plan = plans.get(&part.id).unwrap_or(&empty);
        // Collect which entities go to which destination, deduplicated,
        // grouped by dimension so receivers can create bottom-up.
        let mut send_sets: FxHashMap<PartId, [Vec<MeshEnt>; 4]> = FxHashMap::default();
        let mut sent_to: FxHashSet<(PartId, MeshEnt)> = FxHashSet::default();
        let mut moves: Vec<(&MeshEnt, &PartId)> = plan.dest.iter().collect();
        moves.sort_unstable(); // deterministic packing order
        for (&elem, &to) in moves {
            if to == part.id {
                continue;
            }
            elements_moved += 1;
            for sub in part.mesh.closure(elem) {
                if part.is_shared(sub) && !part.is_owned(sub) {
                    continue; // its owner packs it (below), avoiding duplicates
                }
                if sent_to.insert((to, sub)) {
                    send_sets.entry(to).or_default()[sub.dim().as_usize()].push(sub);
                }
            }
        }
        // Owner delegation: a shared entity is packed only by its owner,
        // which learned the full new residence set in phase 1 — including
        // destinations fed by *other* parts' moved elements. Send one copy
        // to each new residence part that does not already hold one.
        // Sorted by (dim, gid): frame bytes must not depend on hash-map
        // iteration order, which differs across chaos schedules.
        let mut owned_shared: Vec<(MeshEnt, &[PartId])> = new_res[slot]
            .iter()
            .filter(|&(&e, _)| part.is_shared(e) && part.is_owned(e))
            .map(|(&e, res)| (e, res.as_slice()))
            .collect();
        owned_shared.sort_by_key(|&(e, _)| (e.dim().as_usize(), part.gid_of(e)));
        for (e, res) in owned_shared {
            for &q in res {
                let holds = q == part.id || part.remotes_of(e).iter().any(|&(p, _)| p == q);
                if !holds && sent_to.insert((q, e)) {
                    send_sets.entry(q).or_default()[e.dim().as_usize()].push(e);
                }
            }
        }
        let mut dests: Vec<(&PartId, &[Vec<MeshEnt>; 4])> = send_sets.iter().collect();
        dests.sort_by_key(|&(k, _)| *k);
        for (&to, by_dim) in dests {
            let w = ex.to(part.id, to);
            for (d, by) in by_dim.iter().enumerate().take(elem_dim + 1) {
                for &e in by {
                    entities_sent += 1;
                    w.put_u8(d as u8);
                    w.put_u8(part.mesh.topo(e).to_u8());
                    w.put_u64(part.gid_of(e));
                    w.put_u32(part.mesh.class_of(e).0);
                    let res = new_res[slot].get(&e).cloned().unwrap_or_else(|| vec![to]); // elements: dest only
                    w.put_u32_slice(&res);
                    if d == 0 {
                        let x = part.mesh.coords(e);
                        w.put_f64(x[0]);
                        w.put_f64(x[1]);
                        w.put_f64(x[2]);
                    } else {
                        let vgids: Vec<GlobalId> = part
                            .mesh
                            .verts_of(e)
                            .iter()
                            .map(|&v| part.gid_of(MeshEnt::vertex(v)))
                            .collect();
                        w.put_u64_slice(&vgids);
                    }
                    pack_tags(part, e, w);
                }
            }
        }
    }
    // Receive in two passes: decode *all* frames first — a closure vertex
    // may arrive only in another peer's frame under owner delegation — then
    // create missing entities bottom-up and record their residence sets.
    let mut frames: Vec<Vec<(PartId, Vec<EntRecord>)>> = (0..nlocal).map(|_| Vec::new()).collect();
    for (from, to, mut r) in ex.finish() {
        let slot = dm.map.slot_of(to);
        let recs = decode_entity_frame(&mut r)
            .unwrap_or_else(|e| panic!("corrupt entity frame {from}->{to}: {e}"));
        frames[slot].push((from, recs));
    }
    for (slot, mut fs) in frames.into_iter().enumerate() {
        // Canonical application order regardless of arrival permutation.
        fs.sort_by_key(|&(from, _)| from);
        let records: Vec<EntRecord> = fs.into_iter().flat_map(|(_, recs)| recs).collect();
        let pid = dm.parts[slot].id;
        apply_entity_records(&mut dm.parts[slot], records, &mut new_res[slot])
            .unwrap_or_else(|e| panic!("incoherent entity frames for part {pid}: {e}"));
    }
    drop(phase2);

    // ------------------------------------------------------------------
    // Phase 3: stitch remote copies, then delete leavers.
    // ------------------------------------------------------------------
    let phase3 = pumi_obs::span!("migrate.stitch");
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        // Sorted by (dim, gid): frame bytes must not depend on hash-map
        // iteration order, which phase 2's arrivals perturb under chaos.
        let mut staying: Vec<(MeshEnt, &[PartId])> = new_res[slot]
            .iter()
            .filter(|&(_, res)| res.contains(&part.id) && res.len() >= 2)
            .map(|(&e, res)| (e, res.as_slice()))
            .collect();
        staying.sort_by_key(|&(e, _)| (e.dim().as_usize(), part.gid_of(e)));
        for (e, res) in staying {
            for &q in res {
                if q != part.id {
                    let w = ex.to(part.id, q);
                    w.put_u8(e.dim().as_usize() as u8);
                    w.put_u64(part.gid_of(e));
                    w.put_u32(e.index());
                }
            }
        }
    }
    // Reset remotes for every touched entity that stays, then fill.
    for (slot, part) in dm.parts.iter_mut().enumerate() {
        for (&e, res) in &new_res[slot] {
            if res.contains(&part.id) {
                part.set_remotes(e, Vec::new());
            }
        }
    }
    let mut stitched: Vec<FxHashMap<MeshEnt, Vec<(PartId, u32)>>> =
        vec![FxHashMap::default(); nlocal];
    for (from, to, mut r) in ex.finish() {
        let slot = dm.map.slot_of(to);
        let part = &dm.parts[slot];
        unpack_stitch(&mut r, part, from, &mut stitched[slot])
            .unwrap_or_else(|e| panic!("corrupt stitch frame {from}->{to}: {e}"));
    }
    for (slot, map) in stitched.into_iter().enumerate() {
        let part = &mut dm.parts[slot];
        for (e, copies) in map {
            part.set_remotes(e, copies);
        }
    }
    // Delete moved elements and entities whose residence excludes us,
    // top-down.
    for (slot, part) in dm.parts.iter_mut().enumerate() {
        let plan = plans.get(&part.id).unwrap_or(&empty);
        let mut leaving: Vec<MeshEnt> = plan
            .dest
            .iter()
            .filter(|&(_, &to)| to != part.id)
            .map(|(&e, _)| e)
            .collect();
        leaving.sort_unstable();
        for e in leaving {
            part.delete_entity(e);
        }
        for d in (0..elem_dim).rev() {
            let mut goers: Vec<MeshEnt> = new_res[slot]
                .iter()
                .filter(|(e, res)| e.dim().as_usize() == d && !res.contains(&part.id))
                .map(|(&e, _)| e)
                .collect();
            goers.sort_unstable();
            for e in goers {
                if part.mesh.is_live(e) {
                    part.delete_entity(e);
                }
            }
        }
    }

    drop(phase3);

    let stats = MigrationStats {
        elements_moved: comm.allreduce_sum_u64(elements_moved),
        entities_sent: comm.allreduce_sum_u64(entities_sent),
    };
    pumi_obs::metrics::hist_record("migrate.elements_moved", stats.elements_moved as f64);
    pumi_obs::metrics::hist_record("migrate.entities_sent", stats.entities_sent as f64);
    stats
}

/// Sanity helper used by tests: every live entity has a gid.
pub fn all_gids_present(part: &Part) -> bool {
    Dim::ALL
        .iter()
        .all(|&d| part.mesh.iter(d).all(|e| part.gid_of(e) != NO_GID))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;

    /// 1D strip of triangles on 2 parts; move one element across and check
    /// counts, residence, and ownership.
    #[test]
    fn move_one_element() {
        execute(2, |c| {
            let serial = tri_rect(4, 1, 4.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 2.0 { 0 } else { 1 };
            }
            let map = PartMap::contiguous(2, 2);
            let mut dm = distribute(c, map, &serial, &elem_part);

            let before: u64 = dm.global_sum(c, |p| p.mesh.num_elems() as u64);
            assert_eq!(before, 8);

            // Part 0 sends its rightmost element to part 1.
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            if c.rank() == 0 {
                let part = dm.part(0);
                let elem = part
                    .mesh
                    .elems()
                    .max_by(|&a, &b| {
                        part.mesh.centroid(a)[0]
                            .partial_cmp(&part.mesh.centroid(b)[0])
                            .unwrap()
                    })
                    .unwrap();
                let mut plan = MigrationPlan::new();
                plan.send(elem, 1);
                plans.insert(0, plan);
            }
            let stats = migrate(c, &mut dm, &plans);
            assert_eq!(stats.elements_moved, 1);

            let after: u64 = dm.global_sum(c, |p| p.mesh.num_elems() as u64);
            assert_eq!(after, 8);
            let counts = dm.gather_loads(c, |p| p.mesh.num_elems() as f64);
            assert_eq!(counts, vec![3.0, 5.0]);

            for p in &dm.parts {
                p.mesh.assert_valid();
                assert!(all_gids_present(p));
            }
            // Owned vertices still total the serial count.
            let owned_v: u64 = dm.global_sum(c, |p| {
                p.mesh.iter(Dim::Vertex).filter(|&v| p.is_owned(v)).count() as u64
            });
            assert_eq!(owned_v, serial.count(Dim::Vertex) as u64);
        });
    }

    /// Move everything to part 0; part 1 ends empty, part 0 holds the whole
    /// mesh with no shared entities.
    #[test]
    fn consolidate_to_one_part() {
        execute(2, |c| {
            let serial = tri_rect(3, 3, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
            }
            let map = PartMap::contiguous(2, 2);
            let mut dm = distribute(c, map, &serial, &elem_part);

            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            if c.rank() == 1 {
                let part = dm.part(1);
                let mut plan = MigrationPlan::new();
                for e in part.mesh.elems() {
                    plan.send(e, 0);
                }
                plans.insert(1, plan);
            }
            migrate(c, &mut dm, &plans);

            if c.rank() == 0 {
                let p = dm.part(0);
                assert_eq!(p.mesh.num_elems(), serial.num_elems());
                assert_eq!(p.mesh.count(Dim::Vertex), serial.count(Dim::Vertex));
                assert_eq!(p.shared_entities().len(), 0);
                p.mesh.assert_valid();
            } else {
                let p = dm.part(1);
                assert_eq!(p.mesh.num_elems(), 0);
                assert_eq!(p.mesh.count(Dim::Vertex), 0);
            }
        });
    }

    /// Round-trip: move a block away and back; the partition returns to the
    /// original counts and residence structure.
    #[test]
    fn round_trip_restores_counts() {
        execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[1] < 0.5 { 0 } else { 1 };
            }
            let map = PartMap::contiguous(2, 2);
            let mut dm = distribute(c, map, &serial, &elem_part);
            let baseline = dm.gather_loads(c, |p| p.mesh.count(Dim::Vertex) as f64);

            // Pick the elements of part 0 touching the inter-part boundary.
            let moved_gids: Vec<u64> = {
                let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
                let mut gids = Vec::new();
                if c.rank() == 0 {
                    let part = dm.part(0);
                    let mut plan = MigrationPlan::new();
                    for e in part.mesh.elems() {
                        let touches = part
                            .mesh
                            .closure(e)
                            .iter()
                            .any(|&s| s.dim() != d && part.is_shared(s));
                        if touches {
                            plan.send(e, 1);
                            gids.push(part.gid_of(e));
                        }
                    }
                    plans.insert(0, plan);
                }
                migrate(c, &mut dm, &plans);
                gids
            };
            // Send them back.
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            if c.rank() == 1 {
                // gids list lives on rank 0; reconstruct by birth: moved
                // elements are exactly those on part 1 whose gid is a serial
                // id owned... simpler: rank 0 broadcasts the list.
            }
            let n = c.bcast_bytes(0, {
                let mut w = MsgWriter::new();
                w.put_u64_slice(&moved_gids);
                w.finish()
            });
            let moved_gids = MsgReader::new(n).get_u64_slice();
            if c.rank() == 1 {
                let part = dm.part(1);
                let mut plan = MigrationPlan::new();
                for g in moved_gids {
                    if let Some(e) = part.find_gid(d, g) {
                        plan.send(e, 0);
                    }
                }
                plans.insert(1, plan);
            }
            migrate(c, &mut dm, &plans);

            let now = dm.gather_loads(c, |p| p.mesh.count(Dim::Vertex) as f64);
            assert_eq!(now, baseline);
            for p in &dm.parts {
                p.mesh.assert_valid();
            }
        });
    }

    /// Append one phase-2 vertex record to a frame under construction.
    fn vertex_rec(w: &mut MsgWriter, gid: u64, x: f64) {
        w.put_u8(0); // dimension
        w.put_u8(Topology::Vertex.to_u8());
        w.put_u64(gid);
        w.put_u32(0); // classification
        w.put_u32_slice(&[0]); // residence: the receiving part
        w.put_f64(x);
        w.put_f64(0.0);
        w.put_f64(0.0);
        w.put_u32(0); // no tags
    }

    /// Append one phase-2 edge record referencing vertices by gid.
    fn edge_rec(w: &mut MsgWriter, gid: u64, vgids: &[u64]) {
        w.put_u8(1);
        w.put_u8(Topology::Edge.to_u8());
        w.put_u64(gid);
        w.put_u32(0);
        w.put_u32_slice(&[0]);
        w.put_u64_slice(vgids);
        w.put_u32(0);
    }

    /// Under owner delegation a frame is not self-contained: the edge from
    /// part 5 references vertex gid 2, which travels only in the frame from
    /// the *higher-ranked* part 9. The old one-pass unpack processed the
    /// part-5 frame first and panicked ("closure vertex not yet created");
    /// the two-pass unpack must create all vertices before any edge.
    #[test]
    fn cross_frame_closure_vertex_resolves() {
        let mut low = MsgWriter::new();
        vertex_rec(&mut low, 1, 0.0);
        edge_rec(&mut low, 100, &[1, 2]);
        let mut high = MsgWriter::new();
        vertex_rec(&mut high, 2, 1.0);

        let mut frames = vec![
            (
                5 as PartId,
                decode_entity_frame(&mut MsgReader::new(low.finish())).unwrap(),
            ),
            (
                9,
                decode_entity_frame(&mut MsgReader::new(high.finish())).unwrap(),
            ),
        ];
        frames.sort_by_key(|&(from, _)| from); // part 5's frame applies first
        let records: Vec<EntRecord> = frames.into_iter().flat_map(|(_, r)| r).collect();

        let mut part = Part::new(0, 2);
        let mut res = FxHashMap::default();
        apply_entity_records(&mut part, records, &mut res).expect("two-pass unpack");
        let e = part.find_gid(Dim::Edge, 100).expect("edge created");
        let mut got: Vec<u64> = part
            .mesh
            .verts_of(e)
            .iter()
            .map(|&v| part.gid_of(MeshEnt::vertex(v)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    /// A closure vertex genuinely absent from every frame is a typed
    /// [`MsgError::Missing`] naming the gid, not a panic.
    #[test]
    fn missing_closure_vertex_is_typed_error() {
        let mut w = MsgWriter::new();
        edge_rec(&mut w, 100, &[7, 77]);
        let recs = decode_entity_frame(&mut MsgReader::new(w.finish())).unwrap();
        let mut part = Part::new(0, 2);
        let err = apply_entity_records(&mut part, recs, &mut FxHashMap::default()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("closure vertex") && msg.contains("gid 7)"),
            "{msg}"
        );
    }

    /// Flipped dimension/topology bytes decode to [`MsgError::BadEnum`].
    #[test]
    fn corrupt_enum_bytes_are_typed_errors() {
        let mut w = MsgWriter::new();
        w.put_u8(9); // no such dimension
        let err = decode_entity_frame(&mut MsgReader::new(w.finish())).unwrap_err();
        assert!(err.to_string().contains("dimension code 0x09"), "{err}");

        let mut w = MsgWriter::new();
        w.put_u8(1);
        w.put_u8(0xFE); // no such topology
        let err = decode_entity_frame(&mut MsgReader::new(w.finish())).unwrap_err();
        assert!(err.to_string().contains("topology code 0xfe"), "{err}");
    }

    /// The same migration under two chaos seeds (and the default schedule)
    /// yields bitwise-identical partitions: gids, remote-copy lists, and
    /// local indices all match.
    #[test]
    fn migrate_identical_across_chaos_seeds() {
        type Fingerprint = Vec<(u8, u64, Vec<(PartId, u32)>)>;
        let run = |seed: Option<u64>| -> Vec<Fingerprint> {
            let body = |c: &Comm| -> Fingerprint {
                let serial = tri_rect(4, 4, 1.0, 1.0);
                let d = serial.elem_dim_t();
                let mut elem_part = vec![0 as PartId; serial.index_space(d)];
                for e in serial.iter(d) {
                    elem_part[e.idx()] = if serial.centroid(e)[1] < 0.5 { 0 } else { 1 };
                }
                let map = PartMap::contiguous(2, 2);
                let mut dm = distribute(c, map, &serial, &elem_part);
                let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
                if c.rank() == 0 {
                    let part = dm.part(0);
                    let mut plan = MigrationPlan::new();
                    for e in part.mesh.elems() {
                        let touches = part
                            .mesh
                            .closure(e)
                            .iter()
                            .any(|&s| s.dim() != d && part.is_shared(s));
                        if touches {
                            plan.send(e, 1);
                        }
                    }
                    plans.insert(0, plan);
                }
                migrate(c, &mut dm, &plans);
                let mut fp = Fingerprint::new();
                for part in &dm.parts {
                    for dd in Dim::ALL {
                        let mut rows: Fingerprint = part
                            .mesh
                            .iter(dd)
                            .map(|e| {
                                (
                                    dd.as_usize() as u8,
                                    part.gid_of(e),
                                    part.remotes_of(e).to_vec(),
                                )
                            })
                            .collect();
                        rows.sort();
                        fp.extend(rows);
                    }
                }
                fp
            };
            match seed {
                None => execute(2, body),
                Some(s) => pumi_pcu::execute_chaos(2, s, body),
            }
        };
        let base = run(None);
        assert_eq!(base, run(Some(1)));
        assert_eq!(base, run(Some(7)));
    }

    /// Tags travel with migrated entities.
    #[test]
    fn tags_migrate() {
        execute(2, |c| {
            let serial = tri_rect(2, 1, 2.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 1.0 { 0 } else { 1 };
            }
            let map = PartMap::contiguous(2, 2);
            let mut dm = distribute(c, map, &serial, &elem_part);

            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            let mut moved_gid = 0u64;
            if c.rank() == 0 {
                let part = dm.part_mut(0);
                let tid = part.mesh.tags_mut().declare("w", TagKind::Double, 1);
                let elem = part.mesh.elems().next().unwrap();
                part.mesh.tags_mut().set_dbl(tid, elem, 2.5);
                moved_gid = part.gid_of(elem);
                let mut plan = MigrationPlan::new();
                plan.send(elem, 1);
                plans.insert(0, plan);
            }
            let b = c.bcast_bytes(0, {
                let mut w = MsgWriter::new();
                w.put_u64(moved_gid);
                w.finish()
            });
            let moved_gid = MsgReader::new(b).get_u64();
            migrate(c, &mut dm, &plans);
            if c.rank() == 1 {
                let part = dm.part(1);
                let e = part.find_gid(d, moved_gid).expect("moved element missing");
                let tid = part.mesh.tags().find("w").expect("tag not declared");
                assert_eq!(part.mesh.tags().get_dbl(tid, e), Some(2.5));
            }
        });
    }
}
