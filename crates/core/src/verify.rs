//! Distributed-mesh invariants.
//!
//! [`verify_dist`] is the parallel analogue of `Mesh::assert_valid`: it
//! checks the properties every §II algorithm relies on —
//!
//! 1. remote-copy symmetry: if `P_a` lists `(P_b, i)` for entity `e`, then
//!    `P_b`'s entity at `i` has the same global id and lists `P_a` back,
//! 2. owner agreement: all copies compute the same owner (min-part rule is
//!    deterministic, so this checks the residence sets agree),
//! 3. conservation: each entity is owned exactly once, so owned counts sum
//!    to the global entity counts,
//! 4. element locality: elements are never shared (only ghosted).

use crate::dist::{DistMesh, PartExchange};
use pumi_pcu::Comm;
use pumi_util::{Dim, MeshEnt};

/// Run all distributed checks; returns violations (empty = valid).
/// Collective.
pub fn verify_dist(comm: &Comm, dm: &DistMesh) -> Vec<String> {
    let mut errs = Vec::new();
    let elem_dim = dm.parts.first().map(|p| p.mesh.elem_dim()).unwrap_or(2);

    // Serial validity and gid completeness first.
    for part in &dm.parts {
        for e in part.mesh.verify() {
            errs.push(format!("part {}: {e}", part.id));
        }
        if !crate::migrate::all_gids_present(part) {
            errs.push(format!("part {}: entity without gid", part.id));
        }
        // 4. elements never shared.
        for e in part.mesh.iter(Dim::from_usize(elem_dim)) {
            if part.is_shared(e) {
                errs.push(format!("part {}: element {e:?} is shared", part.id));
            }
        }
    }

    // 1 & 2. symmetry + owner agreement via one exchange: each part sends
    // (their_idx, my part, my gid, my owner) for each remote copy.
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &dm.parts {
        for (e, remotes) in part.shared_entities() {
            if part.is_ghost(e) {
                continue;
            }
            for &(q, ridx) in remotes {
                let w = ex.to(part.id, q);
                w.put_u8(e.dim().as_usize() as u8);
                w.put_u32(ridx);
                w.put_u64(part.gid_of(e));
                w.put_u32(part.owner(e));
                w.put_u32(e.index());
            }
        }
    }
    for (from, to, mut r) in ex.finish() {
        let part = dm.part(to);
        while !r.is_done() {
            let d = Dim::from_usize(r.get_u8() as usize);
            let my_idx = r.get_u32();
            let gid = r.get_u64();
            let owner = r.get_u32();
            let their_idx = r.get_u32();
            let e = MeshEnt::new(d, my_idx);
            if !part.mesh.is_live(e) {
                errs.push(format!(
                    "part {}: remote copy from {from} points at dead {e:?}",
                    part.id
                ));
                continue;
            }
            if part.gid_of(e) != gid {
                errs.push(format!(
                    "part {}: gid mismatch on {e:?}: {} vs {gid} from {from}",
                    part.id,
                    part.gid_of(e)
                ));
            }
            if part.owner(e) != owner {
                errs.push(format!(
                    "part {}: owner mismatch on {e:?}: {} vs {owner} from {from}",
                    part.id,
                    part.owner(e)
                ));
            }
            if !part
                .remotes_of(e)
                .iter()
                .any(|&(q, i)| q == from && i == their_idx)
            {
                errs.push(format!(
                    "part {}: asymmetric remote: {from} lists us for {e:?} but not back",
                    part.id
                ));
            }
        }
    }

    // 3. conservation: every shared entity owned exactly once -> sum of
    // owned counts equals count of distinct gids. Distinct-gid counting is
    // approximated cheaply: each part reports (owned, copies); the number of
    // copy records must equal sum over shared entities of (residence-1).
    for d in 0..=elem_dim {
        let dim = Dim::from_usize(d);
        let owned: u64 = dm
            .parts
            .iter()
            .map(|p| {
                p.mesh
                    .iter(dim)
                    .filter(|&e| !p.is_ghost(e) && p.is_owned(e))
                    .count() as u64
            })
            .sum();
        let owned = comm.allreduce_sum_u64(owned);
        let live: u64 = dm
            .parts
            .iter()
            .map(|p| p.mesh.iter(dim).filter(|&e| !p.is_ghost(e)).count() as u64)
            .sum();
        let live = comm.allreduce_sum_u64(live);
        let copies: u64 = dm
            .parts
            .iter()
            .map(|p| {
                p.mesh
                    .iter(dim)
                    .filter(|&e| !p.is_ghost(e))
                    .map(|e| p.remotes_of(e).len() as u64)
                    .sum::<u64>()
            })
            .sum();
        let copies = comm.allreduce_sum_u64(copies);
        // live = distinct + duplicate copies; duplicates = copies' pairwise
        // links counted once per holder: each entity on k parts contributes
        // k live, k(k-1) links, and must be owned once.
        // So: live - owned = (sum over entities of k-1) = copies - (live - owned)
        // ⇒ 2(live - owned) should equal copies only for k=2; use the robust
        // identity: sum(k-1) = live - distinct = live - owned.
        // And copies = sum k(k-1) ≥ 2*sum(k-1) with equality iff k≤2.
        if copies < 2 * (live - owned) {
            errs.push(format!(
                "dim {d}: copy links {copies} inconsistent with live {live} / owned {owned}"
            ));
        }
    }
    errs
}

/// Panic with a report if [`verify_dist`] finds violations. Collective.
pub fn assert_dist_valid(comm: &Comm, dm: &DistMesh) {
    let errs = verify_dist(comm, dm);
    assert!(
        errs.is_empty(),
        "distributed mesh invalid ({}):\n  {}",
        errs.len(),
        errs.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{distribute, PartMap};
    use crate::migrate::{migrate, MigrationPlan};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::{FxHashMap, PartId};

    #[test]
    fn fresh_distribution_is_valid() {
        execute(2, |c| {
            let serial = tri_rect(4, 4, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
            }
            let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            assert_dist_valid(c, &dm);
        });
    }

    #[test]
    fn post_migration_is_valid() {
        execute(2, |c| {
            let serial = tri_rect(6, 6, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            // Shift a diagonal band of elements from part 0 to part 1.
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            if c.rank() == 0 {
                let part = dm.part(0);
                let mut plan = MigrationPlan::new();
                for e in part.mesh.elems() {
                    let x = part.mesh.centroid(e);
                    if x[0] + x[1] > 0.7 {
                        plan.send(e, 1);
                    }
                }
                plans.insert(0, plan);
            }
            migrate(c, &mut dm, &plans);
            assert_dist_valid(c, &dm);
        });
    }

    #[test]
    fn corrupted_remote_detected() {
        execute(2, |c| {
            let serial = tri_rect(3, 3, 1.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            // Corrupt one remote link on part 0.
            if c.rank() == 0 {
                let part = dm.part_mut(0);
                let shared: Vec<_> = part.shared_entities().iter().map(|(e, _)| *e).collect();
                let victim = shared[0];
                part.set_remotes(victim, vec![(1, 999_999)]);
            }
            let errs = verify_dist(c, &dm);
            let total = c.allreduce_sum_u64(errs.len() as u64);
            assert!(total > 0, "corruption not detected");
        });
    }
}
