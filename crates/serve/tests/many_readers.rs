//! Many-reader restore drills: concurrent PCU-simulated clients each pull
//! a different slice of one checkpoint through the shared chunk cache;
//! the slices must tile the mesh exactly and the cache must do real work
//! (hits > 0 once readers outnumber unique chunks' first touches).

use pumi_core::{distribute, PartMap};
use pumi_io::format::part_file_path;
use pumi_io::{
    read_checkpoint, write_checkpoint, write_checkpoint_with, write_delta_checkpoint, IoError,
    Section, WriteOpts,
};
use pumi_meshgen::tri_rect;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_serve::CheckpointServer;
use pumi_util::{Dim, FxHashMap, FxHashSet, GlobalId};
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pumi_serve_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write an nparts-way checkpoint of a jagged tri mesh with one scalar
/// tag (`t:gid`, value = gid as f64) so slices carry checkable payload.
fn write_tagged(name: &str, nparts: usize, opts: WriteOpts) -> PathBuf {
    let dir = tmp_dir(name);
    let serial = tri_rect(16, 12, 2.0, 1.5);
    execute(nparts, |c| {
        let labels = partition_mesh(&serial, nparts);
        let mut dm = distribute(c, PartMap::contiguous(nparts, nparts), &serial, &labels);
        for part in &mut dm.parts {
            let tid = part
                .mesh
                .tags_mut()
                .declare("t:gid", pumi_util::tag::TagKind::Double, 1);
            let vs: Vec<_> = part.mesh.iter(Dim::Vertex).collect();
            for v in vs {
                let g = part.gid_of(v) as f64;
                part.mesh.tags_mut().set_dbl(tid, v, g);
            }
        }
        write_checkpoint_with(c, &dm, &[], &dir, &opts).expect("write");
    });
    dir
}

/// Element gids of every part in a slice, plus the vertex tag rows.
fn slice_digest(
    slice: &pumi_serve::Slice,
    elem_dim: usize,
) -> (FxHashSet<GlobalId>, FxHashMap<GlobalId, f64>) {
    let d_elem = Dim::from_usize(elem_dim);
    let mut elems = FxHashSet::default();
    let mut tags = FxHashMap::default();
    for part in &slice.parts {
        for e in part.mesh.iter(d_elem) {
            assert!(elems.insert(part.gid_of(e)), "duplicate element in slice");
        }
        if let Some(tid) = part.mesh.tags().find("t:gid") {
            for v in part.mesh.iter(Dim::Vertex) {
                if let Some(x) = part.mesh.tags().get_dbl(tid, v) {
                    tags.insert(part.gid_of(v), x);
                }
            }
        }
    }
    (elems, tags)
}

/// The whole mesh, as the collective reader sees it, for ground truth.
fn full_restore_digest(dir: &Path, nranks: usize) -> (FxHashSet<GlobalId>, usize) {
    let out = execute(nranks, |c| {
        let r = read_checkpoint(c, dir).expect("collective restore");
        let d_elem = Dim::from_usize(r.dm.parts[0].mesh.elem_dim());
        let mut gids = Vec::new();
        for part in &r.dm.parts {
            for e in part.mesh.iter(d_elem) {
                if !part.is_ghost(e) {
                    gids.push(part.gid_of(e));
                }
            }
        }
        gids
    });
    let mut all = FxHashSet::default();
    for gids in out {
        for g in gids {
            assert!(all.insert(g), "element owned twice in collective restore");
        }
    }
    let n = all.len();
    (all, n)
}

/// ≥8 concurrent clients, disjoint slices, shared cache doing real work.
/// Clients are PCU ranks: each restores its slice, then the world agrees
/// on the global element count through an allreduce (which also gives the
/// chaos scheduler something to bite on).
#[test]
fn eight_clients_restore_disjoint_slices() {
    let nclients = 8;
    let dir = write_tagged("eight", 2, WriteOpts::default());
    let (truth, total) = full_restore_digest(&dir, 2);

    let server = CheckpointServer::open(&dir).expect("open");
    let elem_dim = server.manifest().elem_dim as usize;
    let slices = execute(nclients, |c| {
        let s = server
            .restore_slice(c.rank(), c.nranks())
            .expect("slice restore");
        let (elems, tags) = slice_digest(&s, elem_dim);
        let agreed = c.allreduce_sum_u64(elems.len() as u64);
        assert_eq!(agreed as usize, total, "slices must tile the mesh");
        (elems, tags)
    });

    // Pairwise disjoint, union = the collective restore's element set.
    let mut union = FxHashSet::default();
    for (elems, tags) in &slices {
        for &g in elems {
            assert!(union.insert(g), "element gid {g} appears in two slices");
        }
        for (&g, &x) in tags {
            assert_eq!(x, g as f64, "tag row corrupted for vertex gid {g}");
        }
    }
    assert_eq!(union, truth, "slice union differs from collective restore");

    let stats = server.stats();
    assert!(stats.chunk_misses > 0, "someone must decompress: {stats:?}");
    assert!(
        stats.chunk_hits > 0,
        "8 clients over 2 parts must share cached chunks: {stats:?}"
    );
    // Every part file hit disk exactly once: the two files plus manifest.
    let file_bytes: u64 = (0..2)
        .map(|p| std::fs::metadata(part_file_path(&dir, p)).unwrap().len())
        .sum();
    assert!(
        stats.disk_bytes <= file_bytes + 4096,
        "part files must be read once each: {stats:?} vs {file_bytes} file bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A capacity-capped cache must evict (and recompute) under pressure but
/// never change what readers see: 8 clients through a cache far smaller
/// than the checkpoint still tile the mesh exactly.
#[test]
fn capped_cache_serves_eight_clients_correctly() {
    let nclients = 8;
    let dir = write_tagged("capped", 2, WriteOpts::default());
    let (truth, total) = full_restore_digest(&dir, 2);

    // A few KB: far below the raw section bytes of even one part, so
    // every restore cycles the cache.
    let server =
        CheckpointServer::open_with(&dir, pumi_serve::ServeOpts::new().chunk_cache_bytes(4096))
            .expect("open");
    let elem_dim = server.manifest().elem_dim as usize;
    let slices = execute(nclients, |c| {
        let s = server
            .restore_slice(c.rank(), c.nranks())
            .expect("slice restore");
        let (elems, tags) = slice_digest(&s, elem_dim);
        let agreed = c.allreduce_sum_u64(elems.len() as u64);
        assert_eq!(agreed as usize, total, "slices must tile the mesh");
        (elems, tags)
    });

    let mut union = FxHashSet::default();
    for (elems, tags) in &slices {
        for &g in elems {
            assert!(union.insert(g), "element gid {g} appears in two slices");
        }
        for (&g, &x) in tags {
            assert_eq!(x, g as f64, "tag row corrupted for vertex gid {g}");
        }
    }
    assert_eq!(union, truth, "slice union differs from collective restore");

    let stats = server.stats();
    assert!(
        stats.chunk_evictions > 0,
        "a 4 KB cap under 8 readers must evict: {stats:?}"
    );
    assert!(
        stats.chunk_misses > stats.chunk_evictions,
        "misses include at least one first touch per resident chunk: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// M < N: each client gets a block of whole parts.
#[test]
fn fewer_clients_than_parts_get_part_blocks() {
    let dir = write_tagged("blocks", 4, WriteOpts::default());
    let (truth, _) = full_restore_digest(&dir, 4);
    let server = CheckpointServer::open(&dir).expect("open");
    let elem_dim = server.manifest().elem_dim as usize;
    let mut union = FxHashSet::default();
    let mut fparts_seen = FxHashSet::default();
    for s in 0..3 {
        let slice = server.restore_slice(s, 3).expect("slice");
        for &p in &slice.fparts {
            assert!(fparts_seen.insert(p), "file part {p} served twice");
        }
        let (elems, _) = slice_digest(&slice, elem_dim);
        for g in elems {
            assert!(union.insert(g), "element in two slices");
        }
    }
    assert_eq!(fparts_seen.len(), 4, "all file parts must be covered");
    assert_eq!(union, truth);
    let _ = std::fs::remove_dir_all(&dir);
}

/// v1 checkpoints serve through the same cache (sections cached whole).
#[test]
fn serves_v1_checkpoints() {
    let dir = write_tagged(
        "v1",
        2,
        WriteOpts {
            version: 1,
            ..WriteOpts::default()
        },
    );
    let (truth, _) = full_restore_digest(&dir, 2);
    let server = CheckpointServer::open(&dir).expect("open");
    let elem_dim = server.manifest().elem_dim as usize;
    let mut union = FxHashSet::default();
    for s in 0..2 {
        let slice = server.restore_slice(s, 2).expect("slice");
        let (elems, tags) = slice_digest(&slice, elem_dim);
        for g in elems {
            union.insert(g);
        }
        for (&g, &x) in &tags {
            assert_eq!(x, g as f64);
        }
    }
    assert_eq!(union, truth);
    let stats = server.stats();
    assert!(stats.chunk_misses > 0, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slices reflect delta rounds: move a vertex and rewrite its tag after
/// the base snapshot; the served slice must show the replayed state.
#[test]
fn slices_replay_delta_rounds() {
    let dir = tmp_dir("delta");
    let serial = tri_rect(10, 8, 1.0, 1.0);
    let moved: Vec<(GlobalId, [f64; 3], f64)> = execute(2, |c| {
        let labels = partition_mesh(&serial, 2);
        let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
        write_checkpoint(c, &dm, &[], &dir).expect("base write");
        dm.start_dirty_tracking();
        // Nudge the first owned vertex of each part and retag it.
        let mut out = Vec::new();
        for part in &mut dm.parts {
            let v = part
                .mesh
                .iter(Dim::Vertex)
                .find(|&v| !part.is_ghost(v) && !part.is_shared(v))
                .expect("an interior vertex");
            let mut x = part.mesh.coords(v);
            x[2] += 0.25;
            part.mesh.set_coords(v, x);
            let tid = part
                .mesh
                .tags_mut()
                .declare("t:moved", pumi_util::tag::TagKind::Double, 1);
            part.mesh.tags_mut().set_dbl(tid, v, 7.5);
            part.mark_dirty(v);
            out.push((part.gid_of(v), x, 7.5));
        }
        write_delta_checkpoint(c, &mut dm, &[], &dir).expect("delta write");
        out
    })
    .into_iter()
    .flatten()
    .collect();

    let server = CheckpointServer::open(&dir).expect("open");
    assert_eq!(server.manifest().delta_count, 1);
    let mut found = 0;
    for s in 0..2 {
        let slice = server.restore_slice(s, 2).expect("slice");
        for part in &slice.parts {
            let tid = part.mesh.tags().find("t:moved");
            for &(gid, x, tv) in &moved {
                if let Some(v) = part.find_gid(Dim::Vertex, gid) {
                    assert_eq!(part.mesh.coords(v), x, "delta coords not replayed");
                    let tid = tid.expect("delta tag must exist in slice");
                    assert_eq!(part.mesh.tags().get_dbl(tid, v), Some(tv));
                    found += 1;
                }
            }
        }
    }
    assert!(found >= 2, "both moved vertices must appear in slices");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption surfaces through the serve path as the same typed chunk
/// error the collective reader raises — never a panic, and the poisoned
/// chunk is not cached for later readers.
#[test]
fn corrupt_chunk_is_typed_through_serve_path() {
    let dir = write_tagged("corrupt", 2, WriteOpts::default());
    let path = part_file_path(&dir, 1);
    let mut data = std::fs::read(&path).expect("read part file");
    let h = pumi_io::format::parse_part_header_v2(1, &data).expect("v2 header");
    let entry = h.find(Section::Entities).expect("entities");
    data[entry.offset as usize + pumi_io::chunk::CHUNK_HEADER_LEN + 3] ^= 0x10;
    std::fs::write(&path, &data).expect("write corrupted");

    let server = CheckpointServer::open(&dir).expect("open");
    // Slice 0 (part 0) is fine; slice 1 (part 1) hits the bad chunk.
    server.restore_slice(0, 2).expect("undamaged part serves");
    let err = server.restore_slice(1, 2).expect_err("damage must surface");
    match err {
        IoError::BadChunk {
            part: 1,
            section: Section::Entities,
            chunk: 0,
            ref detail,
        } => assert!(detail.contains("CRC"), "{detail}"),
        other => panic!("expected BadChunk, got {other:?}"),
    }
    // Retry fails identically (nothing half-decoded got cached).
    let err2 = server.restore_slice(1, 2).expect_err("still damaged");
    assert!(matches!(err2, IoError::BadChunk { part: 1, .. }));
    let _ = std::fs::remove_dir_all(&dir);
}
