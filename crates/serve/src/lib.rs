//! # pumi-serve: many-reader checkpoint restore service
//!
//! A long-lived simulation writes one checkpoint; many downstream readers
//! — visualization clients, co-processing analyses, restart probes — each
//! want a *different slice* of it, often at a different granularity than
//! the writer's part count. Re-running the collective N→M restore once
//! per reader decompresses every shared chunk over and over.
//!
//! [`CheckpointServer`] amortizes that: it opens a `.pmb` checkpoint once
//! and serves any number of concurrent [`restore_slice`] calls through a
//! shared, CRC-verified chunk cache. The first reader to touch a
//! compressed v2 chunk pays for verification and decompression; everyone
//! else gets the cached raw bytes. Part files (base and delta rounds) are
//! read from disk exactly once regardless of reader count.
//!
//! Slices follow the same balanced-block arithmetic as the collective
//! reader: with N checkpoint parts and M slices,
//!
//! * **M ≤ N** — slice `s` is the part block `[s·N/M, (s+1)·N/M)`, one
//!   loaded [`Part`] per file part;
//! * **M > N** — file part `p` fans out over the slice block
//!   `[p·M/N, (p+1)·M/N)`: each reader loads `p` (through the shared
//!   cache, so the load is paid once in decompression terms) and keeps
//!   only its sub-partition, computed with the local graph partitioner.
//!
//! Slices are standalone: ghost copies are dropped, remote-copy links are
//! not stitched, and field values stay staged under `__io:f:<name>` tags
//! (see [`pumi_io::staged_field_tag`]). Element sets of distinct slices
//! are disjoint and their union is the whole mesh.
//!
//! Every slice restore runs under a `serve.slice` span; cache traffic is
//! metered through the `serve.chunk.hit` / `serve.chunk.miss` /
//! `serve.chunk.evict` / `serve.bytes.disk` / `serve.bytes.raw` counters
//! and the per-server [`ServeStats`] snapshot. By default the chunk cache
//! is unbounded — every decompressed chunk stays resident for the
//! server's lifetime. Long-lived servers can cap it with
//! [`ServeOpts::chunk_cache_bytes`] (FIFO eviction; evicted chunks are
//! simply decoded again on the next touch).
//!
//! [`restore_slice`]: CheckpointServer::restore_slice

#![warn(missing_docs)]

use pumi_core::Part;
use pumi_io::chunk::{decode_chunk, parse_chunk_header, CHUNK_HEADER_LEN};
use pumi_io::format::{
    delta_dir, parse_manifest, parse_part_any, part_file_path, section_payload, AnyPartHeader,
    Manifest, MANIFEST_FILE,
};
use pumi_io::{load_standalone_part, IoError, Section, SectionSource};
use pumi_partition::partition_mesh;
use pumi_util::{Dim, FxHashMap, FxHashSet, MeshEnt, PartId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache traffic counters, readable at any time with
/// [`CheckpointServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Section chunks served from the shared cache.
    pub chunk_hits: u64,
    /// Section chunks that had to be verified + decompressed.
    pub chunk_misses: u64,
    /// Cached chunks evicted to stay under the configured capacity
    /// ([`ServeOpts::chunk_cache_bytes`]); 0 for an unbounded cache.
    pub chunk_evictions: u64,
    /// Compressed bytes read from disk (each part file counted once).
    pub disk_bytes: u64,
    /// Raw (decompressed) section bytes handed to the decoders.
    pub raw_bytes: u64,
}

/// Tuning knobs for [`CheckpointServer::open_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeOpts {
    /// Cap on the total raw (decompressed) bytes held by the shared chunk
    /// cache. `None` (the default) keeps every chunk for the server's
    /// lifetime; with a cap, the oldest cached chunks are evicted
    /// first-in-first-out once an insert pushes the total over. Evicted
    /// chunks are re-verified and re-decompressed on the next touch, so a
    /// cap trades decode work for bounded memory — correctness is
    /// unaffected. The most recent chunk always stays resident, even when
    /// it alone exceeds the cap.
    pub chunk_cache_bytes: Option<u64>,
}

impl ServeOpts {
    /// Defaults: unbounded cache.
    pub fn new() -> ServeOpts {
        ServeOpts::default()
    }

    /// Cap the chunk cache at `bytes` of raw chunk data.
    #[must_use]
    pub fn chunk_cache_bytes(mut self, bytes: u64) -> ServeOpts {
        self.chunk_cache_bytes = Some(bytes);
        self
    }
}

impl std::fmt::Debug for Slice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slice")
            .field("parts", &self.parts.len())
            .field("fparts", &self.fparts)
            .finish()
    }
}

/// One restored slice: a subset of the checkpointed mesh.
pub struct Slice {
    /// The slice's parts (one per file part for M ≤ N, exactly one for
    /// M > N). Field values are staged as `__io:f:<name>` tags.
    pub parts: Vec<Part>,
    /// The checkpoint part files this slice drew from.
    pub fparts: Vec<PartId>,
}

/// A part file (base snapshot or delta round) held by the server: its
/// compressed on-disk image and parsed header. The image is kept so chunk
/// payloads can be re-verified against a byte range without re-reading;
/// decompressed data lives in the shared chunk cache instead.
struct PartFile {
    data: Vec<u8>,
    header: AnyPartHeader,
}

/// Chunk cache key: (delta round or 0 for base, file part, section code,
/// chunk index). v1 sections are cached whole under chunk index 0.
type ChunkKey = (u32, PartId, u8, u32);

/// The shared raw-chunk cache: a keyed map plus FIFO insertion order for
/// capacity eviction. Keys appear in `order` exactly once — they are
/// pushed only on a fresh insert and removed only by eviction.
#[derive(Default)]
struct ChunkCache {
    map: FxHashMap<ChunkKey, Arc<Vec<u8>>>,
    order: std::collections::VecDeque<ChunkKey>,
    bytes: u64,
    cap: Option<u64>,
}

impl ChunkCache {
    /// Evict oldest-first until the cache fits its cap again, keeping at
    /// least the newest entry. Returns the number of chunks evicted.
    fn evict_over_cap(&mut self) -> u64 {
        let Some(cap) = self.cap else { return 0 };
        let mut evicted = 0;
        while self.bytes > cap && self.order.len() > 1 {
            let key = self.order.pop_front().expect("non-empty order");
            let raw = self.map.remove(&key).expect("order/map out of sync");
            self.bytes -= raw.len() as u64;
            evicted += 1;
        }
        evicted
    }
}

/// A checkpoint opened for concurrent slice restores. `Sync`: share it
/// across reader threads with `&` or [`Arc`].
pub struct CheckpointServer {
    dir: PathBuf,
    manifest: Manifest,
    files: Mutex<FxHashMap<(u32, PartId), Arc<PartFile>>>,
    chunks: Mutex<ChunkCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk_bytes: AtomicU64,
    raw_bytes: AtomicU64,
}

impl CheckpointServer {
    /// Open the checkpoint at `dir` with default options (unbounded chunk
    /// cache). Only the manifest is read here; part files load lazily on
    /// first touch.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointServer, IoError> {
        CheckpointServer::open_with(dir, ServeOpts::default())
    }

    /// [`open`](CheckpointServer::open) with explicit [`ServeOpts`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        opts: ServeOpts,
    ) -> Result<CheckpointServer, IoError> {
        let _span = pumi_obs::span!("serve.open");
        let dir = dir.into();
        let mpath = dir.join(MANIFEST_FILE);
        let data = std::fs::read(&mpath).map_err(|e| IoError::Io {
            path: mpath.clone(),
            source: e,
        })?;
        let manifest = parse_manifest(&mpath, &data)?;
        Ok(CheckpointServer {
            dir,
            manifest,
            files: Mutex::new(FxHashMap::default()),
            chunks: Mutex::new(ChunkCache {
                cap: opts.chunk_cache_bytes,
                ..ChunkCache::default()
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_bytes: AtomicU64::new(data.len() as u64),
            raw_bytes: AtomicU64::new(0),
        })
    }

    /// The checkpoint's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// A snapshot of the cache traffic counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            chunk_hits: self.hits.load(Ordering::Relaxed),
            chunk_misses: self.misses.load(Ordering::Relaxed),
            chunk_evictions: self.evictions.load(Ordering::Relaxed),
            disk_bytes: self.disk_bytes.load(Ordering::Relaxed),
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
        }
    }

    /// Restore slice `slice` of `nslices` (see the module docs for the
    /// slice → part arithmetic). Safe to call from many threads at once;
    /// `slice` must be `< nslices`.
    pub fn restore_slice(&self, slice: usize, nslices: usize) -> Result<Slice, IoError> {
        let _span = pumi_obs::span!("serve.slice");
        assert!(
            slice < nslices,
            "slice {slice} out of range (nslices = {nslices})"
        );
        let n = self.manifest.nparts as usize;
        if nslices <= n {
            let lo = slice * n / nslices;
            let hi = (slice + 1) * n / nslices;
            let mut parts = Vec::with_capacity(hi - lo);
            for p in lo..hi {
                parts.push(load_standalone_part(&self.manifest, p as PartId, self)?);
            }
            Ok(Slice {
                parts,
                fparts: (lo as PartId..hi as PartId).collect(),
            })
        } else {
            // Inverse of the fan-out blocks [p·M/N, (p+1)·M/N).
            let p = ((slice + 1) * n - 1) / nslices;
            let lo = p * nslices / n;
            let hi = (p + 1) * nslices / n;
            assert!(
                lo <= slice && slice < hi,
                "slice block arithmetic: slice {slice} outside [{lo}, {hi}) of part {p}"
            );
            let full = load_standalone_part(&self.manifest, p as PartId, self)?;
            let k = hi - lo;
            let part = if k <= 1 {
                full
            } else {
                let labels = partition_mesh(&full.mesh, k);
                extract_labeled(&full, &labels, (slice - lo) as PartId)
            };
            Ok(Slice {
                parts: vec![part],
                fparts: vec![p as PartId],
            })
        }
    }

    /// Fetch (or lazily load) a part file. `delta == 0` is the base
    /// snapshot; `delta == k` is round `k`'s file under `delta_<k:04>/`.
    fn part_file(&self, delta: u32, fpart: PartId) -> Result<Arc<PartFile>, IoError> {
        // The load happens under the map lock: concurrent first-touchers
        // would otherwise stampede the same file and each pay the disk
        // read. Serializing the one-time loads keeps "each part file is
        // read from disk exactly once" an invariant the stats can assert.
        let mut files = self.files.lock().expect("file map lock");
        if let Some(pf) = files.get(&(delta, fpart)) {
            return Ok(Arc::clone(pf));
        }
        let fdir = if delta == 0 {
            self.dir.clone()
        } else {
            delta_dir(&self.dir, delta)
        };
        let path = part_file_path(&fdir, fpart);
        let data = std::fs::read(&path).map_err(|e| IoError::Io {
            path: path.clone(),
            source: e,
        })?;
        let header = parse_part_any(fpart, &data)?;
        let is_delta = matches!(&header, AnyPartHeader::V2(h) if h.is_delta());
        if delta == 0 && is_delta {
            return Err(IoError::Header {
                part: fpart,
                detail: "delta part file where a base snapshot was expected".into(),
            });
        }
        if delta > 0 && !is_delta {
            return Err(IoError::Header {
                part: fpart,
                detail: format!("delta round {delta}: not a v2 delta part file"),
            });
        }
        self.disk_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        pumi_obs::metrics::counter_add("serve.bytes.disk", data.len() as u64);
        let pf = Arc::new(PartFile { data, header });
        files.insert((delta, fpart), Arc::clone(&pf));
        Ok(pf)
    }

    /// One chunk's raw bytes through the shared cache. `decode` runs only
    /// on a miss (CRC check + decompression).
    fn cached_chunk(
        &self,
        key: ChunkKey,
        decode: impl FnOnce() -> Result<Vec<u8>, IoError>,
    ) -> Result<Arc<Vec<u8>>, IoError> {
        if let Some(raw) = self.chunks.lock().expect("chunk cache lock").map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            pumi_obs::metrics::counter_add("serve.chunk.hit", 1);
            return Ok(Arc::clone(raw));
        }
        // Decode outside the lock; concurrent first-touchers of the same
        // chunk may both decode, but only one copy is kept.
        let raw = Arc::new(decode()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        pumi_obs::metrics::counter_add("serve.chunk.miss", 1);
        let mut chunks = self.chunks.lock().expect("chunk cache lock");
        if let Some(existing) = chunks.map.get(&key) {
            return Ok(Arc::clone(existing));
        }
        chunks.map.insert(key, Arc::clone(&raw));
        chunks.order.push_back(key);
        chunks.bytes += raw.len() as u64;
        let evicted = chunks.evict_over_cap();
        drop(chunks);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            pumi_obs::metrics::counter_add("serve.chunk.evict", evicted);
        }
        Ok(raw)
    }
}

impl SectionSource for CheckpointServer {
    fn section(
        &self,
        fpart: PartId,
        delta: Option<u32>,
        section: Section,
    ) -> Result<Vec<u8>, IoError> {
        let round = delta.unwrap_or(0);
        let pf = self.part_file(round, fpart)?;
        let missing = || IoError::Header {
            part: fpart,
            detail: format!("missing section '{}'", section.name()),
        };
        let out = match &pf.header {
            AnyPartHeader::V1(h) => {
                // v1 sections are flat; cache each whole under chunk 0.
                let entry = pumi_io::format::find_section(h, section).ok_or_else(missing)?;
                let raw = self.cached_chunk((round, fpart, section.to_u8(), 0), || {
                    Ok(section_payload(fpart, &pf.data, &entry)?.to_vec())
                })?;
                raw.as_ref().clone()
            }
            AnyPartHeader::V2(h) => {
                let entry = h.find(section).ok_or_else(missing)?;
                let end = entry.offset.saturating_add(entry.disk_len);
                if end > pf.data.len() as u64 {
                    return Err(IoError::Truncated {
                        part: fpart,
                        section,
                        needed: end,
                        have: pf.data.len() as u64,
                    });
                }
                let mut out = Vec::with_capacity(entry.raw_len as usize);
                let mut at = entry.offset as usize;
                let section_end = end as usize;
                for idx in 0..entry.nchunks {
                    let hdr = parse_chunk_header(fpart, section, idx, &pf.data[at..section_end])?;
                    at += CHUNK_HEADER_LEN;
                    let plen = hdr.disk_payload_len();
                    if at + plen > section_end {
                        return Err(IoError::BadChunk {
                            part: fpart,
                            section,
                            chunk: idx,
                            detail: format!(
                                "chunk payload truncated: need {plen} bytes, have {}",
                                section_end - at
                            ),
                        });
                    }
                    let raw = self.cached_chunk((round, fpart, section.to_u8(), idx), || {
                        decode_chunk(fpart, section, idx, &hdr, &pf.data[at..at + plen])
                    })?;
                    out.extend_from_slice(&raw);
                    at += plen;
                }
                if out.len() as u64 != entry.raw_len {
                    return Err(IoError::Decode {
                        part: fpart,
                        section,
                        detail: format!(
                            "section reassembled to {} bytes, table promised {}",
                            out.len(),
                            entry.raw_len
                        ),
                    });
                }
                out
            }
        };
        self.raw_bytes
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        pumi_obs::metrics::counter_add("serve.bytes.raw", out.len() as u64);
        Ok(out)
    }
}

/// Build a standalone sub-part from the elements of `src` labeled `want`.
/// Vertices referenced by a kept element come along; intermediate entities
/// come along when all their vertices did (boundary edges/faces shared
/// with a neighboring slice are duplicated, like part-boundary copies).
/// Tag rows — including staged `__io:f:` field values — ride with their
/// entities; global ids are preserved so slices stay globally consistent.
fn extract_labeled(src: &Part, labels: &[PartId], want: PartId) -> Part {
    let elem_dim = src.mesh.elem_dim();
    let d_elem = Dim::from_usize(elem_dim);
    let mut out = Part::new(src.id, elem_dim);
    let mut vwant: FxHashSet<u32> = FxHashSet::default();
    for e in src.mesh.iter(d_elem) {
        if labels[e.idx()] == want {
            vwant.extend(src.mesh.verts_of(e).iter().copied());
        }
    }
    // Old local index → new local index (vertices), old → new handles (all
    // dimensions, for the tag pass).
    let mut vmap: FxHashMap<u32, u32> = FxHashMap::default();
    let mut emap: Vec<(MeshEnt, MeshEnt)> = Vec::new();
    for v in src.mesh.iter(Dim::Vertex) {
        if !vwant.contains(&v.index()) {
            continue;
        }
        let nv = out.add_vertex(src.mesh.coords(v), src.mesh.class_of(v), src.gid_of(v));
        vmap.insert(v.index(), nv.index());
        emap.push((v, nv));
    }
    for d in 1..=elem_dim {
        let dim = Dim::from_usize(d);
        for e in src.mesh.iter(dim) {
            let keep = if d == elem_dim {
                labels[e.idx()] == want
            } else {
                src.mesh.verts_of(e).iter().all(|v| vmap.contains_key(v))
            };
            if !keep {
                continue;
            }
            let verts: Vec<u32> = src.mesh.verts_of(e).iter().map(|v| vmap[v]).collect();
            let ne = out.add_entity(
                src.mesh.topo(e),
                &verts,
                src.mesh.class_of(e),
                src.gid_of(e),
            );
            emap.push((e, ne));
        }
    }
    let tm = src.mesh.tags();
    for tid in tm.tags() {
        if tm.count(tid) == 0 {
            continue;
        }
        let ntid = out
            .mesh
            .tags_mut()
            .declare(tm.name(tid), tm.kind(tid), tm.len_of(tid));
        for &(old, new) in &emap {
            if let Some(data) = tm.get(tid, old) {
                out.mesh.tags_mut().set(ntid, new, data.clone());
            }
        }
    }
    out
}
