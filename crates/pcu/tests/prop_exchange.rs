//! Property-style equivalence of exchange routing strategies.
//!
//! For randomized traffic patterns over a sweep of machine shapes, direct
//! and two-level routing must be observationally identical: every rank sees
//! byte-identical `Received` contents (same sources, same payloads, same
//! totals) across multiple phases, and the per-phase observability rows at
//! the exchange span path agree exactly (the relay's physical envelopes live
//! under a nested span and never leak into phase-level accounting).

use pumi_pcu::machine::MachineModel;
use pumi_pcu::obs::WorldTraffic;
use pumi_pcu::phased::{Exchange, ExchangeOpts};
use pumi_pcu::{execute_on, MsgReader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `pattern[phase][rank]` = messages that rank sends, as `(dest, payload)`.
type Pattern = Vec<Vec<Vec<(usize, Vec<u8>)>>>;

fn gen_pattern(seed: u64, phases: usize, nranks: usize) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..phases)
        .map(|_| {
            (0..nranks)
                .map(|_| {
                    if rng.gen_bool(0.25) {
                        return Vec::new(); // silent rank this phase
                    }
                    let mut sends = Vec::new();
                    for dest in 0..nranks {
                        // Sparse fan-out with self-sends and a size spread
                        // from empty to a few hundred bytes.
                        if rng.gen_bool(0.4) {
                            let len: usize = rng.gen_range(0..300);
                            let payload: Vec<u8> =
                                (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
                            sends.push((dest, payload));
                        }
                    }
                    sends
                })
                .collect()
        })
        .collect()
}

/// One phase on one rank: `(total_bytes, [(source, payload)])`.
type PhaseResult = (u64, Vec<(usize, Vec<u8>)>);
/// Per rank, per phase.
type Outcome = Vec<Vec<PhaseResult>>;

fn run(m: MachineModel, pattern: &Pattern, opts: ExchangeOpts) -> (Outcome, Vec<WorldTraffic>) {
    let mut results = execute_on(m, |c| {
        let _ = pumi_obs::span::take();
        let _ = pumi_obs::metrics::take_traffic();
        let phases: Vec<PhaseResult> = {
            let _g = pumi_obs::span!("prop");
            pattern
                .iter()
                .map(|phase| {
                    let mut ex = Exchange::with_opts(c, opts);
                    for (dest, payload) in &phase[c.rank()] {
                        ex.to(*dest).put_bytes(payload);
                    }
                    let got = ex.finish();
                    let total = got.total_bytes();
                    let msgs = got
                        .into_iter()
                        .map(|(from, mut r): (usize, MsgReader)| {
                            let body = r.get_bytes();
                            assert!(r.is_done(), "trailing bytes from {from}");
                            (from, body)
                        })
                        .collect();
                    (total, msgs)
                })
                .collect()
        };
        let obs = pumi_pcu::obs::reduce_traffic(c);
        (phases, obs)
    });
    let obs = results
        .iter_mut()
        .filter_map(|(_, o)| o.take())
        .next()
        .expect("rank 0 reduces traffic");
    // Phase-level rows only: traffic recorded at the exchange span itself.
    // Nested spans (barriers, relay hops) are implementation detail.
    let phase_rows = obs
        .into_iter()
        .filter(|r| r.phase.ends_with("prop/pcu.exchange"))
        .collect();
    (results.into_iter().map(|(p, _)| p).collect(), phase_rows)
}

#[test]
fn routing_strategies_are_observationally_identical() {
    let shapes = [
        MachineModel::new(1, 4),
        MachineModel::new(2, 3),
        MachineModel::new(4, 2),
        MachineModel::new(2, 8),
        MachineModel::new(6, 1),
        MachineModel::new(1, 1),
    ];
    for (i, &m) in shapes.iter().enumerate() {
        for seed in 0..3u64 {
            let pattern = gen_pattern(seed * 31 + i as u64, 4, m.nranks());
            let (direct, direct_obs) = run(m, &pattern, ExchangeOpts::direct());
            let (agg, agg_obs) = run(m, &pattern, ExchangeOpts::two_level());
            assert_eq!(
                direct, agg,
                "received contents diverged: machine {}x{}, seed {seed}",
                m.nodes, m.cores_per_node
            );
            assert_eq!(
                direct_obs, agg_obs,
                "phase-level obs rows diverged: machine {}x{}, seed {seed}",
                m.nodes, m.cores_per_node
            );
        }
    }
}

/// The environment knob must select the documented modes (exercised against
/// whatever `PUMI_PCU_ROUTE` this test process inherited: unset or anything
/// unrecognised means direct).
#[test]
fn route_mode_env_default_is_direct() {
    if std::env::var("PUMI_PCU_ROUTE").is_err() {
        assert_eq!(ExchangeOpts::default().route, pumi_pcu::RouteMode::Direct);
    }
}
