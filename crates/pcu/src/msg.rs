//! Typed message packing (§II-D "message buffer management").
//!
//! All cross-part data crosses the simulated network as little-endian byte
//! streams. [`MsgWriter`] appends primitives to a growable buffer;
//! [`MsgReader`] consumes them in the same order. Framing is the caller's
//! contract (as in MPI).
//!
//! # Buffer pooling
//!
//! Phased algorithms (migrate, ghost, field sync) allocate one writer per
//! destination per round; [`MsgWriter::pooled`] seeds a writer from a
//! thread-local free list of capacity-retaining buffers instead of the
//! allocator. The list is refilled when a [`MsgReader`] holding the last
//! handle to a message drops ([`Bytes::try_unfreeze`]), so in steady-state
//! neighbour exchange the same allocations circulate between the pack and
//! unpack sides of a rank without touching `malloc`. Each rank is one OS
//! thread, so thread-local means per-rank.
//!
//! # Zero-copy reads
//!
//! [`MsgReader::try_get_bytes_shared`] returns a length-prefixed payload as
//! a [`Bytes`] sub-slice sharing the incoming message's allocation —
//! deserialization layers that re-frame nested buffers (part exchange,
//! relay routing) use it to avoid copying every payload into a fresh
//! `Vec<u8>`.
//!
//! # Fallible and infallible reads
//!
//! Every read exists in two forms:
//!
//! * `try_get_*` returns `Result<T, MsgError>` on underrun — use these in
//!   deserialization layers that want to name the corrupt frame before
//!   failing (migration, ghosting, field sync all do),
//! * `get_*` is a thin wrapper that panics with the [`MsgError`] text —
//!   fine for short fixed frames where the writer is in the same function.
//!
//! Note that an underrun is always a *bug* (the writer and reader disagree),
//! never an environmental condition, and most reads happen inside
//! collectives where an early return would deadlock the other ranks. So the
//! layered convention is: `try_get_*` upward through pure deserialization
//! code, then one `expect`/panic with frame context at the collective
//! boundary — not `Result` signatures on collective operations themselves.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Thread-local free list of message buffers (capacity-retaining).
mod pool {
    use bytes::{Bytes, BytesMut};
    use std::cell::RefCell;

    /// Buffers kept per thread; beyond this, returns go to the allocator.
    const MAX_BUFS: usize = 32;
    /// Capacities worth retaining: below this a fresh alloc is cheap, above
    /// it a pooled buffer would pin too much memory between phases.
    const MIN_CAP: usize = 64;
    const MAX_CAP: usize = 1 << 20;

    thread_local! {
        static POOL: RefCell<Vec<BytesMut>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn take() -> BytesMut {
        POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
    }

    pub(super) fn put(buf: BytesMut) {
        if !(MIN_CAP..=MAX_CAP).contains(&buf.capacity()) {
            return;
        }
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_BUFS {
                p.push(buf);
            }
        });
    }

    /// Reclaim a frozen buffer's allocation if this is the last handle.
    pub(super) fn recycle(b: Bytes) {
        if let Ok(m) = b.try_unfreeze() {
            put(m);
        }
    }
}

/// A message deserialization failure: writer and reader disagreed on the
/// frame layout, or the frame's content does not decode. Carried upward by
/// `try_get_*`-style deserialization code and turned into one panic (or a
/// typed domain error) with frame context at the collective boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgError {
    /// The reader ran past the end of the buffer.
    Underrun {
        /// Bytes the failing read needed.
        needed: usize,
        /// Bytes that were left in the buffer.
        available: usize,
    },
    /// A byte decoded to no known value of an enumeration (dimension,
    /// topology, tag kind, ...).
    BadEnum {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A frame referenced an entity the receiving part does not hold.
    Missing {
        /// What was being looked up.
        what: &'static str,
        /// Entity dimension (`0..=3`).
        dim: u8,
        /// The global id that failed to resolve.
        gid: u64,
    },
    /// A nested payload passed framing but its content does not decode.
    Corrupt {
        /// What was being decoded.
        what: &'static str,
    },
}

impl MsgError {
    /// An [`MsgError::Underrun`].
    pub fn underrun(needed: usize, available: usize) -> MsgError {
        MsgError::Underrun { needed, available }
    }

    /// An [`MsgError::BadEnum`].
    pub fn bad_enum(what: &'static str, value: u8) -> MsgError {
        MsgError::BadEnum { what, value }
    }

    /// An [`MsgError::Missing`].
    pub fn missing(what: &'static str, dim: u8, gid: u64) -> MsgError {
        MsgError::Missing { what, dim, gid }
    }

    /// An [`MsgError::Corrupt`].
    pub fn corrupt(what: &'static str) -> MsgError {
        MsgError::Corrupt { what }
    }
}

impl std::fmt::Display for MsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgError::Underrun { needed, available } => {
                write!(f, "message underrun: need {needed} bytes, have {available}")
            }
            MsgError::BadEnum { what, value } => {
                write!(f, "bad {what} code {value:#04x}")
            }
            MsgError::Missing { what, dim, gid } => {
                write!(f, "{what} not held by this part (dim {dim}, gid {gid})")
            }
            MsgError::Corrupt { what } => write!(f, "undecodable {what}"),
        }
    }
}

impl std::error::Error for MsgError {}

/// Append-only typed writer over a [`BytesMut`].
#[derive(Debug, Default)]
pub struct MsgWriter {
    buf: BytesMut,
}

impl MsgWriter {
    /// An empty writer.
    pub fn new() -> MsgWriter {
        MsgWriter::default()
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> MsgWriter {
        MsgWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// An empty writer seeded from the thread-local buffer pool: reuses the
    /// capacity of a previously finished-and-consumed message when one is
    /// available, so per-destination packing in a phase loop stops paying an
    /// allocation per round.
    pub fn pooled() -> MsgWriter {
        MsgWriter { buf: pool::take() }
    }

    /// Return this writer's backing buffer to the thread-local pool without
    /// sending it (e.g. a staging buffer whose contents were re-framed into
    /// another writer).
    pub fn recycle(self) {
        let mut buf = self.buf;
        buf.clear();
        pool::put(buf);
    }

    /// View the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_slice()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.put_u8(x);
    }

    /// Write a `u32` (little endian).
    pub fn put_u32(&mut self, x: u32) {
        self.buf.put_u32_le(x);
    }

    /// Write a `u64` (little endian).
    pub fn put_u64(&mut self, x: u64) {
        self.buf.put_u64_le(x);
    }

    /// Write an `i64` (little endian).
    pub fn put_i64(&mut self, x: i64) {
        self.buf.put_i64_le(x);
    }

    /// Write an `f64` (little endian bit pattern).
    pub fn put_f64(&mut self, x: f64) {
        self.buf.put_f64_le(x);
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Write a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, xs: &[u32]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u32(x);
        }
    }

    /// Write a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, xs: &[u64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u64(x);
        }
    }

    /// Write a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Finish, producing an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finish as a plain `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Sequential typed reader over a byte buffer.
#[derive(Debug)]
pub struct MsgReader {
    buf: Bytes,
}

impl MsgReader {
    /// Read from an immutable buffer.
    pub fn new(buf: Bytes) -> MsgReader {
        MsgReader { buf }
    }

    /// Read from a `Vec<u8>`.
    pub fn from_vec(v: Vec<u8>) -> MsgReader {
        MsgReader {
            buf: Bytes::from(v),
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Whether the stream is fully consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn check(&self, n: usize) -> Result<(), MsgError> {
        if self.buf.remaining() >= n {
            Ok(())
        } else {
            Err(MsgError::underrun(n, self.buf.remaining()))
        }
    }

    /// Read a `u8`, or report an underrun.
    pub fn try_get_u8(&mut self) -> Result<u8, MsgError> {
        self.check(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a `u32`, or report an underrun.
    pub fn try_get_u32(&mut self) -> Result<u32, MsgError> {
        self.check(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a `u64`, or report an underrun.
    pub fn try_get_u64(&mut self) -> Result<u64, MsgError> {
        self.check(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read an `i64`, or report an underrun.
    pub fn try_get_i64(&mut self) -> Result<i64, MsgError> {
        self.check(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Read an `f64`, or report an underrun.
    pub fn try_get_f64(&mut self) -> Result<f64, MsgError> {
        self.check(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Read a length-prefixed byte vector, or report an underrun (including
    /// a length prefix pointing past the end of the buffer).
    pub fn try_get_bytes(&mut self) -> Result<Vec<u8>, MsgError> {
        let n = self.try_get_u32()? as usize;
        self.check(n)?;
        let mut v = vec![0u8; n];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Read a length-prefixed payload as a zero-copy [`Bytes`] sub-slice
    /// sharing this message's allocation, or report an underrun. The frame
    /// layout is identical to [`MsgWriter::put_bytes`] /
    /// [`Self::try_get_bytes`]; only the ownership of the result differs.
    pub fn try_get_bytes_shared(&mut self) -> Result<Bytes, MsgError> {
        let n = self.try_get_u32()? as usize;
        self.check(n)?;
        Ok(self.buf.split_to(n))
    }

    /// Read a length-prefixed `u32` vector, or report an underrun.
    pub fn try_get_u32_slice(&mut self) -> Result<Vec<u32>, MsgError> {
        let n = self.try_get_u32()? as usize;
        self.check(n.saturating_mul(4))?;
        Ok((0..n).map(|_| self.buf.get_u32_le()).collect())
    }

    /// Read a length-prefixed `u64` vector, or report an underrun.
    pub fn try_get_u64_slice(&mut self) -> Result<Vec<u64>, MsgError> {
        let n = self.try_get_u32()? as usize;
        self.check(n.saturating_mul(8))?;
        Ok((0..n).map(|_| self.buf.get_u64_le()).collect())
    }

    /// Read a length-prefixed `f64` vector, or report an underrun.
    pub fn try_get_f64_slice(&mut self) -> Result<Vec<f64>, MsgError> {
        let n = self.try_get_u32()? as usize;
        self.check(n.saturating_mul(8))?;
        Ok((0..n).map(|_| self.buf.get_f64_le()).collect())
    }

    /// Read a `u8`.
    ///
    /// # Panics
    /// On underrun, with the [`MsgError`] message.
    pub fn get_u8(&mut self) -> u8 {
        self.try_get_u8().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a `u32`. Panics on underrun.
    pub fn get_u32(&mut self) -> u32 {
        self.try_get_u32().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a `u64`. Panics on underrun.
    pub fn get_u64(&mut self) -> u64 {
        self.try_get_u64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read an `i64`. Panics on underrun.
    pub fn get_i64(&mut self) -> i64 {
        self.try_get_i64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read an `f64`. Panics on underrun.
    pub fn get_f64(&mut self) -> f64 {
        self.try_get_f64().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed byte vector. Panics on underrun.
    pub fn get_bytes(&mut self) -> Vec<u8> {
        self.try_get_bytes().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed payload as a zero-copy sub-slice. Panics on
    /// underrun.
    pub fn get_bytes_shared(&mut self) -> Bytes {
        self.try_get_bytes_shared()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed `u32` vector. Panics on underrun.
    pub fn get_u32_slice(&mut self) -> Vec<u32> {
        self.try_get_u32_slice().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed `u64` vector. Panics on underrun.
    pub fn get_u64_slice(&mut self) -> Vec<u64> {
        self.try_get_u64_slice().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Read a length-prefixed `f64` vector. Panics on underrun.
    pub fn get_f64_slice(&mut self) -> Vec<f64> {
        self.try_get_f64_slice().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Drop for MsgReader {
    fn drop(&mut self) {
        // If this reader held the last handle to the message, its allocation
        // returns to the thread-local pool for the next MsgWriter::pooled().
        pool::recycle(std::mem::take(&mut self.buf));
    }
}

/// Relay sub-frame layout used by the two-level exchange (DESIGN.md
/// "Two-level message routing"): `[u32 dest rank][u32 origin rank]
/// [u32 len][len payload bytes]`. A node-bound super-message is a
/// concatenation of these; a relay re-delivers each payload by slicing it
/// out of the super-message without copying.
pub(crate) fn put_relay_frame(w: &mut MsgWriter, dest: u32, origin: u32, payload: &[u8]) {
    w.put_u32(dest);
    w.put_u32(origin);
    w.put_bytes(payload);
}

/// Parse one relay sub-frame: `(dest rank, origin rank, payload)`. The
/// payload shares the super-message's allocation (zero copy).
pub(crate) fn take_relay_frame(r: &mut MsgReader) -> Result<(u32, u32, Bytes), MsgError> {
    let dest = r.try_get_u32()?;
    let origin = r.try_get_u32()?;
    let payload = r.try_get_bytes_shared()?;
    Ok((dest, origin, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = MsgWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_bytes(b"hello");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[9, 8]);
        w.put_f64_slice(&[0.25]);
        let mut r = MsgReader::new(w.finish());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 3.5);
        assert_eq!(r.get_bytes(), b"hello");
        assert_eq!(r.get_u32_slice(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_slice(), vec![9, 8]);
        assert_eq!(r.get_f64_slice(), vec![0.25]);
        assert!(r.is_done());
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut r = MsgReader::from_vec(vec![1, 2]);
        r.get_u32();
    }

    #[test]
    fn try_get_reports_needed_and_available() {
        let mut r = MsgReader::from_vec(vec![1, 2]);
        assert_eq!(r.try_get_u32(), Err(MsgError::underrun(4, 2)));
        // The failed read consumed nothing; smaller reads still work.
        assert_eq!(r.try_get_u8(), Ok(1));
        assert_eq!(r.remaining(), 1);
        let e = r.try_get_f64().unwrap_err();
        assert_eq!(e.to_string(), "message underrun: need 8 bytes, have 1");
    }

    #[test]
    fn content_error_variants_display_context() {
        let e = MsgError::bad_enum("topology", 0xFE);
        assert_eq!(e.to_string(), "bad topology code 0xfe");
        let e = MsgError::missing("closure vertex", 0, 41);
        assert!(e.to_string().contains("closure vertex"), "{e}");
        assert!(e.to_string().contains("gid 41"), "{e}");
        let e = MsgError::corrupt("tag value");
        assert_eq!(e.to_string(), "undecodable tag value");
    }

    #[test]
    fn try_get_slice_rejects_lying_length_prefix() {
        // Length prefix claims 1000 u64s but the body is empty.
        let mut w = MsgWriter::new();
        w.put_u32(1000);
        let mut r = MsgReader::new(w.finish());
        let e = r.try_get_u64_slice().unwrap_err();
        assert_eq!(e, MsgError::underrun(8000, 0));

        // Same for a byte vector.
        let mut w = MsgWriter::new();
        w.put_u32(10);
        w.put_u8(1);
        let mut r = MsgReader::new(w.finish());
        let e = r.try_get_bytes().unwrap_err();
        assert_eq!(e, MsgError::underrun(10, 1));
    }

    #[test]
    fn try_get_roundtrip_matches_infallible() {
        let mut w = MsgWriter::new();
        w.put_u32(5);
        w.put_f64_slice(&[1.0, 2.0]);
        w.put_bytes(b"xy");
        let mut r = MsgReader::new(w.finish());
        assert_eq!(r.try_get_u32(), Ok(5));
        assert_eq!(r.try_get_f64_slice(), Ok(vec![1.0, 2.0]));
        assert_eq!(r.try_get_bytes(), Ok(b"xy".to_vec()));
        assert!(r.is_done());
        assert_eq!(r.try_get_u8(), Err(MsgError::underrun(1, 0)));
    }

    #[test]
    fn bytes_shared_matches_copying_read() {
        let mut w = MsgWriter::new();
        w.put_bytes(b"alpha");
        w.put_bytes(b"");
        w.put_bytes(b"omega");
        let frozen = w.finish();
        let mut a = MsgReader::new(frozen.clone());
        let mut b = MsgReader::new(frozen);
        assert_eq!(&a.get_bytes_shared()[..], &b.get_bytes()[..]);
        assert_eq!(&a.get_bytes_shared()[..], &b.get_bytes()[..]);
        assert_eq!(&a.get_bytes_shared()[..], &b.get_bytes()[..]);
        assert!(a.is_done());
        // Underrun reporting matches the copying variant.
        let mut w = MsgWriter::new();
        w.put_u32(10);
        w.put_u8(1);
        let mut r = MsgReader::new(w.finish());
        assert_eq!(
            r.try_get_bytes_shared().unwrap_err(),
            MsgError::underrun(10, 1)
        );
    }

    #[test]
    fn relay_frame_roundtrip_is_zero_copy() {
        let mut w = MsgWriter::new();
        put_relay_frame(&mut w, 7, 3, b"payload-a");
        put_relay_frame(&mut w, 2, 3, b"");
        let mut r = MsgReader::new(w.finish());
        let (dest, origin, payload) = take_relay_frame(&mut r).unwrap();
        assert_eq!((dest, origin), (7, 3));
        assert_eq!(&payload[..], b"payload-a");
        let (dest, origin, payload) = take_relay_frame(&mut r).unwrap();
        assert_eq!((dest, origin), (2, 3));
        assert!(payload.is_empty());
        assert!(r.is_done());
        assert!(take_relay_frame(&mut r).is_err());
    }

    #[test]
    fn pooled_writer_recycles_reader_capacity() {
        // Drain whatever earlier tests left in this thread's pool (a pooled
        // writer from an empty pool has a fresh zero-capacity buffer).
        loop {
            let w = MsgWriter::pooled();
            if w.buf.capacity() == 0 {
                break;
            }
        }
        let mut w = MsgWriter::with_capacity(512);
        w.put_bytes(&[7u8; 100]);
        let r = MsgReader::new(w.finish());
        drop(r); // last handle: allocation returns to the pool
        let w2 = MsgWriter::pooled();
        assert!(w2.buf.capacity() >= 512, "capacity was not retained");
        assert!(w2.is_empty());
        w2.recycle();
    }

    #[test]
    fn shared_slice_blocks_reclaim_until_dropped() {
        let mut w = MsgWriter::with_capacity(256);
        w.put_bytes(&[1u8; 64]);
        let mut r = MsgReader::new(w.finish());
        let slice = r.get_bytes_shared();
        drop(r); // slice still alive: no reclaim, no corruption
        assert_eq!(&slice[..], &[1u8; 64]);
    }

    #[test]
    fn empty_slices_roundtrip() {
        let mut w = MsgWriter::new();
        w.put_u32_slice(&[]);
        w.put_bytes(&[]);
        let mut r = MsgReader::new(w.finish());
        assert!(r.get_u32_slice().is_empty());
        assert!(r.get_bytes().is_empty());
        assert!(r.is_done());
    }
}
