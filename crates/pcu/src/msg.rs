//! Typed message packing (§II-D "message buffer management").
//!
//! All cross-part data crosses the simulated network as little-endian byte
//! streams. [`MsgWriter`] appends primitives to a growable buffer;
//! [`MsgReader`] consumes them in the same order. Framing is the caller's
//! contract (as in MPI) — the reader panics on underrun in debug terms via
//! explicit checks, returning defaults is never silently allowed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append-only typed writer over a [`BytesMut`].
#[derive(Debug, Default)]
pub struct MsgWriter {
    buf: BytesMut,
}

impl MsgWriter {
    /// An empty writer.
    pub fn new() -> MsgWriter {
        MsgWriter::default()
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> MsgWriter {
        MsgWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.put_u8(x);
    }

    /// Write a `u32` (little endian).
    pub fn put_u32(&mut self, x: u32) {
        self.buf.put_u32_le(x);
    }

    /// Write a `u64` (little endian).
    pub fn put_u64(&mut self, x: u64) {
        self.buf.put_u64_le(x);
    }

    /// Write an `i64` (little endian).
    pub fn put_i64(&mut self, x: i64) {
        self.buf.put_i64_le(x);
    }

    /// Write an `f64` (little endian bit pattern).
    pub fn put_f64(&mut self, x: f64) {
        self.buf.put_f64_le(x);
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Write a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, xs: &[u32]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u32(x);
        }
    }

    /// Write a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, xs: &[u64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_u64(x);
        }
    }

    /// Write a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_u32(xs.len() as u32);
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Finish, producing an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finish as a plain `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Sequential typed reader over a byte buffer.
#[derive(Debug)]
pub struct MsgReader {
    buf: Bytes,
}

impl MsgReader {
    /// Read from an immutable buffer.
    pub fn new(buf: Bytes) -> MsgReader {
        MsgReader { buf }
    }

    /// Read from a `Vec<u8>`.
    pub fn from_vec(v: Vec<u8>) -> MsgReader {
        MsgReader { buf: Bytes::from(v) }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Whether the stream is fully consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn check(&self, n: usize) {
        assert!(
            self.buf.remaining() >= n,
            "message underrun: need {n} bytes, have {}",
            self.buf.remaining()
        );
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> u8 {
        self.check(1);
        self.buf.get_u8()
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        self.check(4);
        self.buf.get_u32_le()
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        self.check(8);
        self.buf.get_u64_le()
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> i64 {
        self.check(8);
        self.buf.get_i64_le()
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> f64 {
        self.check(8);
        self.buf.get_f64_le()
    }

    /// Read a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Vec<u8> {
        let n = self.get_u32() as usize;
        self.check(n);
        let mut v = vec![0u8; n];
        self.buf.copy_to_slice(&mut v);
        v
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32_slice(&mut self) -> Vec<u32> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64_slice(&mut self) -> Vec<u64> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64_slice(&mut self) -> Vec<f64> {
        let n = self.get_u32() as usize;
        (0..n).map(|_| self.get_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = MsgWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_bytes(b"hello");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[9, 8]);
        w.put_f64_slice(&[0.25]);
        let mut r = MsgReader::new(w.finish());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 3.5);
        assert_eq!(r.get_bytes(), b"hello");
        assert_eq!(r.get_u32_slice(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_slice(), vec![9, 8]);
        assert_eq!(r.get_f64_slice(), vec![0.25]);
        assert!(r.is_done());
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn underrun_panics() {
        let mut r = MsgReader::from_vec(vec![1, 2]);
        r.get_u32();
    }

    #[test]
    fn empty_slices_roundtrip() {
        let mut w = MsgWriter::new();
        w.put_u32_slice(&[]);
        w.put_bytes(&[]);
        let mut r = MsgReader::new(w.finish());
        assert!(r.get_u32_slice().is_empty());
        assert!(r.get_bytes().is_empty());
        assert!(r.is_done());
    }
}
