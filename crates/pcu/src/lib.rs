//! PCU — the Parallel Control Utility of this PUMI reproduction (§II, §II-D).
//!
//! The paper's PUMI runs on MPI with an emerging hybrid MPI/thread mode. This
//! crate provides the equivalent substrate as a **simulated message-passing
//! runtime**: N ranks execute as OS threads, and parts communicate *only*
//! through serialized byte messages over channels — the same discipline as
//! MPI, so every distributed algorithm above (migration, ghosting, ParMA)
//! exercises true pack/route/unpack code paths.
//!
//! Components:
//! * [`comm`] — the world executor ([`comm::execute`], with
//!   [`comm::WorldOpts`]/`PUMI_PCU_WORKERS` multiplexing R ranks onto W
//!   worker permits for wide worlds) and per-rank [`comm::Comm`] handle
//!   with point-to-point send/recv over sharded lock-free mailboxes,
//! * [`collectives`] — barrier, reductions, gathers, all-to-all,
//! * [`phased`] — PCU-style phased neighbour exchange (pack per destination,
//!   send, iterate received buffers) with selectable off-node routing
//!   ([`phased::RouteMode`]): direct rank-to-rank, or node-aware two-level
//!   aggregation through node leaders,
//! * [`machine`] — the architecture model: rank ↔ (node, core) mapping and
//!   on-node vs off-node link classification (Figs 5/6),
//! * [`msg`] — typed little-endian message writers/readers over [`bytes`],
//!   with fallible `try_get_*` reads (returning [`MsgError`]) for
//!   deserialization layers and panicking `get_*` wrappers for short frames,
//! * [`obs`] — cross-rank reduction of `pumi-obs` span timings and
//!   per-phase traffic to rank 0 (the world view benches report),
//! * [`sched`] — the seeded chaos scheduler (`PUMI_PCU_SCHED=chaos:<seed>`)
//!   that shuffles frame delivery order in phased exchanges to flush out
//!   order-dependence bugs while staying reproducible per seed.
//!
//! Determinism: given the same inputs, all collectives reduce in rank order
//! and exchanges deliver frames in a canonical order (or a seeded
//! permutation of it), so distributed results are bitwise reproducible
//! across runs — and must agree across chaos seeds.

pub mod collectives;
pub mod comm;
pub mod machine;
pub mod msg;
pub mod obs;
pub mod phased;
mod runtime;
pub mod sched;

pub use comm::{
    execute, execute_chaos, execute_on, execute_on_sched, execute_opts, Comm, WorldOpts,
};
pub use machine::{LinkClass, MachineModel, TrafficReport};
pub use msg::{MsgError, MsgReader, MsgWriter};
pub use phased::{Exchange, ExchangeOpts, Received, RouteMode};
pub use sched::{ChaosRng, SchedMode};
