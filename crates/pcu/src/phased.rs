//! Phased neighbour exchange — the PCU communication pattern PUMI's
//! distributed algorithms are written in (§II-D "message passing control:
//! message buffer management and message routing").
//!
//! A phase has three steps: pack data per destination rank, send everything,
//! then iterate over received buffers. Termination detection (how many
//! messages each rank should expect) is resolved with one vector sum-reduce
//! of per-destination message counts, keeping the exchange O(messages + N)
//! rather than O(N²).
//!
//! ```
//! use pumi_pcu::phased::Exchange;
//! let results = pumi_pcu::execute(4, |c| {
//!     let mut ex = Exchange::new(c);
//!     // every rank sends its rank number to rank 0
//!     if c.rank() != 0 {
//!         ex.to(0).put_u32(c.rank() as u32);
//!     }
//!     let received = ex.finish();
//!     received.len()
//! });
//! assert_eq!(results, vec![3, 0, 0, 0]);
//! ```

use crate::comm::Comm;
use crate::msg::{MsgReader, MsgWriter};
use pumi_util::FxHashMap;

/// A single phased exchange. Pack with [`Exchange::to`], complete with
/// [`Exchange::finish`].
pub struct Exchange<'c> {
    comm: &'c Comm,
    bufs: FxHashMap<usize, MsgWriter>,
}

impl<'c> Exchange<'c> {
    /// Begin an exchange phase on `comm`. All ranks of the world must
    /// participate (SPMD), even those with nothing to send.
    pub fn new(comm: &'c Comm) -> Exchange<'c> {
        Exchange {
            comm,
            bufs: FxHashMap::default(),
        }
    }

    /// The writer that packs data destined for `rank`. Packing to one's own
    /// rank is allowed — the buffer is delivered locally.
    pub fn to(&mut self, rank: usize) -> &mut MsgWriter {
        assert!(rank < self.comm.nranks(), "destination {rank} out of range");
        self.bufs.entry(rank).or_default()
    }

    /// Whether anything has been packed for `rank`.
    pub fn has(&self, rank: usize) -> bool {
        self.bufs.get(&rank).is_some_and(|w| !w.is_empty())
    }

    /// Send all packed buffers and collect this rank's incoming buffers,
    /// sorted by source rank (deterministic iteration order).
    pub fn finish(self) -> Vec<(usize, MsgReader)> {
        let comm = self.comm;
        let n = comm.nranks();
        let tag = comm.next_coll_tag();

        // Count messages per destination and resolve expected arrivals.
        let mut counts = vec![0u64; n];
        let mut local: Option<MsgReader> = None;
        let mut to_send = Vec::new();
        for (dest, w) in self.bufs {
            if w.is_empty() {
                continue;
            }
            if dest == comm.rank() {
                local = Some(MsgReader::new(w.finish()));
            } else {
                counts[dest] += 1;
                to_send.push((dest, w.finish()));
            }
        }
        let expected = comm.allreduce_sum_u64_vec(&counts)[comm.rank()];

        for (dest, data) in to_send {
            comm.send_raw(dest, tag, data);
        }

        let mut received: Vec<(usize, MsgReader)> = Vec::with_capacity(expected as usize + 1);
        for _ in 0..expected {
            let (from, data) = comm.recv_raw(None, tag);
            received.push((from, MsgReader::new(data)));
        }
        if let Some(r) = local {
            received.push((comm.rank(), r));
        }
        received.sort_by_key(|(from, _)| *from);
        received
    }
}

/// One-shot helper: send `outgoing[rank] = bytes` and receive the peers'
/// buffers. Empty buffers are not transmitted.
pub fn exchange_bytes(comm: &Comm, outgoing: FxHashMap<usize, Vec<u8>>) -> Vec<(usize, Vec<u8>)> {
    let mut ex = Exchange::new(comm);
    for (dest, data) in outgoing {
        if !data.is_empty() {
            ex.to(dest).put_bytes(&data);
        }
    }
    ex.finish()
        .into_iter()
        .map(|(from, mut r)| (from, r.get_bytes()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::execute;

    #[test]
    fn all_to_all_ring() {
        let n = 6;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            ex.to(next).put_u32(c.rank() as u32);
            ex.to(prev).put_u32(c.rank() as u32 + 100);
            let got = ex.finish();
            assert_eq!(got.len(), 2);
            for (from, mut r) in got {
                let v = r.get_u32();
                if from == prev {
                    assert_eq!(v, prev as u32);
                } else {
                    assert_eq!(from, next);
                    assert_eq!(v, next as u32 + 100);
                }
            }
        });
    }

    #[test]
    fn empty_exchange_terminates() {
        execute(5, |c| {
            let ex = Exchange::new(c);
            assert!(ex.finish().is_empty());
        });
    }

    #[test]
    fn self_message_is_delivered() {
        execute(3, |c| {
            let mut ex = Exchange::new(c);
            ex.to(c.rank()).put_u64(42);
            let got = ex.finish();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, c.rank());
        });
    }

    #[test]
    fn fan_in_sorted_by_source() {
        let n = 8;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            if c.rank() != 0 {
                ex.to(0).put_u32(c.rank() as u32 * 2);
            }
            let got = ex.finish();
            if c.rank() == 0 {
                let sources: Vec<usize> = got.iter().map(|(f, _)| *f).collect();
                assert_eq!(sources, (1..n).collect::<Vec<_>>());
                for (from, r) in got {
                    let mut r = r;
                    assert_eq!(r.get_u32(), from as u32 * 2);
                }
            } else {
                assert!(got.is_empty());
            }
        });
    }

    #[test]
    fn successive_phases_do_not_cross() {
        execute(4, |c| {
            for phase in 0..5u32 {
                let mut ex = Exchange::new(c);
                for dest in 0..4 {
                    if dest != c.rank() {
                        ex.to(dest).put_u32(phase);
                    }
                }
                for (_, mut r) in ex.finish() {
                    assert_eq!(r.get_u32(), phase);
                }
            }
        });
    }

    #[test]
    fn exchange_bytes_helper() {
        execute(3, |c| {
            let mut out: FxHashMap<usize, Vec<u8>> = FxHashMap::default();
            out.insert((c.rank() + 1) % 3, vec![c.rank() as u8; 4]);
            out.insert(c.rank(), vec![]); // empty: dropped
            let got = exchange_bytes(c, out);
            assert_eq!(got.len(), 1);
            let (from, data) = &got[0];
            assert_eq!(*from, (c.rank() + 2) % 3);
            assert_eq!(data, &vec![*from as u8; 4]);
        });
    }
}
