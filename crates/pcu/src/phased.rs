//! Phased neighbour exchange — the PCU communication pattern PUMI's
//! distributed algorithms are written in (§II-D "message passing control:
//! message buffer management and message routing").
//!
//! A phase has three steps: pack data per destination rank, send everything,
//! then iterate over received buffers. Termination detection (how many
//! messages each rank should expect) is resolved with one vector sum-reduce
//! of per-destination message counts, keeping the exchange O(messages + N)
//! rather than O(N²).
//!
//! ```
//! use pumi_pcu::phased::Exchange;
//! let results = pumi_pcu::execute(4, |c| {
//!     let mut ex = Exchange::new(c);
//!     // every rank sends its rank number to rank 0
//!     if c.rank() != 0 {
//!         ex.to(0).put_u32(c.rank() as u32);
//!     }
//!     let received = ex.finish();
//!     received.len()
//! });
//! assert_eq!(results, vec![3, 0, 0, 0]);
//! ```

use crate::comm::Comm;
use crate::msg::{MsgReader, MsgWriter};
use pumi_util::FxHashMap;

/// A single phased exchange. Pack with [`Exchange::to`], complete with
/// [`Exchange::finish`].
pub struct Exchange<'c> {
    comm: &'c Comm,
    bufs: FxHashMap<usize, MsgWriter>,
}

impl<'c> Exchange<'c> {
    /// Begin an exchange phase on `comm`. All ranks of the world must
    /// participate (SPMD), even those with nothing to send.
    pub fn new(comm: &'c Comm) -> Exchange<'c> {
        Exchange {
            comm,
            bufs: FxHashMap::default(),
        }
    }

    /// The writer that packs data destined for `rank`. Packing to one's own
    /// rank is allowed — the buffer is delivered locally.
    pub fn to(&mut self, rank: usize) -> &mut MsgWriter {
        assert!(rank < self.comm.nranks(), "destination {rank} out of range");
        self.bufs.entry(rank).or_default()
    }

    /// Whether anything has been packed for `rank`.
    pub fn has(&self, rank: usize) -> bool {
        self.bufs.get(&rank).is_some_and(|w| !w.is_empty())
    }

    /// Send all packed buffers and collect this rank's incoming buffers as a
    /// [`Received`], sorted by source rank (deterministic iteration order).
    pub fn finish(self) -> Received {
        let _span = pumi_obs::span!("pcu.exchange");
        let comm = self.comm;
        let n = comm.nranks();
        let tag = comm.next_coll_tag();

        // Count messages per destination and resolve expected arrivals.
        let mut counts = vec![0u64; n];
        let mut local: Option<MsgReader> = None;
        let mut to_send = Vec::new();
        for (dest, w) in self.bufs {
            if w.is_empty() {
                continue;
            }
            if dest == comm.rank() {
                // Local delivery bypasses the wire; meter it as a self-loop
                // so per-phase traffic still accounts for the pack volume.
                pumi_obs::metrics::record_traffic(
                    pumi_obs::metrics::Link::SelfLoop,
                    w.len() as u64,
                );
                local = Some(MsgReader::new(w.finish()));
            } else {
                counts[dest] += 1;
                to_send.push((dest, w.finish()));
            }
        }
        let expected = comm.allreduce_sum_u64_vec(&counts)[comm.rank()];

        for (dest, data) in to_send {
            comm.send_raw(dest, tag, data);
        }

        let mut msgs: Vec<(usize, MsgReader)> = Vec::with_capacity(expected as usize + 1);
        let mut total_bytes = 0u64;
        for _ in 0..expected {
            let (from, data) = comm.recv_raw(None, tag);
            total_bytes += data.len() as u64;
            msgs.push((from, MsgReader::new(data)));
        }
        if let Some(r) = local {
            total_bytes += r.remaining() as u64;
            msgs.push((comm.rank(), r));
        }
        msgs.sort_by_key(|(from, _)| *from);
        Received { msgs, total_bytes }
    }
}

/// The incoming side of a completed exchange: one [`MsgReader`] per source
/// rank that sent to us, sorted by source (iteration is deterministic).
///
/// Iterate it like the `Vec` it replaces — `for (from, mut r) in received` —
/// or address a specific source with [`Received::from`].
#[derive(Debug, Default)]
pub struct Received {
    /// `(source rank, reader)`, sorted by source; at most one per source.
    msgs: Vec<(usize, MsgReader)>,
    total_bytes: u64,
}

impl Received {
    /// Number of buffers received.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing was received.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total payload bytes received (including local self-delivery).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The source ranks that sent to us, ascending.
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        self.msgs.iter().map(|(from, _)| *from)
    }

    /// The buffer sent by `rank`, if any.
    pub fn from(&self, rank: usize) -> Option<&MsgReader> {
        self.msgs
            .binary_search_by_key(&rank, |(from, _)| *from)
            .ok()
            .map(|i| &self.msgs[i].1)
    }

    /// The buffer sent by `rank`, mutably (readers consume as they read).
    pub fn from_mut(&mut self, rank: usize) -> Option<&mut MsgReader> {
        self.msgs
            .binary_search_by_key(&rank, |(from, _)| *from)
            .ok()
            .map(|i| &mut self.msgs[i].1)
    }

    /// Iterate `(source, reader)` pairs in source order.
    pub fn iter(&self) -> std::slice::Iter<'_, (usize, MsgReader)> {
        self.msgs.iter()
    }

    /// Iterate `(source, reader)` pairs mutably, in source order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, (usize, MsgReader)> {
        self.msgs.iter_mut()
    }
}

impl IntoIterator for Received {
    type Item = (usize, MsgReader);
    type IntoIter = std::vec::IntoIter<(usize, MsgReader)>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Received {
    type Item = &'a (usize, MsgReader);
    type IntoIter = std::slice::Iter<'a, (usize, MsgReader)>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

/// One-shot helper: send `outgoing[rank] = bytes` and receive the peers'
/// buffers. Empty buffers are not transmitted.
pub fn exchange_bytes(comm: &Comm, outgoing: FxHashMap<usize, Vec<u8>>) -> Vec<(usize, Vec<u8>)> {
    let mut ex = Exchange::new(comm);
    for (dest, data) in outgoing {
        if !data.is_empty() {
            ex.to(dest).put_bytes(&data);
        }
    }
    ex.finish()
        .into_iter()
        .map(|(from, mut r)| (from, r.get_bytes()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::execute;

    #[test]
    fn all_to_all_ring() {
        let n = 6;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            ex.to(next).put_u32(c.rank() as u32);
            ex.to(prev).put_u32(c.rank() as u32 + 100);
            let got = ex.finish();
            assert_eq!(got.len(), 2);
            for (from, mut r) in got {
                let v = r.get_u32();
                if from == prev {
                    assert_eq!(v, prev as u32);
                } else {
                    assert_eq!(from, next);
                    assert_eq!(v, next as u32 + 100);
                }
            }
        });
    }

    #[test]
    fn empty_exchange_terminates() {
        execute(5, |c| {
            let ex = Exchange::new(c);
            let got = ex.finish();
            assert!(got.is_empty());
            assert_eq!(got.total_bytes(), 0);
        });
    }

    /// A world where every exchange is silent for several successive phases:
    /// termination detection must not carry state across phases.
    #[test]
    fn repeated_silent_phases_terminate() {
        execute(4, |c| {
            for _ in 0..4 {
                let got = Exchange::new(c).finish();
                assert!(got.is_empty());
                assert!(got.sources().next().is_none());
                assert!(got.from(0).is_none());
            }
        });
    }

    #[test]
    fn self_message_is_delivered() {
        execute(3, |c| {
            let mut ex = Exchange::new(c);
            ex.to(c.rank()).put_u64(42);
            let got = ex.finish();
            assert_eq!(got.len(), 1);
            assert_eq!(got.sources().collect::<Vec<_>>(), vec![c.rank()]);
        });
    }

    /// Every rank sends only to itself: no wire traffic at all, yet each
    /// rank must see exactly its own buffer with its payload intact.
    #[test]
    fn self_send_only_world() {
        let n = 4;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            ex.to(c.rank()).put_u32(c.rank() as u32);
            ex.to(c.rank()).put_f64_slice(&[1.5; 3]);
            let mut got = ex.finish();
            assert_eq!(got.len(), 1);
            assert_eq!(got.total_bytes(), 4 + 4 + 3 * 8);
            for other in 0..n {
                assert_eq!(got.from(other).is_some(), other == c.rank());
            }
            let r = got.from_mut(c.rank()).unwrap();
            assert_eq!(r.get_u32(), c.rank() as u32);
            assert_eq!(r.get_f64_slice(), vec![1.5; 3]);
            assert!(r.is_done());
        });
    }

    #[test]
    fn fan_in_sorted_by_source() {
        let n = 8;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            if c.rank() != 0 {
                ex.to(0).put_u32(c.rank() as u32 * 2);
            }
            let got = ex.finish();
            if c.rank() == 0 {
                let sources: Vec<usize> = got.sources().collect();
                assert_eq!(sources, (1..n).collect::<Vec<_>>());
                for (from, r) in got {
                    let mut r = r;
                    assert_eq!(r.get_u32(), from as u32 * 2);
                }
            } else {
                assert!(got.is_empty());
            }
        });
    }

    /// Received::from addresses sources without consuming the others.
    #[test]
    fn received_addressing_by_source() {
        let n = 5;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            if c.rank() != 2 {
                ex.to(2).put_u32(c.rank() as u32 + 7);
            }
            let mut got = ex.finish();
            if c.rank() == 2 {
                assert_eq!(got.len(), n - 1);
                // Read an arbitrary subset, out of order.
                assert_eq!(got.from_mut(3).unwrap().get_u32(), 10);
                assert_eq!(got.from_mut(0).unwrap().get_u32(), 7);
                assert!(got.from(2).is_none(), "rank 2 sent nothing to itself");
                // Untouched sources remain readable via iteration.
                for (from, r) in got.iter_mut() {
                    if *from != 3 && *from != 0 {
                        assert_eq!(r.get_u32(), *from as u32 + 7);
                    }
                }
            }
        });
    }

    #[test]
    fn successive_phases_do_not_cross() {
        execute(4, |c| {
            for phase in 0..5u32 {
                let mut ex = Exchange::new(c);
                for dest in 0..4 {
                    if dest != c.rank() {
                        ex.to(dest).put_u32(phase);
                    }
                }
                for (_, mut r) in ex.finish() {
                    assert_eq!(r.get_u32(), phase);
                }
            }
        });
    }

    #[test]
    fn exchange_bytes_helper() {
        execute(3, |c| {
            let mut out: FxHashMap<usize, Vec<u8>> = FxHashMap::default();
            out.insert((c.rank() + 1) % 3, vec![c.rank() as u8; 4]);
            out.insert(c.rank(), vec![]); // empty: dropped
            let got = exchange_bytes(c, out);
            assert_eq!(got.len(), 1);
            let (from, data) = &got[0];
            assert_eq!(*from, (c.rank() + 2) % 3);
            assert_eq!(data, &vec![*from as u8; 4]);
        });
    }
}
