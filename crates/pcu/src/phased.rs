//! Phased neighbour exchange — the PCU communication pattern PUMI's
//! distributed algorithms are written in (§II-D "message passing control:
//! message buffer management and message routing").
//!
//! A phase has three steps: pack data per destination rank, send everything,
//! then iterate over received buffers. Termination is sparse: the simulated
//! transport enqueues sends synchronously, so one shared-memory consensus
//! barrier after the sends proves every buffer of the phase has reached its
//! destination's mailbox — the exchange costs O(messages) plus one barrier,
//! with no dense per-destination count reduction and no control envelopes
//! at all. Each destination receives at most one framed buffer per phase
//! (the per-destination writer), so a phase costs at most one mailbox
//! wakeup per link.
//!
//! Off-node routing is selectable per exchange ([`ExchangeOpts`]):
//! [`RouteMode::Direct`] sends every buffer straight to its destination;
//! [`RouteMode::TwoLevel`] funnels off-node buffers through node leaders,
//! which coalesce all traffic for a remote node into one super-message and
//! re-deliver the pieces over shared-memory links on arrival — bounding
//! off-node envelopes per phase by nodes² (the paper's architecture-aware
//! message routing, §II-D).
//!
//! ```
//! use pumi_pcu::phased::Exchange;
//! let results = pumi_pcu::execute(4, |c| {
//!     let mut ex = Exchange::new(c);
//!     // every rank sends its rank number to rank 0
//!     if c.rank() != 0 {
//!         ex.to(0).put_u32(c.rank() as u32);
//!     }
//!     let received = ex.finish();
//!     received.len()
//! });
//! assert_eq!(results, vec![3, 0, 0, 0]);
//! ```

use crate::comm::Comm;
use crate::machine::LinkClass;
use crate::msg::{put_relay_frame, take_relay_frame, MsgReader, MsgWriter};
use crate::sched::{ChaosRng, SchedMode};
use bytes::Bytes;
use pumi_obs::metrics::Link;
use pumi_util::FxHashMap;
use std::sync::OnceLock;

/// How [`Exchange::finish`] routes buffers whose destination lives on a
/// different node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Every buffer travels straight to its destination rank: at worst
    /// O(ranks²) off-node envelopes per phase.
    #[default]
    Direct,
    /// Node-aware two-level routing: off-node buffers funnel through the
    /// sender's node leader, which coalesces everything bound for a given
    /// remote node into one framed super-message to that node's leader; the
    /// receiving leader re-delivers the sub-buffers over shared-memory
    /// links. Off-node envelopes per phase are bounded by nodes².
    TwoLevel,
}

impl RouteMode {
    /// The process-wide default, read once from the `PUMI_PCU_ROUTE`
    /// environment variable (`two-level` selects aggregation; anything else,
    /// or unset, selects direct routing).
    pub fn from_env() -> RouteMode {
        static MODE: OnceLock<RouteMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("PUMI_PCU_ROUTE").as_deref() {
            Ok("two-level") | Ok("twolevel") | Ok("two_level") => RouteMode::TwoLevel,
            _ => RouteMode::Direct,
        })
    }
}

/// Per-exchange knobs. [`Default`] honours `PUMI_PCU_ROUTE` and the world's
/// scheduler, so whole runs can be A/B-ed between routing strategies and
/// chaos seeds without code changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOpts {
    /// Off-node routing strategy. Must be SPMD-uniform: all ranks of one
    /// exchange phase must use the same mode.
    pub route: RouteMode,
    /// Frame-delivery scheduling override; `None` inherits the world's mode
    /// (set by `PUMI_PCU_SCHED` or `execute_chaos`). Must be SPMD-uniform.
    pub sched: Option<SchedMode>,
}

impl Default for ExchangeOpts {
    fn default() -> ExchangeOpts {
        ExchangeOpts {
            route: RouteMode::from_env(),
            sched: None,
        }
    }
}

impl ExchangeOpts {
    /// Direct rank-to-rank routing.
    pub fn direct() -> ExchangeOpts {
        ExchangeOpts {
            route: RouteMode::Direct,
            ..ExchangeOpts::default()
        }
    }

    /// Node-aware two-level routing.
    pub fn two_level() -> ExchangeOpts {
        ExchangeOpts {
            route: RouteMode::TwoLevel,
            ..ExchangeOpts::default()
        }
    }

    /// Override the scheduling mode for this exchange. Tests that assert on
    /// delivery *order* pin `SchedMode::Deterministic` here so they stay
    /// meaningful when the whole suite runs under a chaos seed.
    pub fn with_sched(mut self, sched: SchedMode) -> ExchangeOpts {
        self.sched = Some(sched);
        self
    }
}

/// A single phased exchange. Pack with [`Exchange::to`], complete with
/// [`Exchange::finish`].
pub struct Exchange<'c> {
    comm: &'c Comm,
    bufs: FxHashMap<usize, MsgWriter>,
    opts: ExchangeOpts,
}

impl<'c> Exchange<'c> {
    /// Begin an exchange phase on `comm` with the default (environment-
    /// selected) routing. All ranks of the world must participate (SPMD),
    /// even those with nothing to send.
    pub fn new(comm: &'c Comm) -> Exchange<'c> {
        Exchange::with_opts(comm, ExchangeOpts::default())
    }

    /// Begin an exchange phase with explicit options.
    pub fn with_opts(comm: &'c Comm, opts: ExchangeOpts) -> Exchange<'c> {
        Exchange {
            comm,
            bufs: FxHashMap::default(),
            opts,
        }
    }

    /// The writer that packs data destined for `rank`. Packing to one's own
    /// rank is allowed — the buffer is delivered locally. Writers are seeded
    /// from the thread-local buffer pool, so steady-state phase loops reuse
    /// the capacity of already-consumed messages.
    pub fn to(&mut self, rank: usize) -> &mut MsgWriter {
        assert!(rank < self.comm.nranks(), "destination {rank} out of range");
        self.bufs.entry(rank).or_insert_with(MsgWriter::pooled)
    }

    /// Whether anything has been packed for `rank`.
    pub fn has(&self, rank: usize) -> bool {
        self.bufs.get(&rank).is_some_and(|w| !w.is_empty())
    }

    /// Send all packed buffers and collect this rank's incoming buffers as a
    /// [`Received`]. Under the deterministic scheduler the buffers come out
    /// sorted by source rank; under [`SchedMode::Chaos`] they come out in a
    /// seeded permutation (consumers must not depend on order).
    pub fn finish(self) -> Received {
        let _span = pumi_obs::span!("pcu.exchange");
        let comm = self.comm;
        // A one-node machine has no off-node links to aggregate; the
        // downgrade is machine-derived, hence still SPMD-uniform.
        let two_level = self.opts.route == RouteMode::TwoLevel && comm.machine().nodes > 1;

        // Two independent generators per chaos phase: `wire` perturbs
        // in-flight orderings (send order, relay bundle processing) and its
        // draw count depends on the route; `merge` permutes only the final
        // merged list, so the delivered permutation is a pure function of
        // (seed, phase, rank) and routing equivalence still holds.
        let phase = comm.exchange_seq.get();
        comm.exchange_seq.set(phase.wrapping_add(1));
        let (mut wire, mut merge) = match self.opts.sched.unwrap_or_else(|| comm.sched()) {
            SchedMode::Chaos(seed) => (
                Some(ChaosRng::for_phase(seed, phase, comm.rank())),
                Some(ChaosRng::for_phase(seed ^ 0xC0A1_E5CE, phase, comm.rank())),
            ),
            SchedMode::Deterministic => (None, None),
        };

        // Canonical send order first (the buffer map iterates in hash
        // order), then a seeded shuffle of it under chaos.
        let mut bufs: Vec<(usize, MsgWriter)> = self.bufs.into_iter().collect();
        bufs.sort_unstable_by_key(|&(dest, _)| dest);
        if let Some(rng) = wire.as_mut() {
            rng.shuffle(&mut bufs);
        }

        let (mut msgs, total_bytes) = if two_level {
            finish_two_level(comm, bufs, wire.as_mut())
        } else {
            finish_direct(comm, bufs, wire.as_mut())
        };
        // Sorted merge: transport arrival order is timing-dependent, so the
        // canonical order is by source (at most one buffer per source).
        msgs.sort_by_key(|(from, _)| *from);
        if let Some(rng) = merge.as_mut() {
            rng.shuffle(&mut msgs);
        }
        Received { msgs, total_bytes }
    }
}

/// Fold one received logical frame into the obs digest sink: an FNV-style
/// hash of (origin rank, payload bytes), attributed to the origin→receiver
/// link class. Routing-invariant — relayed frames hash identically to
/// direct ones — so digest rows can be compared across routes and chaos
/// seeds. The fold consumes 8-byte words per multiply (with the length
/// mixed in to disambiguate tail padding): a pure function of the same
/// inputs as byte-at-a-time FNV-1a, at an eighth of the dependent-multiply
/// chain — fingerprinting is on every frame of every exchange, so it must
/// not dominate the phase.
fn digest_frame(comm: &Comm, from: usize, data: &[u8]) {
    if !pumi_obs::metrics::enabled() {
        return;
    }
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let mut tail = (data.len() as u64) << 56;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    h = (h ^ tail).wrapping_mul(PRIME);
    let link = if from == comm.rank() {
        Link::SelfLoop
    } else {
        comm.link_to(from).to_obs()
    };
    pumi_obs::metrics::record_frame_digest(link, h);
}

/// Direct routing: send each buffer to its destination, then run the
/// termination consensus and collect arrivals.
fn finish_direct(
    comm: &Comm,
    bufs: Vec<(usize, MsgWriter)>,
    mut chaos: Option<&mut ChaosRng>,
) -> (Vec<(usize, MsgReader)>, u64) {
    let tag = comm.next_coll_tag();
    let mut local: Option<MsgReader> = None;
    for (dest, w) in bufs {
        if w.is_empty() {
            w.recycle();
        } else if dest == comm.rank() {
            // Local delivery bypasses the wire; meter it as a self-loop so
            // per-phase traffic still accounts for the pack volume.
            pumi_obs::metrics::record_traffic(Link::SelfLoop, w.len() as u64);
            let data = w.finish();
            digest_frame(comm, comm.rank(), &data);
            local = Some(MsgReader::new(data));
        } else {
            comm.send_raw(dest, tag, w.finish());
        }
        if let Some(rng) = chaos.as_mut() {
            rng.maybe_yield();
        }
    }
    // Termination consensus: mailbox pushes enqueue synchronously, and the
    // barrier completes on a rank only once every rank has entered it — so
    // by then every buffer of this phase sits in its destination's mailbox
    // or stash. One shared-memory barrier replaces a dense per-destination
    // count reduction, and carries no control envelopes of its own.
    comm.barrier();
    comm.drain_wire();
    let mut total_bytes = 0u64;
    let mut msgs: Vec<(usize, MsgReader)> = Vec::new();
    for (from, data) in comm.take_tag(tag) {
        total_bytes += data.len() as u64;
        digest_frame(comm, from, &data);
        msgs.push((from, MsgReader::new(data)));
    }
    if let Some(r) = local {
        total_bytes += r.remaining() as u64;
        msgs.push((comm.rank(), r));
    }
    (msgs, total_bytes)
}

/// Two-level routing: on-node buffers go direct; off-node buffers ride
/// relay frames through node leaders (see DESIGN.md "Two-level message
/// routing"). Three fences — node, world, node — make each relay hop's
/// traffic quiescent before it is consumed.
fn finish_two_level(
    comm: &Comm,
    bufs: Vec<(usize, MsgWriter)>,
    mut chaos: Option<&mut ChaosRng>,
) -> (Vec<(usize, MsgReader)>, u64) {
    let tag_data = comm.next_coll_tag();
    let tag_up = comm.next_coll_tag();
    let tag_super = comm.next_coll_tag();
    let machine = comm.machine();
    let me = comm.rank();
    let leader = machine.leader_of(machine.node_of(me));
    let is_leader = me == leader;

    let mut local: Option<MsgReader> = None;
    // Off-node sub-buffers awaiting relay, as (dest, origin, payload).
    let mut staged: Vec<(u32, u32, Bytes)> = Vec::new();
    let mut uplink: Option<MsgWriter> = None;
    for (dest, w) in bufs {
        if w.is_empty() {
            w.recycle();
            continue;
        }
        if let Some(rng) = chaos.as_mut() {
            rng.maybe_yield();
        }
        match comm.link_to(dest) {
            LinkClass::SelfLoop => {
                pumi_obs::metrics::record_traffic(Link::SelfLoop, w.len() as u64);
                let data = w.finish();
                digest_frame(comm, me, &data);
                local = Some(MsgReader::new(data));
            }
            // Shared-memory links are exactly what aggregation is meant to
            // spare: on-node buffers go direct.
            LinkClass::OnNode => comm.send_raw(dest, tag_data, w.finish()),
            LinkClass::OffNode => {
                // Record the logical rank-to-rank message at the exchange
                // span path, exactly as direct routing would; the physical
                // relay envelopes are metered under the nested relay span.
                pumi_obs::metrics::record_traffic(Link::OffNode, w.len() as u64);
                let data = w.finish();
                if is_leader {
                    staged.push((dest as u32, me as u32, data));
                } else {
                    let up = uplink.get_or_insert_with(MsgWriter::pooled);
                    put_relay_frame(up, dest as u32, me as u32, &data);
                }
            }
        }
    }
    if let Some(up) = uplink {
        let _relay = pumi_obs::span!(pumi_obs::metrics::RELAY_SPAN);
        comm.send_raw(leader, tag_up, up.finish());
    }
    // Fence 1 (on-node): after it, every uplink bundle of this node is in
    // its leader's channel or mailbox.
    comm.node_barrier();
    if is_leader {
        comm.drain_wire();
        // Under chaos, process uplink bundles in a shuffled order; the
        // staged list is re-sorted below, so super-message bytes stay
        // canonical regardless.
        let mut bundles: Vec<(usize, Bytes)> = comm.take_tag(tag_up).into_iter().collect();
        if let Some(rng) = chaos.as_mut() {
            rng.shuffle(&mut bundles);
        }
        for (_, bundle) in bundles {
            let mut r = MsgReader::new(bundle);
            while !r.is_done() {
                let (dest, origin, payload) = take_relay_frame(&mut r)
                    .unwrap_or_else(|e| panic!("corrupt relay uplink frame: {e}"));
                staged.push((dest, origin, payload));
            }
        }
        // One super-message per destination node, sub-frames ordered by
        // (dest, origin); payloads are zero-copy slices of the uplink
        // bundles, so regrouping copies each byte exactly once.
        staged.sort_unstable_by_key(|&(dest, origin, _)| (dest, origin));
        let mut supers: Vec<(usize, MsgWriter)> = Vec::new();
        for (dest, origin, payload) in &staged {
            let node = machine.node_of(*dest as usize);
            match supers.last_mut() {
                Some((n, w)) if *n == node => put_relay_frame(w, *dest, *origin, payload),
                _ => {
                    let mut w = MsgWriter::pooled();
                    put_relay_frame(&mut w, *dest, *origin, payload);
                    supers.push((node, w));
                }
            }
        }
        drop(staged);
        // Chaos interleaving: supers leave in shuffled order (the frames
        // inside each are already canonically ordered).
        if let Some(rng) = chaos.as_mut() {
            rng.shuffle(&mut supers);
        }
        let _relay = pumi_obs::span!(pumi_obs::metrics::RELAY_SPAN);
        for (node, w) in supers {
            comm.send_raw(machine.leader_of(node), tag_super, w.finish());
            if let Some(rng) = chaos.as_mut() {
                rng.maybe_yield();
            }
        }
    }
    // Fence 2 (world): all super-messages have reached their destination
    // leaders. This is also the phase's termination consensus, exactly as
    // in direct routing.
    comm.barrier();
    let mut total_bytes = 0u64;
    let mut msgs: Vec<(usize, MsgReader)> = Vec::new();
    if is_leader {
        comm.drain_wire();
        let mut bundles: Vec<(usize, Bytes)> = comm.take_tag(tag_super).into_iter().collect();
        if let Some(rng) = chaos.as_mut() {
            rng.shuffle(&mut bundles);
        }
        // Re-delivered sub-buffers are pushed quietly and each destination
        // is woken once after all bundles are unpacked: one wakeup per
        // on-node link for the whole phase, however many origins relayed
        // through this leader.
        let mut pending_notify: Vec<usize> = Vec::new();
        for (_, bundle) in bundles {
            let mut r = MsgReader::new(bundle);
            while !r.is_done() {
                let (dest, origin, payload) = take_relay_frame(&mut r)
                    .unwrap_or_else(|e| panic!("corrupt relay super-frame: {e}"));
                if dest as usize == me {
                    total_bytes += payload.len() as u64;
                    digest_frame(comm, origin as usize, &payload);
                    msgs.push((origin as usize, MsgReader::new(payload)));
                } else {
                    // Re-deliver on-node with the envelope showing the true
                    // origin; the payload is a zero-copy slice of the
                    // super-message.
                    let _relay = pumi_obs::span!(pumi_obs::metrics::RELAY_SPAN);
                    comm.forward_raw_quiet(origin as usize, dest as usize, tag_data, payload);
                    if !pending_notify.contains(&(dest as usize)) {
                        pending_notify.push(dest as usize);
                    }
                }
            }
        }
        for dest in pending_notify {
            comm.notify(dest);
        }
    }
    // Fence 3 (on-node): forwarded sub-buffers have reached their final
    // destinations; tag_data is now quiescent everywhere.
    comm.node_barrier();
    comm.drain_wire();
    for (from, data) in comm.take_tag(tag_data) {
        total_bytes += data.len() as u64;
        digest_frame(comm, from, &data);
        msgs.push((from, MsgReader::new(data)));
    }
    if let Some(r) = local {
        total_bytes += r.remaining() as u64;
        msgs.push((me, r));
    }
    (msgs, total_bytes)
}

/// The incoming side of a completed exchange: one [`MsgReader`] per source
/// rank that sent to us. Under the deterministic scheduler the buffers are
/// sorted by source; under [`SchedMode::Chaos`] they are a seeded
/// permutation of the same set — consumers must not rely on order.
///
/// Iterate it like the `Vec` it replaces — `for (from, mut r) in received` —
/// or address a specific source with [`Received::from`].
#[derive(Debug, Default)]
pub struct Received {
    /// `(source rank, reader)`; at most one per source.
    msgs: Vec<(usize, MsgReader)>,
    total_bytes: u64,
}

impl Received {
    /// Number of buffers received.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing was received.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total payload bytes received (including local self-delivery).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The source ranks that sent to us, in delivery order (ascending under
    /// the deterministic scheduler).
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        self.msgs.iter().map(|(from, _)| *from)
    }

    /// The buffer sent by `rank`, if any. Linear scan: delivery order is a
    /// permutation under the chaos scheduler, and source counts are small.
    pub fn from(&self, rank: usize) -> Option<&MsgReader> {
        self.msgs
            .iter()
            .position(|&(from, _)| from == rank)
            .map(|i| &self.msgs[i].1)
    }

    /// The buffer sent by `rank`, mutably (readers consume as they read).
    pub fn from_mut(&mut self, rank: usize) -> Option<&mut MsgReader> {
        self.msgs
            .iter()
            .position(|&(from, _)| from == rank)
            .map(|i| &mut self.msgs[i].1)
    }

    /// Iterate `(source, reader)` pairs in delivery order.
    pub fn iter(&self) -> std::slice::Iter<'_, (usize, MsgReader)> {
        self.msgs.iter()
    }

    /// Iterate `(source, reader)` pairs mutably, in delivery order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, (usize, MsgReader)> {
        self.msgs.iter_mut()
    }
}

impl IntoIterator for Received {
    type Item = (usize, MsgReader);
    type IntoIter = std::vec::IntoIter<(usize, MsgReader)>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Received {
    type Item = &'a (usize, MsgReader);
    type IntoIter = std::slice::Iter<'a, (usize, MsgReader)>;

    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

/// One-shot helper: send `outgoing[rank] = bytes` and receive the peers'
/// buffers. Empty buffers are not transmitted.
pub fn exchange_bytes(comm: &Comm, outgoing: FxHashMap<usize, Vec<u8>>) -> Vec<(usize, Vec<u8>)> {
    let mut ex = Exchange::new(comm);
    for (dest, data) in outgoing {
        if !data.is_empty() {
            ex.to(dest).put_bytes(&data);
        }
    }
    ex.finish()
        .into_iter()
        .map(|(from, mut r)| (from, r.get_bytes()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::execute;

    #[test]
    fn all_to_all_ring() {
        let n = 6;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            ex.to(next).put_u32(c.rank() as u32);
            ex.to(prev).put_u32(c.rank() as u32 + 100);
            let got = ex.finish();
            assert_eq!(got.len(), 2);
            for (from, mut r) in got {
                let v = r.get_u32();
                if from == prev {
                    assert_eq!(v, prev as u32);
                } else {
                    assert_eq!(from, next);
                    assert_eq!(v, next as u32 + 100);
                }
            }
        });
    }

    #[test]
    fn empty_exchange_terminates() {
        execute(5, |c| {
            let ex = Exchange::new(c);
            let got = ex.finish();
            assert!(got.is_empty());
            assert_eq!(got.total_bytes(), 0);
        });
    }

    /// A world where every exchange is silent for several successive phases:
    /// termination detection must not carry state across phases.
    #[test]
    fn repeated_silent_phases_terminate() {
        execute(4, |c| {
            for _ in 0..4 {
                let got = Exchange::new(c).finish();
                assert!(got.is_empty());
                assert!(got.sources().next().is_none());
                assert!(got.from(0).is_none());
            }
        });
    }

    #[test]
    fn self_message_is_delivered() {
        execute(3, |c| {
            let mut ex = Exchange::new(c);
            ex.to(c.rank()).put_u64(42);
            let got = ex.finish();
            assert_eq!(got.len(), 1);
            assert_eq!(got.sources().collect::<Vec<_>>(), vec![c.rank()]);
        });
    }

    /// Every rank sends only to itself: no wire traffic at all, yet each
    /// rank must see exactly its own buffer with its payload intact.
    #[test]
    fn self_send_only_world() {
        let n = 4;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            ex.to(c.rank()).put_u32(c.rank() as u32);
            ex.to(c.rank()).put_f64_slice(&[1.5; 3]);
            let mut got = ex.finish();
            assert_eq!(got.len(), 1);
            assert_eq!(got.total_bytes(), 4 + 4 + 3 * 8);
            for other in 0..n {
                assert_eq!(got.from(other).is_some(), other == c.rank());
            }
            let r = got.from_mut(c.rank()).unwrap();
            assert_eq!(r.get_u32(), c.rank() as u32);
            assert_eq!(r.get_f64_slice(), vec![1.5; 3]);
            assert!(r.is_done());
        });
    }

    #[test]
    fn fan_in_sorted_by_source() {
        let n = 8;
        execute(n, |c| {
            // Pinned deterministic: this test asserts on delivery *order*,
            // which a chaos environment would legitimately permute.
            let mut ex = Exchange::with_opts(
                c,
                ExchangeOpts::default().with_sched(SchedMode::Deterministic),
            );
            if c.rank() != 0 {
                ex.to(0).put_u32(c.rank() as u32 * 2);
            }
            let got = ex.finish();
            if c.rank() == 0 {
                let sources: Vec<usize> = got.sources().collect();
                assert_eq!(sources, (1..n).collect::<Vec<_>>());
                for (from, r) in got {
                    let mut r = r;
                    assert_eq!(r.get_u32(), from as u32 * 2);
                }
            } else {
                assert!(got.is_empty());
            }
        });
    }

    /// Received::from addresses sources without consuming the others.
    #[test]
    fn received_addressing_by_source() {
        let n = 5;
        execute(n, |c| {
            let mut ex = Exchange::new(c);
            if c.rank() != 2 {
                ex.to(2).put_u32(c.rank() as u32 + 7);
            }
            let mut got = ex.finish();
            if c.rank() == 2 {
                assert_eq!(got.len(), n - 1);
                // Read an arbitrary subset, out of order.
                assert_eq!(got.from_mut(3).unwrap().get_u32(), 10);
                assert_eq!(got.from_mut(0).unwrap().get_u32(), 7);
                assert!(got.from(2).is_none(), "rank 2 sent nothing to itself");
                // Untouched sources remain readable via iteration.
                for (from, r) in got.iter_mut() {
                    if *from != 3 && *from != 0 {
                        assert_eq!(r.get_u32(), *from as u32 + 7);
                    }
                }
            }
        });
    }

    #[test]
    fn successive_phases_do_not_cross() {
        execute(4, |c| {
            for phase in 0..5u32 {
                let mut ex = Exchange::new(c);
                for dest in 0..4 {
                    if dest != c.rank() {
                        ex.to(dest).put_u32(phase);
                    }
                }
                for (_, mut r) in ex.finish() {
                    assert_eq!(r.get_u32(), phase);
                }
            }
        });
    }

    /// Two-level routing must be observationally identical to direct
    /// routing: same sources, same payload bytes, same totals.
    #[test]
    fn two_level_matches_direct() {
        use crate::comm::execute_on;
        use crate::machine::MachineModel;
        let m = MachineModel::new(3, 2);
        let run = |opts: ExchangeOpts| {
            execute_on(m, move |c| {
                let n = c.nranks();
                let mut ex = Exchange::with_opts(c, opts);
                // A sparse pattern with self-sends and uneven sizes.
                for k in [0usize, 1, 3] {
                    let dest = (c.rank() + k) % n;
                    let w = ex.to(dest);
                    w.put_u32((c.rank() * 100 + dest) as u32);
                    w.put_bytes(&vec![dest as u8; c.rank() + k]);
                }
                let got = ex.finish();
                let total = got.total_bytes();
                let flat: Vec<(usize, u32, Vec<u8>)> = got
                    .into_iter()
                    .map(|(from, mut r)| {
                        let tagv = r.get_u32();
                        let body = r.get_bytes();
                        assert!(r.is_done());
                        (from, tagv, body)
                    })
                    .collect();
                (total, flat)
            })
        };
        assert_eq!(run(ExchangeOpts::direct()), run(ExchangeOpts::two_level()));
    }

    /// Silent phases and leaders-only machines terminate under aggregation,
    /// and successive two-level phases do not cross.
    #[test]
    fn two_level_silent_phases_and_flat_nodes() {
        use crate::comm::execute_on;
        use crate::machine::MachineModel;
        for m in [MachineModel::new(4, 2), MachineModel::new(5, 1)] {
            execute_on(m, |c| {
                for phase in 0..4u32 {
                    let mut ex = Exchange::with_opts(c, ExchangeOpts::two_level());
                    if phase % 2 == 1 && c.rank() % 3 == 0 {
                        ex.to(c.rank()).put_u32(phase);
                        ex.to((c.rank() + c.nranks() - 1) % c.nranks())
                            .put_u32(phase);
                    }
                    for (_, mut r) in ex.finish() {
                        assert_eq!(r.get_u32(), phase);
                        assert!(r.is_done());
                    }
                }
            });
        }
    }

    /// Chaos delivers the same multiset of (source, payload) as the
    /// deterministic scheduler, for both routing modes — only the order may
    /// differ — and the same seed reproduces the same order exactly.
    #[test]
    fn chaos_preserves_payloads_and_reproduces_per_seed() {
        use crate::comm::execute_on_sched;
        use crate::machine::MachineModel;
        let m = MachineModel::new(3, 2);
        let run = |sched: SchedMode, route: ExchangeOpts| {
            execute_on_sched(m, sched, move |c| {
                let n = c.nranks();
                let mut per_phase = Vec::new();
                for phase in 0..3u32 {
                    let mut ex = Exchange::with_opts(c, route);
                    for k in [0usize, 1, 2, 4] {
                        let dest = (c.rank() + k + phase as usize) % n;
                        let w = ex.to(dest);
                        w.put_u32(phase * 1000 + (c.rank() * 10 + dest) as u32);
                        w.put_bytes(&vec![dest as u8; k + 1]);
                    }
                    let flat: Vec<(usize, u32, Vec<u8>)> = ex
                        .finish()
                        .into_iter()
                        .map(|(from, mut r)| (from, r.get_u32(), r.get_bytes()))
                        .collect();
                    per_phase.push(flat);
                }
                per_phase
            })
        };
        let base = run(SchedMode::Deterministic, ExchangeOpts::direct());
        for route in [ExchangeOpts::direct(), ExchangeOpts::two_level()] {
            for seed in [1u64, 7] {
                let chaotic = run(SchedMode::Chaos(seed), route);
                // Same seed, same route: bitwise-identical order.
                assert_eq!(chaotic, run(SchedMode::Chaos(seed), route));
                // Versus deterministic: same multiset per rank per phase.
                for (rank, phases) in chaotic.iter().enumerate() {
                    for (phase, flat) in phases.iter().enumerate() {
                        let mut got = flat.clone();
                        let mut want = base[rank][phase].clone();
                        got.sort();
                        want.sort();
                        assert_eq!(got, want, "rank {rank} phase {phase} seed {seed}");
                    }
                }
            }
        }
    }

    /// The chaos permutation actually perturbs order (otherwise the suite
    /// tests nothing): across a fan-in of 8 sources and several seeds, at
    /// least one delivery must differ from sorted order.
    #[test]
    fn chaos_actually_permutes() {
        use crate::comm::execute_chaos;
        let n = 8;
        let mut saw_unsorted = false;
        for seed in 1..=4u64 {
            let orders = execute_chaos(n, seed, |c| {
                let mut ex = Exchange::new(c);
                if c.rank() != 0 {
                    ex.to(0).put_u32(c.rank() as u32);
                }
                ex.finish().sources().collect::<Vec<_>>()
            });
            let sources = &orders[0];
            let mut sorted = sources.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (1..n).collect::<Vec<_>>());
            saw_unsorted |= *sources != sorted;
        }
        assert!(saw_unsorted, "chaos never permuted a fan-in of 7 sources");
    }

    #[test]
    fn exchange_bytes_helper() {
        execute(3, |c| {
            let mut out: FxHashMap<usize, Vec<u8>> = FxHashMap::default();
            out.insert((c.rank() + 1) % 3, vec![c.rank() as u8; 4]);
            out.insert(c.rank(), vec![]); // empty: dropped
            let got = exchange_bytes(c, out);
            assert_eq!(got.len(), 1);
            let (from, data) = &got[0];
            assert_eq!(*from, (c.rank() + 2) % 3);
            assert_eq!(data, &vec![*from as u8; 4]);
        });
    }
}
