//! Architecture awareness (§II-D).
//!
//! "Architecture awareness supports mapping each MPI process to the largest
//! hardware entity whose memory is shared (usually called a node) and each
//! thread to the smallest hardware entity capable of independent computation
//! (processing unit)." The paper obtains this from hwloc; here the machine is
//! described explicitly by a [`MachineModel`] — nodes × cores — and the
//! runtime uses it to classify every message as on-node or off-node and to
//! meter traffic per link class (Figs 5/6: on-node vs off-node part
//! boundaries).

use pumi_util::stats::Counter;

/// Classification of a communication link between two ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Both ranks on the same node: shared-memory path (dashed boundary in
    /// Fig 3).
    OnNode,
    /// Ranks on different nodes: network path (solid boundary in Fig 3).
    OffNode,
    /// A rank messaging itself (local pack/unpack only).
    SelfLoop,
}

impl LinkClass {
    /// The observability-layer mirror of this class (`pumi-obs` sits below
    /// the runtime and defines its own copy).
    pub fn to_obs(self) -> pumi_obs::metrics::Link {
        match self {
            LinkClass::OnNode => pumi_obs::metrics::Link::OnNode,
            LinkClass::OffNode => pumi_obs::metrics::Link::OffNode,
            LinkClass::SelfLoop => pumi_obs::metrics::Link::SelfLoop,
        }
    }
}

/// An explicit description of the machine: `nodes` × `cores_per_node`.
///
/// Ranks are laid out node-major: rank `r` lives on node `r / cores_per_node`,
/// core `r % cores_per_node` — the paper's mapping of processes to nodes and
/// threads to processing units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    /// Number of shared-memory nodes.
    pub nodes: usize,
    /// Processing units per node.
    pub cores_per_node: usize,
}

impl MachineModel {
    /// A machine with `nodes` nodes of `cores_per_node` cores each.
    pub fn new(nodes: usize, cores_per_node: usize) -> MachineModel {
        assert!(nodes > 0 && cores_per_node > 0);
        MachineModel {
            nodes,
            cores_per_node,
        }
    }

    /// A flat machine: every rank on its own node (pure-MPI view).
    pub fn flat(nranks: usize) -> MachineModel {
        MachineModel::new(nranks.max(1), 1)
    }

    /// Total rank slots.
    pub fn nranks(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// The core (processing unit) hosting `rank` within its node.
    pub fn core_of(&self, rank: usize) -> usize {
        rank % self.cores_per_node
    }

    /// Ranks co-located on `node`.
    pub fn ranks_on_node(&self, node: usize) -> std::ops::Range<usize> {
        node * self.cores_per_node..(node + 1) * self.cores_per_node
    }

    /// The node-leader rank of `node` (its lowest rank) — the relay
    /// endpoint for two-level message routing.
    pub fn leader_of(&self, node: usize) -> usize {
        node * self.cores_per_node
    }

    /// Whether `rank` is its node's leader.
    pub fn is_leader(&self, rank: usize) -> bool {
        self.core_of(rank) == 0
    }

    /// Classify the link between two ranks.
    pub fn link(&self, a: usize, b: usize) -> LinkClass {
        if a == b {
            LinkClass::SelfLoop
        } else if self.node_of(a) == self.node_of(b) {
            LinkClass::OnNode
        } else {
            LinkClass::OffNode
        }
    }
}

/// Shared traffic meters, one set per world. Cloning shares the counters.
#[derive(Debug, Clone, Default)]
pub struct TrafficCounters {
    /// Messages sent over on-node (shared-memory) links.
    pub on_node_msgs: Counter,
    /// Bytes over on-node links.
    pub on_node_bytes: Counter,
    /// Messages over off-node (network) links.
    pub off_node_msgs: Counter,
    /// Bytes over off-node links.
    pub off_node_bytes: Counter,
    /// Self-loop messages (no transport).
    pub self_msgs: Counter,
}

impl TrafficCounters {
    /// Record one message of `bytes` over the link class.
    pub fn record(&self, class: LinkClass, bytes: usize) {
        match class {
            LinkClass::OnNode => {
                self.on_node_msgs.add(1);
                self.on_node_bytes.add(bytes as u64);
            }
            LinkClass::OffNode => {
                self.off_node_msgs.add(1);
                self.off_node_bytes.add(bytes as u64);
            }
            LinkClass::SelfLoop => self.self_msgs.add(1),
        }
    }

    /// Snapshot the current totals.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            on_node_msgs: self.on_node_msgs.get(),
            on_node_bytes: self.on_node_bytes.get(),
            off_node_msgs: self.off_node_msgs.get(),
            off_node_bytes: self.off_node_bytes.get(),
            self_msgs: self.self_msgs.get(),
        }
    }

    /// Reset all meters to zero.
    pub fn reset(&self) {
        self.on_node_msgs.take();
        self.on_node_bytes.take();
        self.off_node_msgs.take();
        self.off_node_bytes.take();
        self.self_msgs.take();
    }
}

/// A snapshot of world traffic, printed by the architecture-aware benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficReport {
    /// Messages over shared-memory links.
    pub on_node_msgs: u64,
    /// Bytes over shared-memory links.
    pub on_node_bytes: u64,
    /// Messages over network links.
    pub off_node_msgs: u64,
    /// Bytes over network links.
    pub off_node_bytes: u64,
    /// Rank-to-self messages.
    pub self_msgs: u64,
}

impl TrafficReport {
    /// Total messages over real links (excludes self loops).
    pub fn total_msgs(&self) -> u64 {
        self.on_node_msgs + self.off_node_msgs
    }

    /// Total bytes over real links.
    pub fn total_bytes(&self) -> u64 {
        self.on_node_bytes + self.off_node_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_major_layout() {
        let m = MachineModel::new(4, 8);
        assert_eq!(m.nranks(), 32);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(7), 0);
        assert_eq!(m.node_of(8), 1);
        assert_eq!(m.core_of(9), 1);
        assert_eq!(m.ranks_on_node(2), 16..24);
    }

    #[test]
    fn link_classes() {
        let m = MachineModel::new(2, 4);
        assert_eq!(m.link(0, 0), LinkClass::SelfLoop);
        assert_eq!(m.link(0, 3), LinkClass::OnNode);
        assert_eq!(m.link(0, 4), LinkClass::OffNode);
        assert_eq!(m.link(7, 6), LinkClass::OnNode);
    }

    #[test]
    fn flat_machine_has_no_on_node_links() {
        let m = MachineModel::flat(5);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(m.link(a, b), LinkClass::OffNode);
                }
            }
        }
    }

    #[test]
    fn counters_accumulate_per_class() {
        let c = TrafficCounters::default();
        c.record(LinkClass::OnNode, 100);
        c.record(LinkClass::OnNode, 50);
        c.record(LinkClass::OffNode, 10);
        c.record(LinkClass::SelfLoop, 5);
        let r = c.report();
        assert_eq!(r.on_node_msgs, 2);
        assert_eq!(r.on_node_bytes, 150);
        assert_eq!(r.off_node_msgs, 1);
        assert_eq!(r.off_node_bytes, 10);
        assert_eq!(r.self_msgs, 1);
        assert_eq!(r.total_msgs(), 3);
        assert_eq!(r.total_bytes(), 160);
        c.reset();
        assert_eq!(c.report().total_bytes(), 0);
    }
}
