//! Cross-rank reduction of observability data.
//!
//! `pumi-obs` records spans and per-phase traffic thread-locally, one store
//! per rank; it has no communicator and cannot aggregate across the world.
//! This module is the bridge: collectives that drain every rank's local
//! store, gather to rank 0, and merge — giving the world view the paper's
//! tables are written in (max-over-ranks phase times, summed per-link
//! traffic).
//!
//! All functions here are **collective**: every rank of the world must call
//! them at the same point, and rank 0 gets `Some(..)`. They also work with
//! the `obs` feature off — every rank simply contributes empty stores.

use crate::comm::Comm;
use crate::msg::{MsgReader, MsgWriter};
use pumi_obs::json::Json;
use pumi_obs::metrics::Link;
use std::collections::BTreeMap;

/// One span path reduced across the world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldSpan {
    /// Slash-joined span path.
    pub path: String,
    /// Entries summed over all ranks.
    pub count: u64,
    /// Inclusive seconds summed over all ranks (CPU-time-like).
    pub total_seconds: f64,
    /// Largest single rank's inclusive seconds (wall-time-like; the
    /// critical-path view used for phase timings).
    pub max_rank_seconds: f64,
    /// Ranks that entered this span at least once.
    pub ranks: u32,
}

/// One `(phase, link class)` traffic cell reduced across the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldTraffic {
    /// Span path of the sending phase (`""` for unphased traffic).
    pub phase: String,
    /// Link classification.
    pub link: Link,
    /// Messages summed over all ranks.
    pub msgs: u64,
    /// Payload bytes summed over all ranks.
    pub bytes: u64,
}

/// Drain every rank's span aggregates and reduce them to rank 0, sorted by
/// path. Collective; `Some` on rank 0 only.
pub fn reduce_spans(comm: &Comm) -> Option<Vec<WorldSpan>> {
    let spans = pumi_obs::span::take();
    let mut w = MsgWriter::new();
    w.put_u32(spans.len() as u32);
    for (path, s) in &spans {
        w.put_bytes(path.as_bytes());
        w.put_u64(s.count);
        w.put_u64(s.nanos);
    }
    let gathered = comm.gather_bytes(0, w.finish())?;
    let mut agg: BTreeMap<String, WorldSpan> = BTreeMap::new();
    for b in gathered {
        let mut r = MsgReader::new(b);
        let n = r.get_u32();
        for _ in 0..n {
            let path = String::from_utf8(r.get_bytes()).expect("span paths are utf-8");
            let count = r.get_u64();
            let seconds = r.get_u64() as f64 * 1e-9;
            let e = agg.entry(path.clone()).or_insert_with(|| WorldSpan {
                path,
                count: 0,
                total_seconds: 0.0,
                max_rank_seconds: 0.0,
                ranks: 0,
            });
            e.count += count;
            e.total_seconds += seconds;
            e.max_rank_seconds = e.max_rank_seconds.max(seconds);
            e.ranks += 1;
        }
    }
    Some(agg.into_values().collect())
}

/// Drain every rank's per-phase traffic and reduce it to rank 0, sorted by
/// `(phase, link)`. Collective; `Some` on rank 0 only.
pub fn reduce_traffic(comm: &Comm) -> Option<Vec<WorldTraffic>> {
    let rows = pumi_obs::metrics::take_traffic();
    let mut w = MsgWriter::new();
    w.put_u32(rows.len() as u32);
    for row in &rows {
        w.put_bytes(row.phase.as_bytes());
        w.put_u8(link_code(row.link));
        w.put_u64(row.totals.msgs);
        w.put_u64(row.totals.bytes);
    }
    let gathered = comm.gather_bytes(0, w.finish())?;
    let mut agg: BTreeMap<(String, u8), WorldTraffic> = BTreeMap::new();
    for b in gathered {
        let mut r = MsgReader::new(b);
        let n = r.get_u32();
        for _ in 0..n {
            let phase = String::from_utf8(r.get_bytes()).expect("span paths are utf-8");
            let code = r.get_u8();
            let msgs = r.get_u64();
            let bytes = r.get_u64();
            let e = agg
                .entry((phase.clone(), code))
                .or_insert_with(|| WorldTraffic {
                    phase,
                    link: link_from_code(code),
                    msgs: 0,
                    bytes: 0,
                });
            e.msgs += msgs;
            e.bytes += bytes;
        }
    }
    Some(agg.into_values().collect())
}

fn link_code(link: Link) -> u8 {
    match link {
        Link::SelfLoop => 0,
        Link::OnNode => 1,
        Link::OffNode => 2,
    }
}

fn link_from_code(code: u8) -> Link {
    match code {
        0 => Link::SelfLoop,
        1 => Link::OnNode,
        2 => Link::OffNode,
        other => panic!("bad link code {other}"),
    }
}

/// Reduce spans and traffic and render both as the standard report
/// sections: `{"spans": [...], "traffic": [...]}`. Collective; `Some` on
/// rank 0 only. The typical bench pattern:
///
/// ```ignore
/// let out = execute(n, |c| {
///     run_workload(c);
///     pumi_pcu::obs::world_report(c)   // drain + reduce at the end
/// });
/// let obs = out.into_iter().flatten().next().unwrap();
/// ```
pub fn world_report(comm: &Comm) -> Option<Json> {
    let spans = reduce_spans(comm);
    let traffic = reduce_traffic(comm);
    let spans = spans?;
    let traffic = traffic.expect("rank 0 sees both reductions");
    Some(Json::obj([
        (
            "spans",
            Json::arr(spans.iter().map(|s| {
                Json::obj([
                    ("path", Json::str(&s.path)),
                    ("count", Json::U64(s.count)),
                    ("total_seconds", Json::F64(s.total_seconds)),
                    ("max_rank_seconds", Json::F64(s.max_rank_seconds)),
                    ("ranks", Json::U64(s.ranks as u64)),
                ])
            })),
        ),
        (
            "traffic",
            Json::arr(traffic.iter().map(|t| {
                Json::obj([
                    ("phase", Json::str(&t.phase)),
                    ("link", Json::str(t.link.name())),
                    ("msgs", Json::U64(t.msgs)),
                    ("bytes", Json::U64(t.bytes)),
                ])
            })),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{execute, execute_on};
    use crate::machine::MachineModel;

    #[test]
    fn silent_world_reduces_to_empty() {
        let out = execute(3, |c| {
            // Drain anything earlier tests on this thread left behind.
            let _ = pumi_obs::span::take();
            let _ = pumi_obs::metrics::take_traffic();
            let spans = reduce_spans(c);
            let traffic = reduce_traffic(c);
            (c.rank() == 0) == (spans.is_some() && traffic.is_some())
        });
        assert!(out.into_iter().all(|ok| ok));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn spans_reduce_with_max_and_sum() {
        let out = execute(4, |c| {
            let _ = pumi_obs::span::take();
            {
                let _g = pumi_obs::span!("work");
                std::thread::sleep(std::time::Duration::from_millis(1 + c.rank() as u64));
            }
            reduce_spans(c)
        });
        let spans = out.into_iter().flatten().next().unwrap();
        let row = spans.iter().find(|s| s.path == "work").unwrap();
        assert_eq!(row.count, 4);
        assert_eq!(row.ranks, 4);
        assert!(row.max_rank_seconds >= 0.001);
        assert!(row.total_seconds >= row.max_rank_seconds);
        // The reduction's own gather also ran under no span on each rank —
        // it must not pollute the reduced set (it was drained before).
        assert!(spans.iter().all(|s| !s.path.contains("pcu.gather")));
    }

    /// Buffers crossing node boundaries on a multi-node machine: per-phase
    /// traffic must split between on-node and off-node link classes.
    #[test]
    #[cfg(feature = "obs")]
    fn traffic_reduces_per_phase_and_link() {
        let m = MachineModel::new(2, 2); // ranks 0,1 on node 0; 2,3 on node 1
        let out = execute_on(m, |c| {
            let _ = pumi_obs::span::take();
            let _ = pumi_obs::metrics::take_traffic();
            {
                let _g = pumi_obs::span!("halo");
                let mut ex = crate::phased::Exchange::new(c);
                // Each rank sends 8 bytes to every other rank and 8 to itself.
                for dest in 0..c.nranks() {
                    ex.to(dest).put_u64(c.rank() as u64);
                }
                let got = ex.finish();
                assert_eq!(got.len(), c.nranks());
                assert_eq!(got.total_bytes(), 8 * c.nranks() as u64);
            }
            reduce_traffic(c)
        });
        let traffic = out.into_iter().flatten().next().unwrap();
        let find = |link: Link| {
            traffic
                .iter()
                .find(|t| t.phase.ends_with("halo/pcu.exchange") && t.link == link)
                .unwrap_or_else(|| panic!("no {link:?} row in {traffic:?}"))
        };
        // 4 ranks × 1 on-node peer, × 2 off-node peers, × 1 self.
        assert_eq!(find(Link::OnNode).msgs, 4);
        assert_eq!(find(Link::OnNode).bytes, 32);
        assert_eq!(find(Link::OffNode).msgs, 8);
        assert_eq!(find(Link::OffNode).bytes, 64);
        assert_eq!(find(Link::SelfLoop).msgs, 4);
        // The termination-detection barrier is shared-memory consensus —
        // it must contribute no traffic rows of its own.
        assert!(traffic.iter().all(|t| !t.phase.contains("pcu.barrier")));
    }

    /// Under two-level routing the exchange-path rows stay identical to
    /// direct routing (logical rank-to-rank traffic), while the physical
    /// off-node envelopes land under the nested relay span and are bounded
    /// by one super-message per ordered node pair.
    #[test]
    #[cfg(feature = "obs")]
    fn relay_span_shows_off_node_envelope_reduction() {
        use crate::phased::{Exchange, ExchangeOpts};
        let m = MachineModel::new(4, 2);
        let run = |opts: ExchangeOpts| {
            execute_on(m, move |c| {
                let _ = pumi_obs::span::take();
                let _ = pumi_obs::metrics::take_traffic();
                {
                    let _g = pumi_obs::span!("halo");
                    let mut ex = Exchange::with_opts(c, opts);
                    // Dense all-to-all: the worst case for direct routing.
                    for dest in 0..c.nranks() {
                        ex.to(dest).put_u64(c.rank() as u64);
                    }
                    let got = ex.finish();
                    assert_eq!(got.len(), c.nranks());
                }
                reduce_traffic(c)
            })
            .into_iter()
            .flatten()
            .next()
            .unwrap()
        };
        let direct = run(ExchangeOpts::direct());
        let agg = run(ExchangeOpts::two_level());
        let exchange_rows = |t: &[WorldTraffic]| {
            t.iter()
                .filter(|r| r.phase.ends_with("halo/pcu.exchange"))
                .cloned()
                .collect::<Vec<_>>()
        };
        // Logical per-phase accounting is routing-invariant.
        assert_eq!(exchange_rows(&direct), exchange_rows(&agg));
        // Physically, 8 ranks × 6 off-node peers = 48 direct envelopes
        // collapse to one super-message per ordered node pair: 4×3 = 12,
        // within the nodes² bound.
        let direct_off = exchange_rows(&direct)
            .iter()
            .find(|r| r.link == Link::OffNode)
            .unwrap()
            .msgs;
        assert_eq!(direct_off, 48);
        let relay_off = agg
            .iter()
            .find(|r| {
                r.phase.ends_with(&format!(
                    "halo/pcu.exchange/{}",
                    pumi_obs::metrics::RELAY_SPAN
                )) && r.link == Link::OffNode
            })
            .expect("relay span records off-node supers");
        assert_eq!(relay_off.msgs, (m.nodes * (m.nodes - 1)) as u64);
        assert!(relay_off.msgs <= (m.nodes * m.nodes) as u64);
        // Direct mode never enters the relay span.
        assert!(!direct
            .iter()
            .any(|r| r.phase.contains(pumi_obs::metrics::RELAY_SPAN)));
    }

    #[test]
    fn world_report_shape() {
        let out = execute(2, |c| {
            let _ = pumi_obs::span::take();
            let _ = pumi_obs::metrics::take_traffic();
            {
                let _g = pumi_obs::span!("phase");
                c.barrier();
            }
            world_report(c).map(|j| j.render())
        });
        let j = out.into_iter().flatten().next().unwrap();
        assert!(j.contains("\"spans\""));
        assert!(j.contains("\"traffic\""));
        #[cfg(feature = "obs")]
        assert!(j.contains("\"path\": \"phase/pcu.barrier\""));
    }
}
