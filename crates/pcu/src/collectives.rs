//! Collective operations over a [`Comm`].
//!
//! All collectives are SPMD: every rank must call the same collectives in the
//! same order. Reductions are performed in rank order at a root and broadcast
//! back, so results are deterministic (floating-point sums do not depend on
//! thread scheduling) — a property the distributed tests rely on.

use crate::comm::Comm;
use crate::msg::{MsgReader, MsgWriter};
use bytes::Bytes;

impl Comm {
    /// Block until every rank reaches the barrier.
    ///
    /// Shared-memory consensus (a sense-reversing barrier in world state),
    /// not a message pattern: entering costs one lock, the last arriver
    /// issues one wakeup burst, and no envelopes or collective tags are
    /// consumed. Because the simulated transport enqueues sends
    /// synchronously before the sender can reach the barrier, completion
    /// still proves every prior send of every rank sits in its
    /// destination's mailbox — the termination-consensus property the
    /// phased exchange relies on — while eliminating the O(N log N)
    /// control envelopes (and their wake chains) the old dissemination
    /// barrier paid per phase.
    pub fn barrier(&self) {
        let _span = pumi_obs::span!("pcu.barrier");
        self.barrier_wait();
    }

    /// Consensus among the ranks of this rank's node only. Collective
    /// across the whole world (every rank calls it; the machine is uniform
    /// and no collective tags are consumed, so sequence numbers stay
    /// aligned). Used by the two-level exchange to fence intra-node
    /// delivery hops.
    pub(crate) fn node_barrier(&self) {
        let _span = pumi_obs::span!("pcu.node_barrier");
        self.node_barrier_wait();
    }

    /// Gather one buffer from every rank to `root`; returns `Some(bufs)` on
    /// the root (indexed by rank), `None` elsewhere.
    pub fn gather_bytes(&self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        let _span = pumi_obs::span!("pcu.gather");
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Bytes> = vec![Bytes::new(); self.nranks()];
            out[root] = data;
            for _ in 0..self.nranks() - 1 {
                let (from, d) = self.recv_raw(None, tag);
                out[from] = d;
            }
            Some(out)
        } else {
            self.send_raw(root, tag, data);
            None
        }
    }

    /// Broadcast a buffer from `root` to all ranks.
    pub fn bcast_bytes(&self, root: usize, data: Bytes) -> Bytes {
        let _span = pumi_obs::span!("pcu.bcast");
        let tag = self.next_coll_tag();
        if self.rank() == root {
            for r in 0..self.nranks() {
                if r != root {
                    self.send_raw(r, tag, data.clone());
                }
            }
            data
        } else {
            let (_, d) = self.recv_raw(Some(root), tag);
            d
        }
    }

    /// All ranks contribute one buffer; all ranks receive every buffer,
    /// indexed by rank.
    pub fn allgather_bytes(&self, data: Bytes) -> Vec<Bytes> {
        let _span = pumi_obs::span!("pcu.allgather");
        let gathered = self.gather_bytes(0, data);
        // Root packs the concatenation with offsets and broadcasts.
        let packed = if self.rank() == 0 {
            let bufs = gathered.unwrap();
            let mut w = MsgWriter::new();
            w.put_u32(bufs.len() as u32);
            for b in &bufs {
                w.put_bytes(b);
            }
            w.finish()
        } else {
            Bytes::new()
        };
        let all = self.bcast_bytes(0, packed);
        let mut r = MsgReader::new(all);
        let n = r.get_u32() as usize;
        (0..n).map(|_| Bytes::from(r.get_bytes())).collect()
    }

    /// All-gather a single `u64` per rank.
    pub fn allgather_u64(&self, x: u64) -> Vec<u64> {
        let mut w = MsgWriter::with_capacity(8);
        w.put_u64(x);
        self.allgather_bytes(w.finish())
            .into_iter()
            .map(|b| MsgReader::new(b).get_u64())
            .collect()
    }

    /// All-gather a single `f64` per rank.
    pub fn allgather_f64(&self, x: f64) -> Vec<f64> {
        let mut w = MsgWriter::with_capacity(8);
        w.put_f64(x);
        self.allgather_bytes(w.finish())
            .into_iter()
            .map(|b| MsgReader::new(b).get_f64())
            .collect()
    }

    /// Sum-reduce a `u64` across all ranks.
    pub fn allreduce_sum_u64(&self, x: u64) -> u64 {
        self.allgather_u64(x).into_iter().sum()
    }

    /// Sum-reduce an `f64` across all ranks (rank-ordered, deterministic).
    pub fn allreduce_sum_f64(&self, x: f64) -> f64 {
        self.allgather_f64(x).into_iter().sum()
    }

    /// Max-reduce a `u64` across all ranks.
    pub fn allreduce_max_u64(&self, x: u64) -> u64 {
        self.allgather_u64(x).into_iter().max().unwrap_or(0)
    }

    /// Min-reduce a `u64` across all ranks.
    pub fn allreduce_min_u64(&self, x: u64) -> u64 {
        self.allgather_u64(x).into_iter().min().unwrap_or(0)
    }

    /// Max-reduce an `f64` across all ranks.
    pub fn allreduce_max_f64(&self, x: f64) -> f64 {
        self.allgather_f64(x)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Element-wise sum of a `u64` vector across ranks. All ranks pass a
    /// vector of identical length and receive the summed vector.
    pub fn allreduce_sum_u64_vec(&self, xs: &[u64]) -> Vec<u64> {
        let _span = pumi_obs::span!("pcu.allreduce_vec");
        let mut w = MsgWriter::with_capacity(8 * xs.len() + 4);
        w.put_u64_slice(xs);
        let gathered = self.gather_bytes(0, w.finish());
        let packed = if self.rank() == 0 {
            let mut sum = vec![0u64; xs.len()];
            for b in gathered.unwrap() {
                let v = MsgReader::new(b).get_u64_slice();
                assert_eq!(v.len(), sum.len(), "vector allreduce length mismatch");
                for (s, x) in sum.iter_mut().zip(v) {
                    *s += x;
                }
            }
            let mut w = MsgWriter::new();
            w.put_u64_slice(&sum);
            w.finish()
        } else {
            Bytes::new()
        };
        let all = self.bcast_bytes(0, packed);
        MsgReader::new(all).get_u64_slice()
    }

    /// Element-wise sum of an `f64` vector across ranks (rank-ordered).
    pub fn allreduce_sum_f64_vec(&self, xs: &[f64]) -> Vec<f64> {
        let _span = pumi_obs::span!("pcu.allreduce_vec");
        let mut w = MsgWriter::with_capacity(8 * xs.len() + 4);
        w.put_f64_slice(xs);
        let gathered = self.gather_bytes(0, w.finish());
        let packed = if self.rank() == 0 {
            let mut sum = vec![0f64; xs.len()];
            for b in gathered.unwrap() {
                let v = MsgReader::new(b).get_f64_slice();
                assert_eq!(v.len(), sum.len(), "vector allreduce length mismatch");
                for (s, x) in sum.iter_mut().zip(v) {
                    *s += x;
                }
            }
            let mut w = MsgWriter::new();
            w.put_f64_slice(&sum);
            w.finish()
        } else {
            Bytes::new()
        };
        let all = self.bcast_bytes(0, packed);
        MsgReader::new(all).get_f64_slice()
    }

    /// Exclusive prefix sum: rank r receives the sum of values on ranks
    /// `0..r`. Used for parallel-consistent global numbering.
    pub fn exscan_u64(&self, x: u64) -> u64 {
        let all = self.allgather_u64(x);
        all[..self.rank()].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::execute;

    #[test]
    fn barrier_completes() {
        // If the barrier deadlocked or mismatched, this would hang/panic.
        let out = execute(7, |c| {
            for _ in 0..3 {
                c.barrier();
            }
            c.rank()
        });
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn allgather_and_reductions() {
        let n = 6;
        execute(n, |c| {
            let xs = c.allgather_u64(c.rank() as u64 + 1);
            assert_eq!(xs, (1..=n as u64).collect::<Vec<_>>());
            assert_eq!(c.allreduce_sum_u64(c.rank() as u64 + 1), 21);
            assert_eq!(c.allreduce_max_u64(c.rank() as u64), n as u64 - 1);
            assert_eq!(c.allreduce_min_u64(c.rank() as u64 + 5), 5);
            let s = c.allreduce_sum_f64(0.5);
            assert!((s - 3.0).abs() < 1e-12);
            assert!((c.allreduce_max_f64(-(c.rank() as f64)) - 0.0).abs() < 1e-12);
        });
    }

    #[test]
    fn vector_allreduce_sums_elementwise() {
        let n = 4;
        execute(n, |c| {
            let mine = vec![c.rank() as u64, 1, 10];
            let sum = c.allreduce_sum_u64_vec(&mine);
            assert_eq!(sum, vec![6, 4, 40]);
            let fsum = c.allreduce_sum_f64_vec(&[0.25, c.rank() as f64]);
            assert_eq!(fsum, vec![1.0, 6.0]);
        });
    }

    #[test]
    fn exscan_is_exclusive() {
        execute(5, |c| {
            let p = c.exscan_u64(10);
            assert_eq!(p, 10 * c.rank() as u64);
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        execute(4, |c| {
            let data = if c.rank() == 2 {
                bytes::Bytes::from_static(b"payload")
            } else {
                bytes::Bytes::new()
            };
            let got = c.bcast_bytes(2, data);
            assert_eq!(&got[..], b"payload");
        });
    }

    #[test]
    fn gather_collects_by_rank() {
        execute(3, |c| {
            let mine = bytes::Bytes::from(vec![c.rank() as u8; c.rank() + 1]);
            match c.gather_bytes(1, mine) {
                Some(all) => {
                    assert_eq!(c.rank(), 1);
                    for (r, b) in all.iter().enumerate() {
                        assert_eq!(b.len(), r + 1);
                        assert!(b.iter().all(|&x| x == r as u8));
                    }
                }
                None => assert_ne!(c.rank(), 1),
            }
        });
    }

    #[test]
    fn interleaved_collectives_and_p2p() {
        // Collectives use reserved tags; user p2p with the same numeric tags
        // must not interfere.
        execute(3, |c| {
            if c.rank() == 0 {
                c.send(1, 0, bytes::Bytes::from_static(b"a"));
            }
            c.barrier();
            if c.rank() == 1 {
                let (_, d) = c.recv(Some(0), 0);
                assert_eq!(&d[..], b"a");
            }
            let s = c.allreduce_sum_u64(1);
            assert_eq!(s, 3);
        });
    }
}
