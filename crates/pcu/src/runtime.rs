//! World-shared runtime primitives: sharded lock-free mailboxes, shared-
//! memory consensus barriers, and the cooperative rank executor.
//!
//! This is the machinery that lets one process host a 1024-rank world
//! cheaply (DESIGN.md "Scaling the simulated world"). Three ideas:
//!
//! * **Sharded mailboxes.** Every rank owns one [`Mailbox`]: an array of
//!   per-source-class [`Shard`]s, each a lock-free Treiber stack of
//!   envelope nodes. A send is one `compare_exchange` push; the owning
//!   rank drains whole shards with a single `swap` per shard and restores
//!   FIFO order by reversing. No channel allocation per link, no lock on
//!   the send path.
//! * **Elided, token-based wakeups.** A sender pays for a wakeup only when
//!   the receiver is actually parked (a `SeqCst` flag handshake makes the
//!   check race-free), and the wakeup itself is a sticky
//!   `thread::unpark` token — no mutex for the sleeper to re-acquire, no
//!   lost-wakeup window, and callers that deliver several envelopes to
//!   one destination push them all quietly and notify once, so a phase's
//!   worth of frames costs at most one wake per link, not one per
//!   envelope.
//! * **Cooperative executor.** With `R` ranks multiplexed onto `W` worker
//!   permits ([`Scheduler`]), at most `W` rank threads are runnable at any
//!   instant; a rank releases its permit whenever it parks (mailbox wait,
//!   barrier wait) and re-acquires it on wake. Blocked ranks therefore
//!   cost a parked OS thread, not a scheduled one, and a 1024-rank world
//!   no longer thrashes the kernel scheduler of a laptop-sized host.
//!
//! Every blocking loop observes the world's poison flag so that a panic on
//! one rank wakes and fails the others instead of deadlocking the world.

use crate::comm::Envelope;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::Thread;

/// Shards per mailbox: sources stripe onto shards modulo this, bounding
/// memory at high rank counts while still spreading producer CAS
/// contention.
const MAX_SHARDS: usize = 32;

/// How many `yield_now` rounds a blocking primitive cedes the CPU before
/// paying for a real `park`. When rank threads outnumber cores, one yield
/// walks the scheduler through every other runnable rank — which usually
/// produces the event we are waiting for — so the common case costs one
/// cheap syscall instead of a park/unpark futex pair plus a forced wake on
/// the notifier's critical path. Bounded, so a genuinely long wait still
/// parks and frees the core entirely.
const SPIN_YIELDS: usize = 8;

/// An intrusive envelope node on a shard stack.
struct Node {
    env: MaybeUninit<Envelope>,
    next: *mut Node,
}

// The boxes are the point: pooled nodes round-trip through
// `Box::into_raw` as intrusive stack links, so each must own a stable heap
// allocation of its own.
#[allow(clippy::vec_box)]
mod node_pool {
    //! Thread-local free list of mailbox nodes. Each rank is pinned to one
    //! OS thread, so thread-local means per-rank: in steady-state neighbour
    //! exchange the nodes a rank consumed circulate back into its own
    //! sends without touching the allocator.
    use super::Node;
    use std::cell::RefCell;
    use std::mem::MaybeUninit;
    use std::ptr;

    const MAX_NODES: usize = 64;

    thread_local! {
        static POOL: RefCell<Vec<Box<Node>>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn take() -> Box<Node> {
        POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
            Box::new(Node {
                env: MaybeUninit::uninit(),
                next: ptr::null_mut(),
            })
        })
    }

    /// `node.env` must already be logically uninitialized (moved out).
    pub(super) fn put(mut node: Box<Node>) {
        node.next = ptr::null_mut();
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_NODES {
                p.push(node);
            }
        });
    }
}

/// One lock-free MPSC stack. Producers push with CAS; only the mailbox
/// owner pops (whole-stack `swap`), so no ABA hazard exists.
struct Shard {
    head: AtomicPtr<Node>,
}

impl Shard {
    const fn new() -> Shard {
        Shard {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    fn push(&self, env: Envelope) {
        let mut node = node_pool::take();
        node.env.write(env);
        let node = Box::into_raw(node);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            unsafe { (*node).next = head };
            // SeqCst success: the push must be globally ordered against the
            // consumer's sleep-flag store (see Mailbox::park).
            match self
                .head
                .compare_exchange(head, node, Ordering::SeqCst, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Take every queued envelope in arrival (FIFO) order.
    fn drain(&self, out: &mut impl FnMut(Envelope)) {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::SeqCst);
        if p.is_null() {
            return;
        }
        // The stack is newest-first; reverse in place to recover FIFO.
        let mut prev: *mut Node = ptr::null_mut();
        while !p.is_null() {
            let next = unsafe { (*p).next };
            unsafe { (*p).next = prev };
            prev = p;
            p = next;
        }
        while !prev.is_null() {
            let node = unsafe { Box::from_raw(prev) };
            prev = node.next;
            let env = unsafe { node.env.assume_init_read() };
            node_pool::put(node);
            out(env);
        }
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::SeqCst).is_null()
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
            drop(unsafe { node.env.assume_init_read() });
        }
    }
}

/// One rank's incoming side of the simulated network.
pub(crate) struct Mailbox {
    shards: Box<[Shard]>,
    /// Whether the owner is parked — producers skip the wake syscall
    /// entirely while the owner is running.
    sleeping: AtomicBool,
    /// The owning rank's thread, recorded at first park. Wakeups are
    /// sticky `unpark` tokens: if a producer races ahead of the owner's
    /// `park`, the token makes that park return immediately, so no wakeup
    /// can be lost and no mutex/condvar pair is needed.
    owner: OnceLock<Thread>,
}

impl Mailbox {
    pub(crate) fn new(nranks: usize) -> Mailbox {
        let n = nranks.clamp(1, MAX_SHARDS);
        Mailbox {
            shards: (0..n).map(|_| Shard::new()).collect(),
            sleeping: AtomicBool::new(false),
            owner: OnceLock::new(),
        }
    }

    /// Enqueue without waking the owner. Callers must follow a batch of
    /// quiet pushes with [`Mailbox::notify`].
    pub(crate) fn push_quiet(&self, env: Envelope) {
        let shard = env.from % self.shards.len();
        self.shards[shard].push(env);
    }

    /// Wake the owner if (and only if) it is parked.
    pub(crate) fn notify(&self) {
        if self.sleeping.load(Ordering::SeqCst) {
            if let Some(t) = self.owner.get() {
                t.unpark();
            }
        }
    }

    /// Enqueue and wake: the common single-envelope send.
    pub(crate) fn push(&self, env: Envelope) {
        self.push_quiet(env);
        self.notify();
    }

    /// Drain every shard (fixed shard order, FIFO within a shard) into
    /// `out`. Owner-only.
    pub(crate) fn drain(&self, out: &mut impl FnMut(Envelope)) {
        for s in self.shards.iter() {
            s.drain(out);
        }
    }

    fn has_mail(&self) -> bool {
        self.shards.iter().any(|s| !s.is_empty())
    }

    /// Park the owner until a producer notifies (or the world is
    /// poisoned). Returns `true` if mail may be available, `false` only on
    /// poison. Owner-only. The caller re-drains after every wake: wakes
    /// may be spurious (stale tokens) or already-consumed.
    pub(crate) fn park(&self, exec: &Scheduler, poisoned: &AtomicBool) -> bool {
        // Yield-spin first (unless multiplexed: spinning would hold a
        // worker permit that a runnable rank needs). The producer we are
        // waiting on is usually just another thread of this process, so
        // ceding the CPU is both the fastest and the cheapest way to make
        // it run.
        if !exec.is_multiplexing() {
            for _ in 0..SPIN_YIELDS {
                if self.has_mail() || poisoned.load(Ordering::SeqCst) {
                    return !poisoned.load(Ordering::SeqCst);
                }
                std::thread::yield_now();
            }
        }
        self.owner.get_or_init(std::thread::current);
        self.sleeping.store(true, Ordering::SeqCst);
        // Re-check after raising the flag: a producer that pushed before
        // the flag was visible did not (and will not) notify, so the push
        // must be caught here. SeqCst on both sides makes one of the two
        // observations certain; a producer that raced in between leaves a
        // sticky unpark token that returns the park below immediately.
        if self.has_mail() || poisoned.load(Ordering::SeqCst) {
            self.sleeping.store(false, Ordering::SeqCst);
            return !poisoned.load(Ordering::SeqCst);
        }
        // Sleeping costs a parked OS thread only: give the worker permit
        // back to the executor while blocked.
        exec.release();
        std::thread::park();
        self.sleeping.store(false, Ordering::SeqCst);
        exec.acquire(poisoned);
        !poisoned.load(Ordering::SeqCst)
    }

    /// Wake the owner unconditionally (world poison path).
    pub(crate) fn force_wake(&self) {
        if let Some(t) = self.owner.get() {
            t.unpark();
        }
    }
}

/// A reusable counted barrier over one membership set (the world, or the
/// ranks of one node). Shared-memory consensus replaces the previous
/// log₂N-round dissemination barrier of empty messages: arrivals count on
/// a lock-free atomic, the last arriver bumps the generation and unparks
/// only the waiters that actually parked, and non-last arrivers yield-spin
/// on the generation before paying for a park — in the steady cadence of a
/// phased exchange most members never touch the mutex or a futex at all.
pub(crate) struct SenseBarrier {
    members: usize,
    /// Arrivals in the current generation. Only the last arriver resets
    /// it, and no member can re-enter until the generation advances, so
    /// the counter is never incremented concurrently with its reset.
    arrivals: AtomicUsize,
    waiters: Mutex<Vec<Thread>>,
    generation: AtomicU64,
}

impl SenseBarrier {
    pub(crate) fn new(members: usize) -> SenseBarrier {
        SenseBarrier {
            members,
            arrivals: AtomicUsize::new(0),
            waiters: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// Block until all members arrive. Panics (on every waiter) if the
    /// world is poisoned while waiting.
    pub(crate) fn wait(&self, exec: &Scheduler, poisoned: &AtomicBool) {
        if self.members == 1 {
            return;
        }
        // The generation cannot advance between this load and the arrival
        // increment below: advancing requires every member to arrive, and
        // this thread has not yet.
        let gen = self.generation.load(Ordering::SeqCst);
        if self.arrivals.fetch_add(1, Ordering::SeqCst) + 1 == self.members {
            // Reset before release: every member is inside this wait call,
            // so no increment can race the store until the generation
            // advances below.
            self.arrivals.store(0, Ordering::SeqCst);
            self.generation.store(gen.wrapping_add(1), Ordering::SeqCst);
            let mut w = self.waiters.lock().unwrap();
            for t in w.drain(..) {
                t.unpark();
            }
            return;
        }
        if !exec.is_multiplexing() {
            for _ in 0..SPIN_YIELDS {
                if self.generation.load(Ordering::SeqCst) != gen {
                    return;
                }
                std::thread::yield_now();
            }
        }
        // Slow path: register, then re-check under the lock — the release
        // sequence bumps the generation *before* taking the lock, so a
        // registration that observes the old generation here is guaranteed
        // to be seen (and unparked) by the releaser.
        let mut w = self.waiters.lock().unwrap();
        if self.generation.load(Ordering::SeqCst) != gen {
            return;
        }
        w.push(std::thread::current());
        drop(w);
        exec.release();
        while self.generation.load(Ordering::SeqCst) == gen && !poisoned.load(Ordering::SeqCst) {
            std::thread::park();
        }
        exec.acquire(poisoned);
        if poisoned.load(Ordering::SeqCst) {
            panic!("peer rank panicked while this rank waited at a barrier");
        }
    }

    /// Wake all registered waiters unconditionally (world poison path).
    pub(crate) fn force_wake(&self) {
        let mut w = self.waiters.lock().unwrap();
        for t in w.drain(..) {
            t.unpark();
        }
    }
}

/// The cooperative rank executor: a counted set of worker permits. A rank
/// thread must hold a permit to execute; every blocking primitive releases
/// the permit before parking and re-acquires it after waking, so at most
/// `cap` rank threads contend for the host's cores regardless of world
/// size. `cap == 0` disables multiplexing (one permit per rank, no
/// bookkeeping at all) — the default for small worlds.
pub(crate) struct Scheduler {
    cap: usize,
    state: Mutex<usize>,
    cv: Condvar,
}

impl Scheduler {
    pub(crate) fn new(cap: usize) -> Scheduler {
        Scheduler {
            cap,
            state: Mutex::new(cap),
            cv: Condvar::new(),
        }
    }

    /// Whether rank threads are being multiplexed onto a bounded permit
    /// set. Blocking primitives skip their yield-spin fast path when true:
    /// spinning would pin a permit that a runnable rank needs.
    pub(crate) fn is_multiplexing(&self) -> bool {
        self.cap != 0
    }

    /// Take a worker permit (blocking). Poison releases all waiters.
    pub(crate) fn acquire(&self, poisoned: &AtomicBool) {
        if self.cap == 0 {
            return;
        }
        let mut g = self.state.lock().unwrap();
        while *g == 0 && !poisoned.load(Ordering::SeqCst) {
            g = self.cv.wait(g).unwrap();
        }
        *g = g.saturating_sub(1);
    }

    /// Return a worker permit.
    pub(crate) fn release(&self) {
        if self.cap == 0 {
            return;
        }
        let mut g = self.state.lock().unwrap();
        *g += 1;
        drop(g);
        self.cv.notify_one();
    }

    /// Briefly cede this worker permit so other runnable ranks can make
    /// progress — used by polling paths (`iprobe`) so a spinning rank
    /// cannot monopolize the last permit of a multiplexed world.
    pub(crate) fn yield_permit(&self, poisoned: &AtomicBool) {
        if self.cap == 0 {
            return;
        }
        self.release();
        std::thread::yield_now();
        self.acquire(poisoned);
    }

    /// Wake all permit waiters unconditionally (world poison path).
    pub(crate) fn force_wake(&self) {
        let _g = self.state.lock().unwrap();
        self.cv.notify_all();
    }
}
