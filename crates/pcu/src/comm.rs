//! The simulated message-passing world.
//!
//! [`execute`] spawns one OS thread per rank and hands each a [`Comm`]. Ranks
//! may only exchange serialized bytes through `Comm` — there is no shared
//! mutable state — so algorithms written against this API are directly
//! portable to real MPI. This is the substitution for the paper's Blue Gene/Q
//! MPI runtime (see DESIGN.md).
//!
//! World state (routing table, traffic meters, barriers, the executor) lives
//! in one `Arc`-shared `WorldCore`; each `Comm` is a thin per-rank view, so
//! world setup is O(N), not O(N²) sender-handle clones. Transport is the
//! sharded lock-free mailbox of the private `runtime` module, and [`WorldOpts`] /
//! `PUMI_PCU_WORKERS` can multiplex R ranks onto W worker permits so worlds
//! far wider than the host (256–1024 ranks) stay cheap — see DESIGN.md
//! "Scaling the simulated world".

use crate::machine::{LinkClass, MachineModel, TrafficCounters, TrafficReport};
use crate::runtime::{Mailbox, Scheduler, SenseBarrier};
use crate::sched::SchedMode;
use bytes::Bytes;
use pumi_util::FxHashMap;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Highest tag value available to users; larger tags are reserved for
/// collectives.
pub const MAX_USER_TAG: u32 = 0x7FFF_FFFF;

#[derive(Debug)]
pub(crate) struct Envelope {
    pub from: usize,
    pub tag: u32,
    pub data: Bytes,
}

/// Per-source FIFO within one tag's stash. `stale` counts arrival-order
/// entries already consumed by a source-addressed pop, so the any-source
/// path can skip them and still return messages in true arrival order.
#[derive(Debug, Default)]
struct SrcQueue {
    q: VecDeque<Bytes>,
    stale: usize,
}

/// All stashed messages of one tag: per-source queues for O(1)
/// source-addressed pops plus an arrival-order index for any-source pops
/// and whole-tag takes. Every operation is O(1) amortized — the old
/// single-queue stash paid a linear `position` scan per `(from, tag)` pop,
/// which at 256+ ranks is O(N) work per receive.
#[derive(Debug, Default)]
struct TagQueue {
    by_src: FxHashMap<usize, SrcQueue>,
    order: VecDeque<usize>,
    len: usize,
}

impl TagQueue {
    fn push(&mut self, from: usize, data: Bytes) {
        self.by_src.entry(from).or_default().q.push_back(data);
        self.order.push_back(from);
        self.len += 1;
    }

    fn pop_src(&mut self, from: usize) -> Option<Bytes> {
        let sq = self.by_src.get_mut(&from)?;
        let data = sq.q.pop_front()?;
        sq.stale += 1;
        self.len -= 1;
        Some(data)
    }

    fn pop_any(&mut self) -> Option<(usize, Bytes)> {
        while let Some(src) = self.order.pop_front() {
            let sq = self.by_src.get_mut(&src).expect("stash index out of sync");
            if sq.stale > 0 {
                sq.stale -= 1;
                continue;
            }
            let data = sq.q.pop_front().expect("stash index out of sync");
            self.len -= 1;
            return Some((src, data));
        }
        None
    }

    fn has(&self, from: Option<usize>) -> bool {
        match from {
            None => self.len > 0,
            Some(f) => self.by_src.get(&f).is_some_and(|sq| !sq.q.is_empty()),
        }
    }
}

/// Out-of-order messages awaiting a matching recv, indexed by tag so the
/// receive path never re-scans unrelated stashed traffic. An emptied tag's
/// entry is removed immediately (collective tags are never reused, so stale
/// entries would otherwise accumulate forever).
#[derive(Debug, Default)]
struct Stash {
    queues: FxHashMap<u32, TagQueue>,
}

impl Stash {
    fn push(&mut self, e: Envelope) {
        self.queues.entry(e.tag).or_default().push(e.from, e.data);
    }

    /// Pop the first stashed message matching `(from, tag)` — O(1).
    fn pop(&mut self, from: Option<usize>, tag: u32) -> Option<(usize, Bytes)> {
        let q = self.queues.get_mut(&tag)?;
        let msg = match from {
            None => q.pop_any(),
            Some(f) => q.pop_src(f).map(|d| (f, d)),
        }?;
        if q.len == 0 {
            self.queues.remove(&tag);
        }
        Some(msg)
    }

    fn has(&self, from: Option<usize>, tag: u32) -> bool {
        self.queues.get(&tag).is_some_and(|q| q.has(from))
    }

    /// Remove and return the whole queue for `tag` (arrival order).
    fn take_tag(&mut self, tag: u32) -> VecDeque<(usize, Bytes)> {
        let Some(mut q) = self.queues.remove(&tag) else {
            return VecDeque::new();
        };
        let mut out = VecDeque::with_capacity(q.len);
        while let Some(msg) = q.pop_any() {
            out.push_back(msg);
        }
        out
    }
}

/// Options for building a simulated world — the executor knobs that
/// [`execute_on`] defaults from the environment.
///
/// ```
/// use pumi_pcu::{execute_opts, MachineModel, WorldOpts};
/// // 64 ranks multiplexed onto 4 worker permits, small stacks.
/// let opts = WorldOpts::default().workers(4).stack_size(512 * 1024);
/// let out = execute_opts(MachineModel::flat(64), opts, |c| c.rank());
/// assert_eq!(out.len(), 64);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorldOpts {
    /// Frame-delivery scheduling for phased exchanges (defaults to
    /// `PUMI_PCU_SCHED`).
    pub sched: SchedMode,
    /// Worker-permit cap for the cooperative executor: at most this many
    /// rank threads are runnable at once; blocked ranks park without
    /// holding a permit. `None` reads `PUMI_PCU_WORKERS`; `Some(0)` (and an
    /// unset variable) disables multiplexing — every rank stays runnable,
    /// the right default for small worlds.
    pub workers: Option<usize>,
    /// Stack size per rank thread in bytes (`None` = platform default).
    /// Wide worlds set this low — 1024 ranks at the 8 MiB default reserve
    /// 8 GiB of address space for stacks alone.
    pub stack_size: Option<usize>,
}

impl Default for WorldOpts {
    fn default() -> WorldOpts {
        WorldOpts {
            sched: SchedMode::from_env(),
            workers: None,
            stack_size: None,
        }
    }
}

impl WorldOpts {
    /// Override the scheduling mode.
    pub fn sched(mut self, sched: SchedMode) -> WorldOpts {
        self.sched = sched;
        self
    }

    /// Cap runnable rank threads at `w` (0 disables multiplexing).
    pub fn workers(mut self, w: usize) -> WorldOpts {
        self.workers = Some(w);
        self
    }

    /// Set the per-rank thread stack size in bytes.
    pub fn stack_size(mut self, bytes: usize) -> WorldOpts {
        self.stack_size = Some(bytes);
        self
    }

    fn resolved_workers(&self, nranks: usize) -> usize {
        let w = self.workers.unwrap_or_else(workers_from_env);
        // A cap at or above the world size is no cap at all; skip the
        // permit bookkeeping entirely.
        if w >= nranks {
            0
        } else {
            w
        }
    }
}

fn workers_from_env() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("PUMI_PCU_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// State shared by every rank of one world: the routing table (mailboxes),
/// traffic meters, consensus barriers, the executor, and the poison flag.
/// One allocation per world, shared as `Arc` — each `Comm` holds a pointer,
/// not a clone of N sender handles.
pub(crate) struct WorldCore {
    machine: MachineModel,
    sched: SchedMode,
    counters: TrafficCounters,
    mailboxes: Box<[Mailbox]>,
    world_barrier: SenseBarrier,
    node_barriers: Box<[SenseBarrier]>,
    exec: Scheduler,
    /// Raised when any rank panics; every parked peer is then woken to
    /// fail loudly instead of deadlocking on a message that will never come.
    poisoned: AtomicBool,
}

impl WorldCore {
    fn new(machine: MachineModel, sched: SchedMode, workers: usize) -> WorldCore {
        let nranks = machine.nranks();
        WorldCore {
            machine,
            sched,
            counters: TrafficCounters::default(),
            mailboxes: (0..nranks).map(|_| Mailbox::new(nranks)).collect(),
            world_barrier: SenseBarrier::new(nranks),
            node_barriers: (0..machine.nodes)
                .map(|_| SenseBarrier::new(machine.cores_per_node))
                .collect(),
            exec: Scheduler::new(workers),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in self.mailboxes.iter() {
            mb.force_wake();
        }
        self.world_barrier.force_wake();
        for b in self.node_barriers.iter() {
            b.force_wake();
        }
        self.exec.force_wake();
    }
}

/// Per-rank communicator handle.
///
/// `Comm` is `Send` (it moves into its rank's thread) but deliberately not
/// shared between threads: each rank owns exactly one.
pub struct Comm {
    rank: usize,
    world: Arc<WorldCore>,
    /// Out-of-order messages awaiting a matching recv.
    stash: RefCell<Stash>,
    /// Monotonic collective sequence number; identical across ranks because
    /// collectives are called in SPMD order.
    pub(crate) coll_seq: Cell<u32>,
    /// Monotonic count of completed phased exchanges. Unlike `coll_seq` it
    /// advances exactly once per exchange regardless of routing (direct
    /// consumes one tag per phase, two-level three), so chaos permutations
    /// seeded from it are routing-invariant.
    pub(crate) exchange_seq: Cell<u32>,
}

impl Comm {
    /// This rank's id in `0..nranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.world.machine.nranks()
    }

    /// The machine model this world runs on.
    #[inline]
    pub fn machine(&self) -> MachineModel {
        self.world.machine
    }

    /// The node hosting this rank.
    #[inline]
    pub fn node(&self) -> usize {
        self.world.machine.node_of(self.rank)
    }

    /// Classify the link from this rank to `other`.
    #[inline]
    pub fn link_to(&self, other: usize) -> LinkClass {
        self.world.machine.link(self.rank, other)
    }

    /// The frame-delivery scheduling mode of this world (see
    /// [`crate::sched::SchedMode`]).
    #[inline]
    pub fn sched(&self) -> SchedMode {
        self.world.sched
    }

    /// Number of phased exchanges completed on this communicator — the
    /// phase index layered exchanges feed to
    /// [`crate::sched::ChaosRng::for_phase`] for their own reproducible
    /// permutations.
    #[inline]
    pub fn exchanges_completed(&self) -> u32 {
        self.exchange_seq.get()
    }

    /// Send `data` to rank `to` with a user `tag`.
    ///
    /// # Panics
    /// Panics if `tag` exceeds [`MAX_USER_TAG`] or `to` is out of range.
    pub fn send(&self, to: usize, tag: u32, data: Bytes) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.send_raw(to, tag, data);
    }

    pub(crate) fn send_raw(&self, to: usize, tag: u32, data: Bytes) {
        self.forward_raw(self.rank, to, tag, data);
    }

    /// Send on behalf of `origin`: the receiver sees the envelope as coming
    /// from `origin`, not from this rank. Used by the two-level exchange
    /// relay to re-deliver sub-buffers transparently; traffic is metered on
    /// the physical link (this rank → `to`).
    pub(crate) fn forward_raw(&self, origin: usize, to: usize, tag: u32, data: Bytes) {
        self.meter(to, data.len());
        self.world.mailboxes[to].push(Envelope {
            from: origin,
            tag,
            data,
        });
    }

    /// [`Comm::forward_raw`] without the destination wakeup. Callers
    /// delivering a batch of envelopes to one destination push them all
    /// quietly and then issue a single [`Comm::notify`] — one wake per link
    /// per phase instead of one per envelope.
    pub(crate) fn forward_raw_quiet(&self, origin: usize, to: usize, tag: u32, data: Bytes) {
        self.meter(to, data.len());
        self.world.mailboxes[to].push_quiet(Envelope {
            from: origin,
            tag,
            data,
        });
    }

    /// Wake rank `to` if it is parked on its mailbox (pairs with
    /// [`Comm::forward_raw_quiet`]).
    pub(crate) fn notify(&self, to: usize) {
        self.world.mailboxes[to].notify();
    }

    fn meter(&self, to: usize, bytes: usize) {
        let link = self.world.machine.link(self.rank, to);
        self.world.counters.record(link, bytes);
        // Per-phase metering: the same message lands in the obs registry
        // under the sender's current span path (no-op without `obs`).
        pumi_obs::metrics::record_traffic(link.to_obs(), bytes as u64);
    }

    /// Blocking receive of a message matching `from` (or any source if
    /// `None`) and `tag`. Returns `(source, data)`.
    pub fn recv(&self, from: Option<usize>, tag: u32) -> (usize, Bytes) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.recv_raw(from, tag)
    }

    pub(crate) fn recv_raw(&self, from: Option<usize>, tag: u32) -> (usize, Bytes) {
        loop {
            {
                let mut stash = self.stash.borrow_mut();
                let stash = &mut *stash;
                self.world.mailboxes[self.rank].drain(&mut |e| stash.push(e));
                if let Some(msg) = stash.pop(from, tag) {
                    return msg;
                }
            }
            // Nothing matching yet: park until a producer wakes us (the
            // mailbox re-checks for concurrent arrivals before sleeping, so
            // no wakeup can be lost), then re-drain.
            if !self.world.mailboxes[self.rank].park(&self.world.exec, &self.world.poisoned) {
                panic!("peer rank panicked while this rank waited in recv");
            }
        }
    }

    /// Non-blocking probe: is a message matching `(from, tag)` available?
    pub fn iprobe(&self, from: Option<usize>, tag: u32) -> bool {
        self.drain_wire();
        if self.stash.borrow().has(from, tag) {
            return true;
        }
        // Cooperative poll: in a multiplexed world a spinning prober must
        // lend its worker permit to the rank it is waiting on.
        self.world.exec.yield_permit(&self.world.poisoned);
        self.drain_wire();
        self.stash.borrow().has(from, tag)
    }

    /// Move every message currently on the wire into the stash.
    pub(crate) fn drain_wire(&self) {
        let mut stash = self.stash.borrow_mut();
        let stash = &mut *stash;
        self.world.mailboxes[self.rank].drain(&mut |e| stash.push(e));
    }

    /// Remove and return every stashed message with `tag`, in arrival
    /// order. Callers must have established (e.g. via a barrier) that no
    /// more messages with this tag are in flight, and drained the wire.
    pub(crate) fn take_tag(&self, tag: u32) -> VecDeque<(usize, Bytes)> {
        self.stash.borrow_mut().take_tag(tag)
    }

    /// Traffic totals for the whole world (shared counters).
    pub fn traffic(&self) -> TrafficReport {
        self.world.counters.report()
    }

    /// Reset the world traffic meters (e.g. between bench phases).
    pub fn reset_traffic(&self) {
        self.world.counters.reset();
    }

    /// Shared-memory consensus among all ranks of the world — the barrier
    /// body lives here because it owns the world state; the public
    /// [`Comm::barrier`] wrapper in `collectives` adds the obs span.
    pub(crate) fn barrier_wait(&self) {
        self.world
            .world_barrier
            .wait(&self.world.exec, &self.world.poisoned);
    }

    /// Consensus among the ranks of this rank's node only.
    pub(crate) fn node_barrier_wait(&self) {
        self.world.node_barriers[self.node()].wait(&self.world.exec, &self.world.poisoned);
    }

    pub(crate) fn next_coll_tag(&self) -> u32 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        // Collective tags live above MAX_USER_TAG.
        0x8000_0000 | (seq & 0x3FFF_FFFF)
    }
}

/// Run `f` on every rank of a machine with `nranks` single-core nodes
/// (pure-MPI view). Returns each rank's result, indexed by rank.
pub fn execute<F, R>(nranks: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_on(MachineModel::flat(nranks), f)
}

/// Run `f` on every rank of a flat machine under the chaos scheduler with
/// `seed`, regardless of `PUMI_PCU_SCHED`. The determinism suite uses this to
/// compare runs under several seeds within one process.
pub fn execute_chaos<F, R>(nranks: usize, seed: u64, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_on_sched(MachineModel::flat(nranks), SchedMode::Chaos(seed), f)
}

/// Run `f` on every rank slot of `machine`: one thread per rank, mapped
/// node-major (the paper's process→node, thread→core mapping). The scheduler
/// comes from the `PUMI_PCU_SCHED` environment variable and the executor
/// width from `PUMI_PCU_WORKERS`.
pub fn execute_on<F, R>(machine: MachineModel, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_opts(machine, WorldOpts::default(), f)
}

/// [`execute_on`] with an explicit scheduling mode (overrides the
/// environment).
pub fn execute_on_sched<F, R>(machine: MachineModel, sched: SchedMode, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_opts(machine, WorldOpts::default().sched(sched), f)
}

/// [`execute_on`] with explicit world options: scheduling mode, executor
/// worker cap, and rank-thread stack size.
pub fn execute_opts<F, R>(machine: MachineModel, opts: WorldOpts, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    let nranks = machine.nranks();
    let workers = opts.resolved_workers(nranks);
    let world = Arc::new(WorldCore::new(machine, opts.sched, workers));

    let f = &f;
    let mut results: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|rank| {
                let world = Arc::clone(&world);
                let mut b = std::thread::Builder::new().name(format!("pcu-rank-{rank}"));
                if let Some(bytes) = opts.stack_size {
                    b = b.stack_size(bytes);
                }
                b.spawn_scoped(scope, move || {
                    let comm = Comm {
                        rank,
                        world: Arc::clone(&world),
                        stash: RefCell::new(Stash::default()),
                        coll_seq: Cell::new(0),
                        exchange_seq: Cell::new(0),
                    };
                    world.exec.acquire(&world.poisoned);
                    let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    world.exec.release();
                    if out.is_err() {
                        // Fail the whole world: peers blocked on this rank
                        // wake up and panic instead of waiting forever.
                        world.poison();
                    }
                    out
                })
                .expect("spawn rank thread")
            })
            .collect();
        for (slot, h) in results.iter_mut().zip(handles) {
            match h.join() {
                Ok(Ok(r)) => *slot = Some(r),
                Ok(Err(p)) | Err(p) => panic = panic.take().or(Some(p)),
            }
        }
    });
    if let Some(p) = panic {
        resume_unwind(p);
    }
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let r = execute(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.nranks(), 1);
            c.rank() + 10
        });
        assert_eq!(r, vec![10]);
    }

    #[test]
    fn ring_pass() {
        let n = 8;
        let out = execute(n, |c| {
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            c.send(next, 1, Bytes::from(vec![c.rank() as u8]));
            let (from, data) = c.recv(Some(prev), 1);
            assert_eq!(from, prev);
            data[0] as usize
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got, (rank + n - 1) % n);
        }
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = execute(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send(1, 2, Bytes::from_static(b"two"));
                c.send(1, 1, Bytes::from_static(b"one"));
                0
            } else {
                let (_, one) = c.recv(Some(0), 1);
                let (_, two) = c.recv(Some(0), 2);
                assert_eq!(&one[..], b"one");
                assert_eq!(&two[..], b"two");
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn recv_from_any_source() {
        let out = execute(3, |c| {
            if c.rank() == 0 {
                let (f1, _) = c.recv(None, 7);
                let (f2, _) = c.recv(None, 7);
                let mut v = vec![f1, f2];
                v.sort_unstable();
                v
            } else {
                c.send(0, 7, Bytes::from(vec![c.rank() as u8]));
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2]);
    }

    /// Any-source pops interleaved with source-addressed pops must still
    /// come out in arrival order per source (the stale-entry skip logic).
    #[test]
    fn mixed_addressing_preserves_per_source_fifo() {
        let out = execute(3, |c| {
            if c.rank() == 0 {
                // Wait until both peers' pairs are certainly stashed.
                c.barrier();
                let a1 = c.recv(Some(1), 9).1;
                // Cross-source arrival order is timing-dependent; what must
                // hold is FIFO within each source, across both pop flavours.
                let (f, b) = c.recv(None, 9);
                let rest: Vec<(usize, Bytes)> = (0..2).map(|_| c.recv(None, 9)).collect();
                let mut seq1: Vec<u8> = vec![a1[0]];
                let mut seq2 = Vec::new();
                for (src, d) in std::iter::once((f, b)).chain(rest) {
                    match src {
                        1 => seq1.push(d[0]),
                        2 => seq2.push(d[0]),
                        _ => unreachable!(),
                    }
                }
                assert_eq!(seq1, vec![10, 11]);
                assert_eq!(seq2, vec![20, 21]);
                true
            } else {
                let base = c.rank() as u8 * 10;
                c.send(0, 9, Bytes::from(vec![base]));
                c.send(0, 9, Bytes::from(vec![base + 1]));
                c.barrier();
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn traffic_metering_by_link_class() {
        let m = MachineModel::new(2, 2); // ranks 0,1 node0; 2,3 node1
        let reports = execute_on(m, |c| {
            if c.rank() == 0 {
                c.send(1, 1, Bytes::from(vec![0u8; 10])); // on-node
                c.send(2, 1, Bytes::from(vec![0u8; 20])); // off-node
            }
            if c.rank() == 1 {
                c.recv(Some(0), 1);
            }
            if c.rank() == 2 {
                c.recv(Some(0), 1);
            }
            // Everybody waits for traffic to settle via a p2p chain: only the
            // sender's counts matter and recv ordering guarantees them.
            c.traffic()
        });
        // At least the sends from rank 0 are visible in rank 0's snapshot.
        let r = &reports[0];
        assert_eq!(r.on_node_bytes, 10);
        assert_eq!(r.off_node_bytes, 20);
        assert_eq!(r.on_node_msgs, 1);
        assert_eq!(r.off_node_msgs, 1);
    }

    #[test]
    fn iprobe_sees_pending_message() {
        let out = execute(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, Bytes::from_static(b"x"));
                true
            } else {
                // Spin until the probe sees it (it was surely sent by then or
                // will be; probe drains the wire into the stash).
                while !c.iprobe(Some(0), 3) {
                    std::hint::spin_loop();
                }
                let (_, d) = c.recv(Some(0), 3);
                d[0] == b'x'
            }
        });
        assert!(out[1]);
    }

    #[test]
    #[should_panic]
    fn reserved_tag_rejected() {
        execute(1, |c| c.send(0, 0x8000_0001, Bytes::new()));
    }

    #[test]
    fn many_ranks_smoke() {
        // The paper tested 32 communicating threads on one BG/Q node.
        let m = MachineModel::new(1, 32);
        let out = execute_on(m, |c| {
            let peer = c.nranks() - 1 - c.rank();
            if peer != c.rank() {
                c.send(peer, 5, Bytes::from(vec![c.rank() as u8]));
                let (_, d) = c.recv(Some(peer), 5);
                d[0] as usize
            } else {
                c.rank()
            }
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got, 31 - rank);
        }
    }

    /// The multiplexed executor (fewer worker permits than ranks) must run
    /// blocking communication patterns to completion.
    #[test]
    fn multiplexed_executor_ring() {
        for workers in [1usize, 2, 3] {
            let n = 16;
            let opts = WorldOpts::default().workers(workers);
            let out = execute_opts(MachineModel::flat(n), opts, |c| {
                let next = (c.rank() + 1) % n;
                let prev = (c.rank() + n - 1) % n;
                for round in 0..3u32 {
                    c.send(next, round, Bytes::from(vec![c.rank() as u8]));
                    let (_, d) = c.recv(Some(prev), round);
                    assert_eq!(d[0] as usize, prev);
                    c.barrier();
                }
                c.allreduce_sum_u64(1)
            });
            assert!(out.iter().all(|&s| s == n as u64), "workers={workers}");
        }
    }

    /// A panicking rank must fail the whole world, not deadlock peers that
    /// are blocked waiting on it.
    #[test]
    #[should_panic]
    fn rank_panic_poisons_world() {
        execute(3, |c| {
            if c.rank() == 0 {
                panic!("rank 0 dies");
            }
            // These recvs can never be satisfied; poisoning must wake them.
            let _ = c.recv(Some(0), 1);
        });
    }

    /// Wide-world smoke at 256 ranks with small stacks: point-to-point,
    /// collectives, and the stash under a many-source fan-in.
    #[test]
    fn wide_world_fan_in() {
        let n = 256;
        let opts = WorldOpts::default().stack_size(256 * 1024);
        let out = execute_opts(MachineModel::flat(n), opts, |c| {
            if c.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..n - 1 {
                    let (_, d) = c.recv(None, 2);
                    sum += d[0] as u64;
                }
                sum
            } else {
                c.send(0, 2, Bytes::from(vec![1u8]));
                0
            }
        });
        assert_eq!(out[0], (n - 1) as u64);
    }

    /// Out-of-order tag consumption at width: 255 senders each send TAG_A
    /// then TAG_B, while rank 0 iprobe-polls for TAG_B first — so every
    /// TAG_A frame is pulled off the wire and stashed before it is wanted.
    /// The stash must hand the TAG_A frames back intact (by explicit source,
    /// in reverse rank order), and the reserved collective tag space must be
    /// unaffected by the churn.
    #[test]
    fn wide_world_out_of_order_tags_iprobe_and_collectives() {
        const TAG_A: u32 = 7;
        const TAG_B: u32 = 9;
        let n = 256;
        let opts = WorldOpts::default().stack_size(256 * 1024);
        let out = execute_opts(MachineModel::flat(n), opts, |c| {
            if c.rank() == 0 {
                // Consume TAG_B first via iprobe polling; drain_wire stashes
                // the earlier-sent TAG_A frames as a side effect.
                let mut b_sum = 0u64;
                let mut b_seen = 0usize;
                while b_seen < n - 1 {
                    if c.iprobe(None, TAG_B) {
                        let (src, d) = c.recv(None, TAG_B);
                        assert_eq!(d.len(), 8);
                        let v = u64::from_le_bytes(d[..].try_into().unwrap());
                        assert_eq!(v, (src as u64) * 3);
                        b_sum += v;
                        b_seen += 1;
                    }
                }
                // Now pull the stashed TAG_A frames by explicit source, in
                // reverse rank order (exercises pop_src + stale skipping).
                let mut a_sum = 0u64;
                for src in (1..n).rev() {
                    assert!(c.iprobe(Some(src), TAG_A), "stash lost rank {src}");
                    let (from, d) = c.recv(Some(src), TAG_A);
                    assert_eq!(from, src);
                    a_sum += u64::from_le_bytes(d[..].try_into().unwrap());
                }
                assert!(!c.iprobe(None, TAG_A));
                assert!(!c.iprobe(None, TAG_B));
                a_sum + b_sum
            } else {
                let r = c.rank() as u64;
                c.send(0, TAG_A, Bytes::from(r.to_le_bytes().to_vec()));
                c.send(0, TAG_B, Bytes::from((r * 3).to_le_bytes().to_vec()));
                0
            }
        });
        let expect: u64 = (1..n as u64).map(|r| r * 4).sum();
        assert_eq!(out[0], expect);

        // Collective tags after heavy stash traffic in the same world: the
        // reserved tag space (0x8000_0000 | seq) must still line up on all
        // ranks after user-tag stashing.
        let opts = WorldOpts::default().stack_size(256 * 1024);
        let sums = execute_opts(MachineModel::flat(n), opts, |c| {
            if c.rank() != 0 {
                c.send(0, TAG_A, Bytes::from(vec![0u8; 4]));
            } else {
                for _ in 0..n - 1 {
                    let _ = c.recv(None, TAG_A);
                }
            }
            let s = c.allreduce_sum_u64(c.rank() as u64);
            c.barrier();
            s
        });
        let expect: u64 = (0..n as u64).sum();
        assert!(sums.iter().all(|&s| s == expect));
    }
}
