//! The simulated message-passing world.
//!
//! [`execute`] spawns one OS thread per rank and hands each a [`Comm`]. Ranks
//! may only exchange serialized bytes through `Comm` — there is no shared
//! mutable state — so algorithms written against this API are directly
//! portable to real MPI. This is the substitution for the paper's Blue Gene/Q
//! MPI runtime (see DESIGN.md).

use crate::machine::{LinkClass, MachineModel, TrafficCounters, TrafficReport};
use crate::sched::SchedMode;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pumi_util::FxHashMap;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

/// Highest tag value available to users; larger tags are reserved for
/// collectives.
pub const MAX_USER_TAG: u32 = 0x7FFF_FFFF;

#[derive(Debug)]
pub(crate) struct Envelope {
    pub from: usize,
    pub tag: u32,
    pub data: Bytes,
}

/// Out-of-order messages awaiting a matching recv, indexed by tag so the
/// receive path never re-scans unrelated stashed traffic. Queues preserve
/// arrival order per tag; an emptied tag's entry is removed immediately
/// (collective tags are never reused, so stale entries would otherwise
/// accumulate forever).
#[derive(Debug, Default)]
struct Mailbox {
    queues: FxHashMap<u32, VecDeque<(usize, Bytes)>>,
}

impl Mailbox {
    fn push(&mut self, e: Envelope) {
        self.queues
            .entry(e.tag)
            .or_default()
            .push_back((e.from, e.data));
    }

    /// Pop the first stashed message matching `(from, tag)`.
    fn pop(&mut self, from: Option<usize>, tag: u32) -> Option<(usize, Bytes)> {
        let q = self.queues.get_mut(&tag)?;
        let i = match from {
            None => 0,
            Some(f) => q.iter().position(|&(src, _)| src == f)?,
        };
        let msg = q.remove(i)?;
        if q.is_empty() {
            self.queues.remove(&tag);
        }
        Some(msg)
    }

    fn has(&self, from: Option<usize>, tag: u32) -> bool {
        self.queues.get(&tag).is_some_and(|q| match from {
            None => true,
            Some(f) => q.iter().any(|&(src, _)| src == f),
        })
    }

    /// Remove and return the whole queue for `tag` (arrival order).
    fn take_tag(&mut self, tag: u32) -> VecDeque<(usize, Bytes)> {
        self.queues.remove(&tag).unwrap_or_default()
    }
}

/// Per-rank communicator handle.
///
/// `Comm` is `Send` (it moves into its rank's thread) but deliberately not
/// shared between threads: each rank owns exactly one.
pub struct Comm {
    rank: usize,
    nranks: usize,
    machine: MachineModel,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Out-of-order messages awaiting a matching recv.
    mailbox: RefCell<Mailbox>,
    /// Monotonic collective sequence number; identical across ranks because
    /// collectives are called in SPMD order.
    pub(crate) coll_seq: Cell<u32>,
    /// Monotonic count of completed phased exchanges. Unlike `coll_seq` it
    /// advances exactly once per exchange regardless of routing (direct
    /// consumes one tag per phase, two-level three), so chaos permutations
    /// seeded from it are routing-invariant.
    pub(crate) exchange_seq: Cell<u32>,
    /// Frame-delivery scheduling for phased exchanges in this world.
    sched: SchedMode,
    counters: TrafficCounters,
}

impl Comm {
    /// This rank's id in `0..nranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The machine model this world runs on.
    #[inline]
    pub fn machine(&self) -> MachineModel {
        self.machine
    }

    /// The node hosting this rank.
    #[inline]
    pub fn node(&self) -> usize {
        self.machine.node_of(self.rank)
    }

    /// Classify the link from this rank to `other`.
    #[inline]
    pub fn link_to(&self, other: usize) -> LinkClass {
        self.machine.link(self.rank, other)
    }

    /// The frame-delivery scheduling mode of this world (see
    /// [`crate::sched::SchedMode`]).
    #[inline]
    pub fn sched(&self) -> SchedMode {
        self.sched
    }

    /// Number of phased exchanges completed on this communicator — the
    /// phase index layered exchanges feed to
    /// [`crate::sched::ChaosRng::for_phase`] for their own reproducible
    /// permutations.
    #[inline]
    pub fn exchanges_completed(&self) -> u32 {
        self.exchange_seq.get()
    }

    /// Send `data` to rank `to` with a user `tag`.
    ///
    /// # Panics
    /// Panics if `tag` exceeds [`MAX_USER_TAG`] or `to` is out of range.
    pub fn send(&self, to: usize, tag: u32, data: Bytes) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.send_raw(to, tag, data);
    }

    pub(crate) fn send_raw(&self, to: usize, tag: u32, data: Bytes) {
        self.forward_raw(self.rank, to, tag, data);
    }

    /// Send on behalf of `origin`: the receiver sees the envelope as coming
    /// from `origin`, not from this rank. Used by the two-level exchange
    /// relay to re-deliver sub-buffers transparently; traffic is metered on
    /// the physical link (this rank → `to`).
    pub(crate) fn forward_raw(&self, origin: usize, to: usize, tag: u32, data: Bytes) {
        let link = self.machine.link(self.rank, to);
        self.counters.record(link, data.len());
        // Per-phase metering: the same message lands in the obs registry
        // under the sender's current span path (no-op without `obs`).
        pumi_obs::metrics::record_traffic(link.to_obs(), data.len() as u64);
        self.senders[to]
            .send(Envelope {
                from: origin,
                tag,
                data,
            })
            .expect("peer rank hung up");
    }

    /// Blocking receive of a message matching `from` (or any source if
    /// `None`) and `tag`. Returns `(source, data)`.
    pub fn recv(&self, from: Option<usize>, tag: u32) -> (usize, Bytes) {
        assert!(tag <= MAX_USER_TAG, "tag {tag:#x} is reserved");
        self.recv_raw(from, tag)
    }

    pub(crate) fn recv_raw(&self, from: Option<usize>, tag: u32) -> (usize, Bytes) {
        // First satisfy from the mailbox (indexed by tag: no linear re-scan
        // of unrelated stashed traffic).
        if let Some(msg) = self.mailbox.borrow_mut().pop(from, tag) {
            return msg;
        }
        // Then block on the wire, stashing non-matching arrivals.
        loop {
            let e = self
                .receiver
                .recv()
                .expect("world torn down while receiving");
            if e.tag == tag && from.is_none_or(|f| f == e.from) {
                return (e.from, e.data);
            }
            self.mailbox.borrow_mut().push(e);
        }
    }

    /// Non-blocking probe: is a message matching `(from, tag)` available?
    pub fn iprobe(&self, from: Option<usize>, tag: u32) -> bool {
        if self.mailbox.borrow().has(from, tag) {
            return true;
        }
        // Drain whatever is on the wire into the mailbox, then re-check.
        self.drain_wire();
        self.mailbox.borrow().has(from, tag)
    }

    /// Move every message currently on the wire into the mailbox.
    pub(crate) fn drain_wire(&self) {
        let mut mailbox = self.mailbox.borrow_mut();
        while let Ok(e) = self.receiver.try_recv() {
            mailbox.push(e);
        }
    }

    /// Remove and return every stashed message with `tag`, in arrival
    /// order. Callers must have established (e.g. via a barrier) that no
    /// more messages with this tag are in flight.
    pub(crate) fn take_tag(&self, tag: u32) -> VecDeque<(usize, Bytes)> {
        self.mailbox.borrow_mut().take_tag(tag)
    }

    /// Traffic totals for the whole world (shared counters).
    pub fn traffic(&self) -> TrafficReport {
        self.counters.report()
    }

    /// Reset the world traffic meters (e.g. between bench phases).
    pub fn reset_traffic(&self) {
        self.counters.reset();
    }

    pub(crate) fn next_coll_tag(&self) -> u32 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1));
        // Collective tags live above MAX_USER_TAG.
        0x8000_0000 | (seq & 0x3FFF_FFFF)
    }
}

/// Run `f` on every rank of a machine with `nranks` single-core nodes
/// (pure-MPI view). Returns each rank's result, indexed by rank.
pub fn execute<F, R>(nranks: usize, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_on(MachineModel::flat(nranks), f)
}

/// Run `f` on every rank of a flat machine under the chaos scheduler with
/// `seed`, regardless of `PUMI_PCU_SCHED`. The determinism suite uses this to
/// compare runs under several seeds within one process.
pub fn execute_chaos<F, R>(nranks: usize, seed: u64, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_on_sched(MachineModel::flat(nranks), SchedMode::Chaos(seed), f)
}

/// Run `f` on every rank slot of `machine`: one thread per rank, mapped
/// node-major (the paper's process→node, thread→core mapping). The scheduler
/// comes from the `PUMI_PCU_SCHED` environment variable.
pub fn execute_on<F, R>(machine: MachineModel, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    execute_on_sched(machine, SchedMode::from_env(), f)
}

/// [`execute_on`] with an explicit scheduling mode (overrides the
/// environment).
pub fn execute_on_sched<F, R>(machine: MachineModel, sched: SchedMode, f: F) -> Vec<R>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    let nranks = machine.nranks();
    let counters = TrafficCounters::default();
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..nranks).map(|_| unbounded()).unzip();

    let comms: Vec<Comm> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| Comm {
            rank,
            nranks,
            machine,
            senders: senders.clone(),
            receiver,
            mailbox: RefCell::new(Mailbox::default()),
            coll_seq: Cell::new(0),
            exchange_seq: Cell::new(0),
            sched,
            counters: counters.clone(),
        })
        .collect();
    drop(senders);

    let f = &f;
    let mut out: Vec<Option<R>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(move || f(&comm)))
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank thread panicked"));
        }
    });
    out.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let r = execute(1, |c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.nranks(), 1);
            c.rank() + 10
        });
        assert_eq!(r, vec![10]);
    }

    #[test]
    fn ring_pass() {
        let n = 8;
        let out = execute(n, |c| {
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            c.send(next, 1, Bytes::from(vec![c.rank() as u8]));
            let (from, data) = c.recv(Some(prev), 1);
            assert_eq!(from, prev);
            data[0] as usize
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got, (rank + n - 1) % n);
        }
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = execute(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send(1, 2, Bytes::from_static(b"two"));
                c.send(1, 1, Bytes::from_static(b"one"));
                0
            } else {
                let (_, one) = c.recv(Some(0), 1);
                let (_, two) = c.recv(Some(0), 2);
                assert_eq!(&one[..], b"one");
                assert_eq!(&two[..], b"two");
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn recv_from_any_source() {
        let out = execute(3, |c| {
            if c.rank() == 0 {
                let (f1, _) = c.recv(None, 7);
                let (f2, _) = c.recv(None, 7);
                let mut v = vec![f1, f2];
                v.sort_unstable();
                v
            } else {
                c.send(0, 7, Bytes::from(vec![c.rank() as u8]));
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2]);
    }

    #[test]
    fn traffic_metering_by_link_class() {
        let m = MachineModel::new(2, 2); // ranks 0,1 node0; 2,3 node1
        let reports = execute_on(m, |c| {
            if c.rank() == 0 {
                c.send(1, 1, Bytes::from(vec![0u8; 10])); // on-node
                c.send(2, 1, Bytes::from(vec![0u8; 20])); // off-node
            }
            if c.rank() == 1 {
                c.recv(Some(0), 1);
            }
            if c.rank() == 2 {
                c.recv(Some(0), 1);
            }
            // Everybody waits for traffic to settle via a p2p chain: only the
            // sender's counts matter and recv ordering guarantees them.
            c.traffic()
        });
        // At least the sends from rank 0 are visible in rank 0's snapshot.
        let r = &reports[0];
        assert_eq!(r.on_node_bytes, 10);
        assert_eq!(r.off_node_bytes, 20);
        assert_eq!(r.on_node_msgs, 1);
        assert_eq!(r.off_node_msgs, 1);
    }

    #[test]
    fn iprobe_sees_pending_message() {
        let out = execute(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, Bytes::from_static(b"x"));
                true
            } else {
                // Spin until the probe sees it (it was surely sent by then or
                // will be; probe drains the wire into the stash).
                while !c.iprobe(Some(0), 3) {
                    std::hint::spin_loop();
                }
                let (_, d) = c.recv(Some(0), 3);
                d[0] == b'x'
            }
        });
        assert!(out[1]);
    }

    #[test]
    #[should_panic]
    fn reserved_tag_rejected() {
        execute(1, |c| c.send(0, 0x8000_0001, Bytes::new()));
    }

    #[test]
    fn many_ranks_smoke() {
        // The paper tested 32 communicating threads on one BG/Q node.
        let m = MachineModel::new(1, 32);
        let out = execute_on(m, |c| {
            let peer = c.nranks() - 1 - c.rank();
            if peer != c.rank() {
                c.send(peer, 5, Bytes::from(vec![c.rank() as u8]));
                let (_, d) = c.recv(Some(peer), 5);
                d[0] as usize
            } else {
                c.rank()
            }
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(*got, 31 - rank);
        }
    }
}
