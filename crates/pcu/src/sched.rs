//! The seeded chaos scheduler.
//!
//! The simulated transport delivers messages in one fixed order per run, so
//! latent order-dependence bugs in the algorithms above (migration, ghosting,
//! field sync, ParMA) stay hidden. [`SchedMode::Chaos`] makes delivery order
//! adversarial *and reproducible*: frame arrival order is shuffled with a
//! seeded generator, relay and direct frames interleave under two-level
//! routing, and random yields perturb thread interleaving. Two runs with the
//! same seed perturb identically; two runs with different seeds must still
//! produce identical meshes, field bytes, and per-phase traffic — the
//! determinism suite and `pumi-check` key on this.
//!
//! Selection: `PUMI_PCU_SCHED=chaos:<seed>` process-wide (read once), or
//! per-world via [`crate::comm::execute_chaos`], or per-exchange via
//! `ExchangeOpts::sched`.

use std::sync::OnceLock;

/// How the exchange layer orders frame delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Frames are delivered sorted by source (bitwise-reproducible runs).
    #[default]
    Deterministic,
    /// Frame order is shuffled by a seeded generator and random yields are
    /// injected. Reproducible per seed; adversarial across seeds.
    Chaos(u64),
}

impl SchedMode {
    /// The process-wide default, read once from the `PUMI_PCU_SCHED`
    /// environment variable. Grammar: `chaos:<u64 seed>` selects chaos
    /// scheduling; anything else, or unset, selects deterministic order.
    pub fn from_env() -> SchedMode {
        static MODE: OnceLock<SchedMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("PUMI_PCU_SCHED") {
            Ok(v) => match v.strip_prefix("chaos:").map(str::parse::<u64>) {
                Some(Ok(seed)) => SchedMode::Chaos(seed),
                _ => SchedMode::Deterministic,
            },
            Err(_) => SchedMode::Deterministic,
        })
    }

    /// Whether this mode perturbs delivery order.
    pub fn is_chaos(&self) -> bool {
        matches!(self, SchedMode::Chaos(_))
    }
}

/// Seeded splitmix64 generator — small, fast, and good enough for shuffles;
/// implemented here so the runtime takes no RNG dependency. Public so
/// higher layers (e.g. the part-addressed exchange) can derive their own
/// reproducible permutations from the same (seed, phase, rank) triple.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator for one exchange phase: mixes the world seed, the phase's
    /// exchange sequence number, and the rank, so every (seed, phase,
    /// rank) triple shuffles independently but reproducibly.
    pub fn for_phase(seed: u64, phase: u32, rank: usize) -> ChaosRng {
        let mut rng = ChaosRng(
            seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (rank as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        rng.next_u64(); // discard the correlated first output
        rng
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.below(i + 1));
        }
    }

    /// Yield the thread with probability 1/4 — perturbs rank interleaving
    /// without slowing a phase down measurably.
    pub fn maybe_yield(&mut self) {
        if self.next_u64() & 3 == 0 {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_shuffle() {
        let shuffle_with = |seed, phase, rank| {
            let mut v: Vec<u32> = (0..32).collect();
            ChaosRng::for_phase(seed, phase, rank).shuffle(&mut v);
            v
        };
        assert_eq!(shuffle_with(9, 4, 2), shuffle_with(9, 4, 2));
        assert_ne!(shuffle_with(9, 4, 2), shuffle_with(10, 4, 2));
        assert_ne!(shuffle_with(9, 4, 2), shuffle_with(9, 5, 2));
        assert_ne!(shuffle_with(9, 4, 2), shuffle_with(9, 4, 3));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        ChaosRng::for_phase(1, 0, 0).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mode_queries() {
        assert!(!SchedMode::Deterministic.is_chaos());
        assert!(SchedMode::Chaos(7).is_chaos());
        assert_eq!(SchedMode::default(), SchedMode::Deterministic);
    }
}
