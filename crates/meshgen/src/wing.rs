//! The ONERA-M6-proxy wing-flow domain mesher (Fig 13's workload).
//!
//! The shock-adaptation experiment needs a flow box around a swept wing with
//! an oblique shock plane. The element-imbalance phenomenon of Fig 13 is
//! driven by *where the size field demands refinement*, not by the airfoil
//! geometry itself, so the domain is the wing-proportioned box of
//! [`pumi_geom::builders::wing_box`] and the shock carried by
//! [`shock_plane_distance`]-based size fields in `pumi-adapt`.

use crate::boxmesh::tet_box;
use pumi_mesh::Mesh;

/// Span, chord, and height of the wing flow box.
pub const WING_DIMS: (f64, f64, f64) = (1.2, 0.8, 0.6);

/// Build the wing flow-box tet mesh at the given lattice resolution.
pub fn wing_tet(nx: usize, ny: usize, nz: usize) -> Mesh {
    let (a, b, c) = WING_DIMS;
    tet_box(nx, ny, nz, a, b, c)
}

/// Signed distance to the oblique shock plane attached to the wing leading
/// edge: the plane passes through `(0, 0.25, 0)` with normal `n` tilted in
/// the chord/vertical plane — points with `|distance|` small are in the
/// shock region that analysis-driven adaptation refines.
pub fn shock_plane_distance(p: [f64; 3]) -> f64 {
    // Unit normal of a ~35° oblique shock in the (y, z) plane, swept in x.
    let n = [0.15, 0.819, 0.554];
    let origin = [0.0, 0.25, 0.0];
    (p[0] - origin[0]) * n[0] + (p[1] - origin[1]) * n[1] + (p[2] - origin[2]) * n[2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_util::Dim;

    #[test]
    fn wing_mesh_valid() {
        let m = wing_tet(4, 3, 2);
        assert_eq!(m.count(Dim::Region), 6 * 4 * 3 * 2);
        m.assert_valid();
        assert_eq!(m.count_unclassified(), 0);
    }

    #[test]
    fn shock_plane_splits_domain() {
        let m = wing_tet(6, 6, 6);
        let mut pos = 0usize;
        let mut neg = 0usize;
        for v in m.iter(Dim::Vertex) {
            if shock_plane_distance(m.coords(v)) > 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        // The plane passes through the box: both sides populated.
        assert!(
            pos > 20 && neg > 20,
            "shock plane misses the box: +{pos} -{neg}"
        );
    }
}
