//! The AAA-proxy vessel mesher.
//!
//! The paper's headline ParMA experiment (Tables I–III) runs on a 133M
//! tetrahedron mesh of an abdominal aortic aneurysm. We reproduce the domain
//! shape — a tube with a pronounced bulge — by mapping a Kuhn-subdivided box
//! lattice through a square-to-disk map scaled by the vessel's radius
//! profile. Classification is decided in the box parameter space (where
//! boundary tests are exact) and expressed in the vessel model's entities,
//! so boundary snapping against [`pumi_geom::builders::vessel`] works during
//! adaptation.

use crate::boxmesh::tet_box_unclassified;
use pumi_geom::builders::{classify_vessel, VesselSpec, CLASSIFY_EPS};
use pumi_geom::GeomEnt;
use pumi_mesh::Mesh;
use pumi_util::{Dim, MeshEnt};

/// Concentric square-to-disk map: `(u, v) ∈ [-1,1]²` → unit disk, preserving
/// the max-norm "rings" (so lattice shells become circles).
fn square_to_disk(u: f64, v: f64) -> (f64, f64) {
    let m = u.abs().max(v.abs());
    if m < 1e-15 {
        return (0.0, 0.0);
    }
    let norm = (u * u + v * v).sqrt();
    (u * m / norm, v * m / norm)
}

/// Classify a point of the parameter box `[0,1]² × [0,length]` into the
/// vessel model's entities (wall/caps/rims/interior).
fn classify_param(spec: &VesselSpec, p: [f64; 3]) -> GeomEnt {
    let on_wall = p[0] < CLASSIFY_EPS
        || (p[0] - 1.0).abs() < CLASSIFY_EPS
        || p[1] < CLASSIFY_EPS
        || (p[1] - 1.0).abs() < CLASSIFY_EPS;
    classify_vessel(spec, p, on_wall)
}

/// Build a tetrahedral vessel mesh with `nr × nr` cross-section resolution
/// and `nz` axial layers. Element count = `6 * nr² * nz`.
pub fn vessel_tet(spec: VesselSpec, nr: usize, nz: usize) -> Mesh {
    // 1. Lattice + elements in parameter space, vertices classified there.
    let mut m = tet_box_unclassified(nr, nr, nz, 1.0, 1.0, spec.length, &|p| {
        classify_param(&spec, p)
    });
    // 2. Edge/face classification, still in parameter space (planar tests
    //    are exact here).
    let interior = GeomEnt::new(Dim::Region, 1);
    m.derive_classification(interior, &|p| classify_param(&spec, p));
    // 3. Map coordinates: square cross-section -> disk of radius R(z).
    let verts: Vec<MeshEnt> = m.iter(Dim::Vertex).collect();
    for v in verts {
        let p = m.coords(v);
        let (du, dv) = square_to_disk(2.0 * p[0] - 1.0, 2.0 * p[1] - 1.0);
        let r = spec.radius_at(p[2]);
        m.set_coords(v, [r * du, r * dv, p[2]]);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_to_disk_preserves_rings() {
        // Corners and edge midpoints of the square land on the unit circle.
        for (u, v) in [(1.0, 1.0), (1.0, 0.0), (-1.0, 0.5), (0.3, -1.0)] {
            let (x, y) = square_to_disk(u, v);
            let m = u.abs().max(v.abs());
            assert!(
                ((x * x + y * y).sqrt() - m).abs() < 1e-12,
                "ring radius broken for ({u},{v})"
            );
        }
        assert_eq!(square_to_disk(0.0, 0.0), (0.0, 0.0));
    }

    #[test]
    fn vessel_counts_and_validity() {
        let spec = VesselSpec::aaa();
        let m = vessel_tet(spec, 4, 6);
        assert_eq!(m.count(Dim::Region), 6 * 4 * 4 * 6);
        m.assert_valid();
        assert_eq!(m.count_unclassified(), 0);
    }

    #[test]
    fn wall_vertices_on_radius_profile() {
        let spec = VesselSpec::aaa();
        let m = vessel_tet(spec, 4, 8);
        let wall = GeomEnt::new(Dim::Face, 1);
        let mut n = 0;
        for v in m.iter_classified(Dim::Vertex, wall) {
            let p = m.coords(v);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let want = spec.radius_at(p[2]);
            assert!(
                (r - want).abs() < 1e-9,
                "wall vertex at radius {r}, profile says {want}"
            );
            n += 1;
        }
        assert!(n > 0, "no wall vertices found");
    }

    #[test]
    fn rim_vertices_classified() {
        let spec = VesselSpec::aaa();
        let m = vessel_tet(spec, 4, 6);
        let rim_in = GeomEnt::new(Dim::Edge, 1);
        let rim_out = GeomEnt::new(Dim::Edge, 2);
        // Perimeter of the 4x4 parameter lattice: 16 vertices per rim.
        assert_eq!(m.iter_classified(Dim::Vertex, rim_in).count(), 16);
        assert_eq!(m.iter_classified(Dim::Vertex, rim_out).count(), 16);
        for v in m.iter_classified(Dim::Vertex, rim_in) {
            assert!(m.coords(v)[2].abs() < 1e-12);
        }
    }

    #[test]
    fn caps_classified() {
        let spec = VesselSpec::aaa();
        let m = vessel_tet(spec, 4, 6);
        let inlet = GeomEnt::new(Dim::Face, 2);
        let outlet = GeomEnt::new(Dim::Face, 3);
        // Interior cap vertices: (nr-1)^2 lattice points.
        assert_eq!(m.iter_classified(Dim::Vertex, inlet).count(), 9);
        assert_eq!(m.iter_classified(Dim::Vertex, outlet).count(), 9);
        // Cap faces exist.
        assert!(m.iter_classified(Dim::Face, inlet).count() > 0);
    }

    #[test]
    fn bulge_widens_mid_vessel() {
        let spec = VesselSpec::aaa();
        let m = vessel_tet(spec, 6, 12);
        let wall = GeomEnt::new(Dim::Face, 1);
        let mut r_near_bulge: f64 = 0.0;
        let mut r_near_inlet = f64::MAX;
        for v in m.iter_classified(Dim::Vertex, wall) {
            let p = m.coords(v);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            if (p[2] - 6.0).abs() < 0.6 {
                r_near_bulge = r_near_bulge.max(r);
            }
            if p[2] < 1.0 {
                r_near_inlet = r_near_inlet.min(r);
            }
        }
        assert!(r_near_bulge > 1.8, "bulge missing: {r_near_bulge}");
        assert!(r_near_inlet < 1.1);
    }
}
