//! Mesh generators for the experiment domains.
//!
//! The paper's meshes come from CAD models plus SCOREC/Simmetrix mesh
//! generation; this crate provides the synthetic equivalents (see DESIGN.md
//! substitution table):
//!
//! * [`boxmesh`] — triangulated rectangles, Kuhn-subdivided tet boxes, and
//!   structured quad/hex meshes (the non-simplex topology paths),
//! * [`vessel`] — the AAA-proxy bulged-tube tet mesh (Tables I–III),
//! * [`wing`] — the ONERA-M6-proxy flow box with its oblique shock plane
//!   (Fig 13),
//! * [`unstructure`] — randomized jitter to break lattice regularity.
//!
//! All generators produce fully classified meshes consistent with the
//! matching `pumi_geom::builders` models and are deterministic.

pub mod boxmesh;
pub mod unstructure;
pub mod vessel;
pub mod wing;

pub use boxmesh::{hex_box, quad_rect, tet_box, tri_rect};
pub use unstructure::jitter;
pub use vessel::vessel_tet;
pub use wing::{shock_plane_distance, wing_tet};
