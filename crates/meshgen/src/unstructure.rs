//! De-structuring passes.
//!
//! Lattice meshes are too regular to exercise partitioners the way real CFD
//! meshes do — every part would have identical entity ratios. [`jitter`]
//! displaces interior vertices by a bounded random fraction of the local
//! edge length, breaking symmetry while provably keeping elements valid for
//! small amplitudes (the lattice guarantees a positive distance to
//! inversion).

use pumi_mesh::Mesh;
use pumi_util::{Dim, MeshEnt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Displace every vertex classified on the interior model entity by a
/// uniform random vector of magnitude ≤ `amplitude × (shortest adjacent
/// edge)/2`. Deterministic for a given `seed`.
pub fn jitter(mesh: &mut Mesh, amplitude: f64, seed: u64) {
    assert!(
        (0.0..0.5).contains(&amplitude),
        "amplitude must be in [0, 0.5) to keep elements valid"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let elem_dim = mesh.elem_dim();
    let verts: Vec<MeshEnt> = mesh.iter(Dim::Vertex).collect();
    for v in verts {
        let g = mesh.class_of(v);
        if g.dim().as_usize() != elem_dim {
            continue; // boundary vertex: keep the geometry exact
        }
        // Shortest adjacent edge length bounds the safe displacement.
        let p = mesh.coords(v);
        let mut min_len = f64::MAX;
        for e in mesh.adjacent(v, Dim::Edge) {
            let vs = mesh.verts_of(e);
            let other = if vs[0] == v.index() { vs[1] } else { vs[0] };
            let q = mesh.coords(MeshEnt::vertex(other));
            let d = ((p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2)).sqrt();
            min_len = min_len.min(d);
        }
        if !min_len.is_finite() {
            continue;
        }
        let r = amplitude * min_len / 2.0;
        let dx: [f64; 3] = [
            rng.gen_range(-r..=r),
            rng.gen_range(-r..=r),
            if elem_dim == 3 {
                rng.gen_range(-r..=r)
            } else {
                0.0
            },
        ];
        mesh.set_coords(v, [p[0] + dx[0], p[1] + dx[1], p[2] + dx[2]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxmesh::{tet_box, tri_rect};

    fn tet_volume(m: &Mesh, r: MeshEnt) -> f64 {
        let vs = m.verts_of(r);
        let p: Vec<[f64; 3]> = vs.iter().map(|&v| m.coords(MeshEnt::vertex(v))).collect();
        let u = [p[1][0] - p[0][0], p[1][1] - p[0][1], p[1][2] - p[0][2]];
        let v = [p[2][0] - p[0][0], p[2][1] - p[0][1], p[2][2] - p[0][2]];
        let w = [p[3][0] - p[0][0], p[3][1] - p[0][1], p[3][2] - p[0][2]];
        (u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
            + u[2] * (v[0] * w[1] - v[1] * w[0]))
            / 6.0
    }

    #[test]
    fn jitter_is_deterministic() {
        let mut a = tet_box(3, 3, 3, 1.0, 1.0, 1.0);
        let mut b = tet_box(3, 3, 3, 1.0, 1.0, 1.0);
        jitter(&mut a, 0.3, 42);
        jitter(&mut b, 0.3, 42);
        for v in a.iter(Dim::Vertex) {
            assert_eq!(a.coords(v), b.coords(v));
        }
    }

    #[test]
    fn jitter_moves_interior_only() {
        let mut m = tri_rect(4, 4, 1.0, 1.0);
        let before: Vec<_> = m.iter(Dim::Vertex).map(|v| m.coords(v)).collect();
        jitter(&mut m, 0.3, 7);
        let mut moved = 0;
        for (v, old) in m.iter(Dim::Vertex).zip(&before) {
            let now = m.coords(v);
            let g = m.class_of(v);
            if g.dim().as_usize() == 2 {
                if now != *old {
                    moved += 1;
                }
            } else {
                assert_eq!(now, *old, "boundary vertex moved");
            }
        }
        assert!(moved > 0, "no interior vertex moved");
    }

    #[test]
    fn jitter_keeps_tets_positive() {
        let mut m = tet_box(4, 4, 4, 1.0, 1.0, 1.0);
        // Record signed volumes before (Kuhn tets all positively oriented in
        // their own vertex order or consistently negative; record signs).
        let signs: Vec<f64> = m.elems().map(|r| tet_volume(&m, r).signum()).collect();
        jitter(&mut m, 0.25, 3);
        for (r, s) in m.elems().zip(signs) {
            let v = tet_volume(&m, r);
            assert!(v * s > 1e-12, "element inverted by jitter");
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn oversized_amplitude_rejected() {
        let mut m = tri_rect(2, 2, 1.0, 1.0);
        jitter(&mut m, 0.9, 0);
    }
}
