//! Structured-lattice simplicial meshers for rectangles and boxes.
//!
//! These stand in for the CAD + mesh-generation inputs of the paper's
//! experiments (DESIGN.md substitution table). The 3D box uses the Kuhn
//! subdivision — six tetrahedra per lattice cube following the vertex
//! permutation paths from (0,0,0) to (1,1,1) — which tiles space
//! conformally: neighbouring cubes agree on the diagonal of every shared
//! face, so the mesh is valid without any face matching pass.

use pumi_geom::builders::{classify_box, classify_rectangle};
use pumi_geom::GeomEnt;
use pumi_mesh::{Mesh, Topology};
use pumi_util::Dim;

/// Triangulate the rectangle `[0,w] × [0,h]` on an `nx × ny` lattice
/// (2 triangles per cell, alternating diagonals), with full geometric
/// classification against [`pumi_geom::builders::rectangle`].
pub fn tri_rect(nx: usize, ny: usize, w: f64, h: f64) -> Mesh {
    assert!(nx >= 1 && ny >= 1);
    let mut m = Mesh::new(2);
    let vid = |i: usize, j: usize| (j * (nx + 1) + i) as u32;
    for j in 0..=ny {
        for i in 0..=nx {
            let p = [w * i as f64 / nx as f64, h * j as f64 / ny as f64, 0.0];
            m.add_vertex(p, classify_rectangle(w, h, p));
        }
    }
    let interior = GeomEnt::new(Dim::Face, 1);
    for j in 0..ny {
        for i in 0..nx {
            let (a, b, c, d) = (vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1));
            if (i + j) % 2 == 0 {
                m.add_element(Topology::Triangle, &[a, b, c], interior);
                m.add_element(Topology::Triangle, &[a, c, d], interior);
            } else {
                m.add_element(Topology::Triangle, &[a, b, d], interior);
                m.add_element(Topology::Triangle, &[b, c, d], interior);
            }
        }
    }
    m.derive_classification(interior, &|p| classify_rectangle(w, h, p));
    m
}

/// The six Kuhn tetrahedra of the unit cube, as corner-bit paths. Corner
/// bits are (x | y<<1 | z<<2). Each row is a monotone path 0 → 7; odd
/// permutations have their middle corners swapped so every tetrahedron is
/// positively oriented.
const KUHN_PATHS: [[usize; 4]; 6] = [
    [0, 1, 3, 7], // x, y, z (even)
    [0, 5, 1, 7], // x, z, y (odd, swapped)
    [0, 3, 2, 7], // y, x, z (odd, swapped)
    [0, 2, 6, 7], // y, z, x (even)
    [0, 4, 5, 7], // z, x, y (even)
    [0, 6, 4, 7], // z, y, x (odd, swapped)
];

/// Tetrahedralize the box `[0,a] × [0,b] × [0,c]` on an `nx × ny × nz`
/// lattice (6 tets per cube, Kuhn subdivision), with full geometric
/// classification against [`pumi_geom::builders::box3d`].
pub fn tet_box(nx: usize, ny: usize, nz: usize, a: f64, b: f64, c: f64) -> Mesh {
    let mut m = tet_box_unclassified(nx, ny, nz, a, b, c, &|p| classify_box(a, b, c, p));
    let interior = GeomEnt::new(Dim::Region, 1);
    m.derive_classification(interior, &|p| classify_box(a, b, c, p));
    m
}

/// The lattice/tet construction of [`tet_box`] with a caller-supplied vertex
/// classifier and *no* edge/face classification derivation — used by the
/// vessel mesher, which classifies in parameter space before mapping.
pub fn tet_box_unclassified(
    nx: usize,
    ny: usize,
    nz: usize,
    a: f64,
    b: f64,
    c: f64,
    vertex_class: &dyn Fn([f64; 3]) -> GeomEnt,
) -> Mesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let mut m = Mesh::new(3);
    let vid = |i: usize, j: usize, k: usize| (k * (ny + 1) * (nx + 1) + j * (nx + 1) + i) as u32;
    for k in 0..=nz {
        for j in 0..=ny {
            for i in 0..=nx {
                let p = [
                    a * i as f64 / nx as f64,
                    b * j as f64 / ny as f64,
                    c * k as f64 / nz as f64,
                ];
                m.add_vertex(p, vertex_class(p));
            }
        }
    }
    let interior = GeomEnt::new(Dim::Region, 1);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let corner =
                    |bits: usize| vid(i + (bits & 1), j + ((bits >> 1) & 1), k + ((bits >> 2) & 1));
                for path in &KUHN_PATHS {
                    let verts = [
                        corner(path[0]),
                        corner(path[1]),
                        corner(path[2]),
                        corner(path[3]),
                    ];
                    m.add_element(Topology::Tet, &verts, interior);
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_rect_counts() {
        let m = tri_rect(4, 3, 2.0, 1.0);
        assert_eq!(m.count(Dim::Vertex), 5 * 4);
        assert_eq!(m.count(Dim::Face), 4 * 3 * 2);
        // Euler: V - E + F(including outer) = 2 -> E = V + F - 1 for planar
        // triangulation of a disk.
        assert_eq!(
            m.count(Dim::Edge),
            m.count(Dim::Vertex) + m.count(Dim::Face) - 1
        );
        m.assert_valid();
    }

    #[test]
    fn tri_rect_boundary_classification() {
        let m = tri_rect(4, 3, 2.0, 1.0);
        // Boundary vertex count: perimeter of the lattice.
        assert_eq!(m.count_classified(Dim::Vertex, Dim::Vertex), 4);
        assert_eq!(
            m.count_classified(Dim::Vertex, Dim::Edge),
            2 * (4 - 1) + 2 * (3 - 1)
        );
        // Boundary edges: 2*(nx+ny).
        assert_eq!(m.count_classified(Dim::Edge, Dim::Edge), 2 * (4 + 3));
        assert_eq!(m.count_unclassified(), 0);
    }

    #[test]
    fn kuhn_tets_tile_the_cube() {
        let m = tet_box(1, 1, 1, 1.0, 1.0, 1.0);
        assert_eq!(m.count(Dim::Vertex), 8);
        assert_eq!(m.count(Dim::Region), 6);
        // Kuhn subdivision of one cube: 18 faces? check via manifoldness and
        // boundary count: each cube face is split into 2 triangles -> 12
        // boundary faces; interior faces = (4*6 - 12)/2 = 6.
        let boundary = m.iter(Dim::Face).filter(|&f| m.is_boundary_side(f)).count();
        assert_eq!(boundary, 12);
        assert_eq!(m.count(Dim::Face), 18);
        m.assert_valid();
    }

    #[test]
    fn tet_box_conformity_across_cubes() {
        let m = tet_box(3, 2, 2, 3.0, 2.0, 2.0);
        assert_eq!(m.count(Dim::Region), 3 * 2 * 2 * 6);
        assert_eq!(m.count(Dim::Vertex), 4 * 3 * 3);
        // Conformity = every face bounds 1 or 2 regions; verify() checks ≤2,
        // and the boundary face count must equal 2 triangles per lattice
        // face on the surface.
        let surface_cells = 2 * (3 * 2 + 3 * 2 + 2 * 2);
        let boundary = m.iter(Dim::Face).filter(|&f| m.is_boundary_side(f)).count();
        assert_eq!(boundary, 2 * surface_cells);
        m.assert_valid();
    }

    #[test]
    fn tet_box_classification_counts() {
        let (nx, ny, nz) = (3usize, 3, 3);
        let m = tet_box(nx, ny, nz, 1.0, 1.0, 1.0);
        assert_eq!(m.count_unclassified(), 0);
        assert_eq!(m.count_classified(Dim::Vertex, Dim::Vertex), 8);
        // Vertices on model edges: 12 edges × (n-1) interior lattice points.
        assert_eq!(m.count_classified(Dim::Vertex, Dim::Edge), 12 * (nx - 1));
        // All regions interior.
        assert_eq!(
            m.count_classified(Dim::Region, Dim::Region),
            m.count(Dim::Region)
        );
    }

    #[test]
    fn tet_volumes_are_positive_and_fill_box() {
        let (a, b, c) = (2.0, 1.0, 1.5);
        let m = tet_box(2, 2, 2, a, b, c);
        let mut total = 0.0;
        for r in m.elems() {
            let vs = m.verts_of(r);
            let p: Vec<[f64; 3]> = vs
                .iter()
                .map(|&v| m.coords(pumi_util::MeshEnt::vertex(v)))
                .collect();
            let u = [p[1][0] - p[0][0], p[1][1] - p[0][1], p[1][2] - p[0][2]];
            let v = [p[2][0] - p[0][0], p[2][1] - p[0][1], p[2][2] - p[0][2]];
            let w = [p[3][0] - p[0][0], p[3][1] - p[0][1], p[3][2] - p[0][2]];
            let det = u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
                + u[2] * (v[0] * w[1] - v[1] * w[0]);
            let vol = det.abs() / 6.0;
            assert!(vol > 1e-12, "degenerate tet");
            total += vol;
        }
        assert!((total - a * b * c).abs() < 1e-9);
    }
}

/// Quadrilateral mesh of the rectangle `[0,w] × [0,h]` on an `nx × ny`
/// lattice — exercises the quad topology path of the representation (the
/// paper's mesh supports "any order mesh entity", not only simplices).
pub fn quad_rect(nx: usize, ny: usize, w: f64, h: f64) -> Mesh {
    assert!(nx >= 1 && ny >= 1);
    let mut m = Mesh::new(2);
    let vid = |i: usize, j: usize| (j * (nx + 1) + i) as u32;
    for j in 0..=ny {
        for i in 0..=nx {
            let p = [w * i as f64 / nx as f64, h * j as f64 / ny as f64, 0.0];
            m.add_vertex(p, classify_rectangle(w, h, p));
        }
    }
    let interior = GeomEnt::new(Dim::Face, 1);
    for j in 0..ny {
        for i in 0..nx {
            m.add_element(
                Topology::Quad,
                &[vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)],
                interior,
            );
        }
    }
    m.derive_classification(interior, &|p| classify_rectangle(w, h, p));
    m
}

/// Hexahedral mesh of the box `[0,a] × [0,b] × [0,c]` — exercises the hex
/// topology path (quad faces, 8-vertex regions).
pub fn hex_box(nx: usize, ny: usize, nz: usize, a: f64, b: f64, c: f64) -> Mesh {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let mut m = Mesh::new(3);
    let vid = |i: usize, j: usize, k: usize| (k * (ny + 1) * (nx + 1) + j * (nx + 1) + i) as u32;
    for k in 0..=nz {
        for j in 0..=ny {
            for i in 0..=nx {
                let p = [
                    a * i as f64 / nx as f64,
                    b * j as f64 / ny as f64,
                    c * k as f64 / nz as f64,
                ];
                m.add_vertex(p, classify_box(a, b, c, p));
            }
        }
    }
    let interior = GeomEnt::new(Dim::Region, 1);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                // Hex template: bottom quad 0..4, top quad 4..8 (see
                // Topology::Hex's down templates).
                let verts = [
                    vid(i, j, k),
                    vid(i + 1, j, k),
                    vid(i + 1, j + 1, k),
                    vid(i, j + 1, k),
                    vid(i, j, k + 1),
                    vid(i + 1, j, k + 1),
                    vid(i + 1, j + 1, k + 1),
                    vid(i, j + 1, k + 1),
                ];
                m.add_element(Topology::Hex, &verts, interior);
            }
        }
    }
    m.derive_classification(interior, &|p| classify_box(a, b, c, p));
    m
}

#[cfg(test)]
mod nonsimplex_tests {
    use super::*;

    #[test]
    fn quad_rect_counts_and_validity() {
        let m = quad_rect(4, 3, 2.0, 1.0);
        assert_eq!(m.count(Dim::Vertex), 5 * 4);
        assert_eq!(m.count(Dim::Face), 12);
        // Structured quad grid: edges = nx*(ny+1) + ny*(nx+1).
        assert_eq!(m.count(Dim::Edge), 4 * 4 + 3 * 5);
        m.assert_valid();
        assert_eq!(m.count_unclassified(), 0);
        // Boundary edges: the perimeter.
        assert_eq!(m.count_classified(Dim::Edge, Dim::Edge), 2 * (4 + 3));
        for e in m.elems() {
            assert_eq!(m.topo(e), Topology::Quad);
            assert_eq!(m.verts_of(e).len(), 4);
            assert_eq!(m.down_ents(e).len(), 4);
        }
    }

    #[test]
    fn hex_box_counts_and_validity() {
        let (nx, ny, nz) = (3usize, 2, 2);
        let m = hex_box(nx, ny, nz, 1.0, 1.0, 1.0);
        assert_eq!(m.count(Dim::Region), nx * ny * nz);
        assert_eq!(m.count(Dim::Vertex), 4 * 3 * 3);
        // Structured counts: faces and edges of a hex lattice.
        let faces = (nx + 1) * ny * nz + nx * (ny + 1) * nz + nx * ny * (nz + 1);
        assert_eq!(m.count(Dim::Face), faces);
        let edges = nx * (ny + 1) * (nz + 1) + (nx + 1) * ny * (nz + 1) + (nx + 1) * (ny + 1) * nz;
        assert_eq!(m.count(Dim::Edge), edges);
        m.assert_valid();
        assert_eq!(m.count_unclassified(), 0);
        // Interior faces bound exactly 2 hexes; boundary faces 1.
        let boundary = m.iter(Dim::Face).filter(|&f| m.is_boundary_side(f)).count();
        assert_eq!(boundary, 2 * (nx * ny + ny * nz + nx * nz));
    }

    #[test]
    fn hex_adjacency_queries() {
        let m = hex_box(2, 2, 2, 1.0, 1.0, 1.0);
        let center_v = m
            .iter(Dim::Vertex)
            .find(|&v| {
                let p = m.coords(v);
                (p[0] - 0.5).abs() < 1e-12
                    && (p[1] - 0.5).abs() < 1e-12
                    && (p[2] - 0.5).abs() < 1e-12
            })
            .unwrap();
        // The center vertex of a 2x2x2 hex lattice touches all 8 hexes.
        assert_eq!(m.adjacent(center_v, Dim::Region).len(), 8);
        assert_eq!(m.adjacent(center_v, Dim::Edge).len(), 6);
        // Each hex has 6 face neighbours or fewer (corner hexes have 3).
        for e in m.elems() {
            let n = m.adjacent(e, Dim::Region).len();
            assert!(
                n == 3,
                "2x2x2 corner hexes have exactly 3 neighbours, got {n}"
            );
        }
    }

    #[test]
    fn quad_mesh_distributes_and_migrates() {
        // The distributed stack is topology-agnostic: run a quad mesh
        // through distribute + migrate.
        use pumi_util::PartId;
        let serial = quad_rect(4, 4, 1.0, 1.0);
        let d = serial.elem_dim_t();
        let mut labels = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            labels[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
        }
        // meshgen cannot depend on pumi-core (cycle); the distributed quad
        // test lives in tests/workflow.rs-style integration. Here: verify
        // the partition-quality accounting path at least.
        let mut loads = [0usize; 2];
        for e in serial.iter(d) {
            loads[labels[e.idx()] as usize] += 1;
        }
        assert_eq!(loads, [8, 8]);
    }
}
