//! Priority lists (§III-A).
//!
//! "An application executing the multi-criteria partition improvement
//! procedure provides a priority list of mesh entity types to be balanced
//! such that the imbalance of higher priority entity types is not increased
//! while balancing a lower priority type." Lists are written the way the
//! paper writes them: `"Rgn > Face = Edge > Vtx"`, `"Vtx > Rgn"` (Table I).

use pumi_util::Dim;
use std::fmt;
use std::str::FromStr;

/// A parsed priority list: levels in decreasing priority; equal-priority
/// types within a level are "traversed in order of increasing topological
/// dimension".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Priority {
    /// Levels, highest priority first; each level's dims sorted ascending.
    pub levels: Vec<Vec<Dim>>,
}

impl Priority {
    /// Build from explicit levels.
    pub fn new(mut levels: Vec<Vec<Dim>>) -> Priority {
        for level in &mut levels {
            level.sort_unstable();
            level.dedup();
        }
        levels.retain(|l| !l.is_empty());
        assert!(!levels.is_empty(), "empty priority list");
        Priority { levels }
    }

    /// The balancing order: (dim, level index) pairs, levels first, dims
    /// ascending within a level.
    pub fn order(&self) -> Vec<(Dim, usize)> {
        self.levels
            .iter()
            .enumerate()
            .flat_map(|(li, dims)| dims.iter().map(move |&d| (d, li)))
            .collect()
    }

    /// All dims with priority strictly higher than level `li`, plus the
    /// already-balanced dims of level `li` before `d` — the types a later
    /// balancing stage must not harm.
    pub fn protected(&self, d: Dim, li: usize) -> Vec<Dim> {
        let mut out = Vec::new();
        for (lj, dims) in self.levels.iter().enumerate() {
            for &x in dims {
                if lj < li || (lj == li && x < d) {
                    out.push(x);
                }
            }
        }
        out
    }

    /// Dims with priority strictly *lower* than level `li` (used by the
    /// candidate-part rule).
    pub fn lesser(&self, li: usize) -> Vec<Dim> {
        self.levels
            .iter()
            .enumerate()
            .filter(|&(lj, _)| lj > li)
            .flat_map(|(_, dims)| dims.iter().copied())
            .collect()
    }

    /// Every dim mentioned anywhere in the list.
    pub fn all_dims(&self) -> Vec<Dim> {
        let mut v: Vec<Dim> = self.levels.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

fn parse_dim(tok: &str) -> Result<Dim, String> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "vtx" | "vertex" | "v" => Ok(Dim::Vertex),
        "edge" | "e" => Ok(Dim::Edge),
        "face" | "f" => Ok(Dim::Face),
        "rgn" | "region" | "r" => Ok(Dim::Region),
        other => Err(format!("unknown entity type '{other}'")),
    }
}

impl FromStr for Priority {
    type Err = String;

    /// Parse e.g. `"Vtx > Rgn"`, `"Edge=Face>Rgn"`.
    fn from_str(s: &str) -> Result<Priority, String> {
        let mut levels = Vec::new();
        for level in s.split('>') {
            let mut dims = Vec::new();
            for tok in level.split('=') {
                if tok.trim().is_empty() {
                    return Err(format!("empty entity type in '{s}'"));
                }
                dims.push(parse_dim(tok)?);
            }
            levels.push(dims);
        }
        if levels.is_empty() {
            return Err("empty priority list".into());
        }
        Ok(Priority::new(levels))
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |d: Dim| match d {
            Dim::Vertex => "Vtx",
            Dim::Edge => "Edge",
            Dim::Face => "Face",
            Dim::Region => "Rgn",
        };
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| l.iter().map(|&d| name(d)).collect::<Vec<_>>().join(" = "))
            .collect();
        write!(f, "{}", levels.join(" > "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_table1_tests() {
        // T1: Vtx > Rgn
        let p: Priority = "Vtx > Rgn".parse().unwrap();
        assert_eq!(p.levels, vec![vec![Dim::Vertex], vec![Dim::Region]]);
        // T2: Vtx = Edge > Rgn
        let p: Priority = "Vtx = Edge > Rgn".parse().unwrap();
        assert_eq!(
            p.levels,
            vec![vec![Dim::Vertex, Dim::Edge], vec![Dim::Region]]
        );
        // T4: Edge = Face > Rgn
        let p: Priority = "Edge=Face>Rgn".parse().unwrap();
        assert_eq!(
            p.levels,
            vec![vec![Dim::Edge, Dim::Face], vec![Dim::Region]]
        );
    }

    #[test]
    fn order_is_levels_then_ascending_dim() {
        let p: Priority = "Rgn > Face = Edge > Vtx".parse().unwrap();
        let order = p.order();
        assert_eq!(
            order,
            vec![
                (Dim::Region, 0),
                (Dim::Edge, 1),
                (Dim::Face, 1),
                (Dim::Vertex, 2)
            ]
        );
    }

    #[test]
    fn protected_sets() {
        let p: Priority = "Rgn > Face = Edge > Vtx".parse().unwrap();
        assert!(p.protected(Dim::Region, 0).is_empty());
        assert_eq!(p.protected(Dim::Edge, 1), vec![Dim::Region]);
        // Face is balanced after Edge within the level: Edge is protected.
        assert_eq!(p.protected(Dim::Face, 1), vec![Dim::Region, Dim::Edge]);
        assert_eq!(
            p.protected(Dim::Vertex, 2),
            vec![Dim::Region, Dim::Edge, Dim::Face]
        );
    }

    #[test]
    fn lesser_sets() {
        let p: Priority = "Vtx = Edge > Rgn".parse().unwrap();
        assert_eq!(p.lesser(0), vec![Dim::Region]);
        assert!(p.lesser(1).is_empty());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["Vtx > Rgn", "Vtx = Edge > Rgn", "Edge = Face > Rgn"] {
            let p: Priority = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
            let p2: Priority = p.to_string().parse().unwrap();
            assert_eq!(p, p2);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!("Vtx >> Rgn".parse::<Priority>().is_err());
        assert!("Blob".parse::<Priority>().is_err());
        assert!("".parse::<Priority>().is_err());
    }
}
