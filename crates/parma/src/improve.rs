//! Multi-criteria partition improvement (§III-A).
//!
//! "The ParMA partition improvement procedure traverses the priority list in
//! order of decreasing priority. For each mesh entity type the migration
//! schedule is computed, regions are selected for migration, and the regions
//! are migrated. These three steps form one iteration. When the application
//! defined imbalance is achieved, or the maximum number of iterations is
//! reached, the next mesh entity type is processed."

use crate::balance::EntityLoads;
use crate::candidates::{candidates_topo, schedule};
use crate::priority::Priority;
use crate::select::{HarmGuard, SelectRequest, Selector, TopoGate};
use crate::topo::TopologyOpts;
use pumi_check::CheckOpts;
use pumi_core::{migrate, DistMesh, MigrationPlan};
use pumi_pcu::Comm;
use pumi_util::stats::Timer;
use pumi_util::{Dim, FxHashMap, PartId};

/// Options for [`improve`].
#[derive(Debug, Clone, Copy)]
pub struct ImproveOpts {
    /// Target imbalance tolerance (0.05 = the paper's 5%).
    pub tol: f64,
    /// Maximum diffusion iterations per entity type.
    pub max_iters: usize,
    /// Print per-iteration progress to stderr.
    pub verbose: bool,
    /// Run the destination admission handshake (ablatable: without it,
    /// several heavy parts can overfill one destination in an iteration).
    pub handshake: bool,
    /// Let protected caps rise to the stage-entry peak (ablatable: without
    /// it, the repair stage deadlocks once a protected type sits above the
    /// tolerance).
    pub peak_caps: bool,
    /// Use the strict Fig 9 / small-cavity selection passes before the
    /// relaxed ones (ablatable: without them, selection takes arbitrary
    /// boundary elements and roughens part boundaries).
    pub strict_selection: bool,
    /// Run `pumi_check::check_dist` after every migration (collective;
    /// panics on the first violated invariant, naming the entity).
    pub check: Option<CheckOpts>,
    /// Topology awareness: prefer on-node candidates and gate migrations
    /// that create off-node boundary (see [`crate::topo`]). `None` (and any
    /// flat machine) keeps diffusion byte-identical to the blind path.
    pub topo: Option<TopologyOpts>,
}

impl Default for ImproveOpts {
    fn default() -> Self {
        ImproveOpts {
            tol: 0.05,
            max_iters: 30,
            verbose: false,
            handshake: true,
            peak_caps: true,
            strict_selection: true,
            check: None,
            topo: None,
        }
    }
}

/// Builder-style setters: `ImproveOpts::new().tol(0.05).handshake(false)`.
/// The fields stay public, so struct updates keep working too.
impl ImproveOpts {
    /// The paper's defaults (5% tolerance, all mechanisms on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the target imbalance tolerance (0.05 = 5%).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Set the per-type diffusion iteration cap.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }

    /// Toggle per-iteration progress on stderr.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// Toggle the destination admission handshake.
    pub fn handshake(mut self, on: bool) -> Self {
        self.handshake = on;
        self
    }

    /// Toggle stage-entry peak caps.
    pub fn peak_caps(mut self, on: bool) -> Self {
        self.peak_caps = on;
        self
    }

    /// Toggle the strict Fig 9 selection passes.
    pub fn strict_selection(mut self, on: bool) -> Self {
        self.strict_selection = on;
        self
    }

    /// Verify distributed invariants after every migration.
    pub fn check(mut self, opts: CheckOpts) -> Self {
        self.check = Some(opts);
        self
    }

    /// Make diffusion topology-aware against the given machine model.
    pub fn topo(mut self, topo: TopologyOpts) -> Self {
        self.topo = Some(topo);
        self
    }
}

/// Outcome for one balanced entity type.
#[derive(Debug, Clone, Copy)]
pub struct TypeReport {
    /// The entity dimension balanced.
    pub dim: Dim,
    /// Imbalance % before this stage.
    pub initial_pct: f64,
    /// Imbalance % after this stage.
    pub final_pct: f64,
    /// Diffusion iterations executed.
    pub iterations: usize,
}

/// Outcome of a full [`improve`] run.
#[derive(Debug, Clone)]
pub struct ImproveReport {
    /// Per-type results in balancing order.
    pub types: Vec<TypeReport>,
    /// Wall-clock seconds (whole run, max over ranks).
    pub seconds: f64,
    /// Total elements migrated.
    pub elements_moved: u64,
}

/// Run ParMA multi-criteria partition improvement. Collective.
pub fn improve(
    comm: &Comm,
    dm: &mut DistMesh,
    priority: &Priority,
    opts: ImproveOpts,
) -> ImproveReport {
    improve_inner(comm, dm, priority, opts, None)
}

/// [`improve`] against *weighted* element loads: the element-dimension load
/// of a part is the sum of the named per-element Real tag (missing entries
/// count 1.0) rather than the element count. This is the predictive
/// balancing entry point of §III-B — store `predict::element_weight` in the
/// tag and ParMA equalizes the *post-adaptation* load, preventing the
/// Fig 13 imbalance spike. The tag rides migration, so moved elements keep
/// their weights. Lower-dimension stages still balance plain counts.
/// Collective.
pub fn improve_weighted(
    comm: &Comm,
    dm: &mut DistMesh,
    priority: &Priority,
    opts: ImproveOpts,
    weight_tag: &str,
) -> ImproveReport {
    improve_inner(comm, dm, priority, opts, Some(weight_tag))
}

/// Threshold-gated [`improve`]: the post-adapt *touch-up* pass of the
/// speculative balancing flow (§III-B). Speculative pre-adapt rebalancing
/// migrates cheap coarse elements against the calibrated predicted load;
/// when the realized partition still lands outside `threshold_pct`
/// (prediction error, boundary-vetoed collapses), this runs a plain
/// count-based [`improve`] to mop up — and when the prediction was good,
/// it is a free no-op. Returns `None` when the measured imbalance of the
/// highest-priority entity dimension is already at or below the threshold.
/// Collective; the gate is computed from a world-identical gather, so
/// every rank takes the same path.
pub fn improve_above(
    comm: &Comm,
    dm: &mut DistMesh,
    priority: &Priority,
    opts: ImproveOpts,
    threshold_pct: f64,
) -> Option<ImproveReport> {
    let d = priority
        .order()
        .into_iter()
        .map(|(d, _)| d)
        .max_by_key(|d| d.as_usize())
        .expect("empty priority");
    let pct = EntityLoads::gather(comm, dm).imbalance_pct(d);
    if pct <= threshold_pct {
        return None;
    }
    Some(improve(comm, dm, priority, opts))
}

fn improve_inner(
    comm: &Comm,
    dm: &mut DistMesh,
    priority: &Priority,
    opts: ImproveOpts,
    weight: Option<&str>,
) -> ImproveReport {
    let gather = |comm: &Comm, dm: &DistMesh| match weight {
        Some(tag) => EntityLoads::gather_weighted(comm, dm, tag),
        None => EntityLoads::gather(comm, dm),
    };
    let _span = pumi_obs::span!("parma.improve");
    pumi_obs::parma::begin(&priority.to_string());
    let timer = Timer::start();
    let mut types = Vec::new();
    let mut elements_moved = 0u64;

    // Flat machines have no hierarchy: drop the topo options entirely so
    // the code path (and result) is identical to the blind one.
    let topo = opts.topo.filter(|t| !t.is_flat());
    // The part → node placement is fixed for the whole run (migration moves
    // entities between parts, never parts between ranks).
    let topo_nodes: Vec<u32> = match &topo {
        Some(t) => (0..dm.map.nparts())
            .map(|p| t.machine.node_of(dm.map.rank_of(p as PartId)) as u32)
            .collect(),
        None => Vec::new(),
    };

    for (d, li) in priority.order() {
        let protected = priority.protected(d, li);
        let lesser = priority.lesser(li);
        let mut guarded = protected.clone();
        guarded.push(d); // never create a fresh spike in the balanced type
                         // Lesser-priority types may be harmed (§III-A), but unboundedly
                         // harming them leaves the later stage unable to recover without
                         // violating this stage's result — so they get a loose cap.
        let loose_tol = (2.0 * opts.tol).max(0.10);
        let mut loose_guarded = lesser.clone();
        loose_guarded.retain(|x| !guarded.contains(x));
        let _stage_span = pumi_obs::span::enter(&format!("stage.{d}"));
        let entry_loads = gather(comm, dm);
        let initial_pct = entry_loads.imbalance_pct(d);
        pumi_obs::parma::stage_begin(&d.to_string(), initial_pct);
        let mut stop = pumi_obs::parma::StopReason::MaxIters;
        let mut final_pct;
        let mut iterations = 0usize;

        // Caps are frozen at stage entry. "No harm" means a protected
        // type's *stage-entry* peak may not be exceeded by any destination;
        // recomputing per iteration would let overfill ratchet the peak up.
        let caps = {
            let mut caps = [f64::INFINITY; 4];
            for &g in &loose_guarded {
                let peak = if opts.peak_caps {
                    entry_loads.stats(g).max
                } else {
                    0.0
                };
                caps[g.as_usize()] = (entry_loads.avg(g) * (1.0 + loose_tol)).max(peak);
            }
            for &g in &guarded {
                let peak = if opts.peak_caps {
                    entry_loads.stats(g).max
                } else {
                    0.0
                };
                caps[g.as_usize()] = (entry_loads.avg(g) * (1.0 + opts.tol)).max(peak);
            }
            // The balanced type itself must not spike anywhere new.
            caps[d.as_usize()] = entry_loads.avg(d) * (1.0 + opts.tol);
            caps
        };
        let all_guarded: Vec<Dim> = guarded
            .iter()
            .chain(loose_guarded.iter())
            .copied()
            .collect();

        let mut no_progress = 0usize;
        let mut prev_pct = f64::INFINITY;
        for _ in 0..opts.max_iters {
            let loads = gather(comm, dm);
            final_pct = loads.imbalance_pct(d);
            if loads.imbalance(d) <= 1.0 + opts.tol {
                stop = pumi_obs::parma::StopReason::Converged;
                break;
            }
            // Early stop when diffusion stops making headway (§III-B: such
            // stalls are what heavy part splitting exists for).
            if prev_pct - final_pct < 0.2 {
                no_progress += 1;
                if no_progress >= 3 {
                    stop = pumi_obs::parma::StopReason::Stagnated;
                    break;
                }
            } else {
                no_progress = 0;
            }
            prev_pct = final_pct;
            let heavy = loads.heavy_parts(d, opts.tol);
            // Local selection per heavy part, remembering the per-destination
            // gains for the admission handshake.
            type Request = (PartId, [f64; 4]); // (destination, per-dim gains)
            let mut proposals: Vec<(PartId, MigrationPlan, Vec<Request>)> = Vec::new();
            for part in &dm.parts {
                if !heavy.contains(&(part.id as usize)) {
                    continue;
                }
                let (cands, has_on_node) = candidates_topo(
                    part,
                    &loads,
                    d,
                    &lesser,
                    opts.tol,
                    topo.as_ref().map(|t| (t, &dm.map)),
                );
                let sched = schedule(&loads, d, part.id, &cands, opts.tol);
                if sched.is_empty() {
                    continue;
                }
                let gate = topo.as_ref().map(|t| TopoGate {
                    node_of_part: topo_nodes.clone(),
                    penalty: t.off_node_penalty,
                    relax: !has_on_node,
                });
                let mut sel = Selector::new(part)
                    .strict(opts.strict_selection)
                    .weighted(weight)
                    .topo(gate);
                let mut guard = HarmGuard::new(all_guarded.clone(), caps, d);
                let base = |q: PartId, dd: Dim| loads.of(dd)[q as usize];
                let mut dests: Vec<PartId> = Vec::new();
                for (q, quota) in sched {
                    sel.select(
                        SelectRequest {
                            target: d,
                            cand: q,
                            quota,
                        },
                        &mut guard,
                        base,
                    );
                    dests.push(q);
                }
                if sel.plan.is_empty() {
                    continue;
                }
                let requests: Vec<Request> = dests
                    .into_iter()
                    .map(|q| (q, guard.committed_gains(q, |dd| loads.of(dd)[q as usize])))
                    .collect();
                proposals.push((part.id, sel.plan, requests));
            }
            // Admission handshake: destinations grant requests in ascending
            // source order within their *full* remaining headroom (caps are
            // world-identical, so this is exact — no multi-source overfill).
            let mut ex = pumi_core::PartExchange::new(comm, &dm.map);
            for (from, _, requests) in &proposals {
                if !opts.handshake {
                    continue;
                }
                for (to, gains) in requests {
                    let w = ex.to(*from, *to);
                    for g in gains {
                        w.put_f64(*g);
                    }
                }
            }
            let mut granted_track: FxHashMap<PartId, [f64; 4]> = FxHashMap::default();
            let mut replies = pumi_core::PartExchange::new(comm, &dm.map);
            // Grants must be evaluated in ascending source order regardless
            // of frame arrival order, or the admitted set depends on the
            // scheduler.
            let mut grant_frames = ex.finish();
            grant_frames.sort_by_key(|&(from, to, _)| (to, from));
            for (from, to, mut r) in grant_frames {
                let gains = [r.get_f64(), r.get_f64(), r.get_f64(), r.get_f64()];
                let acc = granted_track.entry(to).or_default();
                let ok = all_guarded.iter().all(|&g| {
                    let gi = g.as_usize();
                    loads.of(g)[to as usize] + acc[gi] + gains[gi] <= caps[gi]
                });
                if ok {
                    for gi in 0..4 {
                        acc[gi] += gains[gi];
                    }
                }
                replies.to(to, from).put_u8(ok as u8);
            }
            // Prune denied destinations from the plans.
            let mut denied: FxHashMap<PartId, Vec<PartId>> = FxHashMap::default();
            for (from, to, mut r) in replies.finish() {
                if r.get_u8() == 0 {
                    denied.entry(to).or_default().push(from);
                }
            }
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            let mut planned = 0u64;
            for (pid, mut plan, _) in proposals {
                if let Some(bad) = denied.get(&pid) {
                    plan.dest.retain(|_, to| !bad.contains(to));
                }
                planned += plan.len() as u64;
                if !plan.is_empty() {
                    plans.insert(pid, plan);
                }
            }
            let planned = comm.allreduce_sum_u64(planned);
            if planned == 0 {
                // Diffusion is stuck for this type (§III-B motivates heavy
                // part splitting for exactly this case).
                stop = pumi_obs::parma::StopReason::NoCandidates;
                break;
            }
            let stats = migrate(comm, dm, &plans);
            if let Some(co) = opts.check {
                pumi_check::check_dist(comm, dm, co).unwrap_or_else(|e| {
                    panic!("parma: invariants violated after {d} iteration {iterations}: {e}")
                });
            }
            elements_moved += stats.elements_moved;
            iterations += 1;
            pumi_obs::parma::iter(final_pct, planned, stats.elements_moved);
            if opts.verbose && comm.rank() == 0 {
                eprintln!(
                    "parma: {d} iter {iterations}: imb {:.2}% -> planned {planned}",
                    final_pct
                );
            }
        }
        // Refresh after the last migration.
        final_pct = gather(comm, dm).imbalance_pct(d);
        pumi_obs::parma::stage_end(final_pct, stop);
        types.push(TypeReport {
            dim: d,
            initial_pct,
            final_pct,
            iterations,
        });
    }

    let seconds = comm
        .allgather_f64(timer.seconds())
        .into_iter()
        .fold(0.0, f64::max);
    pumi_obs::parma::end(seconds, elements_moved);
    ImproveReport {
        types,
        seconds,
        elements_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;

    /// A deliberately skewed 2-part strip: ParMA `Face` balancing (elements
    /// in 2D) must bring element imbalance within tolerance.
    #[test]
    fn element_diffusion_balances_two_parts() {
        execute(2, |c| {
            let serial = tri_rect(10, 4, 10.0, 4.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                // 70/30 split.
                elem_part[e.idx()] = if serial.centroid(e)[0] < 7.0 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let before = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
            assert!(before > 30.0, "setup not skewed: {before}%");

            let pr: Priority = "Face".parse().unwrap();
            let opts = ImproveOpts::default().check(CheckOpts::all());
            let report = improve(c, &mut dm, &pr, opts);
            let after = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
            assert!(
                after <= 5.5,
                "element imbalance not reduced: {before}% -> {after}%"
            );
            assert!(report.elements_moved > 0);
            for p in &dm.parts {
                p.mesh.assert_valid();
            }
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    /// Vertex balancing with region protection (the paper's T1 shape, in
    /// 2D: Vtx > Face).
    #[test]
    fn vertex_balance_respects_element_balance() {
        execute(2, |c| {
            let serial = tri_rect(12, 4, 3.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 1.75 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let before = EntityLoads::gather(c, &dm);
            let v_before = before.imbalance_pct(Dim::Vertex);

            let pr: Priority = "Vtx > Face".parse().unwrap();
            let report = improve(c, &mut dm, &pr, ImproveOpts::default());
            let after = EntityLoads::gather(c, &dm);
            let v_after = after.imbalance_pct(Dim::Vertex);
            assert!(
                v_after <= v_before + 1e-9,
                "vertex imbalance grew: {v_before}% -> {v_after}%"
            );
            // Element balance never exceeds the cap by much.
            assert!(
                after.imbalance_pct(Dim::Face) <= 12.0,
                "element balance harmed: {}%",
                after.imbalance_pct(Dim::Face)
            );
            assert_eq!(report.types.len(), 2);
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    /// Counts are balanced but predicted weights are skewed: the weighted
    /// entry point must diffuse elements until the *weighted* load levels,
    /// even though plain `improve` would be a no-op here.
    #[test]
    fn weighted_improve_balances_predicted_load() {
        execute(2, |c| {
            let serial = tri_rect(10, 4, 10.0, 4.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 5.0 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            // Equal counts; part 0's elements carry 3x the predicted weight.
            for p in &mut dm.parts {
                let w = if p.id == 0 { 3.0 } else { 1.0 };
                let tid =
                    p.mesh
                        .tags_mut()
                        .declare("parma:weight", pumi_util::tag::TagKind::Double, 1);
                for e in p.mesh.snapshot(d) {
                    p.mesh.tags_mut().set_dbl(tid, e, w);
                }
            }
            let before = EntityLoads::gather_weighted(c, &dm, "parma:weight");
            assert_eq!(before.imbalance_pct(Dim::Face).round(), 50.0);
            let pr: Priority = "Face".parse().unwrap();
            let opts = ImproveOpts::default().tol(0.1).check(CheckOpts::all());
            let report = improve_weighted(c, &mut dm, &pr, opts, "parma:weight");
            let after = EntityLoads::gather_weighted(c, &dm, "parma:weight");
            assert!(
                after.imbalance_pct(Dim::Face) < before.imbalance_pct(Dim::Face) / 2.0,
                "weighted imbalance not reduced: {}% -> {}%",
                before.imbalance_pct(Dim::Face),
                after.imbalance_pct(Dim::Face)
            );
            assert!(report.elements_moved > 0, "no elements moved");
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    /// The touch-up gate: above the threshold it runs (and balances),
    /// at/below it is `None` and the mesh is untouched.
    #[test]
    fn improve_above_gates_on_threshold() {
        execute(2, |c| {
            let serial = tri_rect(10, 4, 10.0, 4.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 7.0 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let before = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
            assert!(before > 30.0, "setup not skewed: {before}%");
            let pr: Priority = "Face".parse().unwrap();

            // Threshold above the measured imbalance: free no-op.
            assert!(improve_above(c, &mut dm, &pr, ImproveOpts::default(), before + 1.0).is_none());
            let untouched = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
            assert_eq!(untouched, before, "gated call must not migrate");

            // Threshold below: fires and balances.
            let rep = improve_above(c, &mut dm, &pr, ImproveOpts::default(), 10.0)
                .expect("imbalance above threshold must trigger the touch-up");
            assert!(rep.elements_moved > 0);
            let after = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Face);
            assert!(after <= 5.5, "touch-up did not balance: {after}%");
        });
    }

    /// Topology-aware improve on a 2×2 machine: balances like the blind
    /// path, with no more off-node boundary than it.
    #[test]
    fn topo_aware_improve_limits_off_node_boundary() {
        use crate::topo::{off_node_boundary, TopologyOpts};
        let machine = pumi_pcu::MachineModel::new(2, 2);
        let results = pumi_pcu::execute_on(machine, |c| {
            let serial = tri_rect(16, 8, 4.0, 2.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                let x = serial.centroid(e)[0];
                elem_part[e.idx()] = if x < 2.2 {
                    0
                } else if x < 2.8 {
                    1
                } else if x < 3.4 {
                    2
                } else {
                    3
                };
            }
            let machine = c.machine();
            let pr: Priority = "Face".parse().unwrap();

            let mut blind = distribute(c, PartMap::contiguous(4, 4), &serial, &elem_part);
            improve(c, &mut blind, &pr, ImproveOpts::default());
            let blind_split = off_node_boundary(c, &blind, &machine);
            let blind_pct = EntityLoads::gather(c, &blind).imbalance_pct(Dim::Face);

            let mut topo = distribute(c, PartMap::contiguous(4, 4), &serial, &elem_part);
            let opts = ImproveOpts::default().topo(TopologyOpts::new(machine));
            improve(c, &mut topo, &pr, opts);
            let topo_split = off_node_boundary(c, &topo, &machine);
            let topo_pct = EntityLoads::gather(c, &topo).imbalance_pct(Dim::Face);

            pumi_core::verify::assert_dist_valid(c, &topo);
            (blind_split, blind_pct, topo_split, topo_pct)
        });
        let (blind_split, blind_pct, topo_split, topo_pct) = results[0];
        assert!(
            topo_split.off_copies <= blind_split.off_copies,
            "topo off-node boundary {} exceeds blind {}",
            topo_split.off_copies,
            blind_split.off_copies
        );
        assert!(
            topo_pct <= blind_pct + 5.0,
            "topo imbalance {topo_pct:.1}% much worse than blind {blind_pct:.1}%"
        );
    }

    /// A flat machine model in the options must leave improve byte-identical
    /// to the blind path.
    #[test]
    fn topo_on_flat_machine_is_identical() {
        use crate::topo::TopologyOpts;
        execute(2, |c| {
            let serial = tri_rect(10, 4, 10.0, 4.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 7.0 { 0 } else { 1 };
            }
            let pr: Priority = "Face".parse().unwrap();

            let mut blind = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let rb = improve(c, &mut blind, &pr, ImproveOpts::default());

            let mut flat = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let opts = ImproveOpts::default().topo(TopologyOpts::new(c.machine()));
            let rf = improve(c, &mut flat, &pr, opts);

            assert_eq!(rb.elements_moved, rf.elements_moved);
            let lb = EntityLoads::gather(c, &blind);
            let lf = EntityLoads::gather(c, &flat);
            for dd in Dim::ALL {
                assert_eq!(lb.of(dd), lf.of(dd), "loads diverge for {dd}");
            }
        });
    }

    /// Already balanced input: improve is a no-op.
    #[test]
    fn balanced_input_is_noop() {
        execute(2, |c| {
            let serial = tri_rect(8, 4, 2.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 1.0 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let pr: Priority = "Face".parse().unwrap();
            let report = improve(c, &mut dm, &pr, ImproveOpts::default());
            assert_eq!(report.elements_moved, 0);
            assert_eq!(report.types[0].iterations, 0);
        });
    }
}
