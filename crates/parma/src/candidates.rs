//! Candidate parts (§III-A.1).
//!
//! "The ParMA algorithm reduces entity imbalance by migrating a small number
//! of mesh elements from heavily loaded parts to the lightly loaded
//! neighboring parts, which are called candidate parts. There are two
//! categories for candidate parts: absolutely lightly loaded, and relatively
//! lightly loaded... A candidate part must be lightly loaded, either
//! absolutely or relatively, for all lesser priority mesh entity types than
//! the mesh entity type being balanced."

use crate::balance::EntityLoads;
use crate::topo::TopologyOpts;
use pumi_core::{Part, PartMap, PtnModel};
use pumi_util::{Dim, PartId};

/// Is `cand` lightly loaded for dimension `d`, absolutely (below average or
/// below the spike threshold) or relatively (fewer entities than the heavy
/// part being relieved)?
pub fn is_light(loads: &EntityLoads, d: Dim, cand: PartId, heavy: PartId, tol: f64) -> bool {
    let v = loads.of(d);
    let avg = loads.avg(d);
    let cl = v[cand as usize];
    // absolutely light
    if cl < avg || cl < avg * (1.0 + tol) {
        return true;
    }
    // relatively light
    cl < v[heavy as usize]
}

/// The candidate parts of heavy part `part` for balancing dimension `d`:
/// neighbouring parts (sharing any boundary vertex) that are light for `d`
/// and light for every lesser-priority dimension. Sorted lightest-first by
/// load of `d` (largest deficits get elements first).
pub fn candidates(
    part: &Part,
    loads: &EntityLoads,
    d: Dim,
    lesser: &[Dim],
    tol: f64,
) -> Vec<PartId> {
    let mut cands: Vec<PartId> = PtnModel::neighbors(part, Dim::Vertex)
        .into_iter()
        .filter(|&q| {
            // Strictly fewer target entities than us, and light in some
            // sense, otherwise migration raises the peak elsewhere.
            loads.of(d)[q as usize] < loads.of(d)[part.id as usize]
                && is_light(loads, d, q, part.id, tol)
                && lesser
                    .iter()
                    .all(|&ld| is_light(loads, ld, q, part.id, tol))
        })
        .collect();
    cands.sort_by(|&a, &b| {
        loads.of(d)[a as usize]
            .partial_cmp(&loads.of(d)[b as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    cands
}

/// Topology-aware [`candidates`]: same light/lesser filters, but on-node
/// candidates come first (each group still lightest-first), and off-node
/// candidates are dropped entirely when the absolute on-node deficits can
/// absorb the heavy part's excess — diffusion then stays inside the node.
/// Returns the candidate list and whether any on-node candidate exists
/// (the selection gate relaxes when none does, so isolated heavy parts can
/// still shed load across nodes).
///
/// With `topo == None` this is exactly [`candidates`] (with `has_on_node`
/// reported as true, leaving the gate strict-but-unused).
pub fn candidates_topo(
    part: &Part,
    loads: &EntityLoads,
    d: Dim,
    lesser: &[Dim],
    tol: f64,
    topo: Option<(&TopologyOpts, &PartMap)>,
) -> (Vec<PartId>, bool) {
    let cands = candidates(part, loads, d, lesser, tol);
    let Some((t, map)) = topo else {
        return (cands, true);
    };
    if t.is_flat() {
        return (cands, true);
    }
    let my_node = t.node_of_part(map, part.id);
    let (on, off): (Vec<PartId>, Vec<PartId>) = cands
        .into_iter()
        .partition(|&q| t.node_of_part(map, q) == my_node);
    let has_on = !on.is_empty();
    if has_on {
        let v = loads.of(d);
        let avg = loads.avg(d);
        let excess = v[part.id as usize] - avg * (1.0 + tol / 2.0);
        let on_capacity: f64 = on.iter().map(|&q| (avg - v[q as usize]).max(0.0)).sum();
        if on_capacity >= excess {
            return (on, true);
        }
    }
    let mut out = on;
    out.extend(off);
    (out, has_on)
}

/// The migration schedule for one heavy part (§III-A: "how much load must be
/// migrated, the migration schedule"): the part's excess above the mean is
/// spread over its candidates, filling the largest deficits first, never
/// pushing a candidate above the mean.
pub fn schedule(
    loads: &EntityLoads,
    d: Dim,
    heavy: PartId,
    cands: &[PartId],
    tol: f64,
) -> Vec<(PartId, f64)> {
    let v = loads.of(d);
    let avg = loads.avg(d);
    // Aim slightly below the threshold so one round can finish the job.
    let mut excess = v[heavy as usize] - avg * (1.0 + tol / 2.0);
    if excess <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &q in cands {
        if excess <= 0.0 {
            break;
        }
        let deficit = (avg - v[q as usize]).max(0.0);
        // Relatively-light candidates (no absolute deficit) may still take a
        // sliver: half the gap between the heavy part and them.
        let cap = if deficit > 0.0 {
            deficit
        } else {
            ((v[heavy as usize] - v[q as usize]) / 2.0).max(0.0)
        };
        let give = excess.min(cap).floor();
        if give >= 1.0 {
            out.push((q, give));
            excess -= give;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads_with(dim: Dim, v: Vec<f64>) -> EntityLoads {
        let mut loads: [Vec<f64>; 4] = Default::default();
        for d in Dim::ALL {
            loads[d.as_usize()] = vec![1.0; v.len()];
        }
        loads[dim.as_usize()] = v;
        EntityLoads { loads }
    }

    #[test]
    fn light_classification() {
        // avg = 100; part 0 heavy at 130.
        let l = loads_with(Dim::Vertex, vec![130.0, 90.0, 110.0, 70.0]);
        assert!(is_light(&l, Dim::Vertex, 1, 0, 0.05)); // absolute
        assert!(is_light(&l, Dim::Vertex, 3, 0, 0.05)); // absolute
        assert!(is_light(&l, Dim::Vertex, 2, 0, 0.05)); // relative (110 < 130)
        assert!(!is_light(&l, Dim::Vertex, 0, 2, 0.05)); // 130 not light vs 110
    }

    #[test]
    fn schedule_fills_deficits_first() {
        let l = loads_with(Dim::Region, vec![140.0, 60.0, 100.0, 100.0]);
        // avg = 100, excess ≈ 140 - 102.5 = 37.5
        let s = schedule(&l, Dim::Region, 0, &[1, 2], 0.05);
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].0, 1);
        assert!((s[0].1 - 37.0).abs() < 1.5, "{s:?}");
    }

    #[test]
    fn schedule_spills_to_second_candidate() {
        let l = loads_with(Dim::Region, vec![200.0, 80.0, 70.0, 50.0]);
        // avg = 100, excess = 200 - 102.5 = 97.5; deficits: 3:50, 2:30, 1:20.
        let s = schedule(&l, Dim::Region, 0, &[3, 2, 1], 0.05);
        let total: f64 = s.iter().map(|x| x.1).sum();
        assert!((90.0..=98.0).contains(&total), "{s:?}");
        assert_eq!(s[0].0, 3);
        assert_eq!(s[0].1, 50.0);
    }

    #[test]
    fn schedule_empty_when_not_heavy() {
        let l = loads_with(Dim::Region, vec![101.0, 99.0]);
        assert!(schedule(&l, Dim::Region, 0, &[1], 0.05).is_empty());
    }
}
