//! ParMA — Partitioning using Mesh Adjacencies (§III).
//!
//! "ParMA, partitioning using mesh adjacencies, provides fast partitioning
//! procedures for adaptive simulation workflows that work independently of,
//! or in conjunction with, the graph/hypergraph-based procedures. ParMA
//! procedures use constant time mesh adjacency queries provided by a
//! complete mesh representation, and partition model information, to
//! determine how much load must be migrated, the migration schedule, and
//! which elements need to be migrated to satisfy that load."
//!
//! The two procedures of the paper:
//! * [`improve()`] — multi-criteria greedy diffusive partition improvement
//!   (§III-A; Tables I–III, Fig 12), built from [`balance`] accounting,
//!   [`priority`] lists, [`candidates`]/scheduling, and the Fig 9/10/Zhou
//!   [`select`] rules;
//! * [`heavy_part_split`] — knapsack merges + maximal-independent-set
//!   conflict resolution + heavy part splitting (§III-B).
//!
//! Both can run *topology-aware* by threading a [`TopologyOpts`] through
//! [`ImproveOpts`] (see [`topo`]): diffusion then prefers on-node
//! candidates and gates migrations that create off-node boundary.

#![warn(missing_docs)]

pub mod balance;
pub mod candidates;
pub mod improve;
pub mod mis;
pub mod priority;
pub mod select;
pub mod split;
pub mod topo;

pub use balance::EntityLoads;
pub use improve::{
    improve, improve_above, improve_weighted, ImproveOpts, ImproveReport, TypeReport,
};
pub use priority::Priority;
pub use select::{HarmGuard, SelectRequest, Selector, TopoGate};
pub use split::{heavy_part_split, SplitOpts, SplitReport};
pub use topo::{off_node_boundary, BoundarySplit, TopologyOpts};
