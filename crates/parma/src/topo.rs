//! Topology-aware diffusion (the CERFACS hardware-locality scheme,
//! arXiv:2008.00832, applied to ParMA).
//!
//! ParMA as described in §III-A balances against a *flat* part graph: every
//! neighbour is an equally good migration target. On a real machine the
//! part → rank → node placement makes some boundaries cheap (shared memory)
//! and some expensive (network). [`TopologyOpts`] carries the
//! [`MachineModel`] into [`crate::improve_weighted`] and friends, where it
//! changes two things:
//!
//! * **candidate ordering/filtering** ([`crate::candidates`]): on-node
//!   neighbours come first, and off-node candidates are dropped entirely
//!   when the on-node deficits can absorb the heavy part's excess;
//! * **selection gating** ([`crate::select`]): each cavity's exact
//!   off-node boundary-pair delta is computed from the residence sets of
//!   its closure, and cavities that create new off-node boundary are
//!   rejected unless the balance credit pays for them at
//!   `off_node_penalty` pairs per unit of load — or unless the heavy part
//!   has no on-node candidate at all, in which case the gate relaxes so
//!   cross-node diffusion can still make progress.
//!
//! On a flat machine ([`MachineModel::flat`] or a single node) the options
//! are inert and diffusion is byte-identical to the topology-blind path.

use pumi_core::{DistMesh, PartMap};
use pumi_pcu::{Comm, LinkClass, MachineModel};
use pumi_util::PartId;

/// Machine awareness for ParMA diffusion.
///
/// ```
/// use parma::{ImproveOpts, TopologyOpts};
/// use pumi_pcu::MachineModel;
///
/// // 2 nodes × 4 cores; each new off-node boundary pair must be paid for
/// // by 2 units of balance improvement.
/// let topo = TopologyOpts::new(MachineModel::new(2, 4)).off_node_penalty(2.0);
/// assert!(!topo.is_flat());
/// let opts = ImproveOpts::default().topo(topo);
/// assert!(opts.topo.is_some());
///
/// // A flat machine has no hierarchy: the options are inert.
/// assert!(TopologyOpts::new(MachineModel::flat(8)).is_flat());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TopologyOpts {
    /// The node/core layout parts are placed on.
    pub machine: MachineModel,
    /// Off-node boundary pairs a migration may create per unit of balance
    /// credit (entities removed from the heavy part). Higher = stricter.
    pub off_node_penalty: f64,
}

impl TopologyOpts {
    /// Topology awareness for `machine` with the default penalty (1.0).
    pub fn new(machine: MachineModel) -> TopologyOpts {
        TopologyOpts {
            machine,
            off_node_penalty: 1.0,
        }
    }

    /// Set the off-node penalty.
    pub fn off_node_penalty(mut self, p: f64) -> Self {
        self.off_node_penalty = p;
        self
    }

    /// Whether the machine has no usable hierarchy (1 core per node, or a
    /// single node): topology awareness is a no-op.
    pub fn is_flat(&self) -> bool {
        self.machine.cores_per_node == 1 || self.machine.nodes == 1
    }

    /// The node hosting part `p` under `map`.
    pub fn node_of_part(&self, map: &PartMap, p: PartId) -> usize {
        self.machine.node_of(map.rank_of(p))
    }
}

/// The on-/off-node split of the part-boundary surface. Copies are counted
/// once per (entity, remote copy) direction world-wide; bytes are the
/// gid-sized (8 B) proxy for what one boundary sync of that surface ships.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundarySplit {
    /// Boundary copies whose two holders share a node.
    pub on_copies: u64,
    /// Boundary copies whose two holders sit on different nodes.
    pub off_copies: u64,
}

impl BoundarySplit {
    /// On-node surface in proxy bytes (8 per copy).
    pub fn on_bytes(&self) -> u64 {
        self.on_copies * 8
    }

    /// Off-node surface in proxy bytes (8 per copy).
    pub fn off_bytes(&self) -> u64 {
        self.off_copies * 8
    }
}

/// Measure the on-/off-node split of `dm`'s part-boundary surface under
/// `machine`. Collective; every rank returns the same world total.
pub fn off_node_boundary(comm: &Comm, dm: &DistMesh, machine: &MachineModel) -> BoundarySplit {
    let mut on = 0u64;
    let mut off = 0u64;
    for p in &dm.parts {
        let my_node = machine.node_of(dm.map.rank_of(p.id));
        for (e, remotes) in p.shared_entities() {
            if p.is_ghost(e) {
                continue;
            }
            for &(q, _) in remotes {
                let qn = machine.node_of(dm.map.rank_of(q));
                if qn == my_node {
                    on += 1;
                } else {
                    off += 1;
                }
            }
        }
    }
    BoundarySplit {
        on_copies: comm.allreduce_sum_u64(on),
        off_copies: comm.allreduce_sum_u64(off),
    }
}

/// Classify the link between the ranks hosting two parts.
pub fn link_of_parts(machine: &MachineModel, map: &PartMap, a: PartId, b: PartId) -> LinkClass {
    machine.link(map.rank_of(a), map.rank_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_core::distribute;
    use pumi_meshgen::tri_rect;
    use pumi_partition::partition_mesh;

    #[test]
    fn boundary_split_counts_match_total_surface() {
        let machine = MachineModel::new(2, 2);
        pumi_pcu::execute_on(machine, |c| {
            let m = tri_rect(8, 8, 1.0, 1.0);
            let labels = partition_mesh(&m, 4);
            let dm = distribute(c, PartMap::contiguous(4, 4), &m, &labels);
            let machine = c.machine();
            let split = off_node_boundary(c, &dm, &machine);
            // Total copies = the machine-oblivious count.
            let mut total = 0u64;
            for p in &dm.parts {
                for (e, remotes) in p.shared_entities() {
                    if !p.is_ghost(e) {
                        total += remotes.len() as u64;
                    }
                }
            }
            let total = c.allreduce_sum_u64(total);
            assert_eq!(split.on_copies + split.off_copies, total);
            assert!(total > 0);
            assert_eq!(split.off_bytes(), split.off_copies * 8);
        });
    }

    #[test]
    fn flat_machine_has_no_on_node_surface() {
        pumi_pcu::execute(4, |c| {
            let m = tri_rect(8, 8, 1.0, 1.0);
            let labels = partition_mesh(&m, 4);
            let dm = distribute(c, PartMap::contiguous(4, 4), &m, &labels);
            let machine = c.machine();
            let split = off_node_boundary(c, &dm, &machine);
            assert_eq!(split.on_copies, 0);
            assert!(split.off_copies > 0);
        });
    }

    #[test]
    fn link_classification_follows_placement() {
        let machine = MachineModel::new(2, 2);
        let map = PartMap::contiguous(4, 4);
        assert_eq!(link_of_parts(&machine, &map, 0, 1), LinkClass::OnNode);
        assert_eq!(link_of_parts(&machine, &map, 0, 2), LinkClass::OffNode);
        assert_eq!(link_of_parts(&machine, &map, 3, 3), LinkClass::SelfLoop);
    }
}
