//! Conflict-free merge selection (§III-B).
//!
//! "Next, a set of these merges that can be performed without conflicts,
//! i.e. a part is merged only once, are found by solving for the maximal
//! independent set."
//!
//! Every rank holds the same gathered proposal list and runs the same
//! deterministic greedy (value-descending) — equivalent to one round of a
//! priority-based distributed MIS where the priority is the merge value, and
//! reproducible across runs.

use pumi_util::{FxHashSet, PartId};

/// A merge proposal: `members` merge into part `into`, adding `value`
/// elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proposal {
    /// The receiving part.
    pub into: PartId,
    /// The parts that empty themselves into `into`.
    pub members: Vec<PartId>,
    /// Total elements merged (knapsack objective value).
    pub value: u64,
}

impl Proposal {
    /// All parts involved (receiver + members).
    pub fn parts(&self) -> impl Iterator<Item = PartId> + '_ {
        std::iter::once(self.into).chain(self.members.iter().copied())
    }
}

/// Select a maximal set of non-conflicting proposals: no part appears in two
/// chosen merges (as receiver or member). Greedy by (value desc, receiver id
/// asc) — maximal, deterministic.
pub fn maximal_independent_merges(mut proposals: Vec<Proposal>) -> Vec<Proposal> {
    proposals.retain(|p| !p.members.is_empty());
    proposals.sort_by(|a, b| b.value.cmp(&a.value).then(a.into.cmp(&b.into)));
    let mut used: FxHashSet<PartId> = FxHashSet::default();
    let mut chosen = Vec::new();
    for p in proposals {
        if p.parts().any(|q| used.contains(&q)) {
            continue;
        }
        used.extend(p.parts());
        chosen.push(p);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop(into: PartId, members: &[PartId], value: u64) -> Proposal {
        Proposal {
            into,
            members: members.to_vec(),
            value,
        }
    }

    #[test]
    fn picks_highest_value_first() {
        let chosen = maximal_independent_merges(vec![
            prop(0, &[1], 10),
            prop(2, &[1], 50), // conflicts with the first on part 1
            prop(3, &[4], 5),
        ]);
        assert_eq!(chosen.len(), 2);
        assert_eq!(chosen[0].into, 2);
        assert_eq!(chosen[1].into, 3);
    }

    #[test]
    fn receiver_conflicts_count() {
        let chosen = maximal_independent_merges(vec![
            prop(0, &[1, 2], 20),
            prop(3, &[0], 15), // part 0 already a receiver
        ]);
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].into, 0);
    }

    #[test]
    fn empty_member_lists_dropped() {
        let chosen = maximal_independent_merges(vec![prop(0, &[], 100), prop(1, &[2], 1)]);
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].into, 1);
    }

    #[test]
    fn result_is_maximal() {
        // After choosing (0,[1]), proposal (2,[3]) is still independent and
        // must be included.
        let chosen = maximal_independent_merges(vec![
            prop(0, &[1], 10),
            prop(2, &[3], 1),
            prop(1, &[2], 5), // conflicts with both
        ]);
        assert_eq!(chosen.len(), 2);
    }

    proptest::proptest! {
        #[test]
        fn chosen_sets_are_disjoint(seed in proptest::collection::vec((0u32..12, 0u32..12, 1u64..100), 1..20)) {
            let proposals: Vec<Proposal> = seed
                .into_iter()
                .filter(|&(a, b, _)| a != b)
                .map(|(a, b, v)| prop(a, &[b], v))
                .collect();
            let chosen = maximal_independent_merges(proposals);
            let mut seen = std::collections::HashSet::new();
            for p in &chosen {
                for q in p.parts() {
                    proptest::prop_assert!(seen.insert(q), "part {q} reused");
                }
            }
        }
    }
}
