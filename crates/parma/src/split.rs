//! Heavy part splitting (§III-B).
//!
//! "ParMA heavy part splitting reduces imbalance spikes by first merging
//! lightly loaded parts to create empty parts, and then splitting heavily
//! loaded parts into the newly created empty parts. The procedure begins by
//! independently solving the 0-1 knapsack problem on each part to determine
//! the largest set of neighboring parts which can be merged while keeping
//! the total number of elements less than the average. Next, a set of these
//! merges that can be performed without conflicts ... are found by solving
//! for the maximal independent set. Lastly, heavily loaded parts are split
//! as many times as required until there are either no heavy parts or empty
//! parts remaining."

use crate::mis::{maximal_independent_merges, Proposal};
use pumi_core::{migrate, DistMesh, MigrationPlan, PtnModel};
use pumi_partition::{partition_graph, DualGraph, GraphPartOpts};
use pumi_pcu::{Comm, MsgReader, MsgWriter};
use pumi_util::stats::LoadStats;
use pumi_util::{knap, Dim, FxHashMap, PartId};

/// Options for [`heavy_part_split`].
#[derive(Debug, Clone, Copy)]
pub struct SplitOpts {
    /// Spike threshold (0.05 = 5% over the mean counts as heavy).
    pub tol: f64,
    /// Maximum merge+split rounds ("split as many times as required until
    /// there are either no heavy parts or empty parts remaining", §III-B).
    pub rounds: usize,
    /// Print progress on rank 0.
    pub verbose: bool,
}

impl Default for SplitOpts {
    fn default() -> Self {
        SplitOpts {
            tol: 0.05,
            rounds: 6,
            verbose: false,
        }
    }
}

/// Outcome of one [`heavy_part_split`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct SplitReport {
    /// Element imbalance % before.
    pub initial_pct: f64,
    /// Element imbalance % after.
    pub final_pct: f64,
    /// Merges executed (emptied-part groups).
    pub merges: usize,
    /// Heavy parts that were split.
    pub splits: usize,
}

fn element_loads(comm: &Comm, dm: &DistMesh) -> Vec<f64> {
    dm.gather_loads(comm, |p| p.mesh.num_elems() as f64)
}

/// Run heavy part splitting: merge+split rounds until no part is heavy, no
/// merge can be formed, or `opts.rounds` is exhausted. Collective.
pub fn heavy_part_split(comm: &Comm, dm: &mut DistMesh, opts: SplitOpts) -> SplitReport {
    let _span = pumi_obs::span!("parma.split");
    let initial_pct = {
        let loads = element_loads(comm, dm);
        pumi_util::stats::LoadStats::of(&loads).imbalance_pct()
    };
    let mut merges = 0usize;
    let mut splits = 0usize;
    let mut final_pct = initial_pct;
    for _ in 0..opts.rounds.max(1) {
        let r = split_round(comm, dm, opts);
        merges += r.merges;
        splits += r.splits;
        final_pct = r.final_pct;
        if r.merges == 0 || r.final_pct <= opts.tol * 100.0 {
            break;
        }
    }
    SplitReport {
        initial_pct,
        final_pct,
        merges,
        splits,
    }
}

/// One merge+split round.
fn split_round(comm: &Comm, dm: &mut DistMesh, opts: SplitOpts) -> SplitReport {
    let loads = element_loads(comm, dm);
    let stats = LoadStats::of(&loads);
    let avg = stats.mean;
    let initial_pct = stats.imbalance_pct();
    let heavy: Vec<PartId> = loads
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l > avg * (1.0 + opts.tol))
        .map(|(p, _)| p as PartId)
        .collect();
    if heavy.is_empty() {
        return SplitReport {
            initial_pct,
            final_pct: initial_pct,
            merges: 0,
            splits: 0,
        };
    }

    // ------------------------------------------------------------------
    // 1. Per-part 0-1 knapsack merge proposals (local decision, global
    //    load vector).
    // ------------------------------------------------------------------
    let mut w = MsgWriter::new();
    let mut my_proposals: Vec<Proposal> = Vec::new();
    for part in &dm.parts {
        let my_load = loads[part.id as usize];
        if my_load > avg {
            continue; // only lighter parts initiate merges
        }
        let neighbors: Vec<PartId> = PtnModel::neighbors(part, Dim::Vertex)
            .into_iter()
            .filter(|&q| {
                let l = loads[q as usize];
                l <= avg && l > 0.0 // merge only light, non-empty neighbours
            })
            .collect();
        if neighbors.is_empty() {
            continue;
        }
        let capacity = (avg - my_load).max(0.0) as u64;
        let weights: Vec<u64> = neighbors
            .iter()
            .map(|&q| loads[q as usize] as u64)
            .collect();
        let (value, chosen, _) = knap::solve(&weights, &weights, capacity);
        if value == 0 {
            continue;
        }
        let members: Vec<PartId> = chosen.iter().map(|&i| neighbors[i]).collect();
        my_proposals.push(Proposal {
            into: part.id,
            members,
            value,
        });
    }
    // Gather proposals world-wide so every rank picks the same MIS.
    w.put_u32(my_proposals.len() as u32);
    for p in &my_proposals {
        w.put_u32(p.into);
        w.put_u64(p.value);
        w.put_u32_slice(&p.members);
    }
    let gathered = comm.allgather_bytes(w.finish());
    let mut all: Vec<Proposal> = Vec::new();
    for b in gathered {
        let mut r = MsgReader::new(b);
        let n = r.get_u32();
        for _ in 0..n {
            let into = r.get_u32();
            let value = r.get_u64();
            let members = r.get_u32_slice();
            all.push(Proposal {
                into,
                members,
                value,
            });
        }
    }
    let chosen = maximal_independent_merges(all);
    let merges = chosen.len();

    // ------------------------------------------------------------------
    // 2. Execute merges: members empty themselves into the receiver.
    // ------------------------------------------------------------------
    let mut empties: Vec<PartId> = Vec::new();
    {
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        for merge in &chosen {
            for &m in &merge.members {
                empties.push(m);
                if let Some(part) = dm.parts.iter().find(|p| p.id == m) {
                    let mut plan = MigrationPlan::new();
                    for e in part.mesh.elems() {
                        plan.send(e, merge.into);
                    }
                    plans.insert(m, plan);
                }
            }
        }
        empties.sort_unstable();
        migrate(comm, dm, &plans);
    }

    // ------------------------------------------------------------------
    // 3. Allocate empty parts to heavy parts (deterministic: by remaining
    //    nominal excess, largest first) and split.
    // ------------------------------------------------------------------
    let loads = element_loads(comm, dm);
    let mut excess: Vec<(PartId, f64)> = heavy
        .iter()
        .map(|&h| (h, loads[h as usize] - avg))
        .filter(|&(_, x)| x > 0.0)
        .collect();
    let mut assignment: FxHashMap<PartId, Vec<PartId>> = FxHashMap::default();
    for &empty in &empties {
        // Give to the heavy part with the largest remaining excess.
        excess.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let Some(top) = excess.first_mut() else { break };
        if top.1 <= 0.0 {
            break;
        }
        assignment.entry(top.0).or_default().push(empty);
        top.1 -= avg;
    }
    let splits = assignment.len();

    {
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        for part in &dm.parts {
            let Some(targets) = assignment.get(&part.id) else {
                continue;
            };
            let k = targets.len() + 1;
            let g = DualGraph::build(&part.mesh);
            let labels = partition_graph(&g, k, GraphPartOpts::default());
            let mut plan = MigrationPlan::new();
            for (node, &e) in g.elems.iter().enumerate() {
                let l = labels[node] as usize;
                if l > 0 {
                    plan.send(e, targets[l - 1]);
                }
            }
            plans.insert(part.id, plan);
        }
        migrate(comm, dm, &plans);
    }

    let final_loads = element_loads(comm, dm);
    let final_pct = LoadStats::of(&final_loads).imbalance_pct();
    if opts.verbose && comm.rank() == 0 {
        eprintln!(
            "parma split: {initial_pct:.1}% -> {final_pct:.1}% ({merges} merges, {splits} splits)"
        );
    }
    SplitReport {
        initial_pct,
        final_pct,
        merges,
        splits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;

    /// 4 parts on one rank: one giant part, three tiny ones. Diffusion would
    /// crawl; splitting fixes it in one shot.
    #[test]
    fn split_reduces_extreme_spike() {
        execute(2, |c| {
            let serial = tri_rect(12, 6, 2.0, 1.0);
            let d = serial.elem_dim_t();
            // Part 0 gets x < 1.5 (three quarters); parts 1..3 split the rest.
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                let x = serial.centroid(e);
                elem_part[e.idx()] = if x[0] < 1.5 {
                    0
                } else if x[1] < 0.33 {
                    1
                } else if x[1] < 0.66 {
                    2
                } else {
                    3
                };
            }
            let mut dm = distribute(c, PartMap::contiguous(4, 2), &serial, &elem_part);
            let report = heavy_part_split(c, &mut dm, SplitOpts::default());
            assert!(report.initial_pct > 50.0, "setup not skewed enough");
            assert!(
                report.final_pct < report.initial_pct / 2.0,
                "split ineffective: {:.1}% -> {:.1}%",
                report.initial_pct,
                report.final_pct
            );
            assert!(report.merges >= 1);
            assert!(report.splits >= 1);
            for p in &dm.parts {
                p.mesh.assert_valid();
            }
            pumi_core::verify::assert_dist_valid(c, &dm);
        });
    }

    /// Balanced input: nothing happens.
    #[test]
    fn balanced_input_noop() {
        execute(2, |c| {
            let serial = tri_rect(8, 4, 2.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 1.0 { 0 } else { 1 };
            }
            let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let report = heavy_part_split(c, &mut dm, SplitOpts::default());
            assert_eq!(report.merges, 0);
            assert_eq!(report.splits, 0);
            assert_eq!(report.initial_pct, report.final_pct);
        });
    }
}
