//! Distributed entity-balance accounting (§III).
//!
//! "In both cases peaks determine performance... reduction of peaks for each
//! step in a workflow is critical." The loads here are per-part entity
//! counts *including* part-boundary copies — the quantity a part actually
//! stores and computes on, and the one Table II reports.

use pumi_core::DistMesh;
use pumi_pcu::Comm;
use pumi_util::stats::LoadStats;
use pumi_util::Dim;

/// Global per-part load vectors for each entity dimension.
#[derive(Debug, Clone)]
pub struct EntityLoads {
    /// `loads[dim][part]` = entity count of that dimension on that part.
    pub loads: [Vec<f64>; 4],
}

impl EntityLoads {
    /// Gather the current loads across the world (one fused collective for
    /// all four dimensions). Collective.
    pub fn gather(comm: &Comm, dm: &DistMesh) -> EntityLoads {
        let nparts = dm.map.nparts();
        let mut flat = vec![0f64; 4 * nparts];
        for p in &dm.parts {
            for d in Dim::ALL {
                flat[d.as_usize() * nparts + p.id as usize] = p.mesh.count(d) as f64;
            }
        }
        let flat = comm.allreduce_sum_f64_vec(&flat);
        let mut loads: [Vec<f64>; 4] = Default::default();
        for d in 0..4 {
            loads[d] = flat[d * nparts..(d + 1) * nparts].to_vec();
        }
        EntityLoads { loads }
    }

    /// Like [`EntityLoads::gather`], but the element-dimension load is the
    /// *sum of per-element weights* read from the `weight_tag` Real tag
    /// (missing tag or entry counts as 1.0) instead of the element count.
    /// Predictive balancing (§III-B) stores `predict::element_weight` in
    /// this tag so ParMA diffuses the *post-adaptation* load. Lower
    /// dimensions stay plain counts. Collective.
    pub fn gather_weighted(comm: &Comm, dm: &DistMesh, weight_tag: &str) -> EntityLoads {
        let nparts = dm.map.nparts();
        let mut flat = vec![0f64; 4 * nparts];
        for p in &dm.parts {
            let ed = p.mesh.elem_dim_t();
            let tid = p.mesh.tags().find(weight_tag);
            for d in Dim::ALL {
                let col = d.as_usize() * nparts + p.id as usize;
                if d == ed {
                    flat[col] = p
                        .mesh
                        .elems()
                        .map(|e| tid.and_then(|t| p.mesh.tags().get_dbl(t, e)).unwrap_or(1.0))
                        .sum();
                } else {
                    flat[col] = p.mesh.count(d) as f64;
                }
            }
        }
        let flat = comm.allreduce_sum_f64_vec(&flat);
        let mut loads: [Vec<f64>; 4] = Default::default();
        for d in 0..4 {
            loads[d] = flat[d * nparts..(d + 1) * nparts].to_vec();
        }
        EntityLoads { loads }
    }

    /// Load vector of one dimension.
    pub fn of(&self, d: Dim) -> &[f64] {
        &self.loads[d.as_usize()]
    }

    /// Stats of one dimension.
    pub fn stats(&self, d: Dim) -> LoadStats {
        LoadStats::of(self.of(d))
    }

    /// Mean load of one dimension.
    pub fn avg(&self, d: Dim) -> f64 {
        self.stats(d).mean
    }

    /// `max/mean` imbalance of one dimension.
    pub fn imbalance(&self, d: Dim) -> f64 {
        self.stats(d).imbalance
    }

    /// The paper's "Imb.%" for one dimension.
    pub fn imbalance_pct(&self, d: Dim) -> f64 {
        self.stats(d).imbalance_pct()
    }

    /// Parts whose load of dimension `d` exceeds `avg * (1 + tol)` — the
    /// *heavily loaded* parts whose spikes ParMA diffuses away.
    pub fn heavy_parts(&self, d: Dim, tol: f64) -> Vec<usize> {
        let v = self.of(d);
        let avg = self.avg(d);
        let thr = avg * (1.0 + tol);
        v.iter()
            .enumerate()
            .filter(|&(_, &l)| l > thr)
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::PartId;

    #[test]
    fn gather_matches_local_counts() {
        execute(2, |c| {
            let serial = tri_rect(4, 2, 2.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                // Unbalanced on purpose: 3/4 to part 0.
                elem_part[e.idx()] = if serial.centroid(e)[0] < 1.5 { 0 } else { 1 };
            }
            let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            let loads = EntityLoads::gather(c, &dm);
            // Every rank sees the same global vector.
            assert_eq!(loads.of(Dim::Face).len(), 2);
            assert_eq!(
                loads.of(Dim::Face)[c.rank()],
                dm.parts[0].mesh.num_elems() as f64
            );
            assert_eq!(loads.of(Dim::Face).iter().sum::<f64>(), 16.0);
            assert!(loads.imbalance(Dim::Face) > 1.2);
            let heavy = loads.heavy_parts(Dim::Face, 0.05);
            assert_eq!(heavy, vec![0]);
        });
    }
}
