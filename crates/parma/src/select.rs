//! Mesh element selection (§III-A.2, Figs 9/10).
//!
//! "Mesh elements, and groups of mesh elements, referred to as cavities, are
//! selected for migration if they will decrease the communication cost over
//! part boundaries once migrated."
//!
//! Three rules, by the entity type being balanced:
//! * **elements** (Fig 9): part-boundary elements with more sides classified
//!   on the part boundary than on the part interior;
//! * **edges/faces** (Fig 10): a part-boundary entity bounding few local
//!   elements forms a small cavity whose migration removes it from the
//!   boundary with minimal side effects;
//! * **vertices** (Zhou, ref. 20): small cavities around part-boundary vertices
//!   whose migration removes the vertex from the heavy part.
//!
//! Selection is *harm-aware* (§III-A): a cavity is accepted only if the
//! estimated growth of the destination part stays under the spike threshold
//! for the balanced type and every higher-priority type.
//!
//! With a [`TopoGate`] installed, selection is also *topology-aware*: each
//! cavity's exact off-node boundary-pair delta is computed from the
//! residence sets of its closure, and cavities that would create new
//! off-node boundary are rejected unless their balance credit pays for it
//! (see [`crate::topo`]).

use pumi_core::{MigrationPlan, Part};
use pumi_util::{Dim, FxHashMap, FxHashSet, MeshEnt, PartId};

/// Topology gate state for one heavy part's selection pass: the part → node
/// placement, the price of new off-node boundary, and whether the gate is
/// relaxed because the part has no on-node candidate at all.
#[derive(Debug, Clone)]
pub struct TopoGate {
    /// Node hosting each part (indexed by part id).
    pub node_of_part: Vec<u32>,
    /// Off-node pairs a cavity may create per unit of balance credit.
    pub penalty: f64,
    /// Gate disabled for this part (no on-node candidate exists; blocking
    /// off-node moves would strand the excess).
    pub relax: bool,
}

/// Destination-side harm guard: running load estimates per (part, dim)
/// against the spike caps.
///
/// Decisions are per-source (each heavy part plans independently, as in
/// ParMA), so several sources could fill the same destination's headroom
/// simultaneously. To bound that overfill, each source may only consume
/// **half** of a destination's remaining headroom for dims other than the
/// one being balanced; the iteration loop re-gathers loads and converges
/// geometrically.
#[derive(Debug)]
pub struct HarmGuard {
    /// Dims that must not be pushed over their cap on any destination.
    pub guarded: Vec<Dim>,
    /// Caps per dim: `avg * (1 + tol)` (or the current peak for protected
    /// dims — "no harm" means not raising the peak).
    pub caps: [f64; 4],
    /// The dim being balanced (full headroom; the schedule already limits
    /// per-candidate quotas for it).
    pub target: Dim,
    /// Running destination load estimates.
    dest_load: FxHashMap<(PartId, usize), f64>,
}

impl HarmGuard {
    /// Build a guard for `guarded` dims with the given caps. Base loads are
    /// supplied lazily at check time via the `base` closures.
    pub fn new(guarded: Vec<Dim>, caps: [f64; 4], target: Dim) -> Self {
        HarmGuard {
            guarded,
            caps,
            target,
            dest_load: FxHashMap::default(),
        }
    }

    fn current(&self, q: PartId, d: Dim, base: f64) -> f64 {
        self.dest_load
            .get(&(q, d.as_usize()))
            .copied()
            .unwrap_or(base)
    }

    fn allowance(&self, d: Dim, base: f64) -> f64 {
        let cap = self.caps[d.as_usize()];
        if d == self.target {
            cap
        } else {
            // Half the headroom this source sees (overfill bound).
            base + (cap - base) * 0.5
        }
    }

    /// Would adding `gains[d]` entities to part `q` break any guarded cap?
    pub fn would_harm(&self, q: PartId, gains: &[f64; 4], base: impl Fn(Dim) -> f64) -> bool {
        for &d in &self.guarded {
            let b = base(d);
            let now = self.current(q, d, b);
            if now + gains[d.as_usize()] > self.allowance(d, b) {
                return true;
            }
        }
        false
    }

    /// Commit a cavity's gains to part `q`.
    pub fn commit(&mut self, q: PartId, gains: &[f64; 4], base: impl Fn(Dim) -> f64) {
        for &d in &self.guarded {
            let now = self.current(q, d, base(d));
            self.dest_load
                .insert((q, d.as_usize()), now + gains[d.as_usize()]);
        }
    }

    /// The total gains this source has committed toward destination `q`,
    /// relative to the supplied base loads — the request sent to `q` in the
    /// admission handshake.
    pub fn committed_gains(&self, q: PartId, base: impl Fn(Dim) -> f64) -> [f64; 4] {
        let mut g = [0f64; 4];
        for &d in &self.guarded {
            if let Some(&now) = self.dest_load.get(&(q, d.as_usize())) {
                g[d.as_usize()] = now - base(d);
            }
        }
        g
    }
}

/// Per-part selection state: the plan being built and which elements are in
/// it.
pub struct Selector<'p> {
    part: &'p Part,
    elem_dim: Dim,
    /// The migration plan accumulated so far.
    pub plan: MigrationPlan,
    selected: FxHashSet<MeshEnt>,
    /// Whether the strict selection passes run before the relaxed ones.
    strict: bool,
    /// Per-element weight tag: element-dim removals and destination gains
    /// count this weight instead of 1 (predictive balancing, §III-B).
    weight: Option<pumi_util::TagId>,
    /// Closure entities already counted toward each destination's gains —
    /// adjacent cavities share closure entities, and double-counting them
    /// makes the harm guard block diffusion prematurely.
    counted: FxHashMap<PartId, FxHashSet<MeshEnt>>,
    /// Topology gate: reject cavities that create unpaid off-node boundary.
    topo: Option<TopoGate>,
}

/// A selection request: balance `target` by shipping ~`quota` target-dim
/// entities to candidate `cand`.
#[derive(Debug, Clone, Copy)]
pub struct SelectRequest {
    /// The entity dimension being balanced.
    pub target: Dim,
    /// The destination candidate part.
    pub cand: PartId,
    /// How many target-dim entities to remove from this part.
    pub quota: f64,
}

impl<'p> Selector<'p> {
    /// Start selecting on `part`.
    pub fn new(part: &'p Part) -> Selector<'p> {
        Selector {
            part,
            elem_dim: part.mesh.elem_dim_t(),
            plan: MigrationPlan::new(),
            selected: FxHashSet::default(),
            strict: true,
            weight: None,
            counted: FxHashMap::default(),
            topo: None,
        }
    }

    /// Enable or disable the strict selection passes (for ablation).
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Weight element-dim accounting by the named Real tag (missing tag or
    /// entry counts as 1.0).
    pub fn weighted(mut self, tag: Option<&str>) -> Self {
        self.weight = tag.and_then(|t| self.part.mesh.tags().find(t));
        self
    }

    /// Install a topology gate (None leaves selection topology-blind).
    pub fn topo(mut self, gate: Option<TopoGate>) -> Self {
        self.topo = gate;
        self
    }

    fn elem_weight(&self, e: MeshEnt) -> f64 {
        self.weight
            .and_then(|t| self.part.mesh.tags().get_dbl(t, e))
            .unwrap_or(1.0)
    }

    /// Total elements selected so far.
    pub fn selected_count(&self) -> usize {
        self.selected.len()
    }

    /// Run one selection request; returns the estimated number of target-dim
    /// entities removed from this part.
    pub fn select(
        &mut self,
        req: SelectRequest,
        guard: &mut HarmGuard,
        base_load: impl Fn(PartId, Dim) -> f64 + Copy,
    ) -> f64 {
        if req.target == self.elem_dim {
            self.select_elements(req, guard, base_load)
        } else {
            self.select_cavities(req, guard, base_load)
        }
    }

    /// Fig 9: boundary elements with more shared sides than interior sides.
    fn select_elements(
        &mut self,
        req: SelectRequest,
        guard: &mut HarmGuard,
        base_load: impl Fn(PartId, Dim) -> f64 + Copy,
    ) -> f64 {
        let mut removed = 0.0;
        // Three passes: strict Fig 9 (more part-boundary sides than
        // part-interior sides), relaxed (at least as many), then any element
        // touching the candidate boundary (keeps diffusion progressing when
        // no spiky elements remain). Sides on the geometric domain boundary
        // are neither part-boundary nor part-interior, matching Fig 9's
        // classification-based counting.
        let first_pass = if self.strict { 0usize } else { 2 };
        for pass in first_pass..3usize {
            if removed >= req.quota {
                break;
            }
            for (s, remotes) in self.part.shared_entities() {
                if removed >= req.quota {
                    break;
                }
                if s.dim().as_usize() + 1 != self.elem_dim.as_usize() {
                    continue;
                }
                if !remotes.iter().any(|&(q, _)| q == req.cand) {
                    continue;
                }
                for e in self.part.mesh.up_ents(s) {
                    if self.selected.contains(&e) || self.part.is_ghost(e) {
                        continue;
                    }
                    let sides = self.part.mesh.down_ents(e);
                    let shared = sides.iter().filter(|&&x| self.part.is_shared(x)).count();
                    let interior = sides
                        .iter()
                        .filter(|&&x| !self.part.is_shared(x) && self.part.mesh.up_count(x) == 2)
                        .count();
                    let ok = match pass {
                        0 => shared > interior,
                        1 => shared >= interior,
                        _ => true,
                    };
                    if !ok {
                        continue;
                    }
                    if !self.topo_admits(&[e], req.cand, self.elem_weight(e)) {
                        continue;
                    }
                    let gains = self.dest_gains(&[e], req.cand);
                    if guard.would_harm(req.cand, &gains, |d| base_load(req.cand, d)) {
                        continue;
                    }
                    guard.commit(req.cand, &gains, |d| base_load(req.cand, d));
                    self.mark_counted(&[e], req.cand);
                    self.selected.insert(e);
                    self.plan.send(e, req.cand);
                    removed += self.elem_weight(e);
                    if removed >= req.quota {
                        break;
                    }
                }
            }
        }
        removed
    }

    /// Figs 10 / Zhou: cavities around part-boundary entities of the target
    /// dimension shared with the candidate.
    fn select_cavities(
        &mut self,
        req: SelectRequest,
        guard: &mut HarmGuard,
        base_load: impl Fn(PartId, Dim) -> f64 + Copy,
    ) -> f64 {
        let mut removed = 0.0;
        // Cavity caps: strict first (Fig 10(a): one or two elements), then
        // progressively relaxed.
        let caps: &[usize] = if self.strict { &[2, 4, 8] } else { &[8] };
        for &cavity_cap in caps {
            if removed >= req.quota {
                break;
            }
            for (b, remotes) in self.part.shared_entities() {
                if removed >= req.quota {
                    break;
                }
                if b.dim() != req.target {
                    continue;
                }
                if !remotes.iter().any(|&(q, _)| q == req.cand) {
                    continue;
                }
                let cavity: Vec<MeshEnt> = self
                    .part
                    .mesh
                    .adjacent(b, self.elem_dim)
                    .into_iter()
                    .filter(|e| !self.selected.contains(e) && !self.part.is_ghost(*e))
                    .collect();
                if cavity.is_empty() || cavity.len() > cavity_cap {
                    continue;
                }
                // The cavity must actually remove target entities from us.
                let gain_removed = self.removal_estimate(&cavity, req.target);
                if gain_removed < 1.0 {
                    continue;
                }
                if !self.topo_admits(&cavity, req.cand, gain_removed) {
                    continue;
                }
                let gains = self.dest_gains(&cavity, req.cand);
                if guard.would_harm(req.cand, &gains, |d| base_load(req.cand, d)) {
                    continue;
                }
                guard.commit(req.cand, &gains, |d| base_load(req.cand, d));
                self.mark_counted(&cavity, req.cand);
                for &e in &cavity {
                    self.selected.insert(e);
                    self.plan.send(e, req.cand);
                }
                removed += gain_removed;
            }
        }
        removed
    }

    /// Entities of `target` dim that leave this part if `cavity` migrates:
    /// those all of whose adjacent elements are selected or in the cavity.
    fn removal_estimate(&self, cavity: &[MeshEnt], target: Dim) -> f64 {
        let mesh = &self.part.mesh;
        let mut cands: FxHashSet<MeshEnt> = FxHashSet::default();
        for &e in cavity {
            for sub in mesh.adjacent(e, target) {
                cands.insert(sub);
            }
        }
        let mut n = 0.0;
        for sub in cands {
            let all_gone = mesh
                .adjacent(sub, self.elem_dim)
                .iter()
                .all(|el| self.selected.contains(el) || cavity.contains(el));
            if all_gone {
                n += 1.0;
            }
        }
        n
    }

    /// Does the topology gate admit migrating `cavity` to `cand`? True when
    /// no gate is installed, the gate is relaxed, the cavity reduces (or
    /// keeps) the off-node boundary-pair count, or the balance `credit`
    /// pays for the new pairs at the configured penalty.
    fn topo_admits(&self, cavity: &[MeshEnt], cand: PartId, credit: f64) -> bool {
        let Some(g) = &self.topo else {
            return true;
        };
        if g.relax {
            return true;
        }
        let delta = self.off_node_pair_delta(cavity, cand, g);
        delta <= 0 || delta as f64 * g.penalty <= credit
    }

    /// The exact change in off-node boundary pairs if `cavity` migrates to
    /// `cand`: for each closure entity, its holder set afterwards is the
    /// holder set before, minus this part if every adjacent element is
    /// leaving, plus the candidate; the delta is the difference in
    /// node-crossing holder pairs. Elements themselves are interior (one
    /// holder before and after) and contribute nothing.
    fn off_node_pair_delta(&self, cavity: &[MeshEnt], cand: PartId, g: &TopoGate) -> i64 {
        let mesh = &self.part.mesh;
        let me = self.part.id;
        let node = |p: PartId| g.node_of_part[p as usize];
        let off_pairs = |res: &[PartId]| -> i64 {
            let mut n = 0i64;
            for i in 0..res.len() {
                for j in (i + 1)..res.len() {
                    if node(res[i]) != node(res[j]) {
                        n += 1;
                    }
                }
            }
            n
        };
        let mut seen: FxHashSet<MeshEnt> = FxHashSet::default();
        let mut delta = 0i64;
        for &e in cavity {
            for sub in mesh.closure(e) {
                if sub.dim() == self.elem_dim || !seen.insert(sub) {
                    continue;
                }
                let mut res = self.part.residence(sub);
                let before = off_pairs(&res);
                let leaves = mesh
                    .adjacent(sub, self.elem_dim)
                    .iter()
                    .all(|el| self.selected.contains(el) || cavity.contains(el));
                if leaves {
                    res.retain(|&p| p != me);
                }
                if !res.contains(&cand) {
                    res.push(cand);
                }
                delta += off_pairs(&res) - before;
            }
        }
        delta
    }

    /// Estimated new entities per dimension the destination gains from this
    /// cavity: closure entities not already shared with the candidate and
    /// not already counted by a previously accepted cavity for it.
    fn dest_gains(&self, cavity: &[MeshEnt], cand: PartId) -> [f64; 4] {
        let mesh = &self.part.mesh;
        let mut gains = [0f64; 4];
        let mut seen: FxHashSet<MeshEnt> = FxHashSet::default();
        let counted = self.counted.get(&cand);
        for &e in cavity {
            for sub in mesh.closure(e) {
                if !seen.insert(sub) {
                    continue;
                }
                if counted.is_some_and(|c| c.contains(&sub)) {
                    continue;
                }
                let on_cand = self.part.remotes_of(sub).iter().any(|&(q, _)| q == cand);
                if !on_cand {
                    gains[sub.dim().as_usize()] += if sub.dim() == self.elem_dim {
                        self.elem_weight(sub)
                    } else {
                        1.0
                    };
                }
            }
        }
        gains
    }

    /// Record a committed cavity's closure as counted toward `cand`.
    fn mark_counted(&mut self, cavity: &[MeshEnt], cand: PartId) {
        let set = self.counted.entry(cand).or_default();
        for &e in cavity {
            for sub in self.part.mesh.closure(e) {
                set.insert(sub);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;

    fn guard_with_caps(caps: [f64; 4], guarded: Vec<Dim>) -> HarmGuard {
        let target = guarded[0];
        HarmGuard::new(guarded, caps, target)
    }

    #[test]
    fn fig9_selects_boundary_spikes() {
        execute(2, |c| {
            // A strip split unevenly: part 0 has most elements; select from
            // part 0 toward part 1.
            let serial = tri_rect(6, 1, 6.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as pumi_util::PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 5.0 { 0 } else { 1 };
            }
            let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            if c.rank() == 0 {
                let part = dm.part(0);
                let mut sel = Selector::new(part);
                let mut guard = guard_with_caps([1e9; 4], vec![Dim::Face]);
                let removed = sel.select(
                    SelectRequest {
                        target: Dim::Face,
                        cand: 1,
                        quota: 2.0,
                    },
                    &mut guard,
                    |_, _| 0.0,
                );
                assert!(removed >= 1.0, "nothing selected");
                assert!(!sel.plan.is_empty());
                // All selected elements touch the boundary with part 1.
                for (&e, &to) in &sel.plan.dest {
                    assert_eq!(to, 1);
                    let touches = part
                        .mesh
                        .closure(e)
                        .iter()
                        .any(|&s| s.dim() != d && part.is_shared(s));
                    assert!(touches, "selected interior element {e:?}");
                }
            }
        });
    }

    #[test]
    fn vertex_cavity_selection_removes_vertices() {
        execute(2, |c| {
            let serial = tri_rect(6, 3, 2.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as pumi_util::PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 1.4 { 0 } else { 1 };
            }
            let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            if c.rank() == 0 {
                let part = dm.part(0);
                let mut sel = Selector::new(part);
                let mut guard = guard_with_caps([1e9; 4], vec![Dim::Vertex]);
                let removed = sel.select(
                    SelectRequest {
                        target: Dim::Vertex,
                        cand: 1,
                        quota: 3.0,
                    },
                    &mut guard,
                    |_, _| 0.0,
                );
                assert!(removed >= 1.0, "no vertex cavity found");
            }
        });
    }

    #[test]
    fn harm_guard_blocks_overfull_destination() {
        execute(2, |c| {
            let serial = tri_rect(6, 1, 6.0, 1.0);
            let d = serial.elem_dim_t();
            let mut elem_part = vec![0 as pumi_util::PartId; serial.index_space(d)];
            for e in serial.iter(d) {
                elem_part[e.idx()] = if serial.centroid(e)[0] < 5.0 { 0 } else { 1 };
            }
            let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part);
            if c.rank() == 0 {
                let part = dm.part(0);
                let mut sel = Selector::new(part);
                // Destination already at cap: nothing may be selected.
                let mut guard = guard_with_caps([0.0; 4], vec![Dim::Face]);
                let removed = sel.select(
                    SelectRequest {
                        target: Dim::Face,
                        cand: 1,
                        quota: 5.0,
                    },
                    &mut guard,
                    |_, _| 1.0, // any gain exceeds cap 0
                );
                assert_eq!(removed, 0.0);
                assert!(sel.plan.is_empty());
            }
        });
    }

    #[test]
    fn removal_estimate_counts_exclusive_entities() {
        execute(1, |_c| {});
        // Serial check on a tiny fan: selecting both triangles around the
        // shared edge removes that edge and the interior vertex pattern.
        let serial = tri_rect(1, 1, 1.0, 1.0);
        let mut part = pumi_core::Part::new(0, 2);
        // Rebuild serial into a part.
        let mut vmap = std::collections::HashMap::new();
        for v in serial.iter(Dim::Vertex) {
            let nv = part.add_vertex(serial.coords(v), serial.class_of(v), v.index() as u64);
            vmap.insert(v.index(), nv.index());
        }
        for e in serial.iter(Dim::Face) {
            let verts: Vec<u32> = serial.verts_of(e).iter().map(|v| vmap[v]).collect();
            part.add_entity(
                serial.topo(e),
                &verts,
                serial.class_of(e),
                100 + e.idx() as u64,
            );
        }
        let sel = Selector::new(&part);
        let cavity: Vec<MeshEnt> = part.mesh.elems().collect();
        // Migrating both triangles removes all 4 vertices and 5 edges.
        assert_eq!(sel.removal_estimate(&cavity, Dim::Vertex), 4.0);
        assert_eq!(sel.removal_estimate(&cavity, Dim::Edge), 5.0);
        let one: Vec<MeshEnt> = cavity[..1].to_vec();
        // One triangle alone removes only its exclusive vertex (the corner
        // not on the diagonal).
        assert_eq!(sel.removal_estimate(&one, Dim::Vertex), 1.0);
    }
}
