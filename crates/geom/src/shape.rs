//! Shape interrogation — "geometric information about the shape of the
//! entities" (§II).
//!
//! The generated domains are bounded by analytic shapes: points, line
//! segments, planes, and (possibly bulged) cylinder walls. Each model entity
//! carries a [`Shape`]; the two operations the mesh stack needs are *closest
//! point* (boundary snapping of adapted vertices) and *outward normal*
//! (quality checks near curved walls).

/// Small vector helpers (3-component, used pervasively by the mesh stack).
pub mod vec3 {
    /// a + b
    #[inline]
    pub fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
    }
    /// a - b
    #[inline]
    pub fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
    }
    /// s * a
    #[inline]
    pub fn scale(s: f64, a: [f64; 3]) -> [f64; 3] {
        [s * a[0], s * a[1], s * a[2]]
    }
    /// Dot product.
    #[inline]
    pub fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
        a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
    }
    /// Cross product.
    #[inline]
    pub fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ]
    }
    /// Euclidean norm.
    #[inline]
    pub fn norm(a: [f64; 3]) -> f64 {
        dot(a, a).sqrt()
    }
    /// a normalized; returns zero vector for zero input.
    #[inline]
    pub fn normalize(a: [f64; 3]) -> [f64; 3] {
        let n = norm(a);
        if n == 0.0 {
            [0.0; 3]
        } else {
            scale(1.0 / n, a)
        }
    }
    /// Distance between points.
    #[inline]
    pub fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
        norm(sub(a, b))
    }
}

use vec3::*;

/// Radius profile along a cylinder axis — constant, or with a Gaussian bulge
/// (the aneurysm of the AAA proxy domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RadiusProfile {
    /// Constant radius.
    Const(f64),
    /// `r(t) = r0 + amp * exp(-((t-center)/width)^2)` where `t` is the
    /// normalized axial coordinate in `[0,1]`.
    Bulge {
        /// Base radius.
        r0: f64,
        /// Bulge amplitude.
        amp: f64,
        /// Normalized axial position of the bulge peak.
        center: f64,
        /// Gaussian width of the bulge.
        width: f64,
    },
}

impl RadiusProfile {
    /// Radius at normalized axial coordinate `t ∈ [0,1]`.
    pub fn radius(&self, t: f64) -> f64 {
        match *self {
            RadiusProfile::Const(r) => r,
            RadiusProfile::Bulge {
                r0,
                amp,
                center,
                width,
            } => {
                let u = (t - center) / width;
                r0 + amp * (-u * u).exp()
            }
        }
    }
}

/// The shape of a model entity.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// No analytic shape: closest point is the identity (interior entities,
    /// or entities whose geometry we do not snap to).
    Free,
    /// A point in space (model vertices).
    Point([f64; 3]),
    /// A straight segment from `a` to `b` (model edges).
    Segment {
        /// Start point.
        a: [f64; 3],
        /// End point.
        b: [f64; 3],
    },
    /// An infinite plane through `origin` with unit `normal`, used for the
    /// flat faces of boxes and end caps (meshes only touch a bounded patch).
    Plane {
        /// A point on the plane.
        origin: [f64; 3],
        /// Unit normal.
        normal: [f64; 3],
    },
    /// A circle (model edges bounding cylinder caps — the vessel rims).
    Circle {
        /// Circle center.
        center: [f64; 3],
        /// Unit normal of the circle's plane.
        normal: [f64; 3],
        /// Circle radius.
        radius: f64,
    },
    /// The lateral wall of a (bulged) cylinder from `p0` to `p1`.
    CylinderWall {
        /// Axis start.
        p0: [f64; 3],
        /// Axis end.
        p1: [f64; 3],
        /// Radius along the normalized axis.
        profile: RadiusProfile,
    },
}

impl Shape {
    /// The closest point on the shape to `x`.
    pub fn closest_point(&self, x: [f64; 3]) -> [f64; 3] {
        match self {
            Shape::Free => x,
            Shape::Point(p) => *p,
            Shape::Segment { a, b } => {
                let ab = sub(*b, *a);
                let len2 = dot(ab, ab);
                if len2 == 0.0 {
                    return *a;
                }
                let t = (dot(sub(x, *a), ab) / len2).clamp(0.0, 1.0);
                add(*a, scale(t, ab))
            }
            Shape::Plane { origin, normal } => {
                let d = dot(sub(x, *origin), *normal);
                sub(x, scale(d, *normal))
            }
            Shape::Circle {
                center,
                normal,
                radius,
            } => {
                // Project into the circle's plane, then out to the radius.
                let d = dot(sub(x, *center), *normal);
                let in_plane = sub(x, scale(d, *normal));
                let radial = sub(in_plane, *center);
                let rn = norm(radial);
                if rn == 0.0 {
                    let seed = if normal[0].abs() < 0.9 {
                        [1.0, 0.0, 0.0]
                    } else {
                        [0.0, 1.0, 0.0]
                    };
                    let perp = normalize(cross(*normal, seed));
                    add(*center, scale(*radius, perp))
                } else {
                    add(*center, scale(*radius / rn, radial))
                }
            }
            Shape::CylinderWall { p0, p1, profile } => {
                let axis = sub(*p1, *p0);
                let len2 = dot(axis, axis);
                if len2 == 0.0 {
                    return *p0;
                }
                let t = (dot(sub(x, *p0), axis) / len2).clamp(0.0, 1.0);
                let on_axis = add(*p0, scale(t, axis));
                let radial = sub(x, on_axis);
                let r_target = profile.radius(t);
                let rn = norm(radial);
                if rn == 0.0 {
                    // On the axis: pick an arbitrary perpendicular direction.
                    let adir = normalize(axis);
                    let seed = if adir[0].abs() < 0.9 {
                        [1.0, 0.0, 0.0]
                    } else {
                        [0.0, 1.0, 0.0]
                    };
                    let perp = normalize(cross(adir, seed));
                    add(on_axis, scale(r_target, perp))
                } else {
                    add(on_axis, scale(r_target / rn, radial))
                }
            }
        }
    }

    /// An (approximate) outward normal at `x`; `None` for shapes without a
    /// well-defined surface normal.
    pub fn normal(&self, x: [f64; 3]) -> Option<[f64; 3]> {
        match self {
            Shape::Plane { normal, .. } => Some(*normal),
            Shape::CylinderWall { p0, p1, .. } => {
                let axis = sub(*p1, *p0);
                let len2 = dot(axis, axis);
                if len2 == 0.0 {
                    return None;
                }
                let t = (dot(sub(x, *p0), axis) / len2).clamp(0.0, 1.0);
                let on_axis = add(*p0, scale(t, axis));
                let radial = sub(x, on_axis);
                let n = norm(radial);
                (n > 0.0).then(|| scale(1.0 / n, radial))
            }
            _ => None,
        }
    }

    /// Distance from `x` to the shape.
    pub fn distance(&self, x: [f64; 3]) -> f64 {
        dist(x, self.closest_point(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: [f64; 3], b: [f64; 3]) -> bool {
        dist(a, b) < 1e-9
    }

    #[test]
    fn vec3_basics() {
        assert_eq!(add([1., 2., 3.], [4., 5., 6.]), [5., 7., 9.]);
        assert_eq!(cross([1., 0., 0.], [0., 1., 0.]), [0., 0., 1.]);
        assert!((norm([3., 4., 0.]) - 5.0).abs() < EPS);
        assert_eq!(normalize([0., 0., 0.]), [0., 0., 0.]);
    }

    #[test]
    fn point_and_free() {
        let p = Shape::Point([1., 2., 3.]);
        assert!(close(p.closest_point([9., 9., 9.]), [1., 2., 3.]));
        let f = Shape::Free;
        assert!(close(f.closest_point([9., 9., 9.]), [9., 9., 9.]));
        assert_eq!(f.distance([9., 9., 9.]), 0.0);
    }

    #[test]
    fn segment_clamps_to_ends() {
        let s = Shape::Segment {
            a: [0., 0., 0.],
            b: [1., 0., 0.],
        };
        assert!(close(s.closest_point([0.5, 1.0, 0.0]), [0.5, 0., 0.]));
        assert!(close(s.closest_point([-5., 0., 0.]), [0., 0., 0.]));
        assert!(close(s.closest_point([5., 3., 0.]), [1., 0., 0.]));
    }

    #[test]
    fn plane_projection() {
        let pl = Shape::Plane {
            origin: [0., 0., 1.],
            normal: [0., 0., 1.],
        };
        assert!(close(pl.closest_point([2., 3., 5.]), [2., 3., 1.]));
        assert!((pl.distance([2., 3., 5.]) - 4.0).abs() < EPS);
        assert_eq!(pl.normal([0.; 3]), Some([0., 0., 1.]));
    }

    #[test]
    fn cylinder_wall_constant_radius() {
        let c = Shape::CylinderWall {
            p0: [0., 0., 0.],
            p1: [0., 0., 10.],
            profile: RadiusProfile::Const(2.0),
        };
        // Point at radius 5 projects to radius 2 at the same axial height.
        let q = c.closest_point([5., 0., 4.]);
        assert!(close(q, [2., 0., 4.]));
        // Point on the axis still lands on the wall.
        let q2 = c.closest_point([0., 0., 4.]);
        assert!(((q2[0].powi(2) + q2[1].powi(2)).sqrt() - 2.0).abs() < 1e-9);
        // Normal points radially outward.
        let n = c.normal([5., 0., 4.]).unwrap();
        assert!(close(n, [1., 0., 0.]));
    }

    #[test]
    fn circle_projection() {
        let c = Shape::Circle {
            center: [0., 0., 2.],
            normal: [0., 0., 1.],
            radius: 3.0,
        };
        assert!(close(c.closest_point([6., 0., 7.]), [3., 0., 2.]));
        // Point on the circle's axis lands somewhere on the rim.
        let q = c.closest_point([0., 0., 9.]);
        assert!(((q[0].powi(2) + q[1].powi(2)).sqrt() - 3.0).abs() < 1e-9);
        assert!((q[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bulged_radius_profile() {
        let p = RadiusProfile::Bulge {
            r0: 1.0,
            amp: 0.5,
            center: 0.5,
            width: 0.1,
        };
        assert!((p.radius(0.5) - 1.5).abs() < EPS);
        assert!(p.radius(0.0) < 1.0 + 1e-6);
        assert!(p.radius(0.5) > p.radius(0.3));
        let c = Shape::CylinderWall {
            p0: [0., 0., 0.],
            p1: [0., 0., 1.],
            profile: p,
        };
        let mid = c.closest_point([3., 0., 0.5]);
        assert!((mid[0] - 1.5).abs() < 1e-9);
    }

    proptest::proptest! {
        #[test]
        fn closest_point_is_idempotent(
            x in proptest::array::uniform3(-10.0f64..10.0),
        ) {
            let shapes = vec![
                Shape::Point([1., 1., 1.]),
                Shape::Segment { a: [0.;3], b: [1., 0., 0.] },
                Shape::Plane { origin: [0.;3], normal: [0., 1., 0.] },
                Shape::CylinderWall { p0: [0.;3], p1: [0., 0., 5.], profile: RadiusProfile::Const(1.0) },
                Shape::Circle { center: [0.;3], normal: [0., 0., 1.], radius: 2.0 },
            ];
            for s in shapes {
                let p1 = s.closest_point(x);
                let p2 = s.closest_point(p1);
                proptest::prop_assert!(dist(p1, p2) < 1e-6, "{s:?} not idempotent: {p1:?} vs {p2:?}");
            }
        }
    }
}
