//! Boundary-representation model topology.
//!
//! A model is a set of topological entities per dimension, each carrying a
//! stable user-visible integer *tag* (the id mesh classification refers to)
//! and adjacency links to bounding (downward) and bounded (upward) entities
//! — the non-manifold b-rep structure of Weiler's radial-edge lineage the
//! paper cites (Weiler, ref. 3).

use crate::shape::Shape;
use pumi_util::{Dim, FxHashMap};
use std::fmt;

/// Handle to a geometric model entity: 2 bits dimension, 30 bits tag.
///
/// `GeomEnt` is what mesh entities store as their *geometric classification*
/// — the "unique association of mesh entities to the highest level geometric
/// model entity that it partly represents" (§II).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GeomEnt(pub u32);

const DIM_SHIFT: u32 = 30;
const TAG_MASK: u32 = (1 << DIM_SHIFT) - 1;

impl GeomEnt {
    /// Create a handle from dimension and tag.
    #[inline]
    pub fn new(dim: Dim, tag: u32) -> GeomEnt {
        debug_assert!(tag < TAG_MASK);
        GeomEnt(((dim as u32) << DIM_SHIFT) | tag)
    }

    /// The entity's dimension.
    #[inline]
    pub fn dim(self) -> Dim {
        Dim::from_usize((self.0 >> DIM_SHIFT) as usize)
    }

    /// The entity's user tag.
    #[inline]
    pub fn tag(self) -> u32 {
        self.0 & TAG_MASK
    }
}

impl fmt::Debug for GeomEnt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}_{}", self.dim().as_usize(), self.tag())
    }
}

#[derive(Debug, Clone)]
struct ModelEntData {
    /// Entities of dimension d-1 bounding this one.
    down: Vec<GeomEnt>,
    /// Entities of dimension d+1 this one bounds.
    up: Vec<GeomEnt>,
    /// Shape for geometric interrogation.
    shape: Shape,
}

/// A non-manifold boundary-representation geometric model.
#[derive(Debug, Default, Clone)]
pub struct Model {
    ents: FxHashMap<GeomEnt, ModelEntData>,
    /// The model's spatial dimension (2 or 3).
    dim: usize,
}

impl Model {
    /// An empty model of spatial dimension `dim` (2 or 3).
    pub fn new(dim: usize) -> Model {
        assert!(dim == 2 || dim == 3, "model dimension must be 2 or 3");
        Model {
            ents: FxHashMap::default(),
            dim,
        }
    }

    /// The model's spatial dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Add a model entity with a shape. Tags must be unique per dimension.
    ///
    /// # Panics
    /// Panics if the (dim, tag) pair already exists.
    pub fn add(&mut self, dim: Dim, tag: u32, shape: Shape) -> GeomEnt {
        let e = GeomEnt::new(dim, tag);
        let prev = self.ents.insert(
            e,
            ModelEntData {
                down: Vec::new(),
                up: Vec::new(),
                shape,
            },
        );
        assert!(prev.is_none(), "duplicate model entity {e:?}");
        e
    }

    /// Record that `lower` (dim d) bounds `upper` (dim d+1).
    ///
    /// # Panics
    /// Panics if either entity is missing or dimensions are not consecutive.
    pub fn connect(&mut self, lower: GeomEnt, upper: GeomEnt) {
        assert_eq!(
            lower.dim().as_usize() + 1,
            upper.dim().as_usize(),
            "connect wants consecutive dimensions"
        );
        assert!(self.ents.contains_key(&lower), "unknown {lower:?}");
        assert!(self.ents.contains_key(&upper), "unknown {upper:?}");
        let lo = self.ents.get_mut(&lower).unwrap();
        if !lo.up.contains(&upper) {
            lo.up.push(upper);
        }
        let hi = self.ents.get_mut(&upper).unwrap();
        if !hi.down.contains(&lower) {
            hi.down.push(lower);
        }
    }

    /// Whether the model contains this entity.
    pub fn contains(&self, e: GeomEnt) -> bool {
        self.ents.contains_key(&e)
    }

    /// Find an entity by dimension and tag.
    pub fn find(&self, dim: Dim, tag: u32) -> Option<GeomEnt> {
        let e = GeomEnt::new(dim, tag);
        self.contains(e).then_some(e)
    }

    /// Entities of dimension d-1 bounding `e` (model downward adjacency).
    pub fn down(&self, e: GeomEnt) -> &[GeomEnt] {
        &self.ents[&e].down
    }

    /// Entities of dimension d+1 bounded by `e` (model upward adjacency).
    pub fn up(&self, e: GeomEnt) -> &[GeomEnt] {
        &self.ents[&e].up
    }

    /// The shape of `e` for geometric interrogation.
    pub fn shape(&self, e: GeomEnt) -> &Shape {
        &self.ents[&e].shape
    }

    /// Iterate all entities of dimension `dim`, sorted by tag (deterministic).
    pub fn ents_of_dim(&self, dim: Dim) -> Vec<GeomEnt> {
        let mut v: Vec<GeomEnt> = self
            .ents
            .keys()
            .filter(|e| e.dim() == dim)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// Count of entities of dimension `dim`.
    pub fn count(&self, dim: Dim) -> usize {
        self.ents.keys().filter(|e| e.dim() == dim).count()
    }

    /// Closest point on `e`'s shape to `x` — used for boundary snapping of
    /// new vertices during mesh adaptation.
    pub fn closest_point(&self, e: GeomEnt, x: [f64; 3]) -> [f64; 3] {
        self.shape(e).closest_point(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn free() -> Shape {
        Shape::Free
    }

    #[test]
    fn geoment_pack_roundtrip() {
        let e = GeomEnt::new(Dim::Face, 12345);
        assert_eq!(e.dim(), Dim::Face);
        assert_eq!(e.tag(), 12345);
        assert_eq!(format!("{e:?}"), "G2_12345");
    }

    #[test]
    fn add_find_count() {
        let mut m = Model::new(2);
        let v = m.add(Dim::Vertex, 1, free());
        let e = m.add(Dim::Edge, 1, free());
        assert!(m.contains(v));
        assert_eq!(m.find(Dim::Vertex, 1), Some(v));
        assert_eq!(m.find(Dim::Vertex, 2), None);
        assert_eq!(m.count(Dim::Vertex), 1);
        assert_eq!(m.count(Dim::Edge), 1);
        assert!(m.up(v).is_empty());
        assert!(m.down(e).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_tag_rejected() {
        let mut m = Model::new(2);
        m.add(Dim::Vertex, 1, free());
        m.add(Dim::Vertex, 1, free());
    }

    #[test]
    fn connect_builds_both_directions() {
        let mut m = Model::new(2);
        let v = m.add(Dim::Vertex, 1, free());
        let e = m.add(Dim::Edge, 7, free());
        m.connect(v, e);
        m.connect(v, e); // idempotent
        assert_eq!(m.up(v), &[e]);
        assert_eq!(m.down(e), &[v]);
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn connect_requires_consecutive_dims() {
        let mut m = Model::new(3);
        let v = m.add(Dim::Vertex, 1, free());
        let f = m.add(Dim::Face, 1, free());
        m.connect(v, f);
    }

    #[test]
    fn ents_of_dim_sorted() {
        let mut m = Model::new(2);
        m.add(Dim::Edge, 5, free());
        m.add(Dim::Edge, 2, free());
        m.add(Dim::Edge, 9, free());
        let tags: Vec<u32> = m.ents_of_dim(Dim::Edge).iter().map(|e| e.tag()).collect();
        assert_eq!(tags, vec![2, 5, 9]);
    }
}
