//! Geometric model (§II).
//!
//! "The geometric model is the high-level (mesh independent) definition of
//! the domain, typically a non-manifold boundary representation. PUMI
//! interacts with the geometric model through a functional interface that
//! supports the ability to interrogate the geometric model for the
//! adjacencies of the model entities and geometric information about the
//! shape of the entities."
//!
//! This crate provides that functional interface:
//! * [`model`] — the boundary-representation topology: model vertices, edges,
//!   faces, regions, their adjacencies, and stable integer tags,
//! * [`shape`] — shape interrogation (closest point, normals, containment)
//!   for the analytic surfaces used by the generated domains,
//! * [`builders`] — ready-made models: 2D rectangle, 3D box, vessel with an
//!   aneurysm bulge (the AAA proxy), swept wedge wing (the ONERA M6 proxy).
//!
//! Mesh entities reference model entities through [`GeomEnt`] handles — the
//! *geometric classification* that "is central to the ability to support
//! automated, adaptive simulations".

pub mod builders;
pub mod model;
pub mod shape;

pub use model::{GeomEnt, Model};
pub use shape::Shape;
