//! Ready-made geometric models for the domains used by the experiments.
//!
//! Each builder returns a [`Model`] plus a *classifier* convention: helper
//! functions that map a point known to lie on the domain boundary to the
//! model entity it belongs to. The mesh generators use these to assign
//! geometric classification (§II) consistently with the model topology.

use crate::model::{GeomEnt, Model};
use crate::shape::{RadiusProfile, Shape};
use pumi_util::Dim;

/// Tolerance for classifying a coordinate as "on" a boundary plane.
pub const CLASSIFY_EPS: f64 = 1e-9;

/// Build the model of the 2D rectangle `[0,w] × [0,h]`.
///
/// Tags: face 1 = interior; edges 1..=4 = bottom, right, top, left;
/// vertices 1..=4 = (0,0), (w,0), (w,h), (0,h).
pub fn rectangle(w: f64, h: f64) -> Model {
    let mut m = Model::new(2);
    let corners = [[0., 0., 0.], [w, 0., 0.], [w, h, 0.], [0., h, 0.]];
    let verts: Vec<GeomEnt> = corners
        .iter()
        .enumerate()
        .map(|(i, &p)| m.add(Dim::Vertex, i as u32 + 1, Shape::Point(p)))
        .collect();
    let face = m.add(
        Dim::Face,
        1,
        Shape::Plane {
            origin: [0., 0., 0.],
            normal: [0., 0., 1.],
        },
    );
    for i in 0..4 {
        let a = corners[i];
        let b = corners[(i + 1) % 4];
        let e = m.add(Dim::Edge, i as u32 + 1, Shape::Segment { a, b });
        m.connect(verts[i], e);
        m.connect(verts[(i + 1) % 4], e);
        m.connect(e, face);
    }
    m
}

/// Classify a point of the rectangle `[0,w] × [0,h]` to its model entity.
pub fn classify_rectangle(w: f64, h: f64, p: [f64; 3]) -> GeomEnt {
    let on_x0 = p[0].abs() < CLASSIFY_EPS;
    let on_x1 = (p[0] - w).abs() < CLASSIFY_EPS;
    let on_y0 = p[1].abs() < CLASSIFY_EPS;
    let on_y1 = (p[1] - h).abs() < CLASSIFY_EPS;
    match (on_x0, on_x1, on_y0, on_y1) {
        (true, _, true, _) => GeomEnt::new(Dim::Vertex, 1),
        (_, true, true, _) => GeomEnt::new(Dim::Vertex, 2),
        (_, true, _, true) => GeomEnt::new(Dim::Vertex, 3),
        (true, _, _, true) => GeomEnt::new(Dim::Vertex, 4),
        (_, _, true, _) => GeomEnt::new(Dim::Edge, 1),
        (_, true, _, _) => GeomEnt::new(Dim::Edge, 2),
        (_, _, _, true) => GeomEnt::new(Dim::Edge, 3),
        (true, _, _, _) => GeomEnt::new(Dim::Edge, 4),
        _ => GeomEnt::new(Dim::Face, 1),
    }
}

/// Build the model of the 3D box `[0,a] × [0,b] × [0,c]`.
///
/// Tags: region 1 = interior; faces 1..=6 = x=0, x=a, y=0, y=b, z=0, z=c;
/// edges and vertices are numbered but referenced only through
/// [`classify_box`].
pub fn box3d(a: f64, b: f64, c: f64) -> Model {
    let mut m = Model::new(3);
    // 8 vertices, corner i encoded by bits (x, y, z).
    let corner = |i: usize| -> [f64; 3] {
        [
            if i & 1 != 0 { a } else { 0.0 },
            if i & 2 != 0 { b } else { 0.0 },
            if i & 4 != 0 { c } else { 0.0 },
        ]
    };
    let verts: Vec<GeomEnt> = (0..8)
        .map(|i| m.add(Dim::Vertex, i as u32 + 1, Shape::Point(corner(i))))
        .collect();
    let region = m.add(Dim::Region, 1, Shape::Free);
    // 6 faces: normals along -x,+x,-y,+y,-z,+z with tags 1..=6.
    let face_defs = [
        ([0., 0., 0.], [-1., 0., 0.]),
        ([a, 0., 0.], [1., 0., 0.]),
        ([0., 0., 0.], [0., -1., 0.]),
        ([0., b, 0.], [0., 1., 0.]),
        ([0., 0., 0.], [0., 0., -1.]),
        ([0., 0., c], [0., 0., 1.]),
    ];
    let faces: Vec<GeomEnt> = face_defs
        .iter()
        .enumerate()
        .map(|(i, &(origin, normal))| {
            let f = m.add(Dim::Face, i as u32 + 1, Shape::Plane { origin, normal });
            m.connect(f, region);
            f
        })
        .collect();
    // 12 edges: pairs of corners differing in exactly one bit.
    let mut tag = 1u32;
    for i in 0..8usize {
        for bit in [1usize, 2, 4] {
            let j = i | bit;
            if j <= i {
                continue;
            }
            if i & bit != 0 {
                continue;
            }
            let e = m.add(
                Dim::Edge,
                tag,
                Shape::Segment {
                    a: corner(i),
                    b: corner(j),
                },
            );
            m.connect(verts[i], e);
            m.connect(verts[j], e);
            // Connect the edge to the two faces containing both corners.
            for (fi, f) in faces.iter().enumerate() {
                let axis = fi / 2; // 0=x,1=y,2=z
                let high = fi % 2 == 1;
                let bitv = 1usize << axis;
                let i_on = (i & bitv != 0) == high;
                let j_on = (j & bitv != 0) == high;
                if i_on && j_on {
                    m.connect(e, *f);
                }
            }
            tag += 1;
        }
    }
    m
}

/// Classify a point of the box `[0,a] × [0,b] × [0,c]` to its model entity
/// (vertex, edge, face, or interior region) by which bounding planes it lies
/// on.
#[allow(clippy::needless_range_loop)] // axis indices select across arrays
pub fn classify_box(a: f64, b: f64, c: f64, p: [f64; 3]) -> GeomEnt {
    let lo = [
        p[0].abs() < CLASSIFY_EPS,
        p[1].abs() < CLASSIFY_EPS,
        p[2].abs() < CLASSIFY_EPS,
    ];
    let hi = [
        (p[0] - a).abs() < CLASSIFY_EPS,
        (p[1] - b).abs() < CLASSIFY_EPS,
        (p[2] - c).abs() < CLASSIFY_EPS,
    ];
    let on = [lo[0] || hi[0], lo[1] || hi[1], lo[2] || hi[2]];
    let count = on.iter().filter(|&&x| x).count();
    match count {
        3 => {
            // Corner: tag = 1 + bits(x_hi, y_hi, z_hi).
            let i = (hi[0] as u32) | ((hi[1] as u32) << 1) | ((hi[2] as u32) << 2);
            GeomEnt::new(Dim::Vertex, i + 1)
        }
        2 => {
            // Edge: identify the free axis and the fixed plane pair; the edge
            // tag enumeration matches `box3d`'s loop order.
            let free_axis = (0..3).find(|&k| !on[k]).unwrap();
            // Reconstruct corner index i (low corner of the edge).
            let mut i = 0usize;
            for k in 0..3 {
                if k != free_axis && hi[k] {
                    i |= 1 << k;
                }
            }
            // Recompute the tag by replaying box3d's enumeration order.
            let mut tag = 1u32;
            for ii in 0..8usize {
                for bit in [1usize, 2, 4] {
                    let jj = ii | bit;
                    if jj <= ii || ii & bit != 0 {
                        continue;
                    }
                    if ii == i && bit == (1 << free_axis) {
                        return GeomEnt::new(Dim::Edge, tag);
                    }
                    tag += 1;
                }
            }
            unreachable!("edge enumeration is exhaustive");
        }
        1 => {
            let axis = (0..3).find(|&k| on[k]).unwrap();
            let tag = (axis * 2 + if hi[axis] { 2 } else { 1 }) as u32;
            GeomEnt::new(Dim::Face, tag)
        }
        _ => GeomEnt::new(Dim::Region, 1),
    }
}

/// Parameters of the vessel (AAA proxy) domain: a tube along +z of length
/// `length` whose radius follows `profile` — a Gaussian bulge mimicking an
/// abdominal aortic aneurysm.
#[derive(Debug, Clone, Copy)]
pub struct VesselSpec {
    /// Tube length along z.
    pub length: f64,
    /// Radius profile (use [`RadiusProfile::Bulge`] for the aneurysm).
    pub profile: RadiusProfile,
}

impl VesselSpec {
    /// The AAA-proxy default: length 10, base radius 1, bulge to 2.2 at 60%.
    pub fn aaa() -> VesselSpec {
        VesselSpec {
            length: 10.0,
            profile: RadiusProfile::Bulge {
                r0: 1.0,
                amp: 1.2,
                center: 0.6,
                width: 0.15,
            },
        }
    }

    /// Radius at height `z`.
    pub fn radius_at(&self, z: f64) -> f64 {
        self.profile.radius((z / self.length).clamp(0.0, 1.0))
    }
}

/// Build the vessel model. Tags: region 1; faces 1 = lateral wall,
/// 2 = inlet cap (z=0), 3 = outlet cap (z=length); edges 1 = inlet rim,
/// 2 = outlet rim.
pub fn vessel(spec: VesselSpec) -> Model {
    let mut m = Model::new(3);
    let p0 = [0., 0., 0.];
    let p1 = [0., 0., spec.length];
    let region = m.add(Dim::Region, 1, Shape::Free);
    let wall = m.add(
        Dim::Face,
        1,
        Shape::CylinderWall {
            p0,
            p1,
            profile: spec.profile,
        },
    );
    let inlet = m.add(
        Dim::Face,
        2,
        Shape::Plane {
            origin: p0,
            normal: [0., 0., -1.],
        },
    );
    let outlet = m.add(
        Dim::Face,
        3,
        Shape::Plane {
            origin: p1,
            normal: [0., 0., 1.],
        },
    );
    let rim_in = m.add(
        Dim::Edge,
        1,
        Shape::Circle {
            center: p0,
            normal: [0., 0., 1.],
            radius: spec.profile.radius(0.0),
        },
    );
    let rim_out = m.add(
        Dim::Edge,
        2,
        Shape::Circle {
            center: p1,
            normal: [0., 0., 1.],
            radius: spec.profile.radius(1.0),
        },
    );
    for f in [wall, inlet, outlet] {
        m.connect(f, region);
    }
    m.connect(rim_in, wall);
    m.connect(rim_in, inlet);
    m.connect(rim_out, wall);
    m.connect(rim_out, outlet);
    m
}

/// Classify a vessel point: `on_wall` and the z-position decide between the
/// wall, caps, rims, and interior. `on_wall` must be passed by the generator
/// (it knows which lattice ring is outermost) because the bulged wall radius
/// makes coordinate tests alone fragile.
pub fn classify_vessel(spec: &VesselSpec, p: [f64; 3], on_wall: bool) -> GeomEnt {
    let on_inlet = p[2].abs() < CLASSIFY_EPS;
    let on_outlet = (p[2] - spec.length).abs() < CLASSIFY_EPS;
    match (on_wall, on_inlet, on_outlet) {
        (true, true, _) => GeomEnt::new(Dim::Edge, 1),
        (true, _, true) => GeomEnt::new(Dim::Edge, 2),
        (true, false, false) => GeomEnt::new(Dim::Face, 1),
        (false, true, _) => GeomEnt::new(Dim::Face, 2),
        (false, _, true) => GeomEnt::new(Dim::Face, 3),
        (false, false, false) => GeomEnt::new(Dim::Region, 1),
    }
}

/// The wing (ONERA M6 proxy) domain: a flow box around a swept wing. The
/// shock experiment (Fig 13) only needs the box geometry plus the analytic
/// shock plane carried by the size field, so the model is a box with wing
/// proportions: span 1.2, chord 0.8, height 0.6.
pub fn wing_box() -> Model {
    box3d(1.2, 0.8, 0.6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_topology() {
        let m = rectangle(2.0, 1.0);
        assert_eq!(m.count(Dim::Vertex), 4);
        assert_eq!(m.count(Dim::Edge), 4);
        assert_eq!(m.count(Dim::Face), 1);
        let f = m.find(Dim::Face, 1).unwrap();
        assert_eq!(m.down(f).len(), 4);
        for e in m.ents_of_dim(Dim::Edge) {
            assert_eq!(m.down(e).len(), 2);
            assert_eq!(m.up(e), &[f]);
        }
        for v in m.ents_of_dim(Dim::Vertex) {
            assert_eq!(m.up(v).len(), 2);
        }
    }

    #[test]
    fn rectangle_classification() {
        let (w, h) = (2.0, 1.0);
        assert_eq!(classify_rectangle(w, h, [0., 0., 0.]).dim(), Dim::Vertex);
        assert_eq!(
            classify_rectangle(w, h, [1., 0., 0.]),
            GeomEnt::new(Dim::Edge, 1)
        );
        assert_eq!(
            classify_rectangle(w, h, [2., 0.5, 0.]),
            GeomEnt::new(Dim::Edge, 2)
        );
        assert_eq!(
            classify_rectangle(w, h, [1., 1., 0.]),
            GeomEnt::new(Dim::Edge, 3)
        );
        assert_eq!(
            classify_rectangle(w, h, [0., 0.5, 0.]),
            GeomEnt::new(Dim::Edge, 4)
        );
        assert_eq!(
            classify_rectangle(w, h, [1., 0.5, 0.]),
            GeomEnt::new(Dim::Face, 1)
        );
    }

    #[test]
    fn box_topology_counts() {
        let m = box3d(1., 1., 1.);
        assert_eq!(m.count(Dim::Vertex), 8);
        assert_eq!(m.count(Dim::Edge), 12);
        assert_eq!(m.count(Dim::Face), 6);
        assert_eq!(m.count(Dim::Region), 1);
        // Every face bounds the region and has 4 edges.
        let r = m.find(Dim::Region, 1).unwrap();
        assert_eq!(m.down(r).len(), 6);
        for f in m.ents_of_dim(Dim::Face) {
            assert_eq!(m.down(f).len(), 4, "face {f:?}");
            assert_eq!(m.up(f), &[r]);
        }
        // Every edge has 2 vertices and 2 faces.
        for e in m.ents_of_dim(Dim::Edge) {
            assert_eq!(m.down(e).len(), 2);
            assert_eq!(m.up(e).len(), 2, "edge {e:?}");
        }
        // Every vertex bounds 3 edges.
        for v in m.ents_of_dim(Dim::Vertex) {
            assert_eq!(m.up(v).len(), 3);
        }
    }

    #[test]
    fn box_classification_dims() {
        let (a, b, c) = (1., 2., 3.);
        assert_eq!(classify_box(a, b, c, [0., 0., 0.]).dim(), Dim::Vertex);
        assert_eq!(classify_box(a, b, c, [1., 2., 3.]).dim(), Dim::Vertex);
        assert_eq!(classify_box(a, b, c, [0.5, 0., 0.]).dim(), Dim::Edge);
        assert_eq!(classify_box(a, b, c, [0.5, 1., 0.]).dim(), Dim::Face);
        assert_eq!(classify_box(a, b, c, [0.5, 1., 1.]).dim(), Dim::Region);
        // Face tags match the builder convention.
        assert_eq!(classify_box(a, b, c, [0., 1., 1.]).tag(), 1);
        assert_eq!(classify_box(a, b, c, [1., 1., 1.5]).tag(), 2);
        assert_eq!(classify_box(a, b, c, [0.5, 0., 1.]).tag(), 3);
        assert_eq!(classify_box(a, b, c, [0.5, 2., 1.]).tag(), 4);
        assert_eq!(classify_box(a, b, c, [0.5, 1., 0.]).tag(), 5);
        assert_eq!(classify_box(a, b, c, [0.5, 1., 3.]).tag(), 6);
    }

    #[test]
    fn box_edge_classification_is_a_model_edge() {
        let m = box3d(1., 1., 1.);
        // Each edge midpoint classifies onto an edge the model contains.
        for e in m.ents_of_dim(Dim::Edge) {
            if let Shape::Segment { a, b } = m.shape(e) {
                let mid = [
                    0.5 * (a[0] + b[0]),
                    0.5 * (a[1] + b[1]),
                    0.5 * (a[2] + b[2]),
                ];
                let g = classify_box(1., 1., 1., mid);
                assert_eq!(g, e, "midpoint of {e:?} classifies to {g:?}");
            } else {
                panic!("box edge without segment shape");
            }
        }
    }

    #[test]
    fn vessel_topology_and_classification() {
        let spec = VesselSpec::aaa();
        let m = vessel(spec);
        assert_eq!(m.count(Dim::Face), 3);
        assert_eq!(m.count(Dim::Edge), 2);
        let wall = m.find(Dim::Face, 1).unwrap();
        assert_eq!(m.down(wall).len(), 2);

        assert_eq!(
            classify_vessel(&spec, [1., 0., 0.], true),
            GeomEnt::new(Dim::Edge, 1)
        );
        assert_eq!(
            classify_vessel(&spec, [1., 0., 10.], true),
            GeomEnt::new(Dim::Edge, 2)
        );
        assert_eq!(
            classify_vessel(&spec, [1.5, 0., 5.], true),
            GeomEnt::new(Dim::Face, 1)
        );
        assert_eq!(
            classify_vessel(&spec, [0.2, 0., 0.], false),
            GeomEnt::new(Dim::Face, 2)
        );
        assert_eq!(
            classify_vessel(&spec, [0.2, 0., 10.], false),
            GeomEnt::new(Dim::Face, 3)
        );
        assert_eq!(
            classify_vessel(&spec, [0.2, 0., 5.], false),
            GeomEnt::new(Dim::Region, 1)
        );
    }

    #[test]
    fn vessel_bulge_radius() {
        let spec = VesselSpec::aaa();
        assert!(spec.radius_at(6.0) > spec.radius_at(1.0));
        assert!((spec.radius_at(6.0) - 2.2).abs() < 1e-6);
    }
}
