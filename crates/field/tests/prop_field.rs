//! Property tests for fields: barycentric identities and transfer
//! exactness for linear functions on randomized meshes.

use proptest::prelude::*;
use pumi_field::{barycentric, transfer_linear, Field, FieldShape, Locator};
use pumi_meshgen::{jitter, tet_box, tri_rect};
use pumi_util::{Dim, MeshEnt};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Barycentric coordinates always sum to 1 and reproduce the point.
    #[test]
    fn barycentric_partition_of_unity(
        seed in 0u64..500,
        x in 0.05f64..0.95,
        y in 0.05f64..0.95,
    ) {
        let mut m = tri_rect(4, 4, 1.0, 1.0);
        jitter(&mut m, 0.25, seed);
        let loc = Locator::build(&m);
        let p = [x, y, 0.0];
        let (e, b) = loc.locate(p).expect("point in domain not located");
        let sum: f64 = b.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "bary sum {sum}");
        // Reconstruct p from the barycentrics.
        let mut q = [0.0f64; 3];
        for (&v, &bv) in m.verts_of(e).iter().zip(&b) {
            let xv = m.coords(MeshEnt::vertex(v));
            for a in 0..3 { q[a] += bv * xv[a]; }
        }
        prop_assert!((q[0] - p[0]).abs() < 1e-9 && (q[1] - p[1]).abs() < 1e-9);
        // Inside the element (within tolerance).
        prop_assert!(b.iter().all(|&c| c > -1e-6), "{b:?}");
    }

    /// Linear transfer reproduces any affine function exactly, for any pair
    /// of meshes over the same domain (including jittered ones).
    #[test]
    fn affine_transfer_is_exact(
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        c in -3.0f64..3.0,
        seed in 0u64..500,
    ) {
        let mut src = tri_rect(5, 3, 1.0, 1.0);
        jitter(&mut src, 0.2, seed);
        let dst = tri_rect(4, 6, 1.0, 1.0);
        let mut f = Field::new("u", FieldShape::Linear, 1);
        f.set_from(&src, |p| vec![a * p[0] + b * p[1] + c]);
        let g = transfer_linear(&src, &f, &dst);
        for v in dst.iter(Dim::Vertex) {
            let p = dst.coords(v);
            let want = a * p[0] + b * p[1] + c;
            let got = g.get_scalar(v).expect("vertex not transferred");
            prop_assert!((got - want).abs() < 1e-8, "at {p:?}: {got} vs {want}");
        }
    }

    /// 3D: barycentric vertices are the canonical basis.
    #[test]
    fn tet_barycentric_basis(seed in 0u64..200) {
        let mut m = tet_box(2, 2, 2, 1.0, 1.0, 1.0);
        jitter(&mut m, 0.2, seed);
        let e = m.elems().next().unwrap();
        for (k, &v) in m.verts_of(e).iter().enumerate() {
            let p = m.coords(MeshEnt::vertex(v));
            let bary = barycentric(&m, e, p).unwrap();
            for (j, &bj) in bary.iter().enumerate() {
                let want = if j == k { 1.0 } else { 0.0 };
                prop_assert!((bj - want).abs() < 1e-9);
            }
        }
    }
}
