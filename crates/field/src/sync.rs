//! Field synchronization across part boundaries.
//!
//! Shared nodes are duplicated on every residence part; after an owner-side
//! update ([`sync_owned_to_copies`]) or a partial assembly
//! ([`accumulate`] — each part holds only its elements' contributions, the
//! sum lives on no single part) the copies must be reconciled. Both are
//! single phased exchanges, the pattern PUMI uses for all boundary data.

use crate::field::Field;
use pumi_core::{DistMesh, PartExchange};
use pumi_pcu::{Comm, MsgError, MsgReader};
use pumi_util::{Dim, MeshEnt};

/// Unpack `(dim, idx, values)` frames, applying `apply(field_slot_entity,
/// values)` — shared by the sync and accumulate receive loops.
fn unpack_node_values(
    r: &mut MsgReader,
    mut apply: impl FnMut(MeshEnt, Vec<f64>),
) -> Result<(), MsgError> {
    while !r.is_done() {
        let db = r.try_get_u8()?;
        let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
        let idx = r.try_get_u32()?;
        let v = r.try_get_f64_slice()?;
        apply(MeshEnt::new(d, idx), v);
    }
    Ok(())
}

/// One field per local part, aligned with `dm.parts`.
pub type DistField = Vec<Field>;

/// Create an identical field on every local part.
pub fn dist_field(dm: &DistMesh, template: &Field) -> DistField {
    dm.parts.iter().map(|_| template.clone()).collect()
}

/// Push node values of owned shared entities to their remote copies. After
/// this, all copies agree with the owner.
pub fn sync_owned_to_copies(comm: &Comm, dm: &DistMesh, fields: &mut DistField) {
    let _span = pumi_obs::span!("field.sync");
    assert_eq!(fields.len(), dm.parts.len());
    let node_dims: Vec<Dim> = fields
        .first()
        .map(|f| f.shape.node_dims(dm.parts[0].mesh.elem_dim()))
        .unwrap_or_default();
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        for (e, remotes) in part.shared_entities() {
            if !node_dims.contains(&e.dim()) || !part.is_owned(e) {
                continue;
            }
            let Some(v) = fields[slot].get(e) else {
                continue;
            };
            for &(q, ridx) in remotes {
                let w = ex.to(part.id, q);
                w.put_u8(e.dim().as_usize() as u8);
                w.put_u32(ridx);
                w.put_f64_slice(v);
            }
        }
    }
    for (from, to, mut r) in ex.finish() {
        let slot = dm.map.slot_of(to);
        unpack_node_values(&mut r, |e, v| fields[slot].set(e, &v))
            .unwrap_or_else(|e| panic!("corrupt field sync frame {from}->{to}: {e}"));
    }
}

/// Sum the contributions of all copies of each shared node onto every copy
/// (copies → owner → sum → copies). This is the FE assembly reduction: each
/// part assembles its elements, then shared dofs are accumulated.
pub fn accumulate(comm: &Comm, dm: &DistMesh, fields: &mut DistField) {
    let _span = pumi_obs::span!("field.accumulate");
    assert_eq!(fields.len(), dm.parts.len());
    let node_dims: Vec<Dim> = fields
        .first()
        .map(|f| f.shape.node_dims(dm.parts[0].mesh.elem_dim()))
        .unwrap_or_default();
    // Copies send to owner.
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        for (e, remotes) in part.shared_entities() {
            if !node_dims.contains(&e.dim()) || part.is_owned(e) {
                continue;
            }
            let owner = part.owner(e);
            let Some(&(_, oidx)) = remotes.iter().find(|&&(q, _)| q == owner) else {
                continue;
            };
            let Some(v) = fields[slot].get(e) else {
                continue;
            };
            let w = ex.to(part.id, owner);
            w.put_u8(e.dim().as_usize() as u8);
            w.put_u32(oidx);
            w.put_f64_slice(v);
        }
    }
    // Sum in canonical (to, from) order: floating-point addition is not
    // associative, so the result must not depend on chaos arrival order.
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let slot = dm.map.slot_of(to);
        unpack_node_values(&mut r, |e, v| {
            let mut cur = fields[slot]
                .get(e)
                .map(|x| x.to_vec())
                .unwrap_or_else(|| vec![0.0; v.len()]);
            for (c, x) in cur.iter_mut().zip(&v) {
                *c += x;
            }
            fields[slot].set(e, &cur);
        })
        .unwrap_or_else(|e| panic!("corrupt field accumulate frame {from}->{to}: {e}"));
    }
    // Owner pushes the sums back.
    sync_owned_to_copies(comm, dm, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{Field, FieldShape};
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::PartId;

    fn two_part_mesh(c: &Comm) -> DistMesh {
        let serial = tri_rect(4, 2, 2.0, 1.0);
        let d = serial.elem_dim_t();
        let mut elem_part = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            elem_part[e.idx()] = if serial.centroid(e)[0] < 1.0 { 0 } else { 1 };
        }
        distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
    }

    #[test]
    fn sync_propagates_owner_values() {
        execute(2, |c| {
            let dm = two_part_mesh(c);
            let template = Field::new("u", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            // Owners write their part id + 1; copies write -1 (stale).
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let val = if part.is_owned(v) {
                        part.id as f64 + 1.0
                    } else {
                        -1.0
                    };
                    fields[slot].set_scalar(v, val);
                }
            }
            sync_owned_to_copies(c, &dm, &mut fields);
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let want = part.owner(v) as f64 + 1.0;
                    assert_eq!(fields[slot].get_scalar(v), Some(want), "vertex {v:?}");
                }
            }
        });
    }

    #[test]
    fn accumulate_sums_copies() {
        execute(2, |c| {
            let dm = two_part_mesh(c);
            let template = Field::new("u", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            // Everyone writes 1 on every local vertex; after accumulate, a
            // vertex's value equals its residence count on every copy.
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    fields[slot].set_scalar(v, 1.0);
                }
            }
            accumulate(c, &dm, &mut fields);
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let want = part.residence(v).len() as f64;
                    assert_eq!(fields[slot].get_scalar(v), Some(want), "vertex {v:?}");
                }
            }
        });
    }
}
