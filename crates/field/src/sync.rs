//! Field synchronization across part boundaries and ghost regions.
//!
//! Shared nodes are duplicated on every residence part, and ghost nodes on
//! every holder part; after an owner-side update or a partial assembly the
//! copies must be reconciled. All of it is one operation now: pick a
//! reduction mode and [`sync_fields`] (or the [`FieldSync::sync`] method)
//! moves the data over the star forest —
//!
//! * [`Reduction::Insert`] — root overwrites every copy (owner → copy push),
//! * [`Reduction::Add`] — copies are summed onto the root, then the sum is
//!   pushed back to every copy: the FE assembly reduction,
//! * [`Reduction::Min`] / [`Reduction::Max`] — componentwise extremum over
//!   all copies, everywhere.
//!
//! Values combine at the root in canonical `(to, from)` frame order with
//! leaves packed in sorted entity order, so floating-point results are
//! independent of the chaos scheduler's arrival order.

use crate::field::Field;
use pumi_core::overlap::{Overlap, Reduction, Scope};
use pumi_core::DistMesh;
use pumi_pcu::Comm;
use pumi_util::{Dim, MeshEnt};

/// One field per local part, aligned with `dm.parts`.
pub type DistField = Vec<Field>;

/// Create an identical field on every local part.
pub fn dist_field(dm: &DistMesh, template: &Field) -> DistField {
    dm.parts.iter().map(|_| template.clone()).collect()
}

/// Synchronize `fields` over the share map `overlap` with reduction `red`.
///
/// With [`Reduction::Insert`] this is a pure root→leaf broadcast. With any
/// combining mode, leaf values are first reduced onto the root, then the
/// combined value is broadcast back so every copy (boundary or ghost)
/// agrees. Entities with no value on a copy simply don't contribute.
/// Collective.
pub fn sync_fields(
    comm: &Comm,
    dm: &DistMesh,
    overlap: &Overlap,
    fields: &mut DistField,
    red: Reduction,
) {
    let _span = pumi_obs::span!("field.sync");
    assert_eq!(fields.len(), dm.parts.len());
    let node_dims: Vec<Dim> = fields
        .first()
        .map(|f| f.shape.node_dims(dm.parts[0].mesh.elem_dim()))
        .unwrap_or_default();
    let has = |f: &DistField, slot: usize, e: MeshEnt| {
        node_dims.contains(&e.dim()) && f[slot].get(e).is_some()
    };
    let pack = |f: &DistField, slot: usize, e: MeshEnt, w: &mut pumi_pcu::MsgWriter| {
        w.put_f64_slice(f[slot].get(e).expect("packed entity has a value"));
    };
    if red != Reduction::Insert {
        overlap.reduce(
            comm,
            &dm.map,
            Scope::All,
            fields,
            has,
            pack,
            |f, slot, e, r| {
                let v = r.try_get_f64_slice()?;
                match f[slot].get(e) {
                    Some(cur) => {
                        let mut cur = cur.to_vec();
                        for (c, x) in cur.iter_mut().zip(&v) {
                            match red {
                                Reduction::Add => *c += x,
                                Reduction::Min => *c = c.min(*x),
                                Reduction::Max => *c = c.max(*x),
                                Reduction::Insert => unreachable!(),
                            }
                        }
                        f[slot].set(e, &cur);
                    }
                    None => f[slot].set(e, &v),
                }
                Ok(())
            },
        );
    }
    overlap.bcast(
        comm,
        &dm.map,
        Scope::All,
        fields,
        has,
        pack,
        |f, slot, e, r| {
            let v = r.try_get_f64_slice()?;
            f[slot].set(e, &v);
            Ok(())
        },
    );
}

/// The one-signature sync entry point on a distributed field:
/// `fields.sync(comm, dm, &overlap, Reduction::Add)`.
pub trait FieldSync {
    /// Synchronize over `overlap` with reduction `red`; see [`sync_fields`].
    fn sync(&mut self, comm: &Comm, dm: &DistMesh, overlap: &Overlap, red: Reduction);
}

impl FieldSync for DistField {
    fn sync(&mut self, comm: &Comm, dm: &DistMesh, overlap: &Overlap, red: Reduction) {
        sync_fields(comm, dm, overlap, self, red);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{Field, FieldShape};
    use pumi_core::overlap::{grow_overlap, GhostOpts};
    use pumi_core::{distribute, PartMap};
    use pumi_meshgen::tri_rect;
    use pumi_pcu::execute;
    use pumi_util::PartId;

    fn two_part_mesh(c: &Comm) -> DistMesh {
        let serial = tri_rect(4, 2, 2.0, 1.0);
        let d = serial.elem_dim_t();
        let mut elem_part = vec![0 as PartId; serial.index_space(d)];
        for e in serial.iter(d) {
            elem_part[e.idx()] = if serial.centroid(e)[0] < 1.0 { 0 } else { 1 };
        }
        distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
    }

    #[test]
    fn insert_propagates_owner_values() {
        execute(2, |c| {
            let dm = two_part_mesh(c);
            let ov = Overlap::from_dist(&dm);
            let template = Field::new("u", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            // Owners write their part id + 1; copies write -1 (stale).
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let val = if part.is_owned(v) {
                        part.id as f64 + 1.0
                    } else {
                        -1.0
                    };
                    fields[slot].set_scalar(v, val);
                }
            }
            fields.sync(c, &dm, &ov, Reduction::Insert);
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let want = part.owner(v) as f64 + 1.0;
                    assert_eq!(fields[slot].get_scalar(v), Some(want), "vertex {v:?}");
                }
            }
        });
    }

    #[test]
    fn add_sums_copies() {
        execute(2, |c| {
            let dm = two_part_mesh(c);
            let ov = Overlap::from_dist(&dm);
            let template = Field::new("u", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            // Everyone writes 1 on every local vertex; after Add-sync, a
            // vertex's value equals its residence count on every copy.
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    fields[slot].set_scalar(v, 1.0);
                }
            }
            fields.sync(c, &dm, &ov, Reduction::Add);
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let want = part.residence(v).len() as f64;
                    assert_eq!(fields[slot].get_scalar(v), Some(want), "vertex {v:?}");
                }
            }
        });
    }

    #[test]
    fn min_max_reduce_everywhere() {
        execute(2, |c| {
            let dm = two_part_mesh(c);
            let ov = Overlap::from_dist(&dm);
            let template = Field::new("u", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            // Each copy writes its part id; Min must yield the smallest
            // residence part, Max the largest, on every copy.
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    fields[slot].set_scalar(v, part.id as f64);
                }
            }
            let mut maxed = fields.clone();
            fields.sync(c, &dm, &ov, Reduction::Min);
            maxed.sync(c, &dm, &ov, Reduction::Max);
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    let res = part.residence(v);
                    let lo = *res.first().unwrap() as f64;
                    let hi = *res.last().unwrap() as f64;
                    assert_eq!(fields[slot].get_scalar(v), Some(lo), "min at {v:?}");
                    assert_eq!(maxed[slot].get_scalar(v), Some(hi), "max at {v:?}");
                }
            }
        });
    }

    #[test]
    fn sync_reaches_ghost_copies() {
        execute(2, |c| {
            let mut dm = two_part_mesh(c);
            let ov = grow_overlap(c, &mut dm, GhostOpts::new());
            let template = Field::new("u", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            // Values only on owned, non-ghost vertices: their gid.
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    if part.is_owned(v) && !part.is_ghost(v) {
                        fields[slot].set_scalar(v, part.gid_of(v) as f64);
                    }
                }
            }
            fields.sync(c, &dm, &ov, Reduction::Insert);
            // Every vertex copy — including ghosts — got the root value.
            for (slot, part) in dm.parts.iter().enumerate() {
                for v in part.mesh.iter(Dim::Vertex) {
                    assert_eq!(
                        fields[slot].get_scalar(v),
                        Some(part.gid_of(v) as f64),
                        "vertex {v:?} (ghost: {})",
                        part.is_ghost(v)
                    );
                }
            }
        });
    }
}
