//! Tensor fields over mesh entities (§II).
//!
//! "The fields are tensor quantities that define the distributions of the
//! physical parameters of the PDE over domain (mesh and geometric model)
//! entities." A [`Field`] stores `ncomp` doubles per *node*, where the node
//! locations are given by the [`FieldShape`]: linear Lagrange places one
//! node per vertex; quadratic adds one per edge (the paper's second-order FE
//! example in §I is exactly why vertex+edge balance matters).

use pumi_mesh::Mesh;
use pumi_util::{Dim, FxHashMap, MeshEnt};

/// The node distribution of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldShape {
    /// One node per vertex (P1 Lagrange).
    Linear,
    /// One node per vertex and per edge (P2 Lagrange).
    Quadratic,
    /// One node per element (piecewise constant, cell-centred FV — the
    /// paper's §I "cell centered FV method" workload).
    Constant,
}

impl FieldShape {
    /// Which entity dimensions hold nodes, for a mesh of element dimension
    /// `elem_dim`.
    pub fn node_dims(&self, elem_dim: usize) -> Vec<Dim> {
        match self {
            FieldShape::Linear => vec![Dim::Vertex],
            FieldShape::Quadratic => vec![Dim::Vertex, Dim::Edge],
            FieldShape::Constant => vec![Dim::from_usize(elem_dim)],
        }
    }

    /// Whether entities of dimension `d` hold a node.
    pub fn has_nodes(&self, d: Dim, elem_dim: usize) -> bool {
        self.node_dims(elem_dim).contains(&d)
    }
}

/// A field over one mesh part.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name (used to pair fields across parts).
    pub name: String,
    /// Node distribution.
    pub shape: FieldShape,
    /// Components per node (1 = scalar, 3 = vector, 9 = matrix, ...).
    pub ncomp: usize,
    data: FxHashMap<MeshEnt, Vec<f64>>,
}

impl Field {
    /// An empty field.
    pub fn new(name: &str, shape: FieldShape, ncomp: usize) -> Field {
        assert!(ncomp >= 1);
        Field {
            name: name.to_string(),
            shape,
            ncomp,
            data: FxHashMap::default(),
        }
    }

    /// Set the node value on an entity.
    ///
    /// # Panics
    /// Panics if the component count mismatches.
    pub fn set(&mut self, e: MeshEnt, value: &[f64]) {
        assert_eq!(value.len(), self.ncomp, "component count mismatch");
        self.data.insert(e, value.to_vec());
    }

    /// Set a scalar node value.
    pub fn set_scalar(&mut self, e: MeshEnt, x: f64) {
        self.set(e, &[x]);
    }

    /// The node value, if set.
    pub fn get(&self, e: MeshEnt) -> Option<&[f64]> {
        self.data.get(&e).map(|v| v.as_slice())
    }

    /// The scalar node value, if set.
    pub fn get_scalar(&self, e: MeshEnt) -> Option<f64> {
        self.get(e).and_then(|v| v.first().copied())
    }

    /// Remove a node value (entity deleted).
    pub fn remove(&mut self, e: MeshEnt) -> Option<Vec<f64>> {
        self.data.remove(&e)
    }

    /// Number of set nodes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no node has a value.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Initialize every node entity of `mesh` with `value`.
    pub fn fill(&mut self, mesh: &Mesh, value: &[f64]) {
        for d in self.shape.node_dims(mesh.elem_dim()) {
            for e in mesh.iter(d) {
                self.set(e, value);
            }
        }
    }

    /// Apply `f(coords) -> value` at every vertex node (Linear/Quadratic
    /// fields; edge nodes get the midpoint coordinates).
    pub fn set_from(&mut self, mesh: &Mesh, f: impl Fn([f64; 3]) -> Vec<f64>) {
        for d in self.shape.node_dims(mesh.elem_dim()) {
            for e in mesh.iter(d) {
                let x = mesh.centroid(e);
                let v = f(x);
                self.set(e, &v);
            }
        }
    }

    /// Evaluate a **linear** scalar field at barycentric coordinates inside
    /// a simplex element.
    pub fn eval_linear(&self, mesh: &Mesh, elem: MeshEnt, bary: &[f64]) -> f64 {
        assert_eq!(self.shape, FieldShape::Linear);
        let verts = mesh.verts_of(elem);
        assert_eq!(verts.len(), bary.len(), "barycentric arity mismatch");
        verts
            .iter()
            .zip(bary)
            .map(|(&v, &b)| b * self.get_scalar(MeshEnt::vertex(v)).unwrap_or(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_mesh::Topology;
    use pumi_mesh::NO_GEOM;

    fn tri_mesh() -> Mesh {
        let mut m = Mesh::new(2);
        let a = m.add_vertex([0., 0., 0.], NO_GEOM).index();
        let b = m.add_vertex([1., 0., 0.], NO_GEOM).index();
        let c = m.add_vertex([0., 1., 0.], NO_GEOM).index();
        m.add_element(Topology::Triangle, &[a, b, c], NO_GEOM);
        m
    }

    #[test]
    fn shapes_node_dims() {
        assert_eq!(FieldShape::Linear.node_dims(3), vec![Dim::Vertex]);
        assert_eq!(
            FieldShape::Quadratic.node_dims(3),
            vec![Dim::Vertex, Dim::Edge]
        );
        assert_eq!(FieldShape::Constant.node_dims(2), vec![Dim::Face]);
        assert!(FieldShape::Quadratic.has_nodes(Dim::Edge, 3));
        assert!(!FieldShape::Linear.has_nodes(Dim::Edge, 3));
    }

    #[test]
    fn set_get_fill() {
        let m = tri_mesh();
        let mut f = Field::new("u", FieldShape::Linear, 1);
        f.fill(&m, &[2.0]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get_scalar(MeshEnt::vertex(0)), Some(2.0));
        f.set_scalar(MeshEnt::vertex(0), 7.0);
        assert_eq!(f.get_scalar(MeshEnt::vertex(0)), Some(7.0));
        assert!(f.remove(MeshEnt::vertex(0)).is_some());
        assert_eq!(f.get(MeshEnt::vertex(0)), None);
    }

    #[test]
    fn quadratic_fills_edges_too() {
        let m = tri_mesh();
        let mut f = Field::new("u", FieldShape::Quadratic, 2);
        f.fill(&m, &[1.0, 2.0]);
        assert_eq!(f.len(), 3 + 3);
        let e = m.iter(Dim::Edge).next().unwrap();
        assert_eq!(f.get(e), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn eval_linear_interpolates() {
        let m = tri_mesh();
        let mut f = Field::new("u", FieldShape::Linear, 1);
        // u = x + 2y at vertices (0,0), (1,0), (0,1).
        f.set_scalar(MeshEnt::vertex(0), 0.0);
        f.set_scalar(MeshEnt::vertex(1), 1.0);
        f.set_scalar(MeshEnt::vertex(2), 2.0);
        let elem = m.elems().next().unwrap();
        // Barycentre: (1/3, 1/3, 1/3) -> u = 1.
        let v = f.eval_linear(&m, elem, &[1. / 3., 1. / 3., 1. / 3.]);
        assert!((v - 1.0).abs() < 1e-12);
        // Vertex 1 exactly.
        assert!((f.eval_linear(&m, elem, &[0., 1., 0.]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_from_samples_coordinates() {
        let m = tri_mesh();
        let mut f = Field::new("u", FieldShape::Linear, 1);
        f.set_from(&m, |x| vec![x[0] + x[1]]);
        assert_eq!(f.get_scalar(MeshEnt::vertex(1)), Some(1.0));
        assert_eq!(f.get_scalar(MeshEnt::vertex(2)), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "component count")]
    fn component_mismatch_panics() {
        let mut f = Field::new("u", FieldShape::Linear, 2);
        f.set_scalar(MeshEnt::vertex(0), 1.0);
    }
}
