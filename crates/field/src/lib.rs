//! Field component (§II).
//!
//! Tensor quantities over mesh entities, with the distributed operations a
//! PDE workflow needs:
//!
//! * [`field`] — fields and node distributions (P1/P2 Lagrange, cell
//!   constants),
//! * [`sync`] — owner→copy synchronization and assembly accumulation across
//!   part boundaries,
//! * [`transfer`] — mesh-to-mesh solution transfer (point location +
//!   barycentric interpolation), used after adaptation.

pub mod field;
pub mod sync;
pub mod transfer;

pub use field::{Field, FieldShape};
pub use sync::{accumulate, dist_field, sync_owned_to_copies, DistField};
pub use transfer::{barycentric, transfer_linear, Locator};
