//! Field component (§II).
//!
//! Tensor quantities over mesh entities, with the distributed operations a
//! PDE workflow needs:
//!
//! * [`field`] — fields and node distributions (P1/P2 Lagrange, cell
//!   constants),
//! * [`sync`] — one-signature synchronization over the star-forest
//!   overlap: `fields.sync(comm, dm, &overlap, Reduction::Add)` covers
//!   owner→copy pushes, FE assembly accumulation and ghost halos alike,
//! * [`transfer`] — mesh-to-mesh solution transfer (point location +
//!   barycentric interpolation), used after adaptation.

pub mod field;
pub mod sync;
pub mod transfer;

pub use field::{Field, FieldShape};
pub use sync::{dist_field, sync_fields, DistField, FieldSync};
pub use transfer::{barycentric, transfer_linear, Locator};
