//! Mesh-to-mesh solution transfer (§I lists it among the FASTMath efforts
//! this infrastructure serves).
//!
//! After adaptation produces a new mesh, nodal fields must move to it.
//! [`transfer_linear`] locates every new vertex in the old mesh (uniform-bin
//! accelerated point location + barycentric inversion on simplices) and
//! evaluates the old linear field there.

use crate::field::{Field, FieldShape};
use pumi_mesh::Mesh;
use pumi_util::{Dim, MeshEnt};

/// Uniform-grid point locator over the elements of a simplicial mesh.
pub struct Locator<'m> {
    mesh: &'m Mesh,
    lo: [f64; 3],
    inv_cell: [f64; 3],
    dims: [usize; 3],
    bins: Vec<Vec<MeshEnt>>,
}

fn bbox_of(mesh: &Mesh) -> ([f64; 3], [f64; 3]) {
    let mut lo = [f64::MAX; 3];
    let mut hi = [f64::MIN; 3];
    for v in mesh.iter(Dim::Vertex) {
        let x = mesh.coords(v);
        for a in 0..3 {
            lo[a] = lo[a].min(x[a]);
            hi[a] = hi[a].max(x[a]);
        }
    }
    (lo, hi)
}

impl<'m> Locator<'m> {
    /// Build a locator with roughly one element per bin.
    pub fn build(mesh: &'m Mesh) -> Locator<'m> {
        let (lo, hi) = bbox_of(mesh);
        let n = mesh.num_elems().max(1);
        let spatial_dims = if mesh.elem_dim() == 2 { 2 } else { 3 };
        let per_axis = (n as f64).powf(1.0 / spatial_dims as f64).ceil() as usize;
        let per_axis = per_axis.clamp(1, 128);
        let mut dims = [1usize; 3];
        let mut inv_cell = [0f64; 3];
        for a in 0..spatial_dims {
            dims[a] = per_axis;
            let w = (hi[a] - lo[a]).max(1e-12);
            inv_cell[a] = dims[a] as f64 / (w * (1.0 + 1e-9));
        }
        let mut bins = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        let d = mesh.elem_dim_t();
        for e in mesh.iter(d) {
            // Insert into every bin overlapped by the element bbox.
            let mut elo = [usize::MAX; 3];
            let mut ehi = [0usize; 3];
            let mut first = true;
            for &v in mesh.verts_of(e) {
                let x = mesh.coords(MeshEnt::vertex(v));
                for a in 0..3 {
                    let b = (((x[a] - lo[a]) * inv_cell[a]).floor() as isize)
                        .clamp(0, dims[a] as isize - 1) as usize;
                    if first {
                        elo[a] = b;
                        ehi[a] = b;
                    } else {
                        elo[a] = elo[a].min(b);
                        ehi[a] = ehi[a].max(b);
                    }
                }
                first = false;
            }
            for bx in elo[0]..=ehi[0] {
                for by in elo[1]..=ehi[1] {
                    for bz in elo[2]..=ehi[2] {
                        bins[(bz * dims[1] + by) * dims[0] + bx].push(e);
                    }
                }
            }
        }
        Locator {
            mesh,
            lo,
            inv_cell,
            dims,
            bins,
        }
    }

    fn bin_of(&self, p: [f64; 3]) -> usize {
        let mut b = [0usize; 3];
        for a in 0..3 {
            b[a] = (((p[a] - self.lo[a]) * self.inv_cell[a]).floor() as isize)
                .clamp(0, self.dims[a] as isize - 1) as usize;
        }
        (b[2] * self.dims[1] + b[1]) * self.dims[0] + b[0]
    }

    /// Find the element containing `p` with its barycentric coordinates.
    /// Falls back to the best (least-negative) candidate in the bin when `p`
    /// sits on the hull within tolerance; `None` if the bin has no elements.
    pub fn locate(&self, p: [f64; 3]) -> Option<(MeshEnt, Vec<f64>)> {
        let bin = &self.bins[self.bin_of(p)];
        let mut best: Option<(MeshEnt, Vec<f64>, f64)> = None;
        for &e in bin {
            let bary = barycentric(self.mesh, e, p)?;
            let min = bary.iter().copied().fold(f64::MAX, f64::min);
            if min >= -1e-10 {
                return Some((e, bary));
            }
            if best.as_ref().is_none_or(|(_, _, m)| min > *m) {
                best = Some((e, bary, min));
            }
        }
        best.map(|(e, b, _)| (e, b))
    }
}

/// Barycentric coordinates of `p` in simplex `e` (triangle in the z=0
/// plane, or tetrahedron). `None` for degenerate elements.
pub fn barycentric(mesh: &Mesh, e: MeshEnt, p: [f64; 3]) -> Option<Vec<f64>> {
    let verts = mesh.verts_of(e);
    let x: Vec<[f64; 3]> = verts
        .iter()
        .map(|&v| mesh.coords(MeshEnt::vertex(v)))
        .collect();
    match x.len() {
        3 => {
            let det = (x[1][0] - x[0][0]) * (x[2][1] - x[0][1])
                - (x[2][0] - x[0][0]) * (x[1][1] - x[0][1]);
            if det.abs() < 1e-300 {
                return None;
            }
            let l1 = ((p[0] - x[0][0]) * (x[2][1] - x[0][1])
                - (x[2][0] - x[0][0]) * (p[1] - x[0][1]))
                / det;
            let l2 = ((x[1][0] - x[0][0]) * (p[1] - x[0][1])
                - (p[0] - x[0][0]) * (x[1][1] - x[0][1]))
                / det;
            Some(vec![1.0 - l1 - l2, l1, l2])
        }
        4 => {
            let m = [
                [x[1][0] - x[0][0], x[2][0] - x[0][0], x[3][0] - x[0][0]],
                [x[1][1] - x[0][1], x[2][1] - x[0][1], x[3][1] - x[0][1]],
                [x[1][2] - x[0][2], x[2][2] - x[0][2], x[3][2] - x[0][2]],
            ];
            let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
            if det.abs() < 1e-300 {
                return None;
            }
            let b = [p[0] - x[0][0], p[1] - x[0][1], p[2] - x[0][2]];
            // Cramer's rule.
            let solve = |col: usize| {
                let mut mm = m;
                for r in 0..3 {
                    mm[r][col] = b[r];
                }
                (mm[0][0] * (mm[1][1] * mm[2][2] - mm[1][2] * mm[2][1])
                    - mm[0][1] * (mm[1][0] * mm[2][2] - mm[1][2] * mm[2][0])
                    + mm[0][2] * (mm[1][0] * mm[2][1] - mm[1][1] * mm[2][0]))
                    / det
            };
            let l1 = solve(0);
            let l2 = solve(1);
            let l3 = solve(2);
            Some(vec![1.0 - l1 - l2 - l3, l1, l2, l3])
        }
        _ => None,
    }
}

/// Transfer a linear nodal field from `old` to `new`: each new vertex gets
/// the old field evaluated at its coordinates.
pub fn transfer_linear(old: &Mesh, f_old: &Field, new: &Mesh) -> Field {
    assert_eq!(f_old.shape, FieldShape::Linear);
    assert_eq!(f_old.ncomp, 1, "scalar transfer only");
    let loc = Locator::build(old);
    let mut out = Field::new(&f_old.name, FieldShape::Linear, 1);
    for v in new.iter(Dim::Vertex) {
        let p = new.coords(v);
        if let Some((e, bary)) = loc.locate(p) {
            out.set_scalar(v, f_old.eval_linear(old, e, &bary));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumi_meshgen::{tet_box, tri_rect};

    #[test]
    fn barycentric_identifies_vertices() {
        let m = tri_rect(1, 1, 1.0, 1.0);
        let e = m.elems().next().unwrap();
        let verts = m.verts_of(e).to_vec();
        for (k, &v) in verts.iter().enumerate() {
            let p = m.coords(MeshEnt::vertex(v));
            let b = barycentric(&m, e, p).unwrap();
            for (j, &bj) in b.iter().enumerate() {
                let want = if j == k { 1.0 } else { 0.0 };
                assert!((bj - want).abs() < 1e-12, "b={b:?}");
            }
        }
    }

    #[test]
    fn locate_finds_containing_element() {
        let m = tri_rect(4, 4, 1.0, 1.0);
        let loc = Locator::build(&m);
        for p in [[0.1, 0.1, 0.0], [0.9, 0.3, 0.0], [0.5, 0.5, 0.0]] {
            let (e, b) = loc.locate(p).expect("not located");
            assert!(b.iter().all(|&x| x > -1e-9), "outside bary {b:?}");
            // Re-evaluate the point from barycentrics.
            let verts = m.verts_of(e);
            let mut q = [0.0f64; 3];
            for (&v, &bv) in verts.iter().zip(&b) {
                let x = m.coords(MeshEnt::vertex(v));
                for a in 0..3 {
                    q[a] += bv * x[a];
                }
            }
            for a in 0..2 {
                assert!((q[a] - p[a]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn linear_transfer_is_exact_for_linear_functions() {
        // A linear function transfers exactly between different meshes of
        // the same domain.
        let old = tri_rect(3, 3, 1.0, 1.0);
        let new = tri_rect(5, 4, 1.0, 1.0);
        let mut f = Field::new("u", FieldShape::Linear, 1);
        f.set_from(&old, |x| vec![2.0 * x[0] - 3.0 * x[1] + 1.0]);
        let g = transfer_linear(&old, &f, &new);
        for v in new.iter(Dim::Vertex) {
            let x = new.coords(v);
            let want = 2.0 * x[0] - 3.0 * x[1] + 1.0;
            let got = g.get_scalar(v).expect("missing transferred value");
            assert!((got - want).abs() < 1e-9, "at {x:?}: {got} vs {want}");
        }
    }

    #[test]
    fn three_d_transfer() {
        let old = tet_box(3, 3, 3, 1.0, 1.0, 1.0);
        let new = tet_box(4, 2, 5, 1.0, 1.0, 1.0);
        let mut f = Field::new("u", FieldShape::Linear, 1);
        f.set_from(&old, |x| vec![x[0] + 2.0 * x[1] - x[2]]);
        let g = transfer_linear(&old, &f, &new);
        for v in new.iter(Dim::Vertex) {
            let x = new.coords(v);
            let want = x[0] + 2.0 * x[1] - x[2];
            let got = g.get_scalar(v).expect("missing value");
            assert!((got - want).abs() < 1e-9, "at {x:?}");
        }
    }
}
