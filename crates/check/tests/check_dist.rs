//! pumi-check behaviour: clean meshes pass, every class of corruption is
//! detected collectively, and option gates skip exactly their family.

use pumi_check::{check_dist, check_field_sync, check_overlap, CheckError, CheckOpts};
use pumi_core::overlap::{grow_overlap, GhostOpts, Overlap, Reduction};
use pumi_core::{distribute, migrate, DistMesh, MigrationPlan, Part, PartMap};
use pumi_field::{dist_field, Field, FieldShape, FieldSync};
use pumi_geom::GeomEnt;
use pumi_meshgen::tri_rect;
use pumi_pcu::{execute, Comm};
use pumi_util::{Dim, FxHashMap, PartId};

fn two_part_mesh(c: &Comm) -> DistMesh {
    let serial = tri_rect(4, 4, 1.0, 1.0);
    let d = serial.elem_dim_t();
    let mut elem_part = vec![0 as PartId; serial.index_space(d)];
    for e in serial.iter(d) {
        elem_part[e.idx()] = if serial.centroid(e)[0] < 0.5 { 0 } else { 1 };
    }
    distribute(c, PartMap::contiguous(2, 2), &serial, &elem_part)
}

#[test]
fn clean_distribution_passes() {
    execute(2, |c| {
        let dm = two_part_mesh(c);
        let stats = check_dist(c, &dm, CheckOpts::all()).expect("clean mesh");
        assert!(stats.entities > 0);
        assert!(stats.links > 0, "no cross-part links verified");
    });
}

#[test]
fn passes_after_migrate_and_ghosting() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
        if c.rank() == 0 {
            let part = dm.part(0);
            let mut plan = MigrationPlan::new();
            for e in part.mesh.elems() {
                let x = part.mesh.centroid(e);
                if x[0] + x[1] > 0.7 {
                    plan.send(e, 1);
                }
            }
            plans.insert(0, plan);
        }
        migrate(c, &mut dm, &plans);
        check_dist(c, &dm, CheckOpts::all()).expect("post-migrate mesh");

        grow_overlap(c, &mut dm, GhostOpts::new());
        check_dist(c, &dm, CheckOpts::all()).expect("post-ghost mesh");
    });
}

/// The topology audit: a part map that disagrees with where parts actually
/// live fails on every rank with typed placement errors; gating the audit
/// off skips it.
#[test]
fn misplaced_part_map_fails_topology_audit() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        // Swap the map: it now claims part 0 lives on rank 1 and vice
        // versa, while the hosts are unchanged.
        dm.map = PartMap::from_ranks(vec![1, 0], 2);
        let only_topology = CheckOpts::all()
            .symmetry(false)
            .ownership(false)
            .ghosts(false)
            .gids(false)
            .overlap(false);
        let err = check_dist(c, &dm, only_topology).expect_err("misplacement undetected");
        assert!(err.world_violations >= 2, "{err}");
        assert!(
            err.errors
                .iter()
                .any(|e| matches!(e, CheckError::PartMisplaced { .. })),
            "rank {} saw: {err}",
            c.rank()
        );
        // Audit off: the broken map goes unnoticed by the other families
        // (they route by slot, which still matches the hosts here).
        check_dist(c, &dm, only_topology.topology(false)).expect("gated-off audit must pass");
    });
}

/// Corrupting a remote-copy list fails the check on *every* rank (the count
/// is all-reduced), with a typed error naming the entity on the rank that
/// observes the dangling link.
#[test]
fn corrupted_remote_fails_everywhere() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        if c.rank() == 0 {
            let part = dm.part_mut(0);
            let victim = part.shared_entities()[0].0;
            part.set_remotes(victim, vec![(1, 999_999)]);
        }
        let err = check_dist(c, &dm, CheckOpts::all()).expect_err("corruption undetected");
        assert!(err.world_violations > 0);
        if c.rank() == 1 {
            assert!(
                err.errors.iter().any(|e| matches!(
                    e,
                    CheckError::BadRemoteIndex { .. } | CheckError::AsymmetricRemote { .. }
                )),
                "rank 1 saw: {err}"
            );
        }
    });
}

/// Two parts each owning a distinct vertex with the same gid: only the
/// gid-uniqueness family catches this, via home-part hashing.
#[test]
fn duplicate_gid_detected_and_gateable() {
    execute(2, |c| {
        let mut part = Part::new(c.rank() as PartId, 2);
        part.add_vertex([c.rank() as f64, 0.0, 0.0], GeomEnt(0), 7);
        let dm = DistMesh {
            map: PartMap::contiguous(2, 2),
            parts: vec![part],
        };
        let err = check_dist(c, &dm, CheckOpts::all()).expect_err("duplicate gid undetected");
        assert_eq!(err.world_violations, 1);
        let home_rank = (7u64 % 2) as usize; // gid 7 hashes home to part 1
        if c.rank() == home_rank {
            assert!(
                err.errors.iter().any(|e| matches!(
                    e,
                    CheckError::DuplicateGid { dim: 0, gid: 7, parts } if parts == &vec![0, 1]
                )),
                "home rank saw: {err}"
            );
        }
        // With the gid family gated off, the same mesh passes.
        check_dist(c, &dm, CheckOpts::all().gids(false)).expect("gated check still failed");
    });
}

/// Owner-side ghost records and holder-side ghosts must mirror each other;
/// dropping a holder's ghost record breaks the mirror: the source still lists
/// the copy, so its probe finds a live entity with no matching ghost source.
#[test]
fn broken_ghost_record_detected() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        grow_overlap(c, &mut dm, GhostOpts::new());
        check_dist(c, &dm, CheckOpts::all()).expect("clean ghosts");
        let part = &mut dm.parts[0];
        let victim = part.ghost_entities()[0];
        part.remove_ghost_record(victim);
        let err = check_dist(c, &dm, CheckOpts::all()).expect_err("dropped record undetected");
        assert!(err.world_violations > 0);
        assert!(
            err.errors
                .iter()
                .any(|e| matches!(e, CheckError::GhostLinkBroken { .. })),
            "rank {} saw: {err}",
            c.rank()
        );
        // Gating the ghost family skips the broken mirror; the de-ghosted copy
        // now also claims ownership of its gid and sticks out of the ghost
        // closures it bounds, so gate those families too.
        check_dist(
            c,
            &dm,
            CheckOpts::all().ghosts(false).gids(false).overlap(false),
        )
        .expect("gated ghosts still failed");
    });
}

/// De-ghosting a closure vertex of a ghost element leaves the element's
/// closure sticking out of the overlap region: the vertex is now a real,
/// unshared copy no sync will ever reach. The overlap family flags it.
#[test]
fn broken_overlap_closure_detected() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        grow_overlap(c, &mut dm, GhostOpts::new());
        check_dist(c, &dm, CheckOpts::all()).expect("clean overlap");
        let part = &mut dm.parts[0];
        let elem_dim = part.mesh.elem_dim();
        let victim = part
            .ghost_entities()
            .into_iter()
            .filter(|g| g.dim().as_usize() == elem_dim)
            .flat_map(|g| part.mesh.closure(g))
            .find(|&s| s.dim() == Dim::Vertex && part.is_ghost(s))
            .expect("ghost element with a ghost closure vertex");
        part.remove_ghost_record(victim);
        let err = check_dist(c, &dm, CheckOpts::all()).expect_err("broken closure undetected");
        assert!(err.world_violations > 0);
        if c.rank() == 0 {
            assert!(
                err.errors
                    .iter()
                    .any(|e| matches!(e, CheckError::OverlapClosureBroken { sub_dim: 0, .. })),
                "rank 0 saw: {err}"
            );
        }
        // Gating the overlap family (plus the ghost/gid families the same
        // corruption trips) skips the check.
        check_dist(
            c,
            &dm,
            CheckOpts::all().overlap(false).ghosts(false).gids(false),
        )
        .expect("gated overlap still failed");
    });
}

/// A remote link rewritten to a bogus index makes the star forest
/// asymmetric: the root's leaf entry points at a dead slot, and the real
/// leaf's announcement no longer matches the root's list. Both sides of
/// `check_overlap` report it.
#[test]
fn asymmetric_shares_detected() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        let ov = Overlap::from_dist(&dm);
        let links = check_overlap(c, &dm, &ov).expect("fresh overlap symmetric");
        assert!(links > 0, "no share links verified");

        if c.rank() == 0 {
            let part = dm.part_mut(0);
            let victim = part
                .shared_entities()
                .into_iter()
                .find(|&(e, _)| e.dim() == Dim::Vertex && part.is_owned(e))
                .expect("owned shared vertex")
                .0;
            part.set_remotes(victim, vec![(1, 999_999)]);
        }
        let ov = Overlap::from_dist(&dm);
        let err = check_overlap(c, &dm, &ov).expect_err("asymmetric share undetected");
        assert!(err.world_violations > 0);
        if c.rank() == 1 {
            assert!(
                err.errors
                    .iter()
                    .any(|e| matches!(e, CheckError::ShareAsymmetric { .. })),
                "rank 1 saw: {err}"
            );
        }
    });
}

/// `check_overlap` stays green across the operations that rebuild the
/// forest: growth to depth 2 and a share rebuild after it.
#[test]
fn check_overlap_passes_after_growth() {
    execute(2, |c| {
        let mut dm = two_part_mesh(c);
        let mut ov = Overlap::from_dist(&dm);
        check_overlap(c, &dm, &ov).expect("boundary-only forest");
        ov.grow(c, &mut dm, 2);
        let links = check_overlap(c, &dm, &ov).expect("depth-2 forest");
        assert!(links > 0);
        check_dist(c, &dm, CheckOpts::all()).expect("depth-2 invariants");
    });
}

#[test]
fn field_sync_coherence() {
    execute(2, |c| {
        let dm = two_part_mesh(c);
        let template = Field::new("u", FieldShape::Linear, 1);
        let mut fields = dist_field(&dm, &template);
        for (slot, part) in dm.parts.iter().enumerate() {
            for v in part.mesh.iter(Dim::Vertex) {
                fields[slot].set_scalar(v, part.gid_of(v) as f64);
            }
        }
        let ov = Overlap::from_dist(&dm);
        fields.sync(c, &dm, &ov, Reduction::Insert);
        let compared = check_field_sync(c, &dm, &fields).expect("synced field coherent");
        assert!(compared > 0);

        // Perturb one non-owned copy (part 1's — the min-part rule makes
        // part 0 own the whole boundary): the coherence check must fail.
        if c.rank() == 1 {
            let part = &dm.parts[0];
            let (e, _) = part
                .shared_entities()
                .into_iter()
                .find(|&(e, _)| e.dim() == Dim::Vertex && !part.is_owned(e))
                .expect("no non-owned shared vertex found");
            fields[0].set_scalar(e, -1.0);
        }
        let err = check_field_sync(c, &dm, &fields).expect_err("stale copy undetected");
        assert!(err
            .errors
            .iter()
            .all(|e| matches!(e, CheckError::FieldCopyMismatch { .. })));
    });
}
