//! pumi-check — the distributed invariant checker.
//!
//! Every §II algorithm (migration, ghosting, ParMA, checkpoint/restart)
//! maintains a web of cross-part links: remote-copy lists, residence sets,
//! ownership, ghost records, global ids. A bug in any phased exchange shows
//! up as a *silently* broken link that only bites many calls later.
//! [`check_dist`] verifies the full link structure collectively, via the
//! same phased exchanges the algorithms themselves use:
//!
//! * **remote-copy symmetry** — if part A lists `(B, i)` for an entity,
//!   part B's entity at `i` is live, carries the same global id, and lists
//!   A back with A's index,
//! * **single ownership** — every copy of a shared entity computes the same
//!   owner, and residence sets agree on all copies,
//! * **residence/ghost agreement** — ghost copies stay out of residence
//!   sets; holder-side ghost records and owner-side `ghosted_to` records
//!   mirror each other exactly,
//! * **global-id uniqueness** — no two distinct owned entities of one
//!   dimension share a gid anywhere in the world (verified by hashing gids
//!   to a home part),
//! * **overlap closure** — every closure entity of a ghost copy is itself a
//!   ghost or a part-boundary copy, so the overlap region is downward
//!   closed and a star-forest sync reaches every dof a ghost element
//!   touches,
//! * **share symmetry** — [`check_overlap`] verifies the star-forest itself:
//!   every leaf's root reference is mirrored by an entry in that root's
//!   leaf list, and vice versa, in both directions of a phased exchange,
//! * **field-copy coherence** — [`check_field_sync`] verifies that after an
//!   `Insert`-mode `Field::sync` every copy is bit-identical to its owner,
//! * **part placement** — every part is hosted exactly once, on the rank
//!   its part map names, inside the machine model — the invariant
//!   hierarchy-aware partitioning (`partition_hier`) and on-/off-node
//!   boundary accounting rely on.
//!
//! Violations come back as typed [`CheckError`]s naming part, dimension and
//! gid — the checker never asserts or panics on a broken mesh, so test
//! harnesses and the chaos scheduler can observe failures precisely.
//! [`check_dist`] is collective: the violation count is all-reduced, so
//! every rank returns `Err` together even when the broken link is remote.

#![warn(missing_docs)]

use pumi_core::overlap::{Overlap, Share};
use pumi_core::part::NO_GID;
use pumi_core::{DistMesh, Part, PartExchange};
use pumi_field::DistField;
use pumi_pcu::{Comm, MsgError, MsgReader};
use pumi_util::{Dim, FxHashMap, GlobalId, MeshEnt, PartId};

/// Which invariant families [`check_dist`] verifies. All on by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOpts {
    /// Remote-copy symmetry and index validity.
    pub symmetry: bool,
    /// Owner agreement and residence-set equality across copies.
    pub ownership: bool,
    /// Holder/owner ghost record agreement.
    pub ghosts: bool,
    /// World-wide global-id uniqueness per dimension.
    pub gids: bool,
    /// Overlap closure-completeness (ghost closures stay inside the
    /// overlap region).
    pub overlap: bool,
    /// Part → rank placement agreement with the part map and the machine
    /// model (each part hosted exactly once, on the rank the map names,
    /// inside the machine).
    pub topology: bool,
}

impl Default for CheckOpts {
    fn default() -> Self {
        CheckOpts::all()
    }
}

impl CheckOpts {
    /// Every check enabled.
    pub fn all() -> CheckOpts {
        CheckOpts {
            symmetry: true,
            ownership: true,
            ghosts: true,
            gids: true,
            overlap: true,
            topology: true,
        }
    }

    /// Toggle the symmetry checks.
    pub fn symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Toggle the ownership checks.
    pub fn ownership(mut self, on: bool) -> Self {
        self.ownership = on;
        self
    }

    /// Toggle the ghost-record checks.
    pub fn ghosts(mut self, on: bool) -> Self {
        self.ghosts = on;
        self
    }

    /// Toggle the gid-uniqueness check.
    pub fn gids(mut self, on: bool) -> Self {
        self.gids = on;
        self
    }

    /// Toggle the overlap closure-completeness check.
    pub fn overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Toggle the part-placement topology audit.
    pub fn topology(mut self, on: bool) -> Self {
        self.topology = on;
        self
    }
}

/// One broken invariant, naming the part, dimension and gid involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// `peer` lists this part as holding a copy, but this part does not
    /// list `peer` back (or lists a different index).
    AsymmetricRemote {
        /// Part that detected the violation (the accused holder).
        part: PartId,
        /// Part whose remote-copy list points here.
        peer: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id of the entity.
        gid: GlobalId,
    },
    /// A remote-copy link points at a dead local slot or an entity with a
    /// different gid.
    BadRemoteIndex {
        /// Part holding the bad target slot.
        part: PartId,
        /// Part whose link is broken.
        peer: PartId,
        /// Entity dimension.
        dim: u8,
        /// Gid the peer expected at that slot.
        gid: GlobalId,
        /// Local index the peer pointed at.
        index: u32,
    },
    /// Two copies of one entity disagree about the owner.
    OwnerDisagreement {
        /// Part that detected the violation.
        part: PartId,
        /// The peer copy.
        peer: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id.
        gid: GlobalId,
        /// Owner computed here.
        ours: PartId,
        /// Owner computed by the peer.
        theirs: PartId,
    },
    /// Two copies of one entity disagree about the residence set.
    ResidenceMismatch {
        /// Part that detected the violation.
        part: PartId,
        /// The peer copy.
        peer: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id.
        gid: GlobalId,
    },
    /// Two distinct owned entities of the same dimension share a gid.
    DuplicateGid {
        /// Entity dimension.
        dim: u8,
        /// The duplicated global id.
        gid: GlobalId,
        /// Parts claiming ownership (sorted).
        parts: Vec<PartId>,
    },
    /// A holder has a ghost copy its owner does not acknowledge in
    /// `ghosted_to`.
    GhostUnacknowledged {
        /// The owner part that is missing the record.
        part: PartId,
        /// The holder of the unacknowledged ghost.
        holder: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id.
        gid: GlobalId,
    },
    /// A ghost link (either direction) points at a dead slot, a different
    /// gid, or a non-ghost entity.
    GhostLinkBroken {
        /// Part that detected the broken link.
        part: PartId,
        /// The other end of the link.
        peer: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id.
        gid: GlobalId,
    },
    /// A ghost copy's closure contains an entity that is neither a ghost
    /// nor a part-boundary copy: the overlap region is not downward closed,
    /// so an overlap sync would skip a dof this ghost element touches.
    OverlapClosureBroken {
        /// Part holding the broken ghost.
        part: PartId,
        /// Dimension of the ghost entity.
        dim: u8,
        /// Global id of the ghost entity.
        gid: GlobalId,
        /// Dimension of the offending closure entity.
        sub_dim: u8,
        /// Global id of the offending closure entity.
        sub_gid: GlobalId,
    },
    /// A star-forest share link is not mirrored by the other end: a leaf's
    /// root reference has no matching entry in the root's leaf list (or a
    /// root's leaf entry points at a slot that is dead, renamed, or not a
    /// leaf of this root).
    ShareAsymmetric {
        /// Part that detected the violation.
        part: PartId,
        /// The other end of the unmirrored link.
        peer: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id.
        gid: GlobalId,
    },
    /// A copy's field value differs from its owner's after a sync.
    FieldCopyMismatch {
        /// The copy-holding part.
        part: PartId,
        /// The owner part.
        owner: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id.
        gid: GlobalId,
    },
    /// A part is hosted on a different rank than the part map places it on.
    PartMisplaced {
        /// The misplaced part.
        part: PartId,
        /// Rank actually hosting it.
        rank: u32,
        /// Rank the part map names.
        mapped: u32,
    },
    /// A part id is hosted by zero ranks or by more than one rank.
    PartMultiplicity {
        /// The part in question.
        part: PartId,
        /// How many ranks host it.
        count: u64,
    },
    /// The part map places a part on a rank outside the machine model.
    PartOffMachine {
        /// The part in question.
        part: PartId,
        /// The out-of-range rank.
        rank: u32,
        /// Ranks the machine actually has.
        nranks: u32,
    },
    /// A purely local structure is broken (missing gid, stale gid index,
    /// self-referential remote list, shared element, ghost in residence).
    LocalCorrupt {
        /// The part with the broken structure.
        part: PartId,
        /// Entity dimension.
        dim: u8,
        /// Global id (or [`NO_GID`] when that is the problem).
        gid: GlobalId,
        /// What is wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use CheckError::*;
        match self {
            AsymmetricRemote { part, peer, dim, gid } => write!(
                f,
                "part {part}: part {peer} lists us for dim {dim} gid {gid}, but we do not list it back"
            ),
            BadRemoteIndex { part, peer, dim, gid, index } => write!(
                f,
                "part {part}: remote link from part {peer} (dim {dim}, gid {gid}) points at bad local index {index}"
            ),
            OwnerDisagreement { part, peer, dim, gid, ours, theirs } => write!(
                f,
                "part {part}: owner disagreement with part {peer} on dim {dim} gid {gid}: {ours} here vs {theirs} there"
            ),
            ResidenceMismatch { part, peer, dim, gid } => write!(
                f,
                "part {part}: residence set differs from part {peer}'s on dim {dim} gid {gid}"
            ),
            DuplicateGid { dim, gid, parts } => write!(
                f,
                "dim {dim} gid {gid} owned by multiple parts: {parts:?}"
            ),
            GhostUnacknowledged { part, holder, dim, gid } => write!(
                f,
                "part {part}: ghost copy on part {holder} of dim {dim} gid {gid} is not in ghosted_to"
            ),
            GhostLinkBroken { part, peer, dim, gid } => write!(
                f,
                "part {part}: ghost link with part {peer} broken for dim {dim} gid {gid}"
            ),
            OverlapClosureBroken { part, dim, gid, sub_dim, sub_gid } => write!(
                f,
                "part {part}: ghost dim {dim} gid {gid} has closure entity dim {sub_dim} gid {sub_gid} that is neither ghost nor shared"
            ),
            ShareAsymmetric { part, peer, dim, gid } => write!(
                f,
                "part {part}: star-forest share with part {peer} on dim {dim} gid {gid} is not mirrored"
            ),
            FieldCopyMismatch { part, owner, dim, gid } => write!(
                f,
                "part {part}: field copy of dim {dim} gid {gid} differs from owner part {owner}"
            ),
            PartMisplaced { part, rank, mapped } => write!(
                f,
                "part {part} hosted on rank {rank} but the part map places it on rank {mapped}"
            ),
            PartMultiplicity { part, count } => write!(
                f,
                "part {part} hosted by {count} ranks (must be exactly 1)"
            ),
            PartOffMachine { part, rank, nranks } => write!(
                f,
                "part {part} mapped to rank {rank}, outside the {nranks}-rank machine"
            ),
            LocalCorrupt { part, dim, gid, what } => {
                write!(f, "part {part}: {what} (dim {dim}, gid {gid})")
            }
        }
    }
}

/// What a passing [`check_dist`] examined, summed over the world.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Live non-ghost entities examined.
    pub entities: u64,
    /// Cross-part links verified (remote copies + ghost records).
    pub links: u64,
}

/// The collective failure report: this rank's local violations plus the
/// world-wide count (every rank fails together, even when all broken links
/// are remote).
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Violations detected on this rank (possibly empty).
    pub errors: Vec<CheckError>,
    /// Total violations across all ranks.
    pub world_violations: u64,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} invariant violation(s) world-wide, {} on this rank:",
            self.world_violations,
            self.errors.len()
        )?;
        for e in self.errors.iter().take(16) {
            writeln!(f, "  {e}")?;
        }
        if self.errors.len() > 16 {
            writeln!(f, "  ... and {} more", self.errors.len() - 16)?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckFailure {}

fn dim8(e: MeshEnt) -> u8 {
    e.dim().as_usize() as u8
}

/// Purely local structure checks: gid presence, gid-index coherence,
/// self-free remote lists, unshared elements, ghosts outside residence.
fn check_local(part: &Part, elem_dim: usize, errs: &mut Vec<CheckError>, stats: &mut CheckStats) {
    for d in Dim::ALL {
        for e in part.mesh.iter(d) {
            stats.entities += 1;
            let gid = part.gid_of(e);
            if gid == NO_GID {
                errs.push(CheckError::LocalCorrupt {
                    part: part.id,
                    dim: dim8(e),
                    gid: NO_GID,
                    what: "entity without gid",
                });
                continue;
            }
            if part.find_gid(d, gid) != Some(e) {
                errs.push(CheckError::LocalCorrupt {
                    part: part.id,
                    dim: dim8(e),
                    gid,
                    what: "gid index does not resolve back to entity",
                });
            }
            if part.remotes_of(e).iter().any(|&(q, _)| q == part.id) {
                errs.push(CheckError::LocalCorrupt {
                    part: part.id,
                    dim: dim8(e),
                    gid,
                    what: "remote-copy list contains this part",
                });
            }
            if d.as_usize() == elem_dim && part.is_shared(e) {
                errs.push(CheckError::LocalCorrupt {
                    part: part.id,
                    dim: dim8(e),
                    gid,
                    what: "element is shared (elements may only be ghosted)",
                });
            }
            if part.is_ghost(e) && part.is_shared(e) {
                errs.push(CheckError::LocalCorrupt {
                    part: part.id,
                    dim: dim8(e),
                    gid,
                    what: "ghost copy has remote copies (ghosts stay out of residence)",
                });
            }
        }
    }
}

/// Overlap closure-completeness, purely local: a ghost element arrives with
/// its full closure, and every closure entity either becomes a ghost itself
/// or dedups against an existing copy — which, because the sender also holds
/// a real copy, must be part-boundary shared. So on a healthy mesh every
/// closure entity of every ghost is a ghost or a shared copy; anything else
/// means a sync through the overlap would miss a dof the ghost touches.
fn check_overlap_closure(part: &Part, errs: &mut Vec<CheckError>, stats: &mut CheckStats) {
    for g in part.ghost_entities() {
        for sub in part.mesh.closure(g) {
            if sub == g {
                continue;
            }
            stats.links += 1;
            if !part.is_ghost(sub) && !part.is_shared(sub) {
                errs.push(CheckError::OverlapClosureBroken {
                    part: part.id,
                    dim: dim8(g),
                    gid: part.gid_of(g),
                    sub_dim: dim8(sub),
                    sub_gid: part.gid_of(sub),
                });
            }
        }
    }
}

/// Remote-copy symmetry / ownership / residence agreement: each part sends,
/// for every shared non-ghost entity and every listed remote `(q, ridx)`,
/// its own gid/index/owner/residence; `q` verifies everything against the
/// entity at `ridx`.
fn check_symmetry(
    comm: &Comm,
    dm: &DistMesh,
    opts: CheckOpts,
    errs: &mut Vec<CheckError>,
    stats: &mut CheckStats,
) {
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &dm.parts {
        for (e, remotes) in part.shared_entities() {
            if part.is_ghost(e) {
                continue;
            }
            let res = part.residence(e);
            for &(q, ridx) in remotes {
                let w = ex.to(part.id, q);
                w.put_u8(dim8(e));
                w.put_u64(part.gid_of(e));
                w.put_u32(ridx); // where I think q holds its copy
                w.put_u32(e.index()); // where q should point back to
                w.put_u32(part.owner(e));
                w.put_u32_slice(&res);
            }
        }
    }
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let part = dm.part(to);
        let mut run = |r: &mut MsgReader| -> Result<(), MsgError> {
            while !r.is_done() {
                let db = r.try_get_u8()?;
                let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                let gid = r.try_get_u64()?;
                let my_idx = r.try_get_u32()?;
                let their_idx = r.try_get_u32()?;
                let owner = r.try_get_u32()?;
                let res: Vec<PartId> = r.try_get_u32_slice()?;
                stats.links += 1;
                let e = MeshEnt::new(d, my_idx);
                if !part.mesh.is_live(e) || part.gid_of(e) != gid {
                    errs.push(CheckError::BadRemoteIndex {
                        part: part.id,
                        peer: from,
                        dim: db,
                        gid,
                        index: my_idx,
                    });
                    continue;
                }
                if !part
                    .remotes_of(e)
                    .iter()
                    .any(|&(q, i)| q == from && i == their_idx)
                {
                    errs.push(CheckError::AsymmetricRemote {
                        part: part.id,
                        peer: from,
                        dim: db,
                        gid,
                    });
                }
                if opts.ownership {
                    if part.owner(e) != owner {
                        errs.push(CheckError::OwnerDisagreement {
                            part: part.id,
                            peer: from,
                            dim: db,
                            gid,
                            ours: part.owner(e),
                            theirs: owner,
                        });
                    }
                    if part.residence(e) != res {
                        errs.push(CheckError::ResidenceMismatch {
                            part: part.id,
                            peer: from,
                            dim: db,
                            gid,
                        });
                    }
                }
            }
            Ok(())
        };
        run(&mut r).unwrap_or_else(|e| panic!("corrupt check frame {from}->{to}: {e}"));
    }
}

/// Ghost agreement, both directions: holders announce each ghost to its
/// source (which must list the holder in `ghosted_to`), and owners announce
/// each `ghosted_to` record to its holder (which must hold a matching ghost
/// sourced here).
fn check_ghosts(comm: &Comm, dm: &DistMesh, errs: &mut Vec<CheckError>, stats: &mut CheckStats) {
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &dm.parts {
        // holder -> owner: (0, dim, gid, owner_idx, my_idx)
        for g in part.ghost_entities() {
            let (src, src_idx) = part.ghost_source(g).expect("listed ghost has a source");
            let w = ex.to(part.id, src);
            w.put_u8(0);
            w.put_u8(dim8(g));
            w.put_u64(part.gid_of(g));
            w.put_u32(src_idx);
            w.put_u32(g.index());
        }
        // owner -> holder: (1, dim, gid, holder_idx)
        for (e, holders) in part.ghost_entities_owner_side() {
            for (q, their_idx) in holders {
                let w = ex.to(part.id, q);
                w.put_u8(1);
                w.put_u8(dim8(e));
                w.put_u64(part.gid_of(e));
                w.put_u32(their_idx);
            }
        }
    }
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let part = dm.part(to);
        let mut run = |r: &mut MsgReader| -> Result<(), MsgError> {
            while !r.is_done() {
                let tag = r.try_get_u8()?;
                let db = r.try_get_u8()?;
                Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                let gid = r.try_get_u64()?;
                stats.links += 1;
                match tag {
                    0 => {
                        // A holder claims a ghost of our entity at my_idx.
                        let my_idx = r.try_get_u32()?;
                        let holder_idx = r.try_get_u32()?;
                        let e = MeshEnt::new(Dim::from_usize(db as usize), my_idx);
                        if !part.mesh.is_live(e) || part.gid_of(e) != gid {
                            errs.push(CheckError::GhostLinkBroken {
                                part: part.id,
                                peer: from,
                                dim: db,
                                gid,
                            });
                        } else if !part
                            .ghosted_to(e)
                            .iter()
                            .any(|&(q, i)| q == from && i == holder_idx)
                        {
                            errs.push(CheckError::GhostUnacknowledged {
                                part: part.id,
                                holder: from,
                                dim: db,
                                gid,
                            });
                        }
                    }
                    1 => {
                        // An owner claims we hold a ghost at their_idx.
                        let my_idx = r.try_get_u32()?;
                        let e = MeshEnt::new(Dim::from_usize(db as usize), my_idx);
                        let ok = part.mesh.is_live(e)
                            && part.gid_of(e) == gid
                            && part.ghost_source(e).map(|(q, _)| q) == Some(from);
                        if !ok {
                            errs.push(CheckError::GhostLinkBroken {
                                part: part.id,
                                peer: from,
                                dim: db,
                                gid,
                            });
                        }
                    }
                    b => return Err(MsgError::bad_enum("ghost check record", b)),
                }
            }
            Ok(())
        };
        run(&mut r).unwrap_or_else(|e| panic!("corrupt ghost check frame {from}->{to}: {e}"));
    }
}

/// Part-placement topology audit: every local part must be the one the part
/// map names for this rank, every part id must be hosted exactly once
/// world-wide, and the map must not point outside the machine model the
/// world runs on. This is the invariant `partition_hier`-style placements
/// (and any consumer of `MachineModel::node_of`) rely on to reason about
/// on- vs off-node boundaries. Collective (one vector allreduce); the
/// map-level findings are reported by rank 0 only, so world counts stay
/// deduplicated.
fn check_topology(comm: &Comm, dm: &DistMesh, errs: &mut Vec<CheckError>) {
    let machine = comm.machine();
    let nparts = dm.map.nparts();
    let mut held = vec![0u64; nparts];
    for part in &dm.parts {
        held[part.id as usize] += 1;
        let mapped = dm.map.rank_of(part.id);
        if mapped != comm.rank() {
            errs.push(CheckError::PartMisplaced {
                part: part.id,
                rank: comm.rank() as u32,
                mapped: mapped as u32,
            });
        }
    }
    let held = comm.allreduce_sum_u64_vec(&held);
    if comm.rank() == 0 {
        for (p, &count) in held.iter().enumerate() {
            if count != 1 {
                errs.push(CheckError::PartMultiplicity {
                    part: p as PartId,
                    count,
                });
            }
        }
        for p in 0..nparts {
            let rank = dm.map.rank_of(p as PartId);
            if rank >= machine.nranks() {
                errs.push(CheckError::PartOffMachine {
                    part: p as PartId,
                    rank: rank as u32,
                    nranks: machine.nranks() as u32,
                });
            }
        }
    }
}

/// Global-id uniqueness: every owned non-ghost entity's `(dim, gid)` is
/// hashed to a home part (`gid % nparts`); the home sees every ownership
/// claim and reports any `(dim, gid)` claimed by more than one part.
fn check_gid_uniqueness(comm: &Comm, dm: &DistMesh, errs: &mut Vec<CheckError>) {
    let nparts = dm.map.nparts() as u64;
    let mut ex = PartExchange::new(comm, &dm.map);
    for part in &dm.parts {
        for d in Dim::ALL {
            for e in part.mesh.iter(d) {
                if part.is_ghost(e) || !part.is_owned(e) {
                    continue;
                }
                let gid = part.gid_of(e);
                let home = (gid % nparts) as PartId;
                let w = ex.to(part.id, home);
                w.put_u8(dim8(e));
                w.put_u64(gid);
                w.put_u32(part.id);
            }
        }
    }
    // (dim, gid) -> sorted owner claims; local slot -> claims map.
    let mut claims: FxHashMap<PartId, FxHashMap<(u8, GlobalId), Vec<PartId>>> =
        FxHashMap::default();
    for (from, to, mut r) in ex.finish() {
        let mut run = |r: &mut MsgReader| -> Result<(), MsgError> {
            while !r.is_done() {
                let db = r.try_get_u8()?;
                Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                let gid = r.try_get_u64()?;
                let claimer = r.try_get_u32()?;
                claims
                    .entry(to)
                    .or_default()
                    .entry((db, gid))
                    .or_default()
                    .push(claimer);
            }
            Ok(())
        };
        run(&mut r).unwrap_or_else(|e| panic!("corrupt gid check frame {from}->{to}: {e}"));
    }
    let mut dups: Vec<CheckError> = Vec::new();
    for by_key in claims.into_values() {
        for ((dim, gid), mut parts) in by_key {
            if parts.len() > 1 {
                parts.sort_unstable();
                dups.push(CheckError::DuplicateGid { dim, gid, parts });
            }
        }
    }
    // Canonical report order regardless of hash-map iteration.
    dups.sort_by_key(|e| match e {
        CheckError::DuplicateGid { dim, gid, .. } => (*dim, *gid),
        _ => unreachable!(),
    });
    errs.extend(dups);
}

/// Run every enabled invariant check over the distributed mesh.
/// Collective: all ranks must call; the violation count is all-reduced so
/// all ranks return `Ok`/`Err` together.
///
/// # Examples
///
/// ```
/// use pumi_check::{check_dist, CheckOpts};
/// use pumi_core::{distribute, PartMap};
/// use pumi_util::PartId;
///
/// pumi_pcu::execute(2, |c| {
///     let serial = pumi_meshgen::tri_rect(4, 4, 1.0, 1.0);
///     let d = serial.elem_dim_t();
///     let mut labels = vec![0 as PartId; serial.index_space(d)];
///     for e in serial.iter(d) {
///         labels[e.idx()] = u32::from(serial.centroid(e)[0] >= 0.5) as PartId;
///     }
///     let dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
///     let stats = check_dist(c, &dm, CheckOpts::all()).expect("fresh mesh is valid");
///     assert!(stats.links > 0);
/// });
/// ```
pub fn check_dist(comm: &Comm, dm: &DistMesh, opts: CheckOpts) -> Result<CheckStats, CheckFailure> {
    let _span = pumi_obs::span!("check");
    pumi_obs::metrics::counter_add("check.calls", 1);
    let elem_dim = dm.parts.first().map(|p| p.mesh.elem_dim()).unwrap_or(2);
    let mut errs = Vec::new();
    let mut stats = CheckStats::default();

    for part in &dm.parts {
        check_local(part, elem_dim, &mut errs, &mut stats);
        if opts.overlap {
            check_overlap_closure(part, &mut errs, &mut stats);
        }
    }
    if opts.symmetry || opts.ownership {
        check_symmetry(comm, dm, opts, &mut errs, &mut stats);
    }
    if opts.ghosts {
        check_ghosts(comm, dm, &mut errs, &mut stats);
    }
    if opts.gids {
        check_gid_uniqueness(comm, dm, &mut errs);
    }
    if opts.topology {
        check_topology(comm, dm, &mut errs);
    }

    let world = comm.allreduce_sum_u64(errs.len() as u64);
    if world > 0 {
        pumi_obs::metrics::counter_add("check.violations", world);
        return Err(CheckFailure {
            errors: errs,
            world_violations: world,
        });
    }
    Ok(CheckStats {
        entities: comm.allreduce_sum_u64(stats.entities),
        links: comm.allreduce_sum_u64(stats.links),
    })
}

/// Verify star-forest share symmetry for an [`Overlap`]: every leaf
/// announces its root reference to the root part (which must list the leaf
/// back, at the right index, with the right ghost flag), and every root
/// announces each leaf entry to the leaf part (which must hold a matching
/// leaf record pointing here). Collective; returns the world-wide number of
/// share links verified.
///
/// The overlap must describe `dm` (same local part slots); call
/// [`Overlap::rebuild_shares`] after mutating share records through the raw
/// [`Part`] API.
///
/// # Examples
///
/// ```
/// use pumi_check::check_overlap;
/// use pumi_core::overlap::{grow_overlap, GhostOpts};
/// use pumi_core::{distribute, PartMap};
/// use pumi_util::PartId;
///
/// pumi_pcu::execute(2, |c| {
///     let serial = pumi_meshgen::tri_rect(4, 4, 1.0, 1.0);
///     let d = serial.elem_dim_t();
///     let mut labels = vec![0 as PartId; serial.index_space(d)];
///     for e in serial.iter(d) {
///         labels[e.idx()] = u32::from(serial.centroid(e)[0] >= 0.5) as PartId;
///     }
///     let mut dm = distribute(c, PartMap::contiguous(2, 2), &serial, &labels);
///     let ov = grow_overlap(c, &mut dm, GhostOpts::new());
///     let links = check_overlap(c, &dm, &ov).expect("grown overlap is symmetric");
///     assert!(links > 0);
/// });
/// ```
pub fn check_overlap(comm: &Comm, dm: &DistMesh, ov: &Overlap) -> Result<u64, CheckFailure> {
    let _span = pumi_obs::span!("check.overlap");
    assert_eq!(ov.num_slots(), dm.parts.len(), "overlap/mesh slot mismatch");
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        debug_assert_eq!(ov.part_id(slot), part.id);
        // leaf -> root: (0, dim, gid, root_idx, my_idx, ghost)
        for (e, root) in ov.leaves_sorted(slot) {
            let w = ex.to(part.id, root.part);
            w.put_u8(0);
            w.put_u8(dim8(e));
            w.put_u64(part.gid_of(e));
            w.put_u32(root.index);
            w.put_u32(e.index());
            w.put_u8(root.ghost as u8);
        }
        // root -> leaf: (1, dim, gid, leaf_idx, my_idx, ghost)
        for (e, shares) in ov.roots_sorted(slot) {
            for s in shares {
                let w = ex.to(part.id, s.part);
                w.put_u8(1);
                w.put_u8(dim8(e));
                w.put_u64(part.gid_of(e));
                w.put_u32(s.index);
                w.put_u32(e.index());
                w.put_u8(s.ghost as u8);
            }
        }
    }
    let mut errs = Vec::new();
    let mut links = 0u64;
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let slot = dm.map.slot_of(to);
        let part = &dm.parts[slot];
        let mut run = |r: &mut MsgReader| -> Result<(), MsgError> {
            while !r.is_done() {
                let tag = r.try_get_u8()?;
                let db = r.try_get_u8()?;
                let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                let gid = r.try_get_u64()?;
                let my_idx = r.try_get_u32()?;
                let their_idx = r.try_get_u32()?;
                let ghost = r.try_get_u8()? != 0;
                links += 1;
                let e = MeshEnt::new(d, my_idx);
                let live = part.mesh.is_live(e) && part.gid_of(e) == gid;
                let mirrored = live
                    && match tag {
                        // A leaf claims we are its root: our leaf list for
                        // `e` must name it at its index with its ghost flag.
                        0 => ov
                            .root_shares(slot, e)
                            .iter()
                            .any(|s| s.part == from && s.index == their_idx && s.ghost == ghost),
                        // A root claims we hold a leaf of its entity.
                        1 => {
                            ov.leaf_root(slot, e)
                                == Some(Share {
                                    part: from,
                                    index: their_idx,
                                    ghost,
                                })
                        }
                        b => return Err(MsgError::bad_enum("share check record", b)),
                    };
                if !mirrored {
                    errs.push(CheckError::ShareAsymmetric {
                        part: part.id,
                        peer: from,
                        dim: db,
                        gid,
                    });
                }
            }
            Ok(())
        };
        run(&mut r).unwrap_or_else(|e| panic!("corrupt share check frame {from}->{to}: {e}"));
    }
    let world = comm.allreduce_sum_u64(errs.len() as u64);
    if world > 0 {
        pumi_obs::metrics::counter_add("check.violations", world);
        return Err(CheckFailure {
            errors: errs,
            world_violations: world,
        });
    }
    Ok(comm.allreduce_sum_u64(links))
}

/// Verify field-copy coherence: every shared node's value on every copy is
/// bit-identical to the owner's (the post-condition of an `Insert`-mode
/// `Field::sync`). Collective; returns the world-wide number of
/// values compared.
pub fn check_field_sync(
    comm: &Comm,
    dm: &DistMesh,
    fields: &DistField,
) -> Result<u64, CheckFailure> {
    let _span = pumi_obs::span!("check.field");
    assert_eq!(fields.len(), dm.parts.len());
    let node_dims: Vec<Dim> = fields
        .first()
        .map(|f| f.shape.node_dims(dm.parts[0].mesh.elem_dim()))
        .unwrap_or_default();
    let mut ex = PartExchange::new(comm, &dm.map);
    for (slot, part) in dm.parts.iter().enumerate() {
        for (e, remotes) in part.shared_entities() {
            if !node_dims.contains(&e.dim()) || !part.is_owned(e) {
                continue;
            }
            let Some(v) = fields[slot].get(e) else {
                continue;
            };
            for &(q, ridx) in remotes {
                let w = ex.to(part.id, q);
                w.put_u8(dim8(e));
                w.put_u64(part.gid_of(e));
                w.put_u32(ridx);
                w.put_f64_slice(v);
            }
        }
    }
    let mut errs = Vec::new();
    let mut compared = 0u64;
    let mut frames = ex.finish();
    frames.sort_by_key(|&(from, to, _)| (to, from));
    for (from, to, mut r) in frames {
        let slot = dm.map.slot_of(to);
        let part = &dm.parts[slot];
        let mut run = |r: &mut MsgReader| -> Result<(), MsgError> {
            while !r.is_done() {
                let db = r.try_get_u8()?;
                let d = Dim::try_from_u8(db).ok_or(MsgError::bad_enum("dimension", db))?;
                let gid = r.try_get_u64()?;
                let idx = r.try_get_u32()?;
                let want = r.try_get_f64_slice()?;
                compared += 1;
                let e = MeshEnt::new(d, idx);
                let same = fields[slot].get(e).is_some_and(|have| {
                    have.len() == want.len()
                        && have
                            .iter()
                            .zip(&want)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                });
                if !same {
                    errs.push(CheckError::FieldCopyMismatch {
                        part: part.id,
                        owner: from,
                        dim: db,
                        gid,
                    });
                }
            }
            Ok(())
        };
        run(&mut r).unwrap_or_else(|e| panic!("corrupt field check frame {from}->{to}: {e}"));
    }
    let world = comm.allreduce_sum_u64(errs.len() as u64);
    if world > 0 {
        return Err(CheckFailure {
            errors: errs,
            world_violations: world,
        });
    }
    Ok(comm.allreduce_sum_u64(compared))
}
