//! Plain-text table formatting for the experiment binaries — the output
//! mirrors the rows the paper's tables report so EXPERIMENTS.md can place
//! them side by side — plus the machine-readable twin: every binary also
//! assembles a [`pumi_obs::report::Report`] and drops it in `results/`.

use pumi_obs::json::Json;
use pumi_obs::report::Report;

/// A simple column-aligned table.
#[derive(Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Header row.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and header.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                line.push_str(&format!("{:>w$}  ", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncol));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Print a table to stdout.
pub fn print_table(t: &Table) {
    print!("{}", t.render());
}

/// Render a table as a JSON object (title, header, rows) for the report.
pub fn table_to_json(t: &Table) -> Json {
    Json::obj([
        ("title", Json::str(&t.title)),
        ("header", Json::arr(t.header.iter().map(Json::str))),
        (
            "rows",
            Json::arr(
                t.rows
                    .iter()
                    .map(|row| Json::arr(row.iter().map(Json::str))),
            ),
        ),
    ])
}

/// Write `report` to `results/<name>.json`, logging the outcome to stderr.
/// A bench run should not abort because the results directory is
/// unwritable, so failures are reported and swallowed.
pub fn write_report(report: &Report) {
    if let Some(path) = report.write_or_warn() {
        eprintln!("wrote {}", path.display());
    }
}

/// Format a float with `prec` decimals.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned: "a" ends at the same column as "long-name".
        assert!(lines[2].ends_with('-'));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
