//! Experiment harness shared by the per-table/per-figure binaries.
//!
//! Every quantitative artifact of the paper has a binary in `src/bin/`
//! (see EXPERIMENTS.md for the index); this library holds the common
//! scaffolding: scaled workload construction, distribution helpers, and
//! table formatting. Scale factors versus the paper are documented in
//! EXPERIMENTS.md and chosen so each binary completes in minutes on a
//! laptop while preserving the per-part statistics that drive the
//! phenomena (a few hundred to a few thousand elements per part, as in the
//! paper's runs).

pub mod report;
pub mod workloads;

pub use report::{print_table, Table};
pub use workloads::{aaa_mesh, aaa_scaled, distribute_labels, wing_mesh, AaaScale};
