//! Checkpoint-service timing: flat v1 vs chunked-compressed v2 `.pmb`
//! writes, a delta checkpoint after a sparse touch pass, and many
//! concurrent clients restoring disjoint slices of one checkpoint through
//! the shared chunk cache of `pumi-serve`.
//!
//! The default pass runs at ~10^6 triangles; `--large` adds a ~10^7 pass
//! (one rep). Each leg reports the median wall time and the bytes the leg
//! put on disk; the v2 write must beat v1 on bytes or the bin aborts.
//!
//! Usage: `checkpoint_service [--parts N] [--reps N] [--clients N] [--large]
//! [--nx N]` — `--nx` replaces the default ~10^6 pass with a small
//! `smoke`-labelled mesh (CI uses this to prove the plumbing without the
//! wall-clock). Emits `results/io_checkpoint.json`.

use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_core::{distribute, DistMesh, PartMap};
use pumi_field::{DistField, Field, FieldShape};
use pumi_io::{write_checkpoint_with, write_delta_checkpoint, WriteOpts};
use pumi_meshgen::{jitter, tri_rect};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_serve::CheckpointServer;
use pumi_util::stats::Timer;
use pumi_util::Dim;
use std::path::PathBuf;

struct Leg {
    name: String,
    median_ns: u64,
    samples: u64,
    bytes: u64,
    detail: String,
}

struct ScaleBytes {
    scale: String,
    elements: u64,
    v1: u64,
    v2: u64,
    delta: u64,
}

fn median_ns(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn parse_args() -> (usize, usize, usize, bool, Option<usize>) {
    let (mut parts, mut reps, mut clients, mut large) = (4usize, 3usize, 8usize, false);
    let mut nx = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--large" => {
                large = true;
                i += 1;
            }
            flag => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} needs a value"));
                match flag {
                    "--parts" => parts = v.parse().expect("--parts"),
                    "--reps" => reps = v.parse().expect("--reps"),
                    "--clients" => clients = v.parse().expect("--clients"),
                    "--nx" => nx = Some(v.parse().expect("--nx")),
                    other => panic!("unknown flag {other}"),
                }
                i += 2;
            }
        }
    }
    (parts, reps, clients, large, nx)
}

fn make_fields(dm: &DistMesh) -> DistField {
    dm.parts
        .iter()
        .map(|part| {
            let mut fld = Field::new("temp", FieldShape::Linear, 3);
            for v in part.mesh.iter(Dim::Vertex) {
                let x = part.mesh.coords(v);
                fld.set(v, &[x[0] + x[1], x[1] * x[2], x[2] - x[0]]);
            }
            fld
        })
        .collect()
}

/// Elementwise max across ranks: the slowest rank's wall time is the leg's.
fn fold_max(out: Vec<Vec<u64>>) -> Vec<u64> {
    let mut acc = out[0].clone();
    for row in &out[1..] {
        for (a, b) in acc.iter_mut().zip(row) {
            *a = (*a).max(*b);
        }
    }
    acc
}

/// One full pass at a given mesh scale; pushes write/delta/serve legs.
fn run_scale(
    scale: &str,
    nx: usize,
    parts: usize,
    reps: usize,
    clients: usize,
    legs: &mut Vec<Leg>,
    bytes_rows: &mut Vec<ScaleBytes>,
) {
    let mut serial = tri_rect(nx, nx, 1.0, 1.0);
    jitter(&mut serial, 0.15, 42);
    let elements = serial.count(Dim::Face) as u64;
    eprintln!("checkpoint_service[{scale}]: {elements} tris, {parts} parts, {reps} reps");
    let labels = partition_mesh(&serial, parts);
    let tag = format!("pumi_io_serve_{}_{scale}", std::process::id());
    let dir_v1: PathBuf = std::env::temp_dir().join(format!("{tag}_v1"));
    let dir_v2: PathBuf = std::env::temp_dir().join(format!("{tag}_v2"));
    let _ = std::fs::remove_dir_all(&dir_v1);
    let _ = std::fs::remove_dir_all(&dir_v2);

    // One world does all the writing: distribute once, then time each leg.
    let out = execute(parts, |c| {
        let mut dm = distribute(c, PartMap::contiguous(parts, parts), &serial, &labels);
        let mut fields = make_fields(&dm);

        let mut v1_ns = Vec::with_capacity(reps);
        let mut v1_bytes = 0u64;
        let opts_v1 = WriteOpts {
            version: 1,
            ..WriteOpts::default()
        };
        for _ in 0..reps {
            let t = Timer::start();
            let stats =
                write_checkpoint_with(c, &dm, &[&fields], &dir_v1, &opts_v1).expect("v1 write");
            v1_ns.push((t.seconds() * 1e9) as u64);
            v1_bytes = stats.bytes_global;
        }

        let mut v2_ns = Vec::with_capacity(reps);
        let mut v2_bytes = 0u64;
        for _ in 0..reps {
            let t = Timer::start();
            let stats = write_checkpoint_with(c, &dm, &[&fields], &dir_v2, &WriteOpts::default())
                .expect("v2 write");
            v2_ns.push((t.seconds() * 1e9) as u64);
            v2_bytes = stats.bytes_global;
        }

        // Sparse touch pass (~1% of vertices) and one delta round on top
        // of the v2 base — the between-adapt-rounds checkpoint shape.
        dm.start_dirty_tracking();
        for (part, fld) in dm.parts.iter_mut().zip(fields.iter_mut()) {
            let vs: Vec<_> = part.mesh.iter(Dim::Vertex).step_by(97).collect();
            for v in vs {
                let mut x = part.mesh.coords(v);
                x[2] += 0.001;
                part.mesh.set_coords(v, x);
                fld.set(v, &[x[0] + x[1], x[1] * x[2], x[2] - x[0]]);
                part.mark_dirty(v);
            }
        }
        let t = Timer::start();
        let stats = write_delta_checkpoint(c, &mut dm, &[&fields], &dir_v2).expect("delta write");
        let delta_ns = (t.seconds() * 1e9) as u64;
        (
            v1_ns,
            v2_ns,
            vec![delta_ns],
            stats.bytes_global,
            v1_bytes,
            v2_bytes,
        )
    });
    let (_, _, _, delta_bytes, v1_bytes, v2_bytes) = out[0].clone();
    let v1_ns = fold_max(out.iter().map(|o| o.0.clone()).collect());
    let v2_ns = fold_max(out.iter().map(|o| o.1.clone()).collect());
    let delta_ns = fold_max(out.iter().map(|o| o.2.clone()).collect());

    assert!(
        v2_bytes < v1_bytes,
        "[{scale}] compressed v2 ({v2_bytes} B) must beat flat v1 ({v1_bytes} B)"
    );

    legs.push(Leg {
        name: format!("write_v1@{scale}"),
        median_ns: median_ns(v1_ns),
        samples: reps as u64,
        bytes: v1_bytes,
        detail: "flat".into(),
    });
    legs.push(Leg {
        name: format!("write_v2@{scale}"),
        median_ns: median_ns(v2_ns),
        samples: reps as u64,
        bytes: v2_bytes,
        detail: format!("{:.2}x of v1", v2_bytes as f64 / v1_bytes as f64),
    });
    legs.push(Leg {
        name: format!("delta@{scale}"),
        median_ns: delta_ns[0],
        samples: 1,
        bytes: delta_bytes,
        detail: "~1% touched".into(),
    });
    bytes_rows.push(ScaleBytes {
        scale: scale.to_string(),
        elements,
        v1: v1_bytes,
        v2: v2_bytes,
        delta: delta_bytes,
    });

    // Many-reader leg: fresh server each rep (cold cache), `clients`
    // concurrent PCU clients each restoring a disjoint slice.
    let mut serve_ns = Vec::with_capacity(reps);
    let mut detail = String::new();
    for _ in 0..reps {
        let server = CheckpointServer::open(&dir_v2).expect("open");
        let t = Timer::start();
        let counts = execute(clients, |c| {
            let slice = server
                .restore_slice(c.rank(), c.nranks())
                .expect("slice restore");
            slice
                .parts
                .iter()
                .map(|p| p.mesh.count(Dim::Face) as u64)
                .sum::<u64>()
        });
        serve_ns.push((t.seconds() * 1e9) as u64);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, elements, "slices must tile the mesh");
        let s = server.stats();
        detail = format!(
            "{} hits / {} misses, {} disk B",
            s.chunk_hits, s.chunk_misses, s.disk_bytes
        );
    }
    legs.push(Leg {
        name: format!("serve{clients}@{scale}"),
        median_ns: median_ns(serve_ns),
        samples: reps as u64,
        bytes: v2_bytes + delta_bytes,
        detail,
    });

    let _ = std::fs::remove_dir_all(&dir_v1);
    let _ = std::fs::remove_dir_all(&dir_v2);
}

fn main() {
    let (parts, reps, clients, large, nx) = parse_args();
    assert!(clients >= 8, "the many-reader leg wants ≥8 clients");
    let mut legs: Vec<Leg> = Vec::new();
    let mut bytes_rows: Vec<ScaleBytes> = Vec::new();

    // 2 * 707^2 ≈ 1.0e6 triangles; 2 * 2236^2 ≈ 1.0e7.
    match nx {
        Some(nx) => run_scale(
            "smoke",
            nx,
            parts,
            reps,
            clients,
            &mut legs,
            &mut bytes_rows,
        ),
        None => run_scale("1e6", 707, parts, reps, clients, &mut legs, &mut bytes_rows),
    }
    if large {
        run_scale("1e7", 2236, parts, 1, clients, &mut legs, &mut bytes_rows);
    }

    let mut table = Table::new(
        &format!("Checkpoint service, {parts} parts, {clients} clients"),
        &["leg", "median (ms)", "samples", "bytes", "detail"],
    );
    for leg in &legs {
        table.row(vec![
            leg.name.clone(),
            f(leg.median_ns as f64 * 1e-6, 3),
            leg.samples.to_string(),
            leg.bytes.to_string(),
            leg.detail.clone(),
        ]);
    }
    print_table(&table);

    let mut report = Report::new("io_checkpoint");
    report.section(
        "config",
        Json::obj([
            ("parts", Json::U64(parts as u64)),
            ("reps", Json::U64(reps as u64)),
            ("clients", Json::U64(clients as u64)),
        ]),
    );
    report.section(
        "bytes",
        Json::arr(bytes_rows.iter().map(|r| {
            Json::obj([
                ("scale", Json::str(r.scale.clone())),
                ("elements", Json::U64(r.elements)),
                ("v1_bytes", Json::U64(r.v1)),
                ("v2_bytes", Json::U64(r.v2)),
                ("delta_bytes", Json::U64(r.delta)),
                (
                    "v2_over_v1",
                    Json::str(format!("{:.3}", r.v2 as f64 / r.v1 as f64)),
                ),
            ])
        })),
    );
    report.section(
        "medians",
        Json::arr(legs.iter().map(|leg| {
            Json::obj([
                ("bench", Json::str(format!("io_checkpoint/{}", leg.name))),
                ("median_ns", Json::U64(leg.median_ns)),
                ("samples", Json::U64(leg.samples)),
            ])
        })),
    );
    report.section("table", table_to_json(&table));
    write_report(&report);
}
