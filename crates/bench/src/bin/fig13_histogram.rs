//! Fig 13: histogram of element imbalance (N_elements / avg) across parts
//! of an adapted ONERA-M6-proxy mesh when **no load balancing is applied
//! before adaptation**.
//!
//! Paper run: 1024-part mesh adapted 46M → 160M elements with a size field
//! from the Mach-number hessian at the shock; peak imbalance > 400%, ~80
//! parts above 20% imbalance, > 120 parts under 50% of the average.
//!
//! Scaled run: the wing-box mesh is partitioned, then refined against the
//! oblique-shock size field with every child staying on its parent's part
//! (tag inheritance); the per-part element counts of the adapted mesh are
//! then histogrammed.
//!
//! Usage: `fig13_histogram [--n N] [--parts N] [--hmin F]`

use pumi_adapt::element_weight;
use pumi_adapt::{refine, RefineOpts, SizeField};
use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::wing_mesh;
use pumi_meshgen::shock_plane_distance;
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_partition::partition_mesh_weighted;
use pumi_util::stats::{histogram, imbalance};
use pumi_util::tag::TagKind;

fn main() {
    let mut n = 24usize;
    let mut nparts = 96usize;
    let mut hmin = 0.016f64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n" => n = v.parse().unwrap(),
            "--parts" => nparts = v.parse().unwrap(),
            "--hmin" => hmin = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }

    let mut mesh = wing_mesh(n);
    let initial_elems = mesh.num_elems();
    eprintln!("fig13: initial wing mesh {initial_elems} tets, {nparts} parts");

    // Partition the initial mesh and stamp each element with its part.
    let labels = partition_mesh(&mesh, nparts);
    let tid = mesh.tags_mut().declare("part", TagKind::Int, 1);
    for e in mesh.snapshot(mesh.elem_dim_t()) {
        mesh.tags_mut().set_int(tid, e, labels[e.idx()] as i64);
    }

    // Adapt with the oblique-shock size field; children inherit the tag, so
    // the partition is "frozen" through adaptation (no balancing).
    let size = SizeField::shock(shock_plane_distance, hmin, 0.12, 0.015);
    let stats = refine(&mut mesh, &size, None, RefineOpts::default());
    eprintln!(
        "adapted {} -> {} elements ({} splits)",
        initial_elems, stats.elements_after, stats.splits
    );

    // Per-part adapted counts from the inherited tags.
    let mut loads = vec![0f64; nparts];
    for e in mesh.elems() {
        let p = mesh.tags().get_int(tid, e).expect("untagged element") as usize;
        loads[p] += 1.0;
    }
    let avg = loads.iter().sum::<f64>() / nparts as f64;
    let ratios: Vec<f64> = loads.iter().map(|&l| l / avg).collect();

    // Histogram like Fig 13: bins of imbalance ratio.
    let max_ratio = ratios.iter().cloned().fold(0.0, f64::max);
    let bins = 11usize;
    let h = histogram(&ratios, 0.1, (max_ratio * 1.05).max(1.2), bins);
    let mut t = Table::new(
        &format!(
            "Fig 13: element imbalance histogram, {} parts, adapted {} -> {} elements",
            nparts, initial_elems, stats.elements_after
        ),
        &["ratio (N/avg)", "parts"],
    );
    for (center, count) in &h {
        t.row(vec![f(*center, 2), count.to_string()]);
    }
    print_table(&t);

    // The paper's three headline statistics.
    let peak_pct = (imbalance(&loads) - 1.0) * 100.0;
    let over_20 = ratios.iter().filter(|&&r| r > 1.2).count();
    let under_half = ratios.iter().filter(|&&r| r < 0.5).count();
    println!();
    println!("peak element imbalance: {peak_pct:.0}%  (paper: >400%)");
    println!("parts with imbalance > 20%: {over_20} of {nparts}  (paper: ~80 of 1024)");
    println!("parts under 50% of average: {under_half} of {nparts}  (paper: >120 of 1024)");

    // The remedy (§III-B): *predictive* load balancing — partition the
    // initial mesh by estimated post-adaptation element counts, then adapt.
    let mut mesh2 = wing_mesh(n);
    let labels_pred = partition_mesh_weighted(&mesh2, nparts, |e| element_weight(&mesh2, e, &size));
    let tid2 = mesh2.tags_mut().declare("part", TagKind::Int, 1);
    for e in mesh2.snapshot(mesh2.elem_dim_t()) {
        mesh2
            .tags_mut()
            .set_int(tid2, e, labels_pred[e.idx()] as i64);
    }
    refine(&mut mesh2, &size, None, RefineOpts::default());
    let mut loads2 = vec![0f64; nparts];
    for e in mesh2.elems() {
        loads2[mesh2.tags().get_int(tid2, e).unwrap() as usize] += 1.0;
    }
    let pred_pct = (imbalance(&loads2) - 1.0) * 100.0;
    println!();
    println!(
        "with predictive load balancing before adaptation: peak imbalance {pred_pct:.0}%          (vs {peak_pct:.0}% without — the remedy §III-B motivates)"
    );

    let mut report = Report::new("fig13_histogram");
    report.section(
        "config",
        Json::obj([
            ("n", Json::U64(n as u64)),
            ("parts", Json::U64(nparts as u64)),
            ("hmin", Json::F64(hmin)),
            ("initial_elements", Json::U64(initial_elems as u64)),
            ("adapted_elements", Json::U64(stats.elements_after as u64)),
        ]),
    );
    report.section(
        "histogram",
        Json::arr(h.iter().map(|(center, count)| {
            Json::obj([
                ("ratio", Json::F64(*center)),
                ("parts", Json::U64(*count as u64)),
            ])
        })),
    );
    report.section(
        "headline",
        Json::obj([
            ("peak_imbalance_pct", Json::F64(peak_pct)),
            ("parts_over_20pct", Json::U64(over_20 as u64)),
            ("parts_under_half", Json::U64(under_half as u64)),
            ("predictive_peak_pct", Json::F64(pred_pct)),
        ]),
    );
    report.section("tables", Json::arr([table_to_json(&t)]));
    write_report(&report);
}
