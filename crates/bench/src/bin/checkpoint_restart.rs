//! Checkpoint/restart timing: `.pmb` write and N→M restore costs.
//!
//! Writes a jittered tet mesh from N parts, then restores it on M ranks
//! for M ∈ {N/2, N, 2N} — exercising the merge, verbatim, and split paths
//! of `pumi-io`. Each leg is repeated and the median wall time reported,
//! alongside checkpoint size and the partition-invariant structural hash
//! (which must agree across every leg).
//!
//! Usage: `checkpoint_restart [--n N] [--nx N] [--reps N]`
//! Emits `results/io_restart.json`.

use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_core::{distribute, PartMap};
use pumi_field::{DistField, Field, FieldShape};
use pumi_io::{read_checkpoint, struct_hash, write_checkpoint};
use pumi_meshgen::{jitter, tet_box};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_pcu::execute;
use pumi_util::stats::Timer;
use pumi_util::Dim;

struct Leg {
    name: String,
    median_ns: u64,
    samples: u64,
    detail: String,
}

fn median_ns(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn parse_args() -> (usize, usize, usize) {
    let (mut n, mut nx, mut reps) = (4usize, 12usize, 3usize);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n" => n = v.parse().expect("--n"),
            "--nx" => nx = v.parse().expect("--nx"),
            "--reps" => reps = v.parse().expect("--reps"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    (n, nx, reps)
}

fn make_fields(dm: &pumi_core::DistMesh) -> DistField {
    dm.parts
        .iter()
        .map(|part| {
            let mut fld = Field::new("temp", FieldShape::Linear, 3);
            for v in part.mesh.iter(Dim::Vertex) {
                let x = part.mesh.coords(v);
                fld.set(v, &[x[0] + x[1], x[1] * x[2], x[2] - x[0]]);
            }
            fld
        })
        .collect()
}

fn main() {
    let (n, nx, reps) = parse_args();
    let mut serial = tet_box(nx, nx, nx, 1.0, 1.0, 1.0);
    jitter(&mut serial, 0.15, 42);
    let elements = serial.count(Dim::Region);
    eprintln!("checkpoint_restart: {elements} tets, {n} parts, {reps} reps");
    let labels = partition_mesh(&serial, n);
    let dir = std::env::temp_dir().join(format!("pumi_io_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut legs: Vec<Leg> = Vec::new();

    // ---- write leg ----
    let mut write_ns = Vec::with_capacity(reps);
    let mut bytes_global = 0u64;
    let mut want_hash = 0u64;
    for _ in 0..reps {
        let out = execute(n, |c| {
            let dm = distribute(c, PartMap::contiguous(n, n), &serial, &labels);
            let fields = make_fields(&dm);
            let t = Timer::start();
            let stats = write_checkpoint(c, &dm, &[&fields], &dir).expect("write_checkpoint");
            let ns = (t.seconds() * 1e9) as u64;
            (ns, stats.bytes_global, struct_hash(c, &dm))
        });
        let (ns, bytes, hash) = out.into_iter().max().expect("ranks");
        write_ns.push(ns);
        bytes_global = bytes;
        want_hash = hash;
    }
    legs.push(Leg {
        name: format!("write_n{n}"),
        median_ns: median_ns(write_ns),
        samples: reps as u64,
        detail: format!("{bytes_global} bytes"),
    });

    // ---- read legs: merge (N/2), verbatim (N), split (2N) ----
    for m in [n.div_ceil(2), n, n * 2] {
        let mut read_ns = Vec::with_capacity(reps);
        let mut moved = 0u64;
        for _ in 0..reps {
            let out = execute(m, |c| {
                let t = Timer::start();
                let restored = read_checkpoint(c, &dir).expect("read_checkpoint");
                let ns = (t.seconds() * 1e9) as u64;
                let hash = struct_hash(c, &restored.dm);
                assert_eq!(hash, want_hash, "structural hash drifted on {m} ranks");
                (ns, restored.stats.elements_moved)
            });
            let (ns, elems_moved) = out.into_iter().max().expect("ranks");
            read_ns.push(ns);
            moved = elems_moved;
        }
        legs.push(Leg {
            name: format!("read_{n}to{m}"),
            median_ns: median_ns(read_ns),
            samples: reps as u64,
            detail: format!("{moved} elements moved"),
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    // ---- table + report ----
    let mut table = Table::new(
        &format!("Checkpoint/restart, {elements} tets, {n} parts"),
        &["leg", "median (ms)", "samples", "detail"],
    );
    for leg in &legs {
        table.row(vec![
            leg.name.clone(),
            f(leg.median_ns as f64 * 1e-6, 3),
            leg.samples.to_string(),
            leg.detail.clone(),
        ]);
    }
    print_table(&table);

    let mut report = Report::new("io_restart");
    report.section(
        "config",
        Json::obj([
            ("elements", Json::U64(elements as u64)),
            ("parts", Json::U64(n as u64)),
            ("reps", Json::U64(reps as u64)),
            ("bytes_global", Json::U64(bytes_global)),
            ("struct_hash", Json::U64(want_hash)),
        ]),
    );
    report.section(
        "medians",
        Json::arr(legs.iter().map(|leg| {
            Json::obj([
                ("bench", Json::str(format!("io_restart/{}", leg.name))),
                ("median_ns", Json::U64(leg.median_ns)),
                ("samples", Json::U64(leg.samples)),
            ])
        })),
    );
    report.section("table", table_to_json(&table));
    write_report(&report);
}
