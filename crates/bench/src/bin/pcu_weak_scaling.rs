//! PCU runtime weak scaling: cost of one phased-exchange round as the
//! simulated world widens, with the bytes each rank injects held constant.
//!
//! The paper's runtime had to stay cheap out to 512K cores; this harness
//! checks the simulated analogue — that a 1024-rank world is usable on a
//! laptop. Two patterns per width:
//!
//! - **ring**: each rank sends the full per-rank payload one hop forward;
//!   message count grows linearly with the world.
//! - **all-to-all**: each rank splits the same payload across every peer;
//!   message count grows quadratically, so this leans hardest on per-link
//!   frame batching and the sharded mailboxes.
//!
//! Usage: `pcu_weak_scaling [--bytes-per-rank B] [--reps R] [--max-ranks N]
//! [--rounds K]`. Emits `results/pcu_weak_scaling.json`;
//! `scripts/bench_snapshot.sh` folds the `pcu_weak_scaling/{ring,a2a}/<n>`
//! medians into `BENCH_pcu.json`.

use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_pcu::phased::Exchange;
use pumi_pcu::{execute_opts, MachineModel, WorldOpts};
use pumi_util::stats::Timer;

struct Run {
    bench: String,
    ranks: usize,
    median_ns: u64,
    samples: u64,
}

fn median_ns(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn parse_args() -> (usize, usize, usize, usize) {
    let (mut bytes, mut reps, mut max_ranks, mut rounds) = (4096usize, 5usize, 1024usize, 4usize);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--bytes-per-rank" => bytes = v.parse().expect("--bytes-per-rank"),
            "--reps" => reps = v.parse().expect("--reps"),
            "--max-ranks" => max_ranks = v.parse().expect("--max-ranks"),
            "--rounds" => rounds = v.parse().expect("--rounds"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    (bytes, reps, max_ranks, rounds)
}

/// Wide worlds need thousands of rank threads: keep their stacks small so
/// 1024 ranks cost ~256 MiB of address space, not 8 GiB.
fn opts() -> WorldOpts {
    WorldOpts::default().stack_size(256 * 1024)
}

/// Median over reps of the slowest rank per rep, in ns.
fn fold(out: Vec<Vec<u64>>, reps: usize) -> u64 {
    let rep_max: Vec<u64> = (0..reps)
        .map(|i| out.iter().map(|v| v[i]).max().unwrap())
        .collect();
    median_ns(rep_max)
}

fn ring(nranks: usize, bytes: usize, reps: usize, rounds: usize) -> u64 {
    let out = execute_opts(MachineModel::flat(nranks), opts(), move |c| {
        let data = vec![0u8; bytes];
        let next = (c.rank() + 1) % c.nranks();
        let mut rep_ns = Vec::with_capacity(reps);
        c.barrier();
        for _ in 0..reps {
            let t = Timer::start();
            for _ in 0..rounds {
                let mut ex = Exchange::new(c);
                ex.to(next).put_bytes(&data);
                let _ = ex.finish();
            }
            rep_ns.push((t.seconds() * 1e9) as u64);
        }
        rep_ns
    });
    fold(out, reps)
}

fn all_to_all(nranks: usize, bytes: usize, reps: usize, rounds: usize) -> u64 {
    let out = execute_opts(MachineModel::flat(nranks), opts(), move |c| {
        // Fixed injection per rank: the per-peer slice shrinks as the world
        // widens, so total bytes scale linearly while messages scale
        // quadratically.
        let per_peer = (bytes / (nranks - 1)).max(1);
        let data = vec![0u8; per_peer];
        let mut rep_ns = Vec::with_capacity(reps);
        c.barrier();
        for _ in 0..reps {
            let t = Timer::start();
            for _ in 0..rounds {
                let mut ex = Exchange::new(c);
                for peer in 0..c.nranks() {
                    if peer != c.rank() {
                        ex.to(peer).put_bytes(&data);
                    }
                }
                let rx = ex.finish();
                assert_eq!(rx.iter().count(), c.nranks() - 1);
            }
            rep_ns.push((t.seconds() * 1e9) as u64);
        }
        rep_ns
    });
    fold(out, reps)
}

fn main() {
    let (bytes, reps, max_ranks, rounds) = parse_args();
    eprintln!(
        "pcu_weak_scaling: {bytes} B/rank, {rounds} rounds/rep, {reps} reps, up to {max_ranks} ranks"
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut n = 32usize;
    while n <= max_ranks {
        let ring_ns = ring(n, bytes, reps, rounds);
        runs.push(Run {
            bench: format!("pcu_weak_scaling/ring/{n}"),
            ranks: n,
            median_ns: ring_ns,
            samples: reps as u64,
        });
        let a2a_ns = all_to_all(n, bytes, reps, rounds);
        runs.push(Run {
            bench: format!("pcu_weak_scaling/a2a/{n}"),
            ranks: n,
            median_ns: a2a_ns,
            samples: reps as u64,
        });
        eprintln!(
            "  {n:>5} ranks: ring {:>10.3} ms   a2a {:>10.3} ms",
            ring_ns as f64 * 1e-6,
            a2a_ns as f64 * 1e-6
        );
        n *= 2;
    }

    let mut table = Table::new(
        &format!("PCU weak scaling: {bytes} B injected per rank, {rounds} rounds"),
        &["bench", "ranks", "median (ms)", "per-rank (us)", "samples"],
    );
    for r in &runs {
        table.row(vec![
            r.bench.clone(),
            r.ranks.to_string(),
            f(r.median_ns as f64 * 1e-6, 3),
            f(r.median_ns as f64 * 1e-3 / r.ranks as f64, 2),
            r.samples.to_string(),
        ]);
    }
    print_table(&table);

    let mut report = Report::new("pcu_weak_scaling");
    report.section(
        "config",
        Json::obj([
            ("bytes_per_rank", Json::U64(bytes as u64)),
            ("reps", Json::U64(reps as u64)),
            ("rounds", Json::U64(rounds as u64)),
            ("max_ranks", Json::U64(max_ranks as u64)),
        ]),
    );
    report.section(
        "medians",
        Json::arr(runs.iter().map(|r| {
            Json::obj([
                ("bench", Json::str(r.bench.clone())),
                ("median_ns", Json::U64(r.median_ns)),
                ("samples", Json::U64(r.samples)),
            ])
        })),
    );
    report.section("table", table_to_json(&table));
    write_report(&report);
    println!();
    println!(
        "check: ring cost per rank stays near-flat as the world widens; a2a \
         grows with its quadratic message count but must stay laptop-usable \
         at 1024 ranks"
    );
}
