//! §IV: "the existing MPI-based PUMI demonstrated its effectiveness taking
//! meshes of billions of elements from a few thousand parts to 1.5 million
//! parts ... running on 512K cores".
//!
//! A laptop cannot hold billions of elements, but the *scaling shape* is
//! checkable: with the work per part held constant, the per-part cost of
//! the core operations (migration of a fixed fraction of elements, one
//! ParMA pass, one boundary synchronization) should stay near-flat as the
//! part count grows.
//!
//! Usage: `weak_scaling [--elems-per-part N] [--max-parts N]`

use parma::{improve, ImproveOpts, Priority};
use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::{aaa_mesh, distribute_labels};
use pumi_core::MigrationPlan;
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_util::stats::Timer;
use pumi_util::{FxHashMap, PartId};

fn main() {
    let mut elems_per_part = 1500usize;
    let mut max_parts = 64usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--elems-per-part" => elems_per_part = v.parse().unwrap(),
            "--max-parts" => max_parts = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }

    let mut t = Table::new(
        &format!("Weak scaling: ~{elems_per_part} elements/part"),
        &[
            "parts",
            "elements",
            "migrate 5% (ms)",
            "per-elem (us)",
            "parma pass (ms)",
            "bnd sync (ms)",
        ],
    );
    let mut points: Vec<Json> = Vec::new();
    let mut medians: Vec<Json> = Vec::new();
    let mut parts = 8usize;
    while parts <= max_parts {
        // Size the vessel so elements ≈ parts * elems_per_part.
        let total = parts * elems_per_part;
        // elements = 6 * nr^2 * nz with nz = 4*nr: 24 nr^3.
        let nr = ((total as f64 / 24.0).cbrt().round() as usize).max(3);
        let serial = aaa_mesh(nr, 4 * nr);
        let labels = partition_mesh(&serial, parts);
        let nranks = parts.min(8);
        let out = pumi_pcu::execute(nranks, |c| {
            let mut dm = distribute_labels(c, &serial, &labels, parts);

            // 1. migrate ~5% of each part's elements to a neighbour part.
            c.barrier();
            let timer = Timer::start();
            let mut plans: FxHashMap<PartId, MigrationPlan> = FxHashMap::default();
            for part in &dm.parts {
                let to = (part.id + 1) % parts as PartId;
                let quota = part.mesh.num_elems() / 20;
                let mut plan = MigrationPlan::new();
                // Prefer boundary elements so the move is local.
                for (s, remotes) in part.shared_entities() {
                    if plan.len() >= quota {
                        break;
                    }
                    if s.dim().as_usize() + 1 != part.mesh.elem_dim() {
                        continue;
                    }
                    if !remotes.iter().any(|&(q, _)| q == to) {
                        continue;
                    }
                    for e in part.mesh.up_ents(s) {
                        plan.send(e, to);
                    }
                }
                plans.insert(part.id, plan);
            }
            pumi_core::migrate(c, &mut dm, &plans);
            c.barrier();
            let migrate_ms = timer.seconds() * 1e3;

            // 2. one ParMA element-balance pass.
            let timer = Timer::start();
            let pri: Priority = "Rgn".parse().unwrap();
            improve(c, &mut dm, &pri, ImproveOpts::new().max_iters(1));
            c.barrier();
            let parma_ms = timer.seconds() * 1e3;

            // 3. one boundary synchronization round.
            let timer = Timer::start();
            let mut ex = pumi_core::PartExchange::new(c, &dm.map);
            for part in &dm.parts {
                for (e, remotes) in part.shared_entities() {
                    for &(q, ridx) in remotes {
                        let w = ex.to(part.id, q);
                        w.put_u32(ridx);
                        w.put_u64(part.gid_of(e));
                    }
                }
            }
            let _ = ex.finish();
            c.barrier();
            let sync_ms = timer.seconds() * 1e3;

            let obs = pumi_pcu::obs::world_report(c);
            (c.rank() == 0).then_some((migrate_ms, parma_ms, sync_ms, obs))
        });
        let (mig, par, sync, obs) = out.into_iter().flatten().next().unwrap();
        t.row(vec![
            parts.to_string(),
            serial.num_elems().to_string(),
            f(mig, 1),
            f(mig * 1e3 / serial.num_elems() as f64, 2),
            f(par, 1),
            f(sync, 1),
        ]);
        points.push(Json::obj([
            ("parts", Json::U64(parts as u64)),
            ("elements", Json::U64(serial.num_elems() as u64)),
            ("migrate_ms", Json::F64(mig)),
            (
                "per_elem_us",
                Json::F64(mig * 1e3 / serial.num_elems() as f64),
            ),
            ("parma_ms", Json::F64(par)),
            ("sync_ms", Json::F64(sync)),
            ("obs", obs.unwrap_or(Json::Null)),
        ]));
        // Same row shape as the criterion benches so bench_snapshot.sh can
        // fold these into BENCH_pcu.json (single timed run per point).
        for (stage, ms) in [("migrate", mig), ("parma", par), ("sync", sync)] {
            medians.push(Json::obj([
                ("bench", Json::str(format!("weak_scaling/{stage}/{parts}"))),
                ("median_ns", Json::U64((ms * 1e6) as u64)),
                ("samples", Json::U64(1)),
            ]));
        }
        parts *= 2;
    }
    print_table(&t);
    let mut report = Report::new("weak_scaling");
    report.section(
        "config",
        Json::obj([
            ("elems_per_part", Json::U64(elems_per_part as u64)),
            ("max_parts", Json::U64(max_parts as u64)),
        ]),
    );
    report.section("points", Json::arr(points));
    report.section("medians", Json::arr(medians));
    report.section("tables", Json::arr([table_to_json(&t)]));
    write_report(&report);
    println!();
    println!(
        "check: cost per element stays near-flat as parts grow (the rank count is \
         pinned to the physical cores, so total time scales with total work; the \
         paper ran the same operations out to 1.5M parts on 512K cores)"
    );
}
