//! §II-D: hybrid multi-threaded/MPI communication, "tested using up to 32
//! communicating threads in a single node of a Blue Gene/Q", and the
//! architecture-aware boundary split of Figs 5/6.
//!
//! Two sweeps:
//! 1. PCU phased exchange with 1..=32 communicating ranks on one node —
//!    functional scaling of the inter-thread message path (the paper's
//!    claim is functional, not a speedup number).
//! 2. The same mesh distributed on a flat machine (every part its own node)
//!    vs a two-level machine (8 cores per node): the off-node share of
//!    boundary entities and of exchanged bytes drops — the motivation for
//!    architecture-aware partitioning.
//!
//! Usage: `hybrid_comm [--n N] [--parts N]`

use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::aaa_mesh;
use pumi_core::twolevel::{boundary_traffic_split, two_level_map};
use pumi_core::{distribute, PartExchange};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_pcu::phased::Exchange;
use pumi_pcu::{execute_on, MachineModel};
use pumi_util::stats::Timer;

fn main() {
    let mut n = 10usize; // vessel nr; nz = 4n
    let mut nparts = 16usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n" => n = v.parse().unwrap(),
            "--parts" => nparts = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }

    // ---- Sweep 1: up to 32 communicating threads on one node ----
    let mut t = Table::new(
        "Hybrid comm: PCU phased neighbour exchange, 1 node, T threads",
        &["threads", "rounds", "msgs", "bytes", "time (ms)"],
    );
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let machine = MachineModel::new(1, threads);
        let rounds = 64usize;
        let payload = 4096usize;
        let out = execute_on(machine, |c| {
            c.reset_traffic();
            c.barrier();
            let timer = Timer::start();
            for _ in 0..rounds {
                let mut ex = Exchange::new(c);
                // Ring neighbours exchange payloads.
                let next = (c.rank() + 1) % c.nranks();
                let prev = (c.rank() + c.nranks() - 1) % c.nranks();
                if next != c.rank() {
                    ex.to(next).put_bytes(&vec![1u8; payload]);
                    ex.to(prev).put_bytes(&vec![2u8; payload]);
                }
                let got = ex.finish();
                if c.nranks() > 1 {
                    assert!(!got.is_empty());
                }
            }
            c.barrier();
            let secs = timer.seconds();
            (c.rank() == 0).then(|| (c.traffic(), secs))
        });
        let (traffic, secs) = out.into_iter().flatten().next().unwrap();
        t.row(vec![
            threads.to_string(),
            rounds.to_string(),
            traffic.total_msgs().to_string(),
            traffic.total_bytes().to_string(),
            f(secs * 1e3, 1),
        ]);
    }
    print_table(&t);
    println!();

    // ---- Sweep 2: flat vs two-level distribution of a real mesh ----
    let serial = aaa_mesh(n, 4 * n);
    let labels = partition_mesh(&serial, nparts);
    let mut t2 = Table::new(
        &format!(
            "Architecture-aware boundaries: {} tets, {} parts (Figs 5/6)",
            serial.num_elems(),
            nparts
        ),
        &[
            "machine",
            "on-node bnd",
            "off-node bnd",
            "off-node share",
            "off-node bytes (1 sync)",
            "mesh mem (KiB)",
        ],
    );
    let mut machine_obs: Vec<Json> = Vec::new();
    for (name, machine) in [
        ("flat (1 core/node)", MachineModel::new(nparts, 1)),
        ("2-level (8 cores/node)", MachineModel::new(nparts / 8, 8)),
    ] {
        let out = execute_on(machine, |c| {
            let dm = distribute(c, two_level_map(machine), &serial, &labels);
            let split = boundary_traffic_split(&dm, machine);
            // §II-D: an on-node boundary entity "exists implicitly in shared
            // memory"; the bytes our explicit copies spend on them is the
            // saving a shared-memory part representation would realize.
            let mem_total = dm
                .parts
                .iter()
                .map(|p| p.mesh.memory_usage().total() as u64)
                .sum::<u64>();
            let mem_total = c.allreduce_sum_u64(mem_total);
            // One boundary synchronization round: every part sends one u64
            // per shared entity copy to its holder.
            c.barrier();
            c.reset_traffic();
            let mut ex = PartExchange::new(c, &dm.map);
            for part in &dm.parts {
                for (e, remotes) in part.shared_entities() {
                    for &(q, ridx) in remotes {
                        let w = ex.to(part.id, q);
                        w.put_u32(ridx);
                        w.put_u64(part.gid_of(e));
                    }
                }
            }
            let _ = ex.finish();
            c.barrier();
            let obs = pumi_pcu::obs::world_report(c);
            (c.rank() == 0).then(|| (split, c.traffic(), mem_total, obs))
        });
        let (split, traffic, mem_total, obs) = out.into_iter().flatten().next().unwrap();
        machine_obs.push(Json::obj([
            ("machine", Json::str(name)),
            ("obs", obs.unwrap_or(Json::Null)),
        ]));
        let on = split.on_node_total();
        let off = split.off_node_total();
        t2.row(vec![
            name.to_string(),
            on.to_string(),
            off.to_string(),
            f(off as f64 / (on + off).max(1) as f64 * 100.0, 1) + "%",
            traffic.off_node_bytes.to_string(),
            (mem_total / 1024).to_string(),
        ]);
    }
    print_table(&t2);
    println!();
    println!(
        "check: the two-level machine turns part boundaries between co-resident parts \
         into on-node (implicit, shared-memory) boundaries, cutting off-node traffic"
    );
    println!();

    // ---- Sweep 3: hybrid node-then-core partitioning (§II-D) ----
    // "first partitioning a mesh into nodes and subsequently to the cores
    // on the nodes" — compared against a machine-oblivious assignment of
    // the same number of parts (part ids permuted, as a partitioner with no
    // machine knowledge would produce).
    use pumi_partition::{off_node_share, two_level_partition};
    use pumi_util::{Dim, PartId};
    let nodes = nparts / 8;
    let cores = 8;
    let hybrid = two_level_partition(&serial, nodes, cores);
    let oblivious: Vec<PartId> = labels
        .iter()
        .map(|&p| (p * 7 + 3) % nparts as PartId)
        .collect();
    let mut t3 = Table::new(
        &format!("Hybrid partitioning: {nodes} nodes x {cores} cores"),
        &["partition", "off-node vtx share"],
    );
    t3.row(vec![
        "machine-oblivious flat".to_string(),
        f(
            off_node_share(&serial, &oblivious, cores, Dim::Vertex) * 100.0,
            1,
        ) + "%",
    ]);
    t3.row(vec![
        "two-level (node, then core)".to_string(),
        f(
            off_node_share(&serial, &hybrid, cores, Dim::Vertex) * 100.0,
            1,
        ) + "%",
    ]);
    print_table(&t3);
    println!();
    println!(
        "check: partitioning node-first keeps most cut surface between co-resident \
         parts — the paper's motivation for hybrid partitioning"
    );

    let mut report = Report::new("hybrid_comm");
    report.section(
        "config",
        Json::obj([
            ("n", Json::U64(n as u64)),
            ("parts", Json::U64(nparts as u64)),
            ("elements", Json::U64(serial.num_elems() as u64)),
        ]),
    );
    report.section("machines", Json::arr(machine_obs));
    report.section(
        "tables",
        Json::arr([table_to_json(&t), table_to_json(&t2), table_to_json(&t3)]),
    );
    write_report(&report);
}
