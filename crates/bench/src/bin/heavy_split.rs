//! §III-B: heavy part splitting versus diffusion on clustered spikes.
//!
//! "The greedy iterative diffusive procedure ... is observed to not meet a
//! target imbalance tolerance when the input partition is large and has
//! multiple parts with the imbalance spikes neighboring each other."
//!
//! Setup: an adaptation-induced imbalance — the wing mesh is partitioned,
//! then refined at the shock with parts frozen, producing a cluster of
//! neighbouring heavy parts along the shock front (the Fig 13 state). Two
//! repair strategies are compared from identical inputs:
//!   (a) diffusion only (`improve` on elements),
//!   (b) heavy part splitting followed by diffusion.
//!
//! Usage: `heavy_split [--n N] [--parts N] [--ranks N] [--hmin F]`

use parma::{heavy_part_split, improve, EntityLoads, ImproveOpts, Priority, SplitOpts};
use pumi_adapt::{refine, RefineOpts, SizeField};
use pumi_bench::report::write_report;
use pumi_bench::workloads::wing_mesh;
use pumi_core::{distribute, PartMap};
use pumi_meshgen::shock_plane_distance;
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_util::tag::TagKind;
use pumi_util::{Dim, PartId};

fn main() {
    let mut n = 16usize;
    let mut nparts = 32usize;
    let mut nranks = 4usize;
    let mut hmin = 0.012f64;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n" => n = v.parse().unwrap(),
            "--parts" => nparts = v.parse().unwrap(),
            "--ranks" => nranks = v.parse().unwrap(),
            "--hmin" => hmin = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }

    // Build the adapted, imbalanced mesh once (serial), with parts frozen
    // through refinement.
    let mut mesh = wing_mesh(n);
    let labels0 = partition_mesh(&mesh, nparts);
    let tid = mesh.tags_mut().declare("part", TagKind::Int, 1);
    for e in mesh.snapshot(mesh.elem_dim_t()) {
        mesh.tags_mut().set_int(tid, e, labels0[e.idx()] as i64);
    }
    let size = SizeField::shock(shock_plane_distance, hmin, 0.12, 0.02);
    refine(&mut mesh, &size, None, RefineOpts::default());
    let d = mesh.elem_dim_t();
    let mut labels = vec![0 as PartId; mesh.index_space(d)];
    for e in mesh.iter(d) {
        labels[e.idx()] = mesh.tags().get_int(tid, e).unwrap() as PartId;
    }
    eprintln!(
        "adapted mesh: {} tets on {nparts} parts (shock-front spike cluster)",
        mesh.num_elems()
    );

    type RunResult = (
        f64,
        f64,
        f64,
        Option<Json>,
        Vec<pumi_obs::parma::ParmaTrace>,
    );
    let run = |strategy: &'static str| -> RunResult {
        let out = pumi_pcu::execute(nranks, |c| {
            let map = PartMap::contiguous(nparts, c.nranks());
            let mut dm = distribute(c, map, &mesh, &labels);
            let before = EntityLoads::gather(c, &dm).imbalance_pct(d);
            let pri: Priority = match d {
                Dim::Face => "Face".parse().unwrap(),
                _ => "Rgn".parse().unwrap(),
            };
            let opts = ImproveOpts::new().max_iters(12);
            let t = pumi_util::stats::Timer::start();
            match strategy {
                "diffusion" => {
                    improve(c, &mut dm, &pri, opts);
                }
                "split+diffusion" => {
                    heavy_part_split(c, &mut dm, SplitOpts::default());
                    improve(c, &mut dm, &pri, opts);
                }
                _ => unreachable!(),
            }
            let secs = t.seconds();
            let after = EntityLoads::gather(c, &dm).imbalance_pct(d);
            pumi_core::verify::assert_dist_valid(c, &dm);
            let obs = pumi_pcu::obs::world_report(c);
            let traces = pumi_obs::parma::take();
            (c.rank() == 0).then_some((before, after, secs, obs, traces))
        });
        out.into_iter().flatten().next().unwrap()
    };

    let (b1, a1, s1, obs1, tr1) = run("diffusion");
    let (b2, a2, s2, obs2, tr2) = run("split+diffusion");
    println!("strategy            before      after     time");
    println!("diffusion only     {b1:7.1}%  {a1:8.1}%  {s1:6.2}s");
    println!("split + diffusion  {b2:7.1}%  {a2:8.1}%  {s2:6.2}s");
    println!();
    println!(
        "check: splitting reaches {a2:.1}% where diffusion alone stalls at {a1:.1}% \
         (paper: diffusion misses the tolerance on clustered spikes; splitting fixes it)"
    );

    let strategy_json = |name: &str,
                         b: f64,
                         a: f64,
                         s: f64,
                         obs: Option<Json>,
                         tr: &[pumi_obs::parma::ParmaTrace]| {
        Json::obj([
            ("strategy", Json::str(name)),
            ("before_imb_pct", Json::F64(b)),
            ("after_imb_pct", Json::F64(a)),
            ("seconds", Json::F64(s)),
            ("obs", obs.unwrap_or(Json::Null)),
            ("parma", Json::arr(tr.iter().map(|t| t.to_json()))),
        ])
    };
    let mut report = Report::new("heavy_split");
    report.section(
        "config",
        Json::obj([
            ("n", Json::U64(n as u64)),
            ("parts", Json::U64(nparts as u64)),
            ("ranks", Json::U64(nranks as u64)),
            ("hmin", Json::F64(hmin)),
            ("elements", Json::U64(mesh.num_elems() as u64)),
        ]),
    );
    report.section(
        "strategies",
        Json::arr([
            strategy_json("diffusion", b1, a1, s1, obs1, &tr1),
            strategy_json("split+diffusion", b2, a2, s2, obs2, &tr2),
        ]),
    );
    write_report(&report);
}
