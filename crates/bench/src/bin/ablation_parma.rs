//! Ablation study of ParMA's design choices (DESIGN.md's ablation item).
//!
//! Re-runs the Table II T1 configuration (`Vtx > Rgn` on the AAA-proxy
//! partition) with each mechanism disabled in turn:
//!
//! * **admission handshake** — destinations grant migration requests within
//!   their true headroom; without it, several heavy parts can overfill the
//!   same destination in one iteration,
//! * **peak caps** — "no harm" lets destinations rise to a protected type's
//!   stage-entry peak; without it, the lower-priority repair stage
//!   deadlocks against the tolerance cap,
//! * **strict selection** — Fig 9 / small-cavity passes run before relaxed
//!   ones; without them selection grabs arbitrary boundary elements.
//!
//! Usage: `ablation_parma [--nr N] [--nz N] [--parts N] [--ranks N]`

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::{aaa_scaled, distribute_labels, AaaScale};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_util::Dim;

fn main() {
    let mut scale = AaaScale::default_scale();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--nr" => scale.nr = v.parse().unwrap(),
            "--nz" => scale.nz = v.parse().unwrap(),
            "--parts" => scale.nparts = v.parse().unwrap(),
            "--ranks" => scale.nranks = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    eprintln!(
        "ablation: {} tets, {} parts, ParMA T1 (Vtx > Rgn)",
        scale.elements(),
        scale.nparts
    );
    let serial = aaa_scaled(scale);
    let labels = partition_mesh(&serial, scale.nparts);
    let pri: Priority = "Vtx > Rgn".parse().unwrap();
    let tol = 0.05; // the paper's tolerance

    let configs: Vec<(&str, ImproveOpts)> = vec![
        ("full ParMA", ImproveOpts::new().tol(tol)),
        (
            "- admission handshake",
            ImproveOpts::new().tol(tol).handshake(false),
        ),
        ("- peak caps", ImproveOpts::new().tol(tol).peak_caps(false)),
        (
            "- strict selection",
            ImproveOpts::new().tol(tol).strict_selection(false),
        ),
    ];

    let mut t = Table::new(
        "ParMA ablation (T1: Vtx > Rgn; lower is better everywhere)",
        &[
            "config",
            "vtx imb%",
            "rgn imb%",
            "moved",
            "bnd copies",
            "time (s)",
        ],
    );
    let mut runs = Vec::new();
    for (name, opts) in configs {
        let out = pumi_pcu::execute(scale.nranks, |c| {
            let mut dm = distribute_labels(c, &serial, &labels, scale.nparts);
            let report = improve(c, &mut dm, &pri, opts);
            let loads = EntityLoads::gather(c, &dm);
            let bnd = dm.global_sum(c, |p| p.shared_entities().len() as u64);
            let obs = pumi_pcu::obs::world_report(c);
            let traces = pumi_obs::parma::take();
            (c.rank() == 0).then(|| {
                (
                    loads.imbalance_pct(Dim::Vertex),
                    loads.imbalance_pct(Dim::Region),
                    report.elements_moved,
                    bnd,
                    report.seconds,
                    obs,
                    traces,
                )
            })
        });
        let (v, r, moved, bnd, secs, obs, traces) = out.into_iter().flatten().next().unwrap();
        t.row(vec![
            name.to_string(),
            f(v, 2),
            f(r, 2),
            moved.to_string(),
            bnd.to_string(),
            f(secs, 2),
        ]);
        runs.push(Json::obj([
            ("config", Json::str(name)),
            ("vtx_imb_pct", Json::F64(v)),
            ("rgn_imb_pct", Json::F64(r)),
            ("elements_moved", Json::U64(moved)),
            ("boundary_copies", Json::U64(bnd)),
            ("seconds", Json::F64(secs)),
            ("obs", obs.unwrap_or(Json::Null)),
            ("parma", Json::arr(traces.iter().map(|tr| tr.to_json()))),
        ]));
    }
    print_table(&t);
    let mut report = Report::new("ablation_parma");
    report.section(
        "config",
        Json::obj([
            ("elements", Json::U64(scale.elements() as u64)),
            ("parts", Json::U64(scale.nparts as u64)),
            ("ranks", Json::U64(scale.nranks as u64)),
            ("tol", Json::F64(tol)),
        ]),
    );
    report.section("runs", Json::arr(runs));
    report.section("tables", Json::arr([table_to_json(&t)]));
    write_report(&report);
    println!();
    println!(
        "reading: the handshake is what keeps the lower-priority (rgn) balance intact — \
         without it heavy parts overfill shared destinations; strict selection trims the \
         migration volume and boundary growth; peak caps only matter when a protected \
         type sits above its tolerance cap at a stage entry (repair-stage regimes), so \
         they can tie on well-conditioned inputs like this one"
    );
}
