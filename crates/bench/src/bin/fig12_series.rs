//! Fig 12: normalized per-part vertex (a) and edge (b) counts before and
//! after ParMA test T2 (`Vtx = Edge > Rgn`).
//!
//! Writes `fig12_vtx.csv` and `fig12_edge.csv` (part, before/avg, after/avg)
//! and prints the min/max/imbalance summary of each series — the envelope
//! the paper's scatter plots show tightening from [0.5, 1.3] to ~[0.7, 1.05].
//!
//! Usage: `fig12_series [--nr N] [--nz N] [--parts N] [--ranks N]`

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_bench::report::write_report;
use pumi_bench::workloads::{aaa_scaled, distribute_labels, AaaScale};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_util::stats::LoadStats;
use pumi_util::Dim;
use std::io::Write;

fn main() {
    let mut scale = AaaScale::default_scale();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--nr" => scale.nr = v.parse().unwrap(),
            "--nz" => scale.nz = v.parse().unwrap(),
            "--parts" => scale.nparts = v.parse().unwrap(),
            "--ranks" => scale.nranks = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    eprintln!(
        "fig12: {} tets, {} parts, ParMA T2 (Vtx = Edge > Rgn)",
        scale.elements(),
        scale.nparts
    );
    let serial = aaa_scaled(scale);
    let labels = partition_mesh(&serial, scale.nparts);
    let pri: Priority = "Vtx = Edge > Rgn".parse().unwrap();

    let out = pumi_pcu::execute(scale.nranks, |c| {
        let mut dm = distribute_labels(c, &serial, &labels, scale.nparts);
        let before = EntityLoads::gather(c, &dm);
        improve(c, &mut dm, &pri, ImproveOpts::default());
        let after = EntityLoads::gather(c, &dm);
        let obs = pumi_pcu::obs::world_report(c);
        let traces = pumi_obs::parma::take();
        (c.rank() == 0).then_some((before, after, obs, traces))
    });
    let (before, after, obs, traces) = out.into_iter().flatten().next().unwrap();

    let mut series = Vec::new();
    for (d, name) in [(Dim::Vertex, "vtx"), (Dim::Edge, "edge")] {
        let b = before.of(d);
        let a = after.of(d);
        let avg_b = LoadStats::of(b).mean;
        let avg_a = LoadStats::of(a).mean;
        let path = format!("fig12_{name}.csv");
        let mut file = std::fs::File::create(&path).expect("create csv");
        writeln!(file, "part,before_over_avg,after_over_avg").unwrap();
        for p in 0..b.len() {
            writeln!(file, "{},{:.6},{:.6}", p, b[p] / avg_b, a[p] / avg_a).unwrap();
        }
        let sb = LoadStats::of(b);
        let sa = LoadStats::of(a);
        println!(
            "fig12 ({name}): before [{:.3}, {:.3}] imb {:.2}%  ->  after [{:.3}, {:.3}] imb {:.2}%   (csv: {path})",
            sb.min / sb.mean,
            sb.max / sb.mean,
            sb.imbalance_pct(),
            sa.min / sa.mean,
            sa.max / sa.mean,
            sa.imbalance_pct(),
        );
        series.push(Json::obj([
            ("dim", Json::str(name)),
            ("csv", Json::str(&path)),
            ("before_imb_pct", Json::F64(sb.imbalance_pct())),
            ("after_imb_pct", Json::F64(sa.imbalance_pct())),
            ("before_min_over_avg", Json::F64(sb.min / sb.mean)),
            ("before_max_over_avg", Json::F64(sb.max / sb.mean)),
            ("after_min_over_avg", Json::F64(sa.min / sa.mean)),
            ("after_max_over_avg", Json::F64(sa.max / sa.mean)),
        ]));
    }

    let mut report = Report::new("fig12_series");
    report.section(
        "config",
        Json::obj([
            ("elements", Json::U64(scale.elements() as u64)),
            ("parts", Json::U64(scale.nparts as u64)),
            ("ranks", Json::U64(scale.nranks as u64)),
        ]),
    );
    report.section("series", Json::arr(series));
    report.section("obs", obs.unwrap_or(Json::Null));
    report.section("parma", Json::arr(traces.iter().map(|t| t.to_json())));
    write_report(&report);
}
