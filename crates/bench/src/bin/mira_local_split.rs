//! §III-A's Mira experiment: local partitioning inflates the peak vertex
//! imbalance; ParMA `Vtx > Rgn` then improves it.
//!
//! Paper run: a 16,384-part mesh locally split ×96 to 1.5M parts for a 3B
//! element PHASTA mesh; peak vertex imbalance rises 9% → 54%, and ParMA
//! improves it by more than 10%.
//!
//! Scaled run: partition the AAA-proxy mesh to `coarse` parts, locally split
//! each part ×`k`, measure the peak vertex imbalance before/after the split,
//! then run ParMA `Vtx > Rgn` on the split partition.
//!
//! Usage: `mira_local_split [--nr N] [--nz N] [--coarse N] [--k N] [--ranks N]`

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_bench::report::write_report;
use pumi_bench::workloads::{aaa_scaled, distribute_labels, AaaScale};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::{partition_mesh, split_labels, PartitionQuality};
use pumi_util::Dim;

fn main() {
    let mut scale = AaaScale::default_scale();
    let mut coarse = 16usize;
    let mut k = 16usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--nr" => scale.nr = v.parse().unwrap(),
            "--nz" => scale.nz = v.parse().unwrap(),
            "--coarse" => coarse = v.parse().unwrap(),
            "--k" => k = v.parse().unwrap(),
            "--ranks" => scale.nranks = v.parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    let fine = coarse * k;
    scale.nparts = fine;
    eprintln!(
        "mira: {} tets, {coarse} parts locally split x{k} -> {fine} parts",
        scale.elements()
    );
    let serial = aaa_scaled(scale);

    // Coarse global partition.
    let coarse_labels = partition_mesh(&serial, coarse);
    let qc = PartitionQuality::compute(&serial, &coarse_labels, coarse);
    let coarse_vtx_imb = qc.imbalance_pct(Dim::Vertex);

    // Local split: each part partitioned independently to k subparts.
    let fine_labels = split_labels(&serial, &coarse_labels, coarse, k);
    let qf = PartitionQuality::compute(&serial, &fine_labels, fine);
    let split_vtx_imb = qf.imbalance_pct(Dim::Vertex);

    println!(
        "peak vertex imbalance: coarse ({coarse} parts) = {coarse_vtx_imb:.1}%   \
         after local split ({fine} parts) = {split_vtx_imb:.1}%   (paper: 9% -> 54%)"
    );

    // ParMA Vtx > Rgn on the fine partition.
    let pri: Priority = "Vtx > Rgn".parse().unwrap();
    let out = pumi_pcu::execute(scale.nranks, |c| {
        let mut dm = distribute_labels(c, &serial, &fine_labels, fine);
        let before = EntityLoads::gather(c, &dm).imbalance_pct(Dim::Vertex);
        let report = improve(c, &mut dm, &pri, ImproveOpts::default());
        let after = EntityLoads::gather(c, &dm);
        let obs = pumi_pcu::obs::world_report(c);
        let traces = pumi_obs::parma::take();
        (c.rank() == 0).then(|| {
            (
                before,
                after.imbalance_pct(Dim::Vertex),
                after.imbalance_pct(Dim::Region),
                report.seconds,
                obs,
                traces,
            )
        })
    });
    let (before, after, rgn_after, secs, obs, traces) = out.into_iter().flatten().next().unwrap();
    println!(
        "ParMA Vtx > Rgn: vertex imbalance {before:.1}% -> {after:.1}% \
         (region {rgn_after:.1}%), {secs:.2}s"
    );
    let gain = before - after;
    println!("check: improvement = {gain:.1} percentage points (paper: > 10 points on 1.5M parts)");

    let mut report = Report::new("mira_local_split");
    report.section(
        "config",
        Json::obj([
            ("elements", Json::U64(scale.elements() as u64)),
            ("coarse_parts", Json::U64(coarse as u64)),
            ("split_factor", Json::U64(k as u64)),
            ("fine_parts", Json::U64(fine as u64)),
            ("ranks", Json::U64(scale.nranks as u64)),
        ]),
    );
    report.section(
        "results",
        Json::obj([
            ("coarse_vtx_imb_pct", Json::F64(coarse_vtx_imb)),
            ("split_vtx_imb_pct", Json::F64(split_vtx_imb)),
            ("parma_before_pct", Json::F64(before)),
            ("parma_after_pct", Json::F64(after)),
            ("parma_rgn_after_pct", Json::F64(rgn_after)),
            ("parma_seconds", Json::F64(secs)),
            ("gain_points", Json::F64(gain)),
        ]),
    );
    report.section("obs", obs.unwrap_or(Json::Null));
    report.section("parma", Json::arr(traces.iter().map(|t| t.to_json())));
    write_report(&report);
}
