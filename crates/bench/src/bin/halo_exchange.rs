//! Halo-exchange timing over the star-forest overlap: nodal Add-assembly
//! across stencil depths 1–3.
//!
//! Distributes a jittered tet mesh, grows the overlap to depth k through
//! vertex bridges, and times the assembly sync — every part contributes to
//! the closure vertices of its owned elements, then `Field::sync(Add)`
//! reduces the contributions leaf→root and broadcasts the totals root→leaf
//! across the whole overlap (boundary copies and all k ghost layers).
//! Traffic is split into on-node and off-node bytes by the machine model,
//! the cost a deeper stencil actually pays on a real network.
//!
//! Usage: `halo_exchange [--nx N] [--parts P] [--nodes N] [--reps R]`
//! Emits `results/halo_exchange.json`; `scripts/bench_snapshot.sh` folds
//! the `halo_exchange/depth{1,2,3}` medians into `BENCH_pcu.json`.

use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_core::overlap::{Overlap, Reduction};
use pumi_core::{distribute, PartMap};
use pumi_field::{dist_field, Field, FieldShape, FieldSync};
use pumi_meshgen::{jitter, tet_box};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_pcu::{execute_on, MachineModel};
use pumi_util::stats::Timer;
use pumi_util::{Dim, MeshEnt};

struct DepthRun {
    depth: usize,
    median_ns: u64,
    samples: u64,
    ghosts: u64,
    on_node_bytes: u64,
    off_node_bytes: u64,
    obs: Json,
}

fn median_ns(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn parse_args() -> (usize, usize, usize, usize) {
    let (mut nx, mut parts, mut nodes, mut reps) = (10usize, 8usize, 2usize, 5usize);
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--nx" => nx = v.parse().expect("--nx"),
            "--parts" => parts = v.parse().expect("--parts"),
            "--nodes" => nodes = v.parse().expect("--nodes"),
            "--reps" => reps = v.parse().expect("--reps"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    assert!(parts % nodes == 0, "--parts must be a multiple of --nodes");
    (nx, parts, nodes, reps)
}

fn main() {
    let (nx, parts, nodes, reps) = parse_args();
    let mut serial = tet_box(nx, nx, nx, 1.0, 1.0, 1.0);
    jitter(&mut serial, 0.15, 42);
    let elements = serial.count(Dim::Region);
    let machine = MachineModel::new(nodes, parts / nodes);
    eprintln!(
        "halo_exchange: {elements} tets, {parts} parts on {nodes}x{} machine, {reps} reps",
        parts / nodes
    );
    let labels = partition_mesh(&serial, parts);

    let mut runs: Vec<DepthRun> = Vec::new();
    for depth in 1..=3usize {
        let out = execute_on(machine, |c| {
            let mut dm = distribute(c, PartMap::contiguous(parts, parts), &serial, &labels);
            let mut ov = Overlap::from_dist(&dm).with_bridge(Dim::Vertex);
            ov.grow(c, &mut dm, depth);
            let ghosts = dm.global_sum(c, |p| p.num_ghosts() as u64);

            let template = Field::new("mass", FieldShape::Linear, 1);
            let mut fields = dist_field(&dm, &template);
            let mut rep_ns = Vec::with_capacity(reps);
            c.barrier();
            c.reset_traffic();
            for _ in 0..reps {
                // Element loop: each part lumps 1.0 from every owned element
                // onto its closure vertices; the sync assembles the totals.
                for (slot, part) in dm.parts.iter().enumerate() {
                    fields[slot].fill(&part.mesh, &[0.0]);
                    for e in part.mesh.elems() {
                        if part.is_ghost(e) {
                            continue;
                        }
                        for &v in part.mesh.verts_of(e) {
                            let v = MeshEnt::vertex(v);
                            let m = fields[slot].get_scalar(v).unwrap_or(0.0);
                            fields[slot].set_scalar(v, m + 1.0);
                        }
                    }
                }
                let t = Timer::start();
                fields.sync(c, &dm, &ov, Reduction::Add);
                rep_ns.push((t.seconds() * 1e9) as u64);
            }
            c.barrier();
            let traffic = c.traffic();
            let obs = pumi_pcu::obs::world_report(c);
            (
                rep_ns,
                ghosts,
                traffic.on_node_bytes,
                traffic.off_node_bytes,
                obs,
            )
        });
        // Median over reps of the slowest rank per rep.
        let per_rank: Vec<Vec<u64>> = out.iter().map(|r| r.0.clone()).collect();
        let rep_max: Vec<u64> = (0..reps)
            .map(|i| per_rank.iter().map(|v| v[i]).max().unwrap())
            .collect();
        let (_, ghosts, on, off, obs) = out.into_iter().next().unwrap();
        runs.push(DepthRun {
            depth,
            median_ns: median_ns(rep_max),
            samples: reps as u64,
            ghosts,
            on_node_bytes: on,
            off_node_bytes: off,
            obs: obs.unwrap_or(Json::Null),
        });
    }

    let mut table = Table::new(
        &format!("Halo exchange (Add-assembly), {elements} tets, {parts} parts, {nodes} nodes"),
        &[
            "depth",
            "median (ms)",
            "samples",
            "ghost copies",
            "on-node bytes",
            "off-node bytes",
        ],
    );
    for r in &runs {
        table.row(vec![
            r.depth.to_string(),
            f(r.median_ns as f64 * 1e-6, 3),
            r.samples.to_string(),
            r.ghosts.to_string(),
            r.on_node_bytes.to_string(),
            r.off_node_bytes.to_string(),
        ]);
    }
    print_table(&table);

    let mut report = Report::new("halo_exchange");
    report.section(
        "config",
        Json::obj([
            ("elements", Json::U64(elements as u64)),
            ("parts", Json::U64(parts as u64)),
            ("nodes", Json::U64(nodes as u64)),
            ("cores_per_node", Json::U64((parts / nodes) as u64)),
            ("reps", Json::U64(reps as u64)),
        ]),
    );
    report.section(
        "medians",
        Json::arr(runs.iter().map(|r| {
            Json::obj([
                (
                    "bench",
                    Json::str(format!("halo_exchange/depth{}", r.depth)),
                ),
                ("median_ns", Json::U64(r.median_ns)),
                ("samples", Json::U64(r.samples)),
            ])
        })),
    );
    report.section(
        "traffic",
        Json::arr(runs.iter().map(|r| {
            Json::obj([
                ("depth", Json::U64(r.depth as u64)),
                ("ghost_copies", Json::U64(r.ghosts)),
                ("on_node_bytes", Json::U64(r.on_node_bytes)),
                ("off_node_bytes", Json::U64(r.off_node_bytes)),
                ("obs", r.obs.clone()),
            ])
        })),
    );
    report.section("table", table_to_json(&table));
    write_report(&report);
}
