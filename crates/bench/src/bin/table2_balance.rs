//! Tables I, II and III: ParMA multi-criteria partition improvement on the
//! AAA-proxy mesh.
//!
//! Paper setup: 133M-tet abdominal-aortic-aneurysm mesh, Zoltan PHG to
//! 16,384 parts (T0), then ParMA tests T1–T4 on 512 cores with 32 parts per
//! process. Scaled setup (defaults): ~124k-tet vessel proxy, graph
//! partitioner to 128 parts, 4 ranks × 32 parts/process, 5% tolerance.
//!
//! Usage: `table2_balance [--nr N] [--nz N] [--parts N] [--ranks N] [--tol F]`

use parma::{improve, EntityLoads, ImproveOpts, Priority};
use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::{aaa_scaled, distribute_labels, AaaScale};
use pumi_obs::json::Json;
use pumi_obs::parma::ParmaTrace;
use pumi_obs::report::Report;
use pumi_partition::{partition_mesh, PartitionQuality};
use pumi_util::stats::Timer;
use pumi_util::Dim;

struct TestResult {
    name: &'static str,
    method: String,
    seconds: f64,
    /// mean count per dim (this partition's own mean)
    mean: [f64; 4],
    /// max count per dim
    max: [f64; 4],
    boundary_copies: u64,
    /// World-reduced spans + traffic (`None` for T0, which runs serially).
    obs: Option<Json>,
    /// ParMA iteration trajectory.
    parma: Vec<ParmaTrace>,
}

fn parse_args() -> (AaaScale, f64, bool) {
    let mut s = AaaScale::default_scale();
    let mut tol = 0.05;
    let mut verbose = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--nr" => s.nr = v.parse().expect("--nr"),
            "--nz" => s.nz = v.parse().expect("--nz"),
            "--parts" => s.nparts = v.parse().expect("--parts"),
            "--ranks" => s.nranks = v.parse().expect("--ranks"),
            "--tol" => tol = v.parse().expect("--tol"),
            "--verbose" => {
                verbose = v.parse().expect("--verbose");
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    (s, tol, verbose)
}

fn main() {
    let (scale, tol, verbose) = parse_args();
    eprintln!(
        "generating AAA-proxy mesh: {} tets, {} parts on {} ranks ({} parts/process)",
        scale.elements(),
        scale.nparts,
        scale.nranks,
        scale.nparts / scale.nranks
    );
    let serial = aaa_scaled(scale);

    // ---- T0: the global graph partitioner (PHG stand-in) ----
    let t0_timer = Timer::start();
    let labels = partition_mesh(&serial, scale.nparts);
    let t0_seconds = t0_timer.seconds();
    let q0 = PartitionQuality::compute(&serial, &labels, scale.nparts);
    let t0 = TestResult {
        name: "T0",
        method: "Graph (PHG stand-in)".to_string(),
        seconds: t0_seconds,
        mean: [
            q0.mean(Dim::Vertex),
            q0.mean(Dim::Edge),
            q0.mean(Dim::Face),
            q0.mean(Dim::Region),
        ],
        max: [
            q0.stats(Dim::Vertex).max,
            q0.stats(Dim::Edge).max,
            q0.stats(Dim::Face).max,
            q0.stats(Dim::Region).max,
        ],
        boundary_copies: q0.total_boundary_copies() as u64,
        obs: None,
        parma: Vec::new(),
    };

    // ---- T1..T4: ParMA on the T0 partition ----
    let tests: Vec<(&'static str, &'static str)> = vec![
        ("T1", "Vtx > Rgn"),
        ("T2", "Vtx = Edge > Rgn"),
        ("T3", "Edge > Rgn"),
        ("T4", "Edge = Face > Rgn"),
    ];
    let mut results = vec![t0];
    for (name, pri_str) in &tests {
        let pri: Priority = pri_str.parse().unwrap();
        eprintln!("running {name}: ParMA {pri_str}");
        let out = pumi_pcu::execute(scale.nranks, |c| {
            let mut dm = distribute_labels(c, &serial, &labels, scale.nparts);
            let report = improve(
                c,
                &mut dm,
                &pri,
                ImproveOpts::new().tol(tol).verbose(verbose),
            );
            let loads = EntityLoads::gather(c, &dm);
            let boundary = dm.global_sum(c, |p| p.shared_entities().len() as u64);
            let obs = pumi_pcu::obs::world_report(c);
            let traces = pumi_obs::parma::take();
            if c.rank() == 0 {
                let mut mean = [0f64; 4];
                let mut max = [0f64; 4];
                for d in Dim::ALL {
                    let s = loads.stats(d);
                    mean[d.as_usize()] = s.mean;
                    max[d.as_usize()] = s.max;
                }
                Some((report.seconds, mean, max, boundary, obs, traces))
            } else {
                None
            }
        });
        let (seconds, mean, max, boundary, obs, traces) = out.into_iter().flatten().next().unwrap();
        results.push(TestResult {
            name,
            method: format!("ParMA {pri_str}"),
            seconds,
            mean,
            max,
            boundary_copies: boundary,
            obs,
            parma: traces,
        });
    }

    // ---- Table I ----
    let mut t1 = Table::new("Table I: tests and parameters", &["Test", "Method"]);
    for r in &results {
        t1.row(vec![r.name.to_string(), r.method.clone()]);
    }
    print_table(&t1);
    println!();

    // ---- Table II ----
    // As in the paper, imbalance ratios are computed against the mean values
    // of the T0 partition.
    let base_mean = results[0].mean;
    let mut t2 = Table::new(
        &format!(
            "Table II: ParMA on a {}-element AAA-proxy mesh, {} parts (imb% vs T0 means)",
            scale.elements(),
            scale.nparts
        ),
        &["row", "T0", "T1", "T2", "T3", "T4"],
    );
    let dims = [
        (Dim::Region, "Rgn"),
        (Dim::Face, "Face"),
        (Dim::Edge, "Edge"),
        (Dim::Vertex, "Vtx"),
    ];
    for (d, label) in dims {
        let di = d.as_usize();
        let mut mean_row = vec![format!("Mean{label}")];
        let mut imb_row = vec![format!("{label} Imb.%")];
        for r in &results {
            mean_row.push(f(r.mean[di], 0));
            let imb = (r.max[di] / base_mean[di] - 1.0) * 100.0;
            imb_row.push(f(imb, 2));
        }
        t2.row(mean_row);
        t2.row(imb_row);
    }
    let mut bnd_row = vec!["BndCopies".to_string()];
    for r in &results {
        bnd_row.push(r.boundary_copies.to_string());
    }
    t2.row(bnd_row);
    print_table(&t2);
    println!();

    // ---- Table III ----
    let mut t3 = Table::new("Table III: time usage", &["Test", "Time (sec.)", "vs T0"]);
    let t0s = results[0].seconds;
    for r in &results {
        t3.row(vec![
            r.name.to_string(),
            f(r.seconds, 2),
            format!("{:.1}x", t0s / r.seconds.max(1e-9)),
        ]);
    }
    print_table(&t3);

    // Headline checks (the paper's qualitative claims).
    let vtx_t0 = (results[0].max[0] / base_mean[0] - 1.0) * 100.0;
    let vtx_t1 = (results[1].max[0] / base_mean[0] - 1.0) * 100.0;
    println!();
    println!(
        "check: T1 vertex imbalance {:.2}% -> {:.2}% (target <= {:.1}%)",
        vtx_t0,
        vtx_t1,
        tol * 100.0 + 1.0
    );
    println!(
        "check: ParMA vs partitioner time: T1 is {:.1}x faster than T0",
        t0s / results[1].seconds.max(1e-9)
    );
    let shrunk = results[1..]
        .iter()
        .filter(|r| r.boundary_copies <= results[0].boundary_copies)
        .count();
    println!(
        "check: boundary entities reduced vs T0 in {}/4 ParMA tests",
        shrunk
    );

    // ---- Machine-readable report: results/table2_balance.json ----
    let mut report = Report::new("table2_balance");
    report.section(
        "config",
        Json::obj([
            ("elements", Json::U64(scale.elements() as u64)),
            ("parts", Json::U64(scale.nparts as u64)),
            ("ranks", Json::U64(scale.nranks as u64)),
            ("tol", Json::F64(tol)),
        ]),
    );
    report.section(
        "tests",
        Json::arr(results.iter().map(|r| {
            Json::obj([
                ("name", Json::str(r.name)),
                ("method", Json::str(&r.method)),
                ("seconds", Json::F64(r.seconds)),
                ("mean", Json::arr(r.mean.iter().map(|&x| Json::F64(x)))),
                ("max", Json::arr(r.max.iter().map(|&x| Json::F64(x)))),
                ("boundary_copies", Json::U64(r.boundary_copies)),
                ("obs", r.obs.clone().unwrap_or(Json::Null)),
                ("parma", Json::arr(r.parma.iter().map(|t| t.to_json()))),
            ])
        })),
    );
    report.section(
        "tables",
        Json::arr([table_to_json(&t1), table_to_json(&t2), table_to_json(&t3)]),
    );
    write_report(&report);
}
