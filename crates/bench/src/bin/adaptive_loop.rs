//! The parallel adaptive loop (§I, §III-B, Fig. 13's remedy): repeated
//! rounds of predict → balance → adapt on a distributed mesh, with a
//! moving shock front driving both refinement (ahead of the front) and
//! coarsening (behind it).
//!
//! Each round:
//! 1. estimate every element's post-adaptation load with
//!    `pumi_adapt::predict::element_weight` against this round's size
//!    field, stamped as a `parma:weight` element tag,
//! 2. run ParMA's diffusive improvement on those *predicted* weights
//!    (`parma::improve_weighted`) — balancing the mesh that is *about to
//!    exist* rather than the one that does,
//! 3. adapt in parallel with `pumi_adapt::adapt_dist` (boundary-consistent
//!    refinement + interior coarsening, invariants checked every round),
//! 4. measure the *actual* element imbalance the adaptation produced.
//!
//! A frozen-partition control runs the same adaptation rounds with no
//! balancing — the Fig. 13 blow-up the predictive loop is meant to
//! prevent. The per-round trajectory (predicted, balanced, actual) lands
//! in `results/adaptive_loop.json`.
//!
//! Usage: `adaptive_loop [--n N] [--parts N] [--ranks N] [--rounds N] [--tol F]`

use parma::{improve_weighted, EntityLoads, ImproveOpts, Priority};
use pumi_adapt::dist::{adapt_dist, AdaptOpts};
use pumi_adapt::{element_weight, CoarsenOpts, SizeField};
use pumi_bench::report::{f, print_table, table_to_json, write_report, Table};
use pumi_bench::workloads::distribute_labels;
use pumi_check::CheckOpts;
use pumi_core::DistMesh;
use pumi_meshgen::tri_rect;
use pumi_obs::adapt::{AdaptTrace, RoundRow};
use pumi_obs::json::Json;
use pumi_obs::report::Report;
use pumi_partition::partition_mesh;
use pumi_pcu::Comm;
use pumi_util::stats::Timer;
use pumi_util::tag::TagKind;
use pumi_util::Dim;

const WEIGHT_TAG: &str = "parma:weight";

struct Config {
    n: usize,
    nparts: usize,
    nranks: usize,
    rounds: usize,
    tol: f64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        n: 32,
        nparts: 8,
        nranks: 4,
        rounds: 4,
        tol: 0.05,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        let v = &args[i + 1];
        match args[i].as_str() {
            "--n" => cfg.n = v.parse().expect("--n"),
            "--parts" => cfg.nparts = v.parse().expect("--parts"),
            "--ranks" => cfg.nranks = v.parse().expect("--ranks"),
            "--rounds" => cfg.rounds = v.parse().expect("--rounds"),
            "--tol" => cfg.tol = v.parse().expect("--tol"),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    cfg
}

/// The round's size field: an oblique shock front that sweeps across the
/// unit square, demanding fine resolution in a band around it and coarse
/// everywhere else — so elements refined in round `r` become coarsening
/// targets in round `r + 1`.
fn round_size(round: usize) -> SizeField {
    let c = 0.25 + 0.18 * round as f64;
    SizeField::shock(move |p| p[0] + 0.4 * p[1] - c, 0.008, 0.12, 0.03)
}

/// Stamp every element of every local part with its predicted
/// post-adaptation weight for `size`.
fn stamp_weights(dm: &mut DistMesh, size: &SizeField) {
    for part in dm.parts.iter_mut() {
        let d_elem = part.mesh.elem_dim_t();
        let weights: Vec<_> = part
            .mesh
            .iter(d_elem)
            .map(|e| (e, element_weight(&part.mesh, e, size)))
            .collect();
        let tid = part.mesh.tags_mut().declare(WEIGHT_TAG, TagKind::Double, 1);
        for (e, w) in weights {
            part.mesh.tags_mut().set_dbl(tid, e, w);
        }
    }
}

fn elem_imbalance_pct(comm: &Comm, dm: &DistMesh, d: Dim) -> f64 {
    EntityLoads::gather(comm, dm).imbalance_pct(d)
}

fn main() {
    let cfg = parse_args();
    let serial = tri_rect(cfg.n, cfg.n, 1.0, 1.0);
    let elem_d = serial.elem_dim_t();
    eprintln!(
        "adaptive_loop: {} tris, {} parts on {} ranks, {} rounds",
        serial.num_elems(),
        cfg.nparts,
        cfg.nranks,
        cfg.rounds
    );
    let labels = partition_mesh(&serial, cfg.nparts);

    // ---- The predictive loop ----
    let pri: Priority = "Face".parse().unwrap();
    let out = pumi_pcu::execute(cfg.nranks, |c| {
        let mut dm = distribute_labels(c, &serial, &labels, cfg.nparts);
        let label = format!("moving shock, {} parts on {} ranks", cfg.nparts, cfg.nranks);
        pumi_obs::adapt::begin(&label);
        // Rows are also collected locally: the obs recorder is a no-op
        // under --no-default-features, but the tables and shape checks
        // below must work either way.
        let mut local = AdaptTrace {
            label,
            ..AdaptTrace::default()
        };
        let timer = Timer::start();
        for round in 0..cfg.rounds {
            let size = round_size(round);
            stamp_weights(&mut dm, &size);
            let before = elem_imbalance_pct(c, &dm, elem_d);
            let predicted = EntityLoads::gather_weighted(c, &dm, WEIGHT_TAG).imbalance_pct(elem_d);
            let report = {
                let _span = pumi_obs::span!("adapt.balance");
                improve_weighted(
                    c,
                    &mut dm,
                    &pri,
                    ImproveOpts::new().tol(cfg.tol).max_iters(60),
                    WEIGHT_TAG,
                )
            };
            let balanced = EntityLoads::gather_weighted(c, &dm, WEIGHT_TAG).imbalance_pct(elem_d);
            let stats = adapt_dist(
                c,
                &mut dm,
                &size,
                AdaptOpts::new()
                    .coarsen(CoarsenOpts::default())
                    .check(CheckOpts::all()),
            );
            let actual = elem_imbalance_pct(c, &dm, elem_d);
            if c.rank() == 0 {
                eprintln!(
                    "round {}: predicted {predicted:.1}% -> balanced {balanced:.1}% -> \
                     actual {actual:.1}%  ({} splits, {} collapses, {} elements)",
                    round + 1,
                    stats.splits,
                    stats.collapses,
                    stats.elements_after
                );
            }
            let row = RoundRow {
                round: round as u32 + 1,
                before_pct: before,
                predicted_pct: predicted,
                balanced_pct: balanced,
                actual_pct: actual,
                splits: stats.splits,
                collapses: stats.collapses,
                elements_moved: report.elements_moved,
                elements: stats.elements_after,
            };
            local.rounds.push(row);
            pumi_obs::adapt::round(row);
        }
        let seconds = c.allreduce_max_f64(timer.seconds());
        local.seconds = seconds;
        pumi_obs::adapt::end(seconds);
        let obs = pumi_pcu::obs::world_report(c);
        (c.rank() == 0).then(|| {
            // Prefer the recorder's trace (exercising the shipped obs
            // path); fall back to the local copy when obs is compiled out.
            let trace = pumi_obs::adapt::take().into_iter().next().unwrap_or(local);
            (trace, obs)
        })
    });
    let (trace, obs) = out.into_iter().flatten().next().unwrap();

    // ---- Frozen-partition control: same rounds, no balancing ----
    let frozen = pumi_pcu::execute(cfg.nranks, |c| {
        let mut dm = distribute_labels(c, &serial, &labels, cfg.nparts);
        let mut actuals = Vec::new();
        for round in 0..cfg.rounds {
            let size = round_size(round);
            adapt_dist(
                c,
                &mut dm,
                &size,
                AdaptOpts::new().coarsen(CoarsenOpts::default()),
            );
            actuals.push(elem_imbalance_pct(c, &dm, elem_d));
        }
        (c.rank() == 0).then_some(actuals)
    });
    let frozen = frozen.into_iter().flatten().next().unwrap();

    // ---- Per-round table ----
    let mut t = Table::new(
        &format!(
            "Adaptive loop: {} rounds, {} parts (element imbalance %)",
            cfg.rounds, cfg.nparts
        ),
        &[
            "round",
            "predicted",
            "after ParMA",
            "after adapt",
            "frozen ctrl",
            "splits",
            "collapses",
            "elements",
        ],
    );
    for (r, ctrl) in trace.rounds.iter().zip(&frozen) {
        t.row(vec![
            r.round.to_string(),
            f(r.predicted_pct, 1),
            f(r.balanced_pct, 1),
            f(r.actual_pct, 1),
            f(*ctrl, 1),
            r.splits.to_string(),
            r.collapses.to_string(),
            r.elements.to_string(),
        ]);
    }
    print_table(&t);

    // Hard invariant at any scale: a ParMA step never makes the predicted
    // imbalance worse. Strict per-round improvement is *not* an invariant
    // of the diffusion heuristic — under stagnation (small `--n`/`--parts`
    // configs put the whole shock band in one part with no admissible
    // move; see EXPERIMENTS.md) it can move elements among non-peak parts
    // while max/avg stays pinned by the spike.
    let worsened: Vec<String> = trace
        .rounds
        .iter()
        .filter(|r| r.balanced_pct > r.predicted_pct + 1e-9)
        .map(|r| {
            format!(
                "round {}: predicted {:.6}% -> balanced {:.6}% with {} elements moved",
                r.round, r.predicted_pct, r.balanced_pct, r.elements_moved
            )
        })
        .collect();
    let last = trace.rounds.last().unwrap();
    println!();
    println!(
        "check: ParMA reduced predicted imbalance in {}/{} rounds",
        trace
            .rounds
            .iter()
            .filter(|r| r.balanced_pct < r.predicted_pct)
            .count(),
        trace.rounds.len()
    );
    println!(
        "check: final actual imbalance {:.1}% vs frozen-partition {:.1}%  (paper Fig 13: >400% when frozen)",
        last.actual_pct,
        frozen.last().unwrap()
    );
    assert!(
        worsened.is_empty(),
        "a ParMA step increased the predicted imbalance:\n{}",
        worsened.join("\n")
    );
    // At the documented reproduction scale (the defaults, which generate
    // the committed results/adaptive_loop.json), the paper's shape claims
    // are regression-guarded: every ParMA step strictly improves and the
    // predictive loop ends below the frozen-partition control.
    let default_cfg = (cfg.n, cfg.nparts, cfg.nranks, cfg.rounds, cfg.tol) == (32, 8, 4, 4, 0.05);
    if default_cfg {
        assert!(
            trace
                .rounds
                .iter()
                .all(|r| r.balanced_pct < r.predicted_pct),
            "a ParMA step failed to reduce the predicted imbalance at the default scale"
        );
        assert!(
            last.actual_pct < *frozen.last().unwrap(),
            "predictive loop did not beat the frozen-partition control at the default scale"
        );
    }

    // ---- results/adaptive_loop.json ----
    let mut report = Report::new("adaptive_loop");
    report.section(
        "config",
        Json::obj([
            ("n", Json::U64(cfg.n as u64)),
            ("initial_elements", Json::U64(serial.num_elems() as u64)),
            ("parts", Json::U64(cfg.nparts as u64)),
            ("ranks", Json::U64(cfg.nranks as u64)),
            ("rounds", Json::U64(cfg.rounds as u64)),
            ("tol", Json::F64(cfg.tol)),
        ]),
    );
    report.section("loop", trace.to_json());
    report.section(
        "frozen_control",
        Json::arr(frozen.iter().map(|&pct| Json::F64(pct))),
    );
    report.section("obs", obs.unwrap_or(Json::Null));
    report.section("tables", Json::arr([table_to_json(&t)]));
    write_report(&report);
}
